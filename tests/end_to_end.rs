//! Cross-crate integration tests: database → count query → geometric release →
//! consumer post-processing → optimality, plus the multi-level release and
//! derivability machinery, all through the `privmech` facade.

use std::sync::Arc;

use privmech::db::{CountQuery, Predicate, SyntheticPopulation};
use privmech::numerics::rat;
use privmech::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The complete pipeline of the paper's running example, with exact arithmetic.
#[test]
fn flu_report_pipeline_reaches_tailored_optimum_for_every_consumer() {
    let mut rng = StdRng::seed_from_u64(20100115);
    let population = SyntheticPopulation {
        size: 6,
        adult_rate: 0.9,
        flu_rate: 0.4,
        drug_rate_given_flu: 0.5,
        drug_rate_without_flu: 0.1,
    };
    let database = population.generate("San Diego", &mut rng);
    let query = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
    let true_count = query.evaluate(&database);
    let n = database.len();
    assert!(true_count <= n);

    let level = PrivacyLevel::new(rat(1, 3)).unwrap();
    let deployed = geometric_mechanism(n, &level).unwrap();
    assert!(deployed.is_differentially_private(&level));

    // A released value is always in range.
    let released = deployed.sample(true_count, &mut rng).unwrap();
    assert!(released <= n);

    // Three consumers with different losses and side information all reach
    // their tailored optimum by post-processing the same deployed mechanism.
    let consumers = vec![
        MinimaxConsumer::new(
            "government",
            Arc::new(AbsoluteError) as Arc<dyn LossFunction<Rational> + Send + Sync>,
            SideInformation::full(n),
        )
        .unwrap(),
        MinimaxConsumer::new(
            "drug-company",
            Arc::new(SquaredError),
            SideInformation::at_least(n, true_count.min(n)).unwrap(),
        )
        .unwrap(),
        MinimaxConsumer::new(
            "journalist",
            Arc::new(ZeroOneError),
            SideInformation::at_most(n, n - 1).unwrap(),
        )
        .unwrap(),
    ];
    for consumer in &consumers {
        let raw = consumer.disutility(&deployed).unwrap();
        let interaction = optimal_interaction(&deployed, consumer).unwrap();
        let tailored = optimal_mechanism(&level, consumer).unwrap();
        assert!(interaction.loss <= raw, "{}", consumer.name());
        assert_eq!(interaction.loss, tailored.loss, "{}", consumer.name());
        assert!(interaction.post_processing.is_row_stochastic());
        assert!(tailored.mechanism.is_differentially_private(&level));
        // The induced mechanism is derivable from the geometric mechanism
        // (Theorem 1's proof route through Theorem 2).
        assert!(theorem2_check(&interaction.induced, &level).is_derivable());
    }
}

/// Algorithm 1 end to end: structure, sampling, and audits.
#[test]
fn multi_level_release_is_consistent_with_its_marginals() {
    let n = 8usize;
    let levels = vec![
        PrivacyLevel::new(rat(1, 4)).unwrap(),
        PrivacyLevel::new(rat(1, 2)).unwrap(),
        PrivacyLevel::new(rat(2, 3)).unwrap(),
    ];
    let release = MultiLevelRelease::new(n, levels).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    for (i, level) in release.levels().iter().enumerate() {
        let marginal = release.marginal_mechanism(i).unwrap();
        assert_eq!(marginal, geometric_mechanism(n, level).unwrap());
        let audit = audit_mechanism(&marginal, level);
        assert!(audit.is_fully_compliant());
    }

    // Chained releases stay in range and the chain has the right length.
    for _ in 0..50 {
        let out = release.release(3, &mut rng).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|s| s.value <= n));
    }
}

/// The derivability toolchain across crates: build a mechanism with the LP,
/// factor it through the geometric mechanism, audit both.
#[test]
fn tailored_optimum_is_derivable_from_the_geometric_mechanism() {
    let n = 4usize;
    let level = PrivacyLevel::new(rat(1, 4)).unwrap();
    let consumer =
        MinimaxConsumer::new("gov", Arc::new(AbsoluteError), SideInformation::full(n)).unwrap();
    let tailored = optimal_mechanism(&level, &consumer).unwrap();

    // Section 4.2: every optimal mechanism is derivable from the geometric
    // mechanism.
    let t = derive_from_geometric(&tailored.mechanism, &level).unwrap();
    assert!(t.is_row_stochastic());
    let g = geometric_mechanism(n, &level).unwrap();
    assert_eq!(
        g.matrix().matmul(&t).unwrap(),
        tailored.mechanism.matrix().clone()
    );

    // And the Appendix B mechanism is the counterexample that is private but
    // not derivable.
    let half = PrivacyLevel::new(rat(1, 2)).unwrap();
    let odd: Mechanism<Rational> = appendix_b_mechanism();
    let audit = audit_mechanism(&odd, &half);
    assert!(audit.meets_target);
    assert!(!audit.derivability.is_derivable());
}

/// Facade error paths: every misuse produces a typed error, never a panic.
#[test]
fn facade_error_paths_are_typed() {
    // Invalid alpha.
    assert!(PrivacyLevel::new(rat(5, 4)).is_err());
    // Empty side information.
    assert!(SideInformation::new(4, Vec::<usize>::new()).is_err());
    // Mechanism with a non-stochastic row.
    assert!(
        Mechanism::from_rows(vec![vec![rat(1, 2), rat(1, 4)], vec![rat(1, 2), rat(1, 2)]]).is_err()
    );
    // Multi-level release with decreasing levels.
    assert!(MultiLevelRelease::<Rational>::new(
        3,
        vec![
            PrivacyLevel::new(rat(1, 2)).unwrap(),
            PrivacyLevel::new(rat(1, 4)).unwrap(),
        ],
    )
    .is_err());
    // Consumer/mechanism dimension mismatch.
    let level = PrivacyLevel::new(rat(1, 3)).unwrap();
    let g = geometric_mechanism(3, &level).unwrap();
    let consumer =
        MinimaxConsumer::<Rational>::new("gov", Arc::new(AbsoluteError), SideInformation::full(7))
            .unwrap();
    assert!(optimal_interaction(&g, &consumer).is_err());
    // Out-of-range sampling input.
    let mut rng = StdRng::seed_from_u64(0);
    assert!(g.sample(9, &mut rng).is_err());
}

/// The three baselines are valid mechanisms but never beat the tailored
/// optimum built on the geometric mechanism.
#[test]
fn baselines_are_dominated_by_the_geometric_route() {
    let n = 5usize;
    let level = PrivacyLevel::new(rat(1, 2)).unwrap();
    let consumer =
        MinimaxConsumer::new("gov", Arc::new(AbsoluteError), SideInformation::full(n)).unwrap();
    let tailored = optimal_mechanism(&level, &consumer).unwrap();
    let rr = randomized_response(n, &level).unwrap();
    assert!(rr.is_differentially_private(&level));
    assert!(tailored.loss <= consumer.disutility(&rr).unwrap());
    let g = geometric_mechanism(n, &level).unwrap();
    assert!(tailored.loss <= consumer.disutility(&g).unwrap());
}
