//! Cross-crate integration tests: database → count query → geometric release →
//! consumer post-processing → optimality, plus the multi-level release and
//! derivability machinery, all through the `privmech` facade's
//! [`PrivacyEngine`] API.

use std::sync::Arc;

use privmech::db::{CountQuery, Predicate, SyntheticPopulation};
use privmech::numerics::rat;
use privmech::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The complete pipeline of the paper's running example, with exact arithmetic.
#[test]
fn flu_report_pipeline_reaches_tailored_optimum_for_every_consumer() {
    let mut rng = StdRng::seed_from_u64(20100115);
    let population = SyntheticPopulation {
        size: 6,
        adult_rate: 0.9,
        flu_rate: 0.4,
        drug_rate_given_flu: 0.5,
        drug_rate_without_flu: 0.1,
    };
    let database = population.generate("San Diego", &mut rng);
    let query = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
    let true_count = query.evaluate(&database);
    let n = database.len();
    assert!(true_count <= n);

    let engine = PrivacyEngine::new();
    let level = PrivacyLevel::new(rat(1, 3)).unwrap();
    let deployed = engine.geometric(n, &level).unwrap();
    assert!(deployed.is_differentially_private(&level));

    // A released value is always in range.
    let released = deployed.sample(true_count, &mut rng).unwrap();
    assert!(released <= n);

    // Three consumers with different losses and side information all reach
    // their tailored optimum by post-processing the same deployed mechanism.
    let requests: Vec<ValidatedRequest<Rational>> = vec![
        SolveRequest::minimax()
            .name("government")
            .loss(Arc::new(AbsoluteError))
            .support(n, 0..=n)
            .at(level.clone())
            .validate()
            .unwrap(),
        SolveRequest::minimax()
            .name("drug-company")
            .loss(Arc::new(SquaredError))
            .support(n, true_count.min(n)..=n)
            .at(level.clone())
            .validate()
            .unwrap(),
        SolveRequest::minimax()
            .name("journalist")
            .loss(Arc::new(ZeroOneError))
            .support(n, 0..n)
            .at(level.clone())
            .validate()
            .unwrap(),
    ];
    for request in &requests {
        let raw = request.consumer().disutility(&deployed).unwrap();
        let interaction = engine.interact(&deployed, request).unwrap();
        let tailored = engine.solve(request).unwrap();
        assert!(interaction.loss <= raw, "{}", request.consumer().name());
        assert_eq!(
            interaction.loss,
            tailored.loss,
            "{}",
            request.consumer().name()
        );
        assert!(interaction.post_processing.is_row_stochastic());
        assert!(tailored.mechanism.is_differentially_private(&level));
        // The induced mechanism is derivable from the geometric mechanism
        // (Theorem 1's proof route through Theorem 2).
        assert!(engine
            .check_derivability(&interaction.induced, &level)
            .is_derivable());
    }
}

/// Algorithm 1 end to end: structure, sampling, and audits.
#[test]
fn multi_level_release_is_consistent_with_its_marginals() {
    let n = 8usize;
    let levels = vec![
        PrivacyLevel::new(rat(1, 4)).unwrap(),
        PrivacyLevel::new(rat(1, 2)).unwrap(),
        PrivacyLevel::new(rat(2, 3)).unwrap(),
    ];
    let engine = PrivacyEngine::new();
    let release = engine.multi_level(n, levels).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    for (i, level) in release.levels().iter().enumerate() {
        let marginal = release.marginal_mechanism(i).unwrap();
        assert_eq!(marginal, engine.geometric(n, level).unwrap());
        let audit = audit_mechanism(&marginal, level);
        assert!(audit.is_fully_compliant());
    }

    // Chained releases stay in range and the chain has the right length.
    for _ in 0..50 {
        let out = release.release(3, &mut rng).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|s| s.value <= n));
    }
}

/// The derivability toolchain across crates: build a mechanism with the LP,
/// factor it through the geometric mechanism, audit both.
#[test]
fn tailored_optimum_is_derivable_from_the_geometric_mechanism() {
    let n = 4usize;
    let engine = PrivacyEngine::new();
    let level = PrivacyLevel::new(rat(1, 4)).unwrap();
    // The DirectLp strategy solves the Section 2.5 LP itself, so derivability
    // of its optimal vertex is a *theorem* (Section 4.2), not a construction
    // artifact like it is for the default factorization strategy.
    let request = SolveRequest::<Rational>::minimax()
        .name("gov")
        .loss(Arc::new(AbsoluteError))
        .support(n, 0..=n)
        .at(level.clone())
        .strategy(SolveStrategy::DirectLp)
        .validate()
        .unwrap();
    let tailored = engine.solve(&request).unwrap();

    // Section 4.2: every optimal mechanism is derivable from the geometric
    // mechanism.
    let t = engine.derive(&tailored.mechanism, &level).unwrap();
    assert!(t.is_row_stochastic());
    let g = engine.geometric(n, &level).unwrap();
    assert_eq!(
        g.matrix().matmul(&t).unwrap(),
        tailored.mechanism.matrix().clone()
    );

    // And the Appendix B mechanism is the counterexample that is private but
    // not derivable.
    let half = PrivacyLevel::new(rat(1, 2)).unwrap();
    let odd: Mechanism<Rational> = appendix_b_mechanism();
    let audit = audit_mechanism(&odd, &half);
    assert!(audit.meets_target);
    assert!(!audit.derivability.is_derivable());
}

/// Facade error paths: every misuse produces a typed error, never a panic.
#[test]
fn facade_error_paths_are_typed() {
    // Invalid alpha — both directly and through the request builder.
    assert!(PrivacyLevel::new(rat(5, 4)).is_err());
    assert!(matches!(
        SolveRequest::<Rational>::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(4, 0..=4)
            .privacy_level(rat(5, 4))
            .validate(),
        Err(CoreError::InvalidAlpha { .. })
    ));
    // Empty side information.
    assert!(SideInformation::new(4, Vec::<usize>::new()).is_err());
    assert!(matches!(
        SolveRequest::<Rational>::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(4, std::iter::empty())
            .privacy_level(rat(1, 4))
            .validate(),
        Err(CoreError::InvalidSideInformation { .. })
    ));
    // Mechanism with a non-stochastic row.
    assert!(
        Mechanism::from_rows(vec![vec![rat(1, 2), rat(1, 4)], vec![rat(1, 2), rat(1, 2)]]).is_err()
    );
    // Multi-level release with decreasing levels.
    let engine = PrivacyEngine::new();
    assert!(engine
        .multi_level::<Rational>(
            3,
            vec![
                PrivacyLevel::new(rat(1, 2)).unwrap(),
                PrivacyLevel::new(rat(1, 4)).unwrap(),
            ],
        )
        .is_err());
    // Consumer/mechanism dimension mismatch.
    let level = PrivacyLevel::new(rat(1, 3)).unwrap();
    let g = engine.geometric::<Rational>(3, &level).unwrap();
    let mismatched = SolveRequest::<Rational>::minimax()
        .name("gov")
        .loss(Arc::new(AbsoluteError))
        .support(7, 0..=7)
        .at(level)
        .validate()
        .unwrap();
    assert!(engine.interact(&g, &mismatched).is_err());
    // Out-of-range sampling input.
    let mut rng = StdRng::seed_from_u64(0);
    assert!(g.sample(9, &mut rng).is_err());
}

/// The three baselines are valid mechanisms but never beat the tailored
/// optimum built on the geometric mechanism.
#[test]
fn baselines_are_dominated_by_the_geometric_route() {
    let n = 5usize;
    let engine = PrivacyEngine::new();
    let level = PrivacyLevel::new(rat(1, 2)).unwrap();
    let request = SolveRequest::<Rational>::minimax()
        .name("gov")
        .loss(Arc::new(AbsoluteError))
        .support(n, 0..=n)
        .at(level.clone())
        .validate()
        .unwrap();
    let tailored = engine.solve(&request).unwrap();
    let rr = randomized_response(n, &level).unwrap();
    assert!(rr.is_differentially_private(&level));
    assert!(tailored.loss <= request.consumer().disutility(&rr).unwrap());
    let g = engine.geometric(n, &level).unwrap();
    assert!(tailored.loss <= request.consumer().disutility(&g).unwrap());
}
