//! Pipelining: protocol v2's tagged multi-in-flight requests and streaming
//! sweeps, end to end.
//!
//! One connection, many requests in flight: submit returns a `Ticket`,
//! completions arrive in whatever order the server's worker pool finishes
//! them, and a sweep streams one `sweep_item` frame per completed α instead
//! of one monolithic reply. Everything the v1 protocol promised still holds
//! — this example asserts byte identity between the streamed items and the
//! blocking (v1-shaped) reply for the same request.
//!
//! Run with: `cargo run --example pipelining`
//!
//! By default the example hosts an in-process server on an ephemeral
//! loopback port. Set `PRIVMECH_SERVE_ADDR=host:port` to drive an external
//! `privmech-serve` instance instead (this is what the CI smoke job does).

use std::time::Instant;

use privmech::numerics::{rat, Rational};
use privmech::serve::client::{Client, Event};
use privmech::serve::json;
use privmech::serve::proto::{CacheMode, ConsumerSpec, LossSpec};
use privmech::serve::server::{self, ServerConfig};

fn main() {
    // Host in-process unless pointed at an external server.
    let external = std::env::var("PRIVMECH_SERVE_ADDR").ok();
    let handle = if external.is_none() {
        let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
        println!("hosting an in-process server on {}", handle.addr());
        Some(handle)
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| handle.as_ref().unwrap().addr().to_string());
    let mut client = Client::connect(&*addr).expect("connect");
    println!(
        "connected to {addr}, negotiated protocol v{}",
        client.version()
    );
    assert_eq!(client.version(), 2, "this server speaks v2");

    // Several consumers' solves in flight at once on ONE connection — the
    // replies are matched by ticket, not by arrival order.
    let government = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let drug_company = ConsumerSpec::<Rational>::minimax(3, LossSpec::Squared);
    println!();
    println!("submitting 6 solves without waiting ...");
    let tickets: Vec<_> = (1..=3)
        .flat_map(|k| {
            let alpha = rat(k, 4);
            vec![
                client
                    .submit_solve(&government, &alpha, CacheMode::Use)
                    .expect("submit"),
                client
                    .submit_solve(&drug_company, &alpha, CacheMode::Use)
                    .expect("submit"),
            ]
        })
        .collect();
    // Wait for them in reverse order — completions for tickets we are not
    // yet asking about are buffered, never lost.
    for ticket in tickets.iter().rev() {
        let response = client.wait(*ticket).expect("wait");
        let loss = response
            .get("result")
            .and_then(|r| r.get("loss"))
            .map(json::to_string)
            .unwrap_or_default();
        println!("  ticket {:>2} -> loss {loss}", ticket.id());
    }

    // A streaming sweep: per-α results arrive as the worker pool finishes
    // them (completion order, tagged with the input index), so the first
    // result is usable long before the slowest α has solved.
    let alphas: Vec<Rational> = (1..=8).map(|k| rat(k, 9)).collect();
    println!();
    println!(
        "streaming a {}-α sweep (cache bypassed — really solving) ...",
        alphas.len()
    );
    let start = Instant::now();
    let mut items: Vec<Option<String>> = vec![None; alphas.len()];
    let mut first_at = None;
    let mut stream = client
        .sweep_stream(&government, &alphas, CacheMode::Bypass)
        .expect("stream");
    for item in stream.by_ref() {
        let item = item.expect("streamed item");
        first_at.get_or_insert_with(|| start.elapsed());
        println!(
            "  [{:>6.1?}] index {} (α = {}) loss {}",
            start.elapsed(),
            item.index,
            item.value.alpha,
            item.value.loss
        );
        items[item.index] = Some(item.raw);
    }
    let done = stream.done().expect("sweep_done");
    let total = start.elapsed();
    println!(
        "  sweep_done after {total:?} ({} items, {:?} cache) — first item at {:?}",
        done.count,
        done.cache,
        first_at.expect("at least one item")
    );

    // The contract this redesign lives by: the streamed items, reassembled
    // in input order, are byte-identical to the monolithic blocking reply
    // (which itself is byte-identical to a v1 client's reply).
    let blocking = client
        .sweep(&government, &alphas, CacheMode::Use)
        .expect("sweep");
    let reassembled = format!(
        "{{\"solves\":[{}]}}",
        items
            .into_iter()
            .map(|s| s.expect("every index streamed"))
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(
        reassembled, blocking.raw,
        "streamed ≡ monolithic, byte for byte"
    );
    println!("  streamed ≡ monolithic: byte-identical (asserted)");

    // Mixed in-flight traffic: a sweep and solves interleaved on the wire,
    // drained by recv() in completion order.
    println!();
    println!("interleaving a sweep with 4 more solves ...");
    let sweep_ticket = client
        .submit_sweep(&government, &alphas, CacheMode::Use)
        .expect("submit sweep");
    let solve_tickets: Vec<_> = (1..=4)
        .map(|k| {
            client
                .submit_solve(&government, &rat(k, 9), CacheMode::Use)
                .expect("submit solve")
        })
        .collect();
    let mut open = 1 + solve_tickets.len();
    let mut sweep_items = 0usize;
    while open > 0 {
        match client.recv().expect("recv") {
            Event::Reply { ticket, .. } => {
                println!("  solve ticket {:>2} completed", ticket.id());
                open -= 1;
            }
            Event::SweepItem { ticket, index, .. } => {
                assert_eq!(ticket, sweep_ticket);
                sweep_items += 1;
                println!("  sweep item {index} arrived (interleaved)");
            }
            Event::SweepDone { ticket, .. } => {
                assert_eq!(ticket, sweep_ticket);
                println!("  sweep done ({sweep_items} items)");
                open -= 1;
            }
            Event::Error { error, .. } => panic!("request failed: {error}"),
        }
    }
    assert_eq!(sweep_items, alphas.len());

    if let Some(handle) = handle {
        handle.shutdown();
        println!("in-process server stopped");
    }
    println!("ok");
}
