//! The paper's running example, end to end: a health agency holds a database
//! of individuals and wants to publish "how many adults from San Diego
//! contracted the flu this October" on the Internet, without knowing who will
//! read it. It deploys the geometric mechanism once; different readers — a
//! government analyst, a drug company, a journalist — each combine the same
//! published number with their own side information and loss function and all
//! of them are served optimally (Theorem 1).
//!
//! Run with: `cargo run --example flu_report`

use std::sync::Arc;

use privmech::db::{CountQuery, Predicate, SyntheticPopulation};
use privmech::numerics::rat;
use privmech::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2010);

    // ------------------------------------------------------------------
    // The database: a synthetic San Diego population (the real CDPH tables
    // the paper cites are not needed — the mechanism only sees the count).
    // ------------------------------------------------------------------
    let population = SyntheticPopulation {
        size: 6,
        adult_rate: 0.8,
        flu_rate: 0.4,
        drug_rate_given_flu: 0.6,
        drug_rate_without_flu: 0.05,
    };
    let database = population.generate("San Diego", &mut rng);
    let query = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
    let true_count = query.evaluate(&database);
    let n = database.len();
    println!("database: {n} individuals; true answer to the flu query: {true_count}");

    // ------------------------------------------------------------------
    // The agency deploys the geometric mechanism at α = 1/4 and publishes a
    // single perturbed count.
    // ------------------------------------------------------------------
    let engine = PrivacyEngine::new();
    let level = PrivacyLevel::new(rat(1, 4)).unwrap();
    let deployed = engine.geometric(n, &level).unwrap();
    let published = deployed.sample(true_count, &mut rng).unwrap();
    println!("published (perturbed) count at α = 1/4: {published}");
    println!();

    // ------------------------------------------------------------------
    // Three very different readers of the same report, described as typed
    // solve requests against the same deployed level.
    // ------------------------------------------------------------------
    let drug_sales = database
        .rows()
        .iter()
        .filter(|r| r.bought_drug && r.contracted_flu && r.is_adult())
        .count();
    let requests: Vec<ValidatedRequest<Rational>> = vec![
        // The government tracks the spread of flu and cares about mean error.
        SolveRequest::minimax()
            .name("government (|i-r| loss, no side information)")
            .loss(Arc::new(AbsoluteError))
            .support(n, 0..=n)
            .at(level.clone())
            .validate()
            .unwrap(),
        // The drug company knows how many people bought its drug, a lower
        // bound on the count (Example 1 of the paper), and cares about
        // over/under-production, i.e. squared error.
        SolveRequest::minimax()
            .name("drug company ((i-r)^2 loss, knows count >= drug sales)")
            .loss(Arc::new(SquaredError))
            .support(n, drug_sales..=n)
            .at(level.clone())
            .validate()
            .unwrap(),
        // A journalist only wants to know whether the published number is
        // exactly right, and knows the count cannot exceed half the city.
        SolveRequest::minimax()
            .name("journalist (0/1 loss, knows count <= n/2)")
            .loss(Arc::new(ZeroOneError))
            .support(n, 0..=n / 2)
            .at(level.clone())
            .validate()
            .unwrap(),
    ];

    println!(
        "{:<55} {:>12} {:>12} {:>12} {:>9}",
        "consumer", "raw loss", "post-proc", "tailored", "optimal?"
    );
    for request in &requests {
        let raw = request.consumer().disutility(&deployed).unwrap();
        let interaction = engine.interact(&deployed, request).unwrap();
        let tailored = engine.solve(request).unwrap();
        println!(
            "{:<55} {:>12.4} {:>12.4} {:>12.4} {:>9}",
            request.consumer().name(),
            raw.to_f64(),
            interaction.loss.to_f64(),
            tailored.loss.to_f64(),
            interaction.loss == tailored.loss
        );
    }

    println!();
    println!(
        "one published number, three different rational readers, each provably served as well \
         as by a mechanism designed just for them."
    );
}
