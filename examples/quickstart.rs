//! Quickstart: publish a differentially-private count with the geometric
//! mechanism, and check that a risk-averse consumer who post-processes the
//! release optimally does exactly as well as if the mechanism had been
//! tailored to them (Theorem 1 of the paper) — all through the
//! [`PrivacyEngine`] session API.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use privmech::numerics::rat;
use privmech::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A survey over n = 6 respondents; the sensitive count turns out to be 4.
    let n = 6usize;
    let true_count = 4usize;

    // One engine serves every request of the session.
    let engine = PrivacyEngine::new();

    // Describe the consumer once: a public-health analyst who knows the count
    // is at least 2 (say, confirmed cases they observed directly) and cares
    // about absolute error. The request is validated up front — a bad α, an
    // empty support or a non-monotone loss would be rejected here, typed.
    let request = SolveRequest::<Rational>::minimax()
        .name("public-health analyst")
        .loss(Arc::new(AbsoluteError))
        .support(n, 2..=n)
        .privacy_level(rat(1, 3)) // ε = ln 3 in the usual notation
        .validate()
        .expect("well-formed request");
    let level = request.level().clone();

    // Publish at privacy level α = 1/3 with the geometric mechanism.
    let deployed = engine.geometric(n, &level).expect("valid level");
    println!(
        "deployed the range-restricted geometric mechanism G_{{{n},1/3}} (ε = {:.3})",
        level.epsilon()
    );
    println!(
        "it is {}-differentially private and row-stochastic: {}",
        deployed.best_privacy_level(),
        deployed.matrix().is_row_stochastic()
    );

    // Release one sample.
    let mut rng = StdRng::seed_from_u64(7);
    let released = deployed.sample(true_count, &mut rng).unwrap();
    println!("true count = {true_count}, released (perturbed) count = {released}");

    // Raw loss vs. loss after optimal post-processing vs. the tailored optimum.
    let raw_loss = request.consumer().disutility(&deployed).unwrap();
    let interaction = engine.interact(&deployed, &request).unwrap();
    let tailored = engine.solve(&request).unwrap();

    println!();
    println!(
        "worst-case expected |error| of the raw geometric release : {:.4}",
        raw_loss.to_f64()
    );
    println!(
        "after the consumer's optimal post-processing             : {:.4}",
        interaction.loss.to_f64()
    );
    println!(
        "optimal mechanism tailored to this consumer              : {:.4}",
        tailored.loss.to_f64()
    );
    println!();
    println!(
        "Theorem 1 (universal optimality): post-processing the universally deployed geometric \
         mechanism matches the tailored optimum exactly: {}",
        interaction.loss == tailored.loss
    );

    // The same request solved across a whole batch of privacy levels: the
    // engine builds the LP once, re-parameterizes it per α, and farms the
    // solves across worker threads — results come back in input order.
    let levels: Vec<PrivacyLevel<Rational>> = [(1i64, 5i64), (1, 4), (1, 3), (1, 2), (2, 3)]
        .into_iter()
        .map(|(num, den)| PrivacyLevel::new(rat(num, den)).unwrap())
        .collect();
    let sweep = engine.sweep(&levels, &request).expect("sweep");
    println!();
    println!("optimal loss across a privacy sweep (more privacy -> more loss):");
    for solve in &sweep {
        println!(
            "  {:>9}  optimal |error| = {:.4}   ({} simplex pivots)",
            solve.level.to_string(),
            solve.loss.to_f64(),
            solve.stats.total_pivots()
        );
    }

    // The consumer can apply its post-processing to the single released value
    // by sampling from the corresponding row of T*.
    let reinterpreted_row: Vec<f64> = (0..=n)
        .map(|r| interaction.post_processing[(released, r)].to_f64())
        .collect();
    let best_guess = reinterpreted_row
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(idx, _)| idx)
        .unwrap();
    println!();
    println!("most likely reinterpretation of the released value {released}: {best_guess}");
}
