//! Quickstart: publish a differentially-private count with the geometric
//! mechanism, and check that a risk-averse consumer who post-processes the
//! release optimally does exactly as well as if the mechanism had been
//! tailored to them (Theorem 1 of the paper).
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use privmech::numerics::rat;
use privmech::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A survey over n = 6 respondents; the sensitive count turns out to be 4.
    let n = 6usize;
    let true_count = 4usize;

    // Publish at privacy level α = 1/3 (ε = ln 3 in the usual notation).
    let level = PrivacyLevel::new(rat(1, 3)).unwrap();
    let deployed = geometric_mechanism(n, &level).unwrap();
    println!(
        "deployed the range-restricted geometric mechanism G_{{{n},1/3}} (ε = {:.3})",
        level.epsilon()
    );
    println!(
        "it is {}-differentially private and row-stochastic: {}",
        deployed.best_privacy_level(),
        deployed.matrix().is_row_stochastic()
    );

    // Release one sample.
    let mut rng = StdRng::seed_from_u64(7);
    let released = deployed.sample(true_count, &mut rng).unwrap();
    println!("true count = {true_count}, released (perturbed) count = {released}");

    // A consumer who knows the count is at least 2 (say, confirmed cases they
    // observed directly) and cares about absolute error.
    let consumer = MinimaxConsumer::new(
        "public-health analyst",
        Arc::new(AbsoluteError),
        SideInformation::at_least(n, 2).unwrap(),
    )
    .unwrap();

    // Raw loss vs. loss after optimal post-processing vs. the tailored optimum.
    let raw_loss = consumer.disutility(&deployed).unwrap();
    let interaction = optimal_interaction(&deployed, &consumer).unwrap();
    let tailored = optimal_mechanism(&level, &consumer).unwrap();

    println!();
    println!(
        "worst-case expected |error| of the raw geometric release : {:.4}",
        raw_loss.to_f64()
    );
    println!(
        "after the consumer's optimal post-processing             : {:.4}",
        interaction.loss.to_f64()
    );
    println!(
        "optimal mechanism tailored to this consumer              : {:.4}",
        tailored.loss.to_f64()
    );
    println!();
    println!(
        "Theorem 1 (universal optimality): post-processing the universally deployed geometric \
         mechanism matches the tailored optimum exactly: {}",
        interaction.loss == tailored.loss
    );

    // The consumer can apply its post-processing to the single released value
    // by sampling from the corresponding row of T*.
    let reinterpreted_row: Vec<f64> = (0..=n)
        .map(|r| interaction.post_processing[(released, r)].to_f64())
        .collect();
    let best_guess = reinterpreted_row
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(idx, _)| idx)
        .unwrap();
    println!("most likely reinterpretation of the released value {released}: {best_guess}");
}
