//! Example 1 of the paper in detail: the drug company's side information.
//!
//! A drug company knows that `l` individuals bought its flu drug, so the flu
//! count is at least `l`. A rational, risk-averse company will therefore never
//! accept a released value below `l` at face value; this example shows how its
//! optimal post-processing folds the out-of-range outputs back into the
//! feasible set, how much utility that recovers compared with naively
//! accepting the raw geometric release, and how the simple "clamp to [l, n]"
//! heuristic the paper mentions compares with the LP-optimal interaction.
//!
//! Run with: `cargo run --example drug_company`

use std::sync::Arc;

use privmech::linalg::Matrix;
use privmech::numerics::{rat, Rational};
use privmech::prelude::*;

fn main() {
    let n = 6usize;
    let lower_bound = 2usize; // l: drug doses already sold
    let engine = PrivacyEngine::new();
    let request = SolveRequest::<Rational>::minimax()
        .name("drug company")
        .loss(Arc::new(AbsoluteError))
        .support(n, lower_bound..=n)
        .privacy_level(rat(1, 3))
        .validate()
        .expect("well-formed request");
    let level = request.level().clone();
    let deployed = engine.geometric(n, &level).unwrap();

    // Strategy 1: accept the raw release.
    let raw = request.consumer().disutility(&deployed).unwrap();

    // Strategy 2: the paper's "reasonable rule": clamp the release to [l, n].
    let clamp = Matrix::from_fn(n + 1, n + 1, |r, rp| {
        let target = r.clamp(lower_bound, n);
        if rp == target {
            Rational::one()
        } else {
            Rational::zero()
        }
    });
    let clamped = deployed.post_process(&clamp).unwrap();
    let clamp_loss = request.consumer().disutility(&clamped).unwrap();

    // Strategy 3: the LP-optimal (possibly randomized) interaction.
    let interaction = engine.interact(&deployed, &request).unwrap();

    // Reference: the mechanism tailored to the company.
    let tailored = engine.solve(&request).unwrap();

    println!("n = {n}, side information: count >= {lower_bound}, loss = |i - r|, α = 1/3");
    println!();
    println!("worst-case expected error of each strategy:");
    println!(
        "  1. accept the raw geometric release       : {:.4}",
        raw.to_f64()
    );
    println!(
        "  2. clamp the release into [{lower_bound}, {n}]            : {:.4}",
        clamp_loss.to_f64()
    );
    println!(
        "  3. LP-optimal post-processing (Sec. 2.4.3): {:.4}",
        interaction.loss.to_f64()
    );
    println!(
        "  reference: tailored optimal mechanism     : {:.4}",
        tailored.loss.to_f64()
    );
    println!();
    println!(
        "optimal post-processing recovers {:.1}% of the gap between the raw release and the \
         tailored optimum; clamping alone recovers {:.1}%.",
        100.0 * (raw.to_f64() - interaction.loss.to_f64())
            / (raw.to_f64() - tailored.loss.to_f64()),
        100.0 * (raw.to_f64() - clamp_loss.to_f64()) / (raw.to_f64() - tailored.loss.to_f64())
    );
    println!(
        "Theorem 1 equality (strategy 3 == tailored optimum): {}",
        interaction.loss == tailored.loss
    );

    // Show what the optimal reinterpretation does with the infeasible outputs.
    println!();
    println!("optimal reinterpretation of each released value r (row of T*):");
    for r in 0..=n.min(lower_bound + 2) {
        let row: Vec<String> = (0..=n)
            .filter(|&rp| !interaction.post_processing[(r, rp)].is_zero())
            .map(|rp| {
                format!(
                    "{rp} w.p. {:.3}",
                    interaction.post_processing[(r, rp)].to_f64()
                )
            })
            .collect();
        println!("  released {r:>2}  ->  {}", row.join(", "));
    }
}
