//! Multi-level, collusion-resistant publication (Algorithm 1 of the paper).
//!
//! The agency wants two versions of the flu report: an internal one for
//! government executives (weak privacy, high utility) and a public Internet
//! version (strong privacy). Releasing two independently perturbed counts
//! would let the two audiences collude and average away the noise; Algorithm 1
//! instead derives the more private release *from* the less private one, so a
//! coalition learns nothing beyond its least-private member.
//!
//! Run with: `cargo run --example multilevel_release`

use privmech::numerics::rat;
use privmech::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 30usize;
    let true_count = 14usize;
    let mut rng = StdRng::seed_from_u64(42);

    // Internal report at α = 1/4, public report at α = 3/4.
    let engine = PrivacyEngine::new();
    let levels = vec![
        PrivacyLevel::new(rat(1, 4)).unwrap(),
        PrivacyLevel::new(rat(3, 4)).unwrap(),
    ];
    let release = engine.multi_level(n, levels).unwrap();

    println!("true count: {true_count}; levels: α = 1/4 (internal), α = 3/4 (public)");
    println!();

    // Structural guarantees (exact, independent of sampling).
    for (i, level) in release.levels().iter().enumerate() {
        let marginal = release.marginal_mechanism(i).unwrap();
        let direct = engine.geometric(n, level).unwrap();
        println!(
            "stage {i} ({level}): marginal mechanism equals the plain geometric mechanism: {}",
            marginal == direct
        );
    }
    println!(
        "every stage matrix is row-stochastic: {}",
        release.stages().iter().all(|s| s.is_row_stochastic())
    );
    println!();

    // Run the correlated release a few times.
    println!("five correlated releases (internal, public):");
    for _ in 0..5 {
        let out = release.release(true_count, &mut rng).unwrap();
        println!(
            "  internal = {:>2}, public = {:>2}",
            out[0].value, out[1].value
        );
    }
    println!();

    // Quantify collusion resistance against the naive alternative. The effect
    // is clearest when several audiences sit at comparable privacy levels, so
    // the Monte-Carlo part uses four audiences at α = 0.5 … 0.65 (the
    // `multilevel` experiment binary sweeps this more thoroughly).
    let f64_release = engine
        .multi_level(
            n,
            vec![
                PrivacyLevel::new(0.50f64).unwrap(),
                PrivacyLevel::new(0.55f64).unwrap(),
                PrivacyLevel::new(0.60f64).unwrap(),
                PrivacyLevel::new(0.65f64).unwrap(),
            ],
        )
        .unwrap();
    let correlated =
        collusion_experiment(&f64_release, true_count, 20_000, true, &mut rng).unwrap();
    let naive = collusion_experiment(&f64_release, true_count, 20_000, false, &mut rng).unwrap();
    println!("collusion experiment (20,000 trials, coalition = four audiences at α = 0.5..0.65):");
    println!(
        "  Algorithm 1: coalition mean |error| = {:.3} vs least-private alone = {:.3}",
        correlated.coalition_mean_abs_error, correlated.least_private_mean_abs_error
    );
    println!(
        "  naive      : coalition mean |error| = {:.3} vs least-private alone = {:.3}",
        naive.coalition_mean_abs_error, naive.least_private_mean_abs_error
    );
    println!();
    println!(
        "with Algorithm 1 the coalition gains nothing over its least-private member; with \
         independent noise the coalition averages its reports and beats that member."
    );
}
