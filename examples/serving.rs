//! Serving: run solves through the `privmech-serve` TCP layer and watch the
//! response cache at work.
//!
//! Theorem 1 is what makes the cache *correct*: one solve result answers
//! every consumer asking the same `(kind, n, α, loss, side-info)` question,
//! so the server keys responses on the canonical request fingerprint and a
//! repeat of a question — from this client or any other — is a cache hit
//! with a byte-identical response.
//!
//! Run with: `cargo run --example serving`
//!
//! By default the example hosts an in-process server on an ephemeral
//! loopback port. Set `PRIVMECH_SERVE_ADDR=host:port` to drive an external
//! `privmech-serve` instance instead (this is what the CI smoke job does).

use std::time::Instant;

use privmech::numerics::{rat, Rational};
use privmech::serve::client::Client;
use privmech::serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
use privmech::serve::server::{self, ServerConfig};

fn main() {
    // Host in-process unless pointed at an external server.
    let external = std::env::var("PRIVMECH_SERVE_ADDR").ok();
    let handle = if external.is_none() {
        let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
        println!("hosting an in-process server on {}", handle.addr());
        Some(handle)
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| handle.as_ref().unwrap().addr().to_string());
    let mut client = Client::connect(&*addr).expect("connect");
    client.ping().expect("server answers ping");
    println!("connected to {addr}");

    // The paper's flu-report consumer: absolute error, full side information
    // over {0..=3}, α = 1/4 — Table 1(a) territory.
    let government = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let alpha = rat(1, 4);
    // Against an external server the cache may already be warm from earlier
    // runs, so "first sighting is a miss" only holds for the in-process one.
    let fresh_cache = external.is_none();

    println!();
    println!("solve #1 (cold): government consumer, n = 3, α = 1/4");
    let start = Instant::now();
    let first = client
        .solve(&government, &alpha, CacheMode::Use)
        .expect("solve");
    let cold = start.elapsed();
    println!(
        "  -> {:?} in {cold:?}, optimal loss {} (Table 1(a): 168/415)",
        first.cache, first.value.loss
    );

    println!("solve #2 (identical request):");
    let start = Instant::now();
    let second = client
        .solve(&government, &alpha, CacheMode::Use)
        .expect("solve");
    let warm = start.elapsed();
    println!("  -> {:?} in {warm:?}", second.cache);

    // The contract this layer lives by, asserted end to end: the second
    // identical request is a cache hit and its response is byte-identical.
    assert_eq!(
        second.cache,
        CacheDisposition::Hit,
        "second identical request must be served from the cache"
    );
    assert_eq!(
        first.raw, second.raw,
        "cached response must be byte-identical to the computed one"
    );

    // And against a cache bypass (a forced fresh solve): still identical.
    let bypass = client
        .solve(&government, &alpha, CacheMode::Bypass)
        .expect("solve");
    assert_eq!(bypass.cache, CacheDisposition::Bypass);
    assert_eq!(first.raw, bypass.raw, "fresh solve renders the same bytes");
    println!("  cached ≡ uncached: byte-identical responses (asserted)");

    // A different consumer asking the same question shares the cache entry;
    // a different question does not.
    let drug_company = ConsumerSpec::<Rational>::minimax(3, LossSpec::Squared);
    let other = client
        .solve(&drug_company, &alpha, CacheMode::Use)
        .expect("solve");
    println!();
    println!(
        "squared-error consumer, same n and α -> {:?} (different loss, different cache entry)",
        other.cache
    );
    if fresh_cache {
        assert_eq!(other.cache, CacheDisposition::Miss);
    }

    // Batched: a whole privacy sweep in one round trip, cached as a unit.
    let alphas: Vec<Rational> = (1..=6).map(|k| rat(k, 7)).collect();
    let sweep = client
        .sweep(&government, &alphas, CacheMode::Use)
        .expect("sweep");
    println!();
    println!("one-round-trip sweep over {} privacy levels:", alphas.len());
    for solve in &sweep.value {
        println!(
            "  α = {:>3}   optimal |error| = {}",
            solve.alpha.to_string(),
            solve.loss
        );
    }
    let swept_again = client
        .sweep(&government, &alphas, CacheMode::Use)
        .expect("sweep");
    assert_eq!(swept_again.cache, CacheDisposition::Hit);
    assert_eq!(sweep.raw, swept_again.raw);
    println!("  repeated sweep -> {:?}", swept_again.cache);

    let stats = client.cache_stats().expect("stats");
    println!();
    println!(
        "server cache: {} hits, {} misses, {} evictions, {} entries resident",
        stats.hits, stats.misses, stats.evictions, stats.entries
    );
    assert!(stats.hits >= 2, "the two repeats above must have hit");

    if let Some(handle) = handle {
        handle.shutdown();
        println!("in-process server stopped");
    }
    println!("ok");
}
