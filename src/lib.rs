//! # privmech
//!
//! Facade crate for the `privmech` workspace: a from-scratch Rust
//! implementation of *Universally Optimal Privacy Mechanisms for Minimax
//! Agents* (Gupte & Sundararajan, PODS 2010) together with every substrate it
//! relies on (exact rational arithmetic, dense linear algebra, a two-phase
//! simplex LP solver, and a count-query database layer).
//!
//! Most applications only need this crate: it re-exports the full public API
//! of the member crates under stable module names.
//!
//! ```
//! use std::sync::Arc;
//! use privmech::prelude::*;
//! use privmech::numerics::rat;
//!
//! // Publish a count at privacy level α = 1/3 with the geometric mechanism
//! // and let a consumer with side information post-process it optimally.
//! let level = PrivacyLevel::new(rat(1, 3)).unwrap();
//! let deployed = geometric_mechanism(5, &level).unwrap();
//! let consumer = MinimaxConsumer::new(
//!     "drug company",
//!     Arc::new(AbsoluteError),
//!     SideInformation::at_least(5, 2).unwrap(),
//! ).unwrap();
//! let interaction = optimal_interaction(&deployed, &consumer).unwrap();
//! let tailored = optimal_mechanism(&level, &consumer).unwrap();
//! assert_eq!(interaction.loss, tailored.loss); // Theorem 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Exact arithmetic: arbitrary-precision integers and rationals.
pub mod numerics {
    pub use privmech_numerics::*;
}

/// Dense generic linear algebra.
pub mod linalg {
    pub use privmech_linalg::*;
}

/// Linear programming (two-phase simplex).
pub mod lp {
    pub use privmech_lp::*;
}

/// The paper's core: mechanisms, consumers, optimality, multi-level release.
pub mod core {
    pub use privmech_core::*;
}

/// Database substrate: records, count queries, obliviousness.
pub mod db {
    pub use privmech_db::*;
}

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use privmech_core::{
        appendix_b_mechanism, audit_mechanism, bayesian_optimal_interaction, collusion_experiment,
        derive_from_geometric, derive_post_processing, empirical_distribution, geometric_mechanism,
        optimal_interaction, optimal_mechanism, randomized_response, sample_geometric_output,
        theorem2_check, total_variation_distance, transition_matrix, AbsoluteError,
        BayesianConsumer, CoreError, DerivabilityCheck, Interaction, LossFunction, Mechanism,
        MinimaxConsumer, MultiLevelRelease, OptimalMechanism, PrivacyLevel, SideInformation,
        SquaredError, StageRelease, TableLoss, ToleranceError, ZeroOneError,
    };
    pub use privmech_db::{
        CountQuery, Database, DatabaseMechanism, Predicate, Record, SyntheticPopulation,
    };
    pub use privmech_linalg::{Matrix, Scalar};
    pub use privmech_numerics::{rat, BigInt, Rational};
}

pub use prelude::*;
