//! # privmech
//!
//! Facade crate for the `privmech` workspace: a from-scratch Rust
//! implementation of *Universally Optimal Privacy Mechanisms for Minimax
//! Agents* (Gupte & Sundararajan, PODS 2010) together with every substrate it
//! relies on (exact rational arithmetic, dense linear algebra, a two-phase
//! simplex LP solver, and a count-query database layer).
//!
//! Most applications only need this crate: it re-exports the full public API
//! of the member crates under stable module names. For the workspace-level
//! view — the crate map, the request lifecycle, the bit-identity contracts,
//! and where each paper theorem lives in the code — see
//! [`ARCHITECTURE.md`](https://github.com/privmech/privmech/blob/main/ARCHITECTURE.md)
//! at the repository root.
//!
//! ```
//! use std::sync::Arc;
//! use privmech::prelude::*;
//! use privmech::numerics::rat;
//!
//! // Describe the consumer once, typed and validated up front.
//! let request = SolveRequest::<Rational>::minimax()
//!     .name("drug company")
//!     .loss(Arc::new(AbsoluteError))
//!     .support(5, 2..=5)          // knows the count is at least 2
//!     .privacy_level(rat(1, 3))
//!     .validate()
//!     .unwrap();
//!
//! // Publish a count with the geometric mechanism and let the consumer
//! // post-process it optimally: Theorem 1 says that matches the mechanism
//! // tailored to them.
//! let engine = PrivacyEngine::new();
//! let deployed = engine.geometric(5, request.level()).unwrap();
//! let interaction = engine.interact(&deployed, &request).unwrap();
//! let tailored = engine.solve(&request).unwrap();
//! assert_eq!(interaction.loss, tailored.loss); // Theorem 1
//! ```
//!
//! # API tour
//!
//! The primary entry point is the session-oriented [`PrivacyEngine`]:
//!
//! * **Describe work as requests.** [`SolveRequest`] is an untyped builder
//!   (consumer kind, loss, side information or prior, privacy level, solve
//!   strategy); [`SolveRequest::validate`] checks it once into a typed
//!   [`ValidatedRequest`] with a stable [`CoreError`] variant per field
//!   failure.
//! * **Solve.** [`PrivacyEngine::solve`](crate::core::PrivacyEngine::solve)
//!   returns a [`Solve`]: the tailored optimal mechanism, its loss, and the
//!   simplex [`PivotStats`]. The default strategy routes through Theorem 1
//!   (deploy `G_{n,α}`, solve the small interaction LP); strategy
//!   [`SolveStrategy::DirectLp`] solves the Section 2.5 LP directly and
//!   reproduces the seed's `optimal_mechanism` formulation bit for
//!   bit. Exact LPs run on a revised simplex with a product-form basis
//!   factorization ([`SolverForm`], PR 4) that is
//!   contractually pivot-sequence-identical to the dense tableau — design
//!   and contract in `crates/lp/SOLVER.md`.
//! * **Sweep α in batch.**
//!   [`PrivacyEngine::sweep`](crate::core::PrivacyEngine::sweep) solves one
//!   request at many privacy levels: the LP is built once and
//!   re-parameterized per α (see [`lp::ModelTemplate`]), solves are farmed
//!   across worker threads, and results come back in input order,
//!   bit-identical to per-level `solve` calls for the exact backend.
//! * **Interact with deployed mechanisms.**
//!   [`PrivacyEngine::interact`](crate::core::PrivacyEngine::interact)
//!   computes the consumer's optimal post-processing of any deployed
//!   mechanism (the Section 2.4.3 LP; the posterior-argmin remap for
//!   Bayesian consumers).
//! * **Everything else on the session.** The geometric mechanism
//!   ([`PrivacyEngine::geometric`](crate::core::PrivacyEngine::geometric)),
//!   Algorithm 1 multi-level release chains
//!   ([`PrivacyEngine::multi_level`](crate::core::PrivacyEngine::multi_level)),
//!   and the Theorem 2 derivability toolchain
//!   ([`PrivacyEngine::check_derivability`](crate::core::PrivacyEngine::check_derivability),
//!   [`PrivacyEngine::derive`](crate::core::PrivacyEngine::derive)).
//! * **Serve it.** The [`serve`] module hosts the engine behind a TCP
//!   protocol with a sharded LRU response cache keyed on the canonical
//!   request fingerprint
//!   ([`ValidatedRequest::fingerprint`](crate::core::ValidatedRequest::fingerprint))
//!   — one cached solve answers every consumer asking the same question
//!   (that sharing is exactly Theorem 1's universality made operational).
//!   Since PR 5 the protocol (v2) supports **tagged multi-in-flight
//!   requests** on one connection and **streaming sweeps** (one frame per
//!   completed α), with v1 clients still served via per-frame version
//!   negotiation. Wire format: `crates/serve/PROTOCOL.md`; demos:
//!   `examples/serving.rs`, `examples/pipelining.rs`.
//! * **Map the theorem's limits.** The [`zoo`] module generalizes the
//!   tailored LP beyond counts (sum/median query classes), builds
//!   minimax-regret tables exhibiting where universal optimality provably
//!   fails (Brenner–Nissim), prices local privacy exactly against the
//!   centralized optimum, and composes multi-agent releases — all served
//!   over the wire as `zoo_table`/`zoo_eval` (`crates/zoo/ZOO.md`).
//!
//! The seed's free functions (`optimal_mechanism`, `optimal_interaction`,
//! `bayesian_*`) were removed in PR 5 after two releases as `#[deprecated]`
//! shims; [`SolveStrategy::DirectLp`] reproduces their Section 2.5
//! formulation bit for bit for every α > 0 (at exactly α = 0 the tailored LP
//! keeps its vacuous privacy rows; same optimal value — see the
//! `core::optimal` docs).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Exact arithmetic: arbitrary-precision integers and rationals.
pub mod numerics {
    pub use privmech_numerics::*;
}

/// Dense generic linear algebra.
pub mod linalg {
    pub use privmech_linalg::*;
}

/// Linear programming (two-phase simplex in revised and dense forms,
/// parameterized model templates); solver spec: `crates/lp/SOLVER.md`.
pub mod lp {
    pub use privmech_lp::*;
}

/// The paper's core: the engine, mechanisms, consumers, optimality,
/// multi-level release.
pub mod core {
    pub use privmech_core::*;
}

/// Database substrate: records, count queries, obliviousness.
pub mod db {
    pub use privmech_db::*;
}

/// The query/mechanism zoo: sum/median regret tables (Brenner–Nissim),
/// LDP baselines, multi-agent composition; narrative: `crates/zoo/ZOO.md`.
pub mod zoo {
    pub use privmech_zoo::*;
}

/// Serving layer: cached, batched TCP service over the engine.
pub mod serve {
    pub use privmech_serve::*;
}

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use privmech_core::{
        appendix_b_mechanism, audit_mechanism, collusion_experiment, derive_from_geometric,
        derive_post_processing, empirical_distribution, geometric_mechanism, randomized_response,
        sample_geometric_output, theorem2_check, total_variation_distance, transition_matrix,
        AbsoluteError, BayesianConsumer, ConsumerKind, CoreError, DerivabilityCheck, Interaction,
        LossFunction, Mechanism, MinimaxConsumer, MultiLevelRelease, PivotStats, PricingRule,
        PrivacyEngine, PrivacyLevel, RequestConsumer, SideInformation, Solve, SolveRequest,
        SolveStrategy, SolverForm, SolverOptions, SquaredError, StageRelease, TableLoss,
        ToleranceError, ValidatedRequest, ZeroOneError,
    };
    pub use privmech_db::{
        CountQuery, Database, DatabaseMechanism, Predicate, Record, SyntheticPopulation,
    };
    pub use privmech_linalg::{Matrix, Scalar};
    pub use privmech_numerics::{rat, BigInt, Rational};
}

pub use prelude::*;
