//! Query classes and the adjacency structure they induce on the result space.
//!
//! The paper fixes one query class — counts — where two databases differing
//! in one row produce results at distance at most one, so differential
//! privacy constrains *consecutive* rows of the release mechanism. Other
//! query classes induce other neighbor relations on the result space, and
//! the entire limits-of-universality story (Brenner–Nissim) lives in that
//! difference. A [`QueryClass`] names a query family over small databases
//! and exposes the induced adjacency as an explicit edge list; everything
//! downstream (the generalized tailored LP in [`crate::tailored`], the
//! regret tables in [`crate::regret`]) is parameterized by those edges and
//! nothing else.

use privmech_core::{CoreError, RequestFingerprint, Result};

/// A query family over small databases, reduced to the structure that
/// matters for oblivious mechanisms: the size of the result space and which
/// result pairs are *adjacent* (achievable by changing a single database
/// row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryClass {
    /// The paper's count query over `n` rows: results `{0, …, n}`, one row
    /// change moves the count by at most one, so adjacency is the path
    /// graph on consecutive results.
    Count {
        /// Number of database rows (results range over `{0, …, n}`).
        n: usize,
    },
    /// A sum query over `rows` rows each holding a value in
    /// `{0, …, per_row}`: results `{0, …, rows·per_row}`, one row change
    /// moves the sum by at most `per_row`, so adjacency is the distance-≤
    /// `per_row` band. For `per_row = 1` this *is* the count query.
    Sum {
        /// Number of database rows.
        rows: usize,
        /// Largest value a single row can contribute.
        per_row: usize,
    },
    /// A median query over an odd number of rows with values in
    /// `{0, …, domain}`: padding a database as
    /// `(0, …, 0, m, domain, …, domain)` and rewriting the middle row moves
    /// the median anywhere, so every result pair is adjacent — the complete
    /// graph. This is the structure under which Brenner–Nissim rule out a
    /// universally optimal mechanism.
    Median {
        /// Number of database rows (odd, at least 3).
        rows: usize,
        /// Largest row value (results range over `{0, …, domain}`).
        domain: usize,
    },
}

impl QueryClass {
    /// The short class name used in canonical strings and on the wire.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            QueryClass::Count { .. } => "count",
            QueryClass::Sum { .. } => "sum",
            QueryClass::Median { .. } => "median",
        }
    }

    /// Check the class parameters; every constructor path into the zoo goes
    /// through this before any LP is built.
    pub fn validate(&self) -> Result<()> {
        let reject = |reason: String| Err(CoreError::InvalidRequest { reason });
        match *self {
            QueryClass::Count { n } => {
                if n == 0 {
                    return reject("count query needs at least one row".into());
                }
            }
            QueryClass::Sum { rows, per_row } => {
                if rows == 0 || per_row == 0 {
                    return reject(format!(
                        "sum query needs rows >= 1 and per_row >= 1, got rows = {rows}, per_row = {per_row}"
                    ));
                }
            }
            QueryClass::Median { rows, domain } => {
                if rows < 3 || rows % 2 == 0 {
                    return reject(format!(
                        "median query needs an odd number of rows >= 3, got {rows}"
                    ));
                }
                if domain == 0 {
                    return reject("median query needs a domain of at least {0, 1}".into());
                }
            }
        }
        Ok(())
    }

    /// The largest possible result `N`; the result space is `{0, …, N}` and
    /// mechanisms for this class are `(N+1) × (N+1)` row-stochastic
    /// matrices, exactly like the paper's count mechanisms at `n = N`.
    #[must_use]
    pub fn result_bound(&self) -> usize {
        match *self {
            QueryClass::Count { n } => n,
            QueryClass::Sum { rows, per_row } => rows * per_row,
            QueryClass::Median { domain, .. } => domain,
        }
    }

    /// The induced adjacency: every pair `(a, b)` with `a < b` such that
    /// some single-row change maps a database with result `a` to one with
    /// result `b`. Differential privacy for this class bounds the row
    /// ratios of the mechanism exactly on these pairs.
    #[must_use]
    pub fn adjacent_pairs(&self) -> Vec<(usize, usize)> {
        let bound = self.result_bound();
        let reach = match *self {
            QueryClass::Count { .. } => 1,
            QueryClass::Sum { per_row, .. } => per_row,
            QueryClass::Median { .. } => bound,
        };
        let mut pairs = Vec::new();
        for a in 0..bound {
            for b in (a + 1)..=bound.min(a + reach) {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// The canonical text form, stable across releases — the zoo's cache
    /// and routing keys are built from it.
    #[must_use]
    pub fn canonical(&self) -> String {
        match *self {
            QueryClass::Count { n } => format!("count;n={n}"),
            QueryClass::Sum { rows, per_row } => format!("sum;rows={rows};per_row={per_row}"),
            QueryClass::Median { rows, domain } => format!("median;rows={rows};domain={domain}"),
        }
    }

    /// A [`RequestFingerprint`] over the canonical form, versioned like the
    /// core request fingerprints so zoo evaluations are keyed (and routed)
    /// the same way solves are.
    #[must_use]
    pub fn fingerprint(&self) -> RequestFingerprint {
        RequestFingerprint::from_canonical(format!("zoo-v1;{}", self.canonical()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_adjacency_is_the_path_graph() {
        let q = QueryClass::Count { n: 3 };
        q.validate().unwrap();
        assert_eq!(q.result_bound(), 3);
        assert_eq!(q.adjacent_pairs(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn sum_adjacency_is_the_distance_band() {
        let q = QueryClass::Sum {
            rows: 2,
            per_row: 2,
        };
        q.validate().unwrap();
        assert_eq!(q.result_bound(), 4);
        assert_eq!(
            q.adjacent_pairs(),
            vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]
        );
    }

    #[test]
    fn sum_with_unit_rows_is_count() {
        let sum = QueryClass::Sum {
            rows: 4,
            per_row: 1,
        };
        let count = QueryClass::Count { n: 4 };
        assert_eq!(sum.adjacent_pairs(), count.adjacent_pairs());
        assert_eq!(sum.result_bound(), count.result_bound());
    }

    #[test]
    fn median_adjacency_is_complete() {
        let q = QueryClass::Median { rows: 3, domain: 2 };
        q.validate().unwrap();
        assert_eq!(q.result_bound(), 2);
        assert_eq!(q.adjacent_pairs(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn validation_rejects_degenerate_classes() {
        assert!(QueryClass::Count { n: 0 }.validate().is_err());
        assert!(QueryClass::Sum {
            rows: 0,
            per_row: 2
        }
        .validate()
        .is_err());
        assert!(QueryClass::Sum {
            rows: 2,
            per_row: 0
        }
        .validate()
        .is_err());
        assert!(QueryClass::Median { rows: 2, domain: 2 }
            .validate()
            .is_err());
        assert!(QueryClass::Median { rows: 1, domain: 2 }
            .validate()
            .is_err());
        assert!(QueryClass::Median { rows: 3, domain: 0 }
            .validate()
            .is_err());
    }

    #[test]
    fn canonical_forms_are_stable() {
        assert_eq!(QueryClass::Count { n: 3 }.canonical(), "count;n=3");
        assert_eq!(
            QueryClass::Sum {
                rows: 2,
                per_row: 2
            }
            .canonical(),
            "sum;rows=2;per_row=2"
        );
        assert_eq!(
            QueryClass::Median { rows: 3, domain: 3 }.canonical(),
            "median;rows=3;domain=3"
        );
        let fp = QueryClass::Count { n: 3 }.fingerprint();
        assert_eq!(fp.canonical(), "zoo-v1;count;n=3");
    }
}
