//! The consumer-tailored optimum for an arbitrary [`QueryClass`].
//!
//! This is the Section 2.5 LP of the paper with one generalization: the
//! differential-privacy rows run over the query class's induced adjacency
//! ([`QueryClass::adjacent_pairs`]) instead of only consecutive results.
//! For [`QueryClass::Count`] the constructed model is *term for term* the
//! model `privmech-core` builds for `SolveStrategy::DirectLp` — the tests
//! pin that the optimal loss agrees exactly with
//! [`PrivacyEngine::solve`](privmech_core::PrivacyEngine::solve) — so the
//! zoo degrades to the paper's setting rather than sitting beside it.
//!
//! Like the core template, the `-α` coefficients of the DP rows are
//! registered as [`ModelTemplate`] parameter slots so one model can be
//! re-solved across α without rebuilding (and so the α = 0 rows are still
//! emitted with their terms intact).
//!
//! # Float solves and the exact rescue
//!
//! The `f64` backend prices by Bland's rule on an unscaled dense tableau,
//! and Bland's termination proof assumes exact arithmetic. The generalized
//! adjacency polytopes are degenerate enough that roundoff can genuinely
//! cycle the float solve into its iteration cap (observed on sum classes —
//! tens of thousands of consecutive degenerate pivots with the phase-1
//! objective pinned). Every finite float is exactly representable as a
//! rational, so when that happens [`tailored_optimum`] rebuilds the same
//! model over [`Rational`], solves it exactly
//! (exact Bland cannot cycle), and rounds the optimal mechanism to `f64`
//! once at the end. Exact callers never take this path.

use privmech_core::loss::tabulate_loss;
use privmech_core::{
    CoreError, Mechanism, MinimaxConsumer, PivotStats, PrivacyLevel, Result, SolverOptions,
};
use privmech_linalg::{Matrix, Scalar};
use privmech_lp::{LinExpr, LpError, Model, ModelTemplate, Relation, Var};
use privmech_numerics::Rational;

use crate::query::QueryClass;

/// A tailored optimum: the loss-minimizing mechanism among all mechanisms
/// that are α-differentially private *for this query class*, for one
/// minimax consumer.
#[derive(Debug, Clone)]
pub struct TailoredOptimum<T: Scalar> {
    /// The optimal release mechanism over the class's result space.
    pub mechanism: Mechanism<T>,
    /// Its worst-case expected loss over the consumer's side information.
    pub loss: T,
    /// Pivot statistics of the underlying LP solve.
    pub stats: PivotStats,
}

/// Solve the generalized tailored LP for `consumer` at `level`.
///
/// The consumer's side information must live over the class's result space
/// (`consumer.side_information().n() == class.result_bound()`).
pub fn tailored_optimum<T: Scalar>(
    class: &QueryClass,
    consumer: &MinimaxConsumer<T>,
    level: &PrivacyLevel<T>,
    options: &SolverOptions,
) -> Result<TailoredOptimum<T>> {
    class.validate()?;
    let bound = class.result_bound();
    if consumer.side_information().n() != bound {
        return Err(CoreError::InvalidSideInformation {
            reason: format!(
                "consumer side information is over {{0, …, {}}}, query class \"{}\" has results {{0, …, {bound}}}",
                consumer.side_information().n(),
                class.kind()
            ),
        });
    }
    let size = bound + 1;
    let losses = tabulate_loss(consumer.loss(), size);
    let members = consumer.side_information().members();

    let mut built = build_template::<T>(class, size, members, &losses)?;
    let (matrix, stats) = match built.template.solve_at(level.alpha(), options) {
        Ok(solution) => (
            Matrix::from_fn(size, size, |i, r| {
                solution.value(built.x_vars[i][r]).clone()
            }),
            solution.stats,
        ),
        Err(LpError::Internal(_)) if !T::is_exact() => {
            // Exact rescue (module docs): the float Bland tableau cycled
            // into its iteration cap. Lift the (exactly representable)
            // float inputs to rationals, solve the identical model
            // exactly, and round the optimal mechanism once at the end.
            let exact_losses = Matrix::from_fn(size, size, |i, r| {
                Rational::from_f64(losses.row(i)[r].to_f64())
            });
            let exact_alpha: Rational = Rational::from_f64(level.alpha().to_f64());
            let mut exact = build_template::<Rational>(class, size, members, &exact_losses)?;
            let solution = exact
                .template
                .solve_at(&exact_alpha, options)
                .map_err(CoreError::from)?;
            (
                Matrix::from_fn(size, size, |i, r| {
                    T::from_f64(solution.value(exact.x_vars[i][r]).to_f64())
                }),
                solution.stats,
            )
        }
        Err(e) => return Err(CoreError::from(e)),
    };
    let mechanism = Mechanism::from_matrix_normalized(matrix)?;
    let loss = consumer.disutility(&mechanism)?;
    Ok(TailoredOptimum {
        mechanism,
        loss,
        stats,
    })
}

/// The tailored LP as a reusable α-template plus its release variables.
struct BuiltTemplate<S: Scalar> {
    template: ModelTemplate<S>,
    x_vars: Vec<Vec<Var>>,
}

/// Build the tailored model over an arbitrary scalar field. Generic over
/// the field so the float entry point and its exact rescue construct the
/// *same* model term for term (same constraints, labels, and slot order).
fn build_template<S: Scalar>(
    class: &QueryClass,
    size: usize,
    members: &[usize],
    losses: &Matrix<S>,
) -> Result<BuiltTemplate<S>> {
    let mut model: Model<S> = Model::new();

    // x_vars[i][r] = probability of releasing r when the true result is i —
    // identical to the core skeleton up to the DP edge set below.
    let mut x_vars = Vec::with_capacity(size);
    for i in 0..size {
        x_vars.push(model.add_nonneg_vars(&format!("x_{i}"), size));
    }
    for (i, row) in x_vars.iter().enumerate() {
        let mut row_sum = LinExpr::new();
        for &var in row {
            row_sum.add_term(var, S::one());
        }
        model.add_labeled_constraint(row_sum, Relation::Eq, S::one(), Some(format!("row_{i}")))?;
    }

    // Differential privacy over the class's adjacency: for every adjacent
    // result pair (a, b), x[a][r] - α·x[b][r] >= 0 and symmetrically. The α
    // coefficient is a template parameter slot, exactly as in the core
    // count-query template (placeholder -1, bound below).
    let mut slots = Vec::new();
    let neg_one = -S::one();
    for (a, b) in class.adjacent_pairs() {
        #[allow(clippy::needless_range_loop)] // r indexes x_vars[a] and x_vars[b] together
        for r in 0..size {
            let down = LinExpr::term(x_vars[a][r], S::one()).plus(x_vars[b][r], neg_one.clone());
            model.add_labeled_constraint(
                down,
                Relation::Ge,
                S::zero(),
                Some(format!("dp_down_{a}_{b}_{r}")),
            )?;
            slots.push((model.num_constraints() - 1, x_vars[b][r]));
            let up = LinExpr::term(x_vars[b][r], S::one()).plus(x_vars[a][r], neg_one.clone());
            model.add_labeled_constraint(
                up,
                Relation::Ge,
                S::zero(),
                Some(format!("dp_up_{a}_{b}_{r}")),
            )?;
            slots.push((model.num_constraints() - 1, x_vars[a][r]));
        }
    }

    // Minimax epigraph objective over the consumer's side information.
    let mut exprs = Vec::new();
    for &i in members {
        let mut expr = LinExpr::new();
        for (r, cost) in losses.row(i).iter().enumerate() {
            expr.add_term(x_vars[i][r], cost.clone());
        }
        exprs.push(expr);
    }
    model.minimize_max(exprs)?;

    let mut template = ModelTemplate::new(model);
    for (constraint, var) in slots {
        template
            .bind_scaled(constraint, var, -S::one())
            .map_err(CoreError::from)?;
    }
    Ok(BuiltTemplate { template, x_vars })
}

/// Whether `mechanism` is α-differentially private *for this query class*:
/// the [`Mechanism::is_differentially_private`] check generalized from
/// consecutive rows to the class's adjacency pairs.
#[must_use]
pub fn is_private_for_class<T: Scalar>(
    mechanism: &Mechanism<T>,
    class: &QueryClass,
    level: &PrivacyLevel<T>,
) -> bool {
    if mechanism.n() != class.result_bound() {
        return false;
    }
    let alpha = level.alpha();
    let tol = T::tolerance();
    for (a, b) in class.adjacent_pairs() {
        let (Ok(row_a), Ok(row_b)) = (mechanism.row(a), mechanism.row(b)) else {
            return false;
        };
        for (pa, pb) in row_a.iter().zip(row_b.iter()) {
            let lo = alpha.clone() * pb.clone() - tol.clone();
            if *pa < lo {
                return false;
            }
            let lo = alpha.clone() * pa.clone() - tol.clone();
            if *pb < lo {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use privmech_core::loss::{AbsoluteError, ZeroOneError};
    use privmech_core::{
        geometric_mechanism, PrivacyEngine, SideInformation, SolveRequest, SolveStrategy,
    };
    use privmech_numerics::{rat, Rational};

    use super::*;

    fn consumer(n: usize) -> MinimaxConsumer<Rational> {
        MinimaxConsumer::new("abs", Arc::new(AbsoluteError), SideInformation::full(n)).unwrap()
    }

    #[test]
    fn count_class_reproduces_the_engine_optimum_exactly() {
        // The zoo LP on QueryClass::Count must agree with the engine's
        // tailored optimum — same optimal loss, and a mechanism that is
        // α-DP with the same disutility — anchoring the generalization to
        // the paper's setting.
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let class = QueryClass::Count { n: 3 };
        let c = consumer(3);
        let zoo = tailored_optimum(&class, &c, &level, &SolverOptions::default()).unwrap();
        let engine_solve = PrivacyEngine::new()
            .solve(
                &SolveRequest::minimax()
                    .name("anchor")
                    .loss(Arc::new(AbsoluteError))
                    .support(3, 0..=3)
                    .privacy_level(rat(1, 4))
                    .strategy(SolveStrategy::DirectLp)
                    .validate()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(zoo.loss, engine_solve.loss);
        // The paper's pinned optimum for (n = 3, α = 1/4, absolute, full S).
        assert_eq!(zoo.loss, rat(168, 415));
        assert!(is_private_for_class(&zoo.mechanism, &class, &level));
    }

    #[test]
    fn median_optimum_is_private_under_the_complete_graph() {
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let class = QueryClass::Median { rows: 3, domain: 3 };
        let c = consumer(3);
        let zoo = tailored_optimum(&class, &c, &level, &SolverOptions::default()).unwrap();
        assert!(is_private_for_class(&zoo.mechanism, &class, &level));
        // The complete graph strictly contains the path graph, so the
        // median optimum can be no better than the count optimum — and for
        // absolute loss it is strictly worse.
        let count = tailored_optimum(
            &QueryClass::Count { n: 3 },
            &c,
            &level,
            &SolverOptions::default(),
        )
        .unwrap();
        assert!(zoo.loss > count.loss);
    }

    #[test]
    fn geometric_mechanism_is_not_private_for_wider_adjacency() {
        // The geometric mechanism's row ratios at distance k are α^k < α,
        // so it leaves the feasible set as soon as the adjacency widens —
        // the structural reason universal optimality cannot survive
        // verbatim beyond count queries.
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let g = geometric_mechanism(4, &level).unwrap();
        assert!(is_private_for_class(
            &g,
            &QueryClass::Count { n: 4 },
            &level
        ));
        assert!(!is_private_for_class(
            &g,
            &QueryClass::Sum {
                rows: 2,
                per_row: 2
            },
            &level
        ));
    }

    #[test]
    fn mismatched_support_is_rejected() {
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let class = QueryClass::Sum {
            rows: 2,
            per_row: 2,
        };
        let c = consumer(3); // class result space is {0..4}
        let err = tailored_optimum(&class, &c, &level, &SolverOptions::default());
        assert!(matches!(err, Err(CoreError::InvalidSideInformation { .. })));
    }

    #[test]
    fn zero_one_loss_on_median_matches_randomized_response() {
        // Under the complete graph, the tailored optimum for 0/1 loss is
        // the maximal randomized response (Kairouz et al.'s extremal
        // mechanism shape): staying probability p = (1-α)/(1-α+(N+1)α) + off.
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let class = QueryClass::Median { rows: 3, domain: 2 };
        let c =
            MinimaxConsumer::new("zo", Arc::new(ZeroOneError), SideInformation::full(2)).unwrap();
        let zoo = tailored_optimum(&class, &c, &level, &SolverOptions::default()).unwrap();
        let rr = privmech_core::randomized_response(2, &level).unwrap();
        assert_eq!(zoo.loss, c.disutility(&rr).unwrap());
    }
}
