//! Minimax-regret tables: who wins when one mechanism must serve everyone.
//!
//! For a query class, a privacy level and a set of minimax consumers, the
//! table pits a candidate set of mechanisms — each consumer's tailored
//! optimum plus the class-appropriate reference baselines — against every
//! consumer. A cell holds the loss the consumer achieves by *optimally
//! post-processing* the candidate (the engine's interaction LP, Section
//! 2.4.3 of the paper) and the **regret**: that loss minus the consumer's
//! tailored optimum. A candidate with an all-zero regret row is universally
//! optimal for this instance.
//!
//! The paper's Theorem 1 says the count-query table must collapse: the
//! geometric mechanism's row is identically zero. Brenner–Nissim say the
//! sum- and median-query tables cannot: there are instances where no
//! candidate dominates, witnessed by a *non-dominated pair* — two consumers
//! each of whose tailored optima has strictly positive regret for the
//! other. Both facts are asserted exactly (Rational arithmetic) in this
//! module's tests and reproduced by the `zoo_regret` experiment binary.

use privmech_core::{
    randomized_response, Mechanism, MinimaxConsumer, PrivacyEngine, PrivacyLevel, Result,
    SolverOptions, ValidatedRequest,
};
use privmech_linalg::Scalar;

use crate::query::QueryClass;
use crate::tailored::tailored_optimum;

/// A fully evaluated minimax-regret table.
#[derive(Debug, Clone)]
pub struct RegretTable<T: Scalar> {
    /// The query class the table was built for.
    pub class: QueryClass,
    /// The privacy parameter α shared by every candidate and optimum.
    pub alpha: T,
    /// Consumer display names, in input order (table columns).
    pub consumer_names: Vec<String>,
    /// Candidate display names (table rows): `tailored:<consumer>` for each
    /// consumer in order, then the reference baselines.
    pub candidate_names: Vec<String>,
    /// The tailored optimal loss per consumer (the benchmark of each column).
    pub opt: Vec<T>,
    /// `losses[row][col]`: consumer `col`'s optimally post-processed loss
    /// under candidate `row`.
    pub losses: Vec<Vec<T>>,
    /// `regrets[row][col] = losses[row][col] - opt[col]` (non-negative).
    pub regrets: Vec<Vec<T>>,
    /// Indices of candidates whose regret row is identically zero.
    pub dominant: Vec<usize>,
    /// The first consumer pair `(j, k)` such that `j`'s tailored optimum has
    /// positive regret for `k` *and* vice versa — the Brenner–Nissim
    /// witness; `None` when no such pair exists (count queries).
    pub non_dominated_pair: Option<(usize, usize)>,
}

fn is_positive<T: Scalar>(value: &T) -> bool {
    !value.is_zero_approx() && *value > T::zero()
}

/// Build the regret table for `class` at `level` over `consumers`.
///
/// Tailored optima for the count class go through
/// [`PrivacyEngine::solve`] (the Theorem 1 factorization route); the
/// generalized classes go through the zoo's [`tailored_optimum`] LP, which
/// reproduces the engine's answer exactly on counts (pinned in
/// `crate::tailored`'s tests). Every evaluation is an exact interaction-LP
/// solve, so the whole table is deterministic.
pub fn regret_table<T: Scalar + Send + Sync>(
    class: &QueryClass,
    level: &PrivacyLevel<T>,
    consumers: &[MinimaxConsumer<T>],
) -> Result<RegretTable<T>> {
    class.validate()?;
    let bound = class.result_bound();
    let engine = PrivacyEngine::with_threads(1);
    let options = SolverOptions::default();
    let is_count = matches!(class, QueryClass::Count { .. });

    // Column benchmarks and the tailored candidate rows.
    let mut opt = Vec::with_capacity(consumers.len());
    let mut candidates: Vec<(String, Mechanism<T>)> = Vec::new();
    for consumer in consumers {
        let (mechanism, loss) = if is_count {
            let request = ValidatedRequest::minimax(level.clone(), consumer.clone());
            let solve = engine.solve(&request)?;
            (solve.mechanism, solve.loss)
        } else {
            let t = tailored_optimum(class, consumer, level, &options)?;
            (t.mechanism, t.loss)
        };
        opt.push(loss);
        candidates.push((format!("tailored:{}", consumer.name()), mechanism));
    }
    if is_count {
        candidates.push(("geometric".into(), engine.geometric(bound, level)?));
    }
    // Randomized response bounds *every* pairwise row ratio by α, so it is
    // the one baseline that stays feasible under any adjacency structure.
    candidates.push((
        "randomized_response".into(),
        randomized_response(bound, level)?,
    ));

    // Evaluate every candidate for every consumer via the interaction LP.
    let mut losses = Vec::with_capacity(candidates.len());
    let mut regrets = Vec::with_capacity(candidates.len());
    for (_, mechanism) in &candidates {
        let mut row_losses = Vec::with_capacity(consumers.len());
        let mut row_regrets = Vec::with_capacity(consumers.len());
        for (col, consumer) in consumers.iter().enumerate() {
            let request = ValidatedRequest::minimax(level.clone(), consumer.clone());
            let interaction = engine.interact(mechanism, &request)?;
            row_regrets.push(interaction.loss.clone() - opt[col].clone());
            row_losses.push(interaction.loss);
        }
        losses.push(row_losses);
        regrets.push(row_regrets);
    }

    let dominant = regrets
        .iter()
        .enumerate()
        .filter(|(_, row)| row.iter().all(|r| r.is_zero_approx()))
        .map(|(i, _)| i)
        .collect();
    // Tailored candidates occupy rows 0..consumers.len() in consumer order,
    // so the cross-regret of consumers (j, k) sits at [j][k] and [k][j].
    let mut non_dominated_pair = None;
    #[allow(clippy::needless_range_loop)] // (j, k) index regrets on both axes
    'outer: for j in 0..consumers.len() {
        for k in (j + 1)..consumers.len() {
            if is_positive(&regrets[j][k]) && is_positive(&regrets[k][j]) {
                non_dominated_pair = Some((j, k));
                break 'outer;
            }
        }
    }

    Ok(RegretTable {
        class: class.clone(),
        alpha: level.alpha().clone(),
        consumer_names: consumers.iter().map(|c| c.name().to_string()).collect(),
        candidate_names: candidates.into_iter().map(|(name, _)| name).collect(),
        opt,
        losses,
        regrets,
        dominant,
        non_dominated_pair,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use privmech_core::loss::{AbsoluteError, ZeroOneError};
    use privmech_core::SideInformation;
    use privmech_numerics::{rat, Rational};

    use super::*;

    fn minimax(
        name: &str,
        loss: Arc<dyn privmech_core::LossFunction<Rational> + Send + Sync>,
        side: SideInformation,
    ) -> MinimaxConsumer<Rational> {
        MinimaxConsumer::new(name, loss, side).unwrap()
    }

    /// The standard three-consumer panel over `{0, …, bound}` used by the
    /// pinned tables here and in the `zoo_regret` experiment.
    fn panel(bound: usize) -> Vec<MinimaxConsumer<Rational>> {
        vec![
            minimax("abs", Arc::new(AbsoluteError), SideInformation::full(bound)),
            minimax(
                "zero-one",
                Arc::new(ZeroOneError),
                SideInformation::full(bound),
            ),
            minimax(
                "abs-ends",
                Arc::new(AbsoluteError),
                SideInformation::new(bound, [0, bound]).unwrap(),
            ),
        ]
    }

    #[test]
    fn count_table_collapses_to_the_geometric_row() {
        // Theorem 1, as a regret table: the geometric candidate's regret row
        // is identically zero — one mechanism serves every consumer.
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let table = regret_table(&QueryClass::Count { n: 3 }, &level, &panel(3)).unwrap();
        let g = table
            .candidate_names
            .iter()
            .position(|n| n == "geometric")
            .unwrap();
        for (col, regret) in table.regrets[g].iter().enumerate() {
            assert_eq!(
                *regret,
                Rational::zero(),
                "geometric has regret for consumer {}",
                table.consumer_names[col]
            );
        }
        assert!(table.dominant.contains(&g));
        // And the paper's pinned optimum anchors the first column.
        assert_eq!(table.opt[0], rat(168, 415));
    }

    #[test]
    fn randomized_response_does_not_dominate_counts() {
        // The collapse is a property of the geometric mechanism, not of the
        // instance being easy: the RR baseline has strictly positive regret
        // somewhere on the same table.
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let table = regret_table(&QueryClass::Count { n: 3 }, &level, &panel(3)).unwrap();
        let rr = table
            .candidate_names
            .iter()
            .position(|n| n == "randomized_response")
            .unwrap();
        assert!(table.regrets[rr].iter().any(|r| *r > Rational::zero()));
    }

    #[test]
    fn sum_table_has_a_non_dominated_pair() {
        // Brenner–Nissim for sums: with the distance-2 adjacency band no
        // candidate row is all-zero, and the absolute / zero-one consumers
        // witness mutual positive regret.
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let class = QueryClass::Sum {
            rows: 2,
            per_row: 2,
        };
        let table = regret_table(&class, &level, &panel(4)).unwrap();
        assert!(
            table.dominant.is_empty(),
            "a candidate dominates the sum table: {:?}",
            table.dominant
        );
        let (j, k) = table.non_dominated_pair.expect("no non-dominated pair");
        assert!(table.regrets[j][k] > Rational::zero());
        assert!(table.regrets[k][j] > Rational::zero());
    }

    #[test]
    fn median_table_has_a_non_dominated_pair() {
        // Brenner–Nissim for medians: under the complete adjacency graph,
        // tailoring matters — no single mechanism serves both the absolute
        // and the zero-one consumer optimally.
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let class = QueryClass::Median { rows: 3, domain: 3 };
        let table = regret_table(&class, &level, &panel(3)).unwrap();
        assert!(
            table.dominant.is_empty(),
            "a candidate dominates the median table: {:?}",
            table.dominant
        );
        let (j, k) = table.non_dominated_pair.expect("no non-dominated pair");
        assert!(table.regrets[j][k] > Rational::zero());
        assert!(table.regrets[k][j] > Rational::zero());
    }

    #[test]
    fn regrets_are_never_negative() {
        // Every candidate is α-DP for its class, so no post-processed loss
        // can beat the tailored optimum — exact arithmetic, exact zero floor.
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        for class in [
            QueryClass::Count { n: 3 },
            QueryClass::Sum {
                rows: 2,
                per_row: 2,
            },
            QueryClass::Median { rows: 3, domain: 3 },
        ] {
            let table = regret_table(&class, &level, &panel(class.result_bound())).unwrap();
            for row in &table.regrets {
                for regret in row {
                    assert!(*regret >= Rational::zero());
                }
            }
        }
    }
}
