//! Local-privacy baselines and their exact gap to the centralized optimum.
//!
//! In the local model each of `n` users randomizes their own bit before the
//! aggregator sees anything. The zoo implements two classic per-user
//! channels — randomized response and a two-column Hadamard response — and
//! builds the **induced central mechanism**: the exact distribution of the
//! reported-ones count given the true count, an `(n+1) × (n+1)`
//! row-stochastic matrix obtained as a convolution of two binomials. That
//! induced mechanism is α-differentially private (changing one user's bit
//! rewires one channel, whose output ratios are bounded by `1/α`), so the
//! engine can score it like any other deployed mechanism: the consumer
//! post-processes optimally (interaction LP) and the difference to the
//! centralized tailored optimum is the **price of locality** — strictly
//! positive and growing with `n` (Duchi–Jordan–Wainwright's √n̄-type
//! separation, here computed exactly instead of asymptotically).

use privmech_core::{
    CoreError, Mechanism, MinimaxConsumer, PrivacyEngine, PrivacyLevel, Result, SideInformation,
    ValidatedRequest,
};
use privmech_linalg::{Matrix, Scalar};
use std::sync::Arc;

/// The largest supported user count: binomial coefficients up to
/// `C(64, 32)` fit in an `i64` exactly, and the induced matrix stays small
/// enough to evaluate interactively.
pub const MAX_LDP_USERS: usize = 64;

/// A per-user local randomizer for one private bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdpProtocol {
    /// Classic randomized response: report the true bit with probability
    /// `1/(1+α)`, the flipped bit otherwise. The channel's likelihood
    /// ratio is exactly `1/α` — the tightest α-LDP binary channel.
    RandomizedResponse,
    /// A two-column Hadamard response (the `H₄` construction of
    /// Acharya–Sun–Zhang, reduced to one bit): users holding 1 report a
    /// "hit" with probability `1/(1+α)`, users holding 0 with probability
    /// `1/2` — the two distinct Hadamard columns' positive sets overlap in
    /// exactly half their entries.
    Hadamard,
}

impl LdpProtocol {
    /// Stable wire/display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LdpProtocol::RandomizedResponse => "randomized_response",
            LdpProtocol::Hadamard => "hadamard",
        }
    }

    /// Parse a wire/display name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "randomized_response" => Some(LdpProtocol::RandomizedResponse),
            "hadamard" => Some(LdpProtocol::Hadamard),
            _ => None,
        }
    }

    /// The per-user hit probabilities `(p₁, p₀)`: the chance a user holding
    /// 1 (resp. 0) contributes a reported one.
    fn hit_probabilities<T: Scalar>(&self, alpha: &T) -> (T, T) {
        let one_plus = T::one() + alpha.clone();
        match self {
            LdpProtocol::RandomizedResponse => {
                (T::one() / one_plus.clone(), alpha.clone() / one_plus)
            }
            LdpProtocol::Hadamard => (T::one() / one_plus, T::from_ratio(1, 2)),
        }
    }
}

/// `C(m, k)` as a scalar; exact for `m ≤ 64` (asserted).
fn choose<T: Scalar>(m: usize, k: usize) -> T {
    debug_assert!(m <= MAX_LDP_USERS);
    let mut value: u128 = 1;
    for j in 0..k.min(m - k) {
        value = value * (m - j) as u128 / (j + 1) as u128;
    }
    T::from_i64(i64::try_from(value).expect("binomial coefficient exceeds i64"))
}

fn pow<T: Scalar>(base: &T, exp: usize) -> T {
    let mut out = T::one();
    for _ in 0..exp {
        out = out * base.clone();
    }
    out
}

/// The exact pmf of `Binomial(m, p)` as a length-`m+1` vector.
fn binomial_pmf<T: Scalar>(m: usize, p: &T) -> Vec<T> {
    let q = T::one() - p.clone();
    (0..=m)
        .map(|k| choose::<T>(m, k) * pow(p, k) * pow(&q, m - k))
        .collect()
}

/// The induced central mechanism of `protocol` run by `users` independent
/// users at level α: row `i` is the distribution of the reported-ones count
/// when `i` users hold a 1 — the convolution `Binomial(i, p₁) ⊛
/// Binomial(users - i, p₀)`.
pub fn induced_mechanism<T: Scalar>(
    protocol: LdpProtocol,
    users: usize,
    level: &PrivacyLevel<T>,
) -> Result<Mechanism<T>> {
    if users == 0 || users > MAX_LDP_USERS {
        return Err(CoreError::InvalidRequest {
            reason: format!("ldp baselines support 1 ..= {MAX_LDP_USERS} users, got {users}"),
        });
    }
    let (p1, p0) = protocol.hit_probabilities::<T>(level.alpha());
    let size = users + 1;
    let mut rows = Vec::with_capacity(size);
    for i in 0..size {
        let ones = binomial_pmf(i, &p1);
        let zeros = binomial_pmf(users - i, &p0);
        let mut row = vec![T::zero(); size];
        for (j, a) in ones.iter().enumerate() {
            for (k, b) in zeros.iter().enumerate() {
                row[j + k] = row[j + k].clone() + a.clone() * b.clone();
            }
        }
        rows.push(row);
    }
    Mechanism::from_matrix_normalized(Matrix::from_rows(rows)?)
}

/// One point of the locality-gap profile.
#[derive(Debug, Clone)]
pub struct LdpGap<T: Scalar> {
    /// Number of users (and the count-query bound).
    pub users: usize,
    /// The consumer's loss post-processing the induced LDP mechanism.
    pub ldp_loss: T,
    /// The centralized tailored optimum for the same consumer and α.
    pub central_loss: T,
    /// `ldp_loss - central_loss` — the price of locality, never negative.
    pub gap: T,
}

/// Score `protocol` for a full-support minimax consumer with `loss` over
/// `users` users at `level`: exact LDP loss (interaction LP on the induced
/// mechanism), exact centralized optimum (engine solve), and their gap.
pub fn ldp_gap<T: Scalar + Send + Sync>(
    protocol: LdpProtocol,
    users: usize,
    level: &PrivacyLevel<T>,
    loss: Arc<dyn privmech_core::LossFunction<T> + Send + Sync>,
) -> Result<LdpGap<T>> {
    let induced = induced_mechanism(protocol, users, level)?;
    let consumer = MinimaxConsumer::new(
        format!("ldp-{}", protocol.name()),
        loss,
        SideInformation::full(users),
    )?;
    let engine = PrivacyEngine::with_threads(1);
    let request = ValidatedRequest::minimax(level.clone(), consumer);
    let ldp_loss = engine.interact(&induced, &request)?.loss;
    let central_loss = engine.solve(&request)?.loss;
    let gap = ldp_loss.clone() - central_loss.clone();
    Ok(LdpGap {
        users,
        ldp_loss,
        central_loss,
        gap,
    })
}

#[cfg(test)]
mod tests {
    use privmech_core::loss::AbsoluteError;
    use privmech_numerics::{rat, Rational};

    use super::*;

    fn level(num: i64, den: i64) -> PrivacyLevel<Rational> {
        PrivacyLevel::new(rat(num, den)).unwrap()
    }

    #[test]
    fn induced_mechanisms_are_stochastic_and_private() {
        let level = level(1, 2);
        for protocol in [LdpProtocol::RandomizedResponse, LdpProtocol::Hadamard] {
            for users in 1..=5 {
                let m = induced_mechanism::<Rational>(protocol, users, &level).unwrap();
                assert!(m.matrix().is_row_stochastic());
                // One changed user bound: the induced central mechanism is
                // α-DP for the count adjacency.
                assert!(m.is_differentially_private(&level), "users = {users}");
            }
        }
    }

    #[test]
    fn single_user_randomized_response_is_the_binary_channel() {
        let level = level(1, 3);
        let m = induced_mechanism::<Rational>(LdpProtocol::RandomizedResponse, 1, &level).unwrap();
        // p1 = 1/(1+α) = 3/4, p0 = α/(1+α) = 1/4.
        assert_eq!(*m.prob(0, 0).unwrap(), rat(3, 4));
        assert_eq!(*m.prob(0, 1).unwrap(), rat(1, 4));
        assert_eq!(*m.prob(1, 1).unwrap(), rat(3, 4));
    }

    #[test]
    fn gap_is_positive_and_monotone_in_users() {
        // The acceptance anchor: both baselines pay a strictly positive
        // price of locality, and the price grows with the user count —
        // exactly, not asymptotically.
        let level = level(1, 2);
        for protocol in [LdpProtocol::RandomizedResponse, LdpProtocol::Hadamard] {
            let mut last_gap = Rational::zero();
            for users in 2..=5 {
                let point = ldp_gap(protocol, users, &level, Arc::new(AbsoluteError)).unwrap();
                assert!(
                    point.gap > Rational::zero(),
                    "{} users={users} gap not positive",
                    protocol.name()
                );
                assert!(
                    point.gap > last_gap,
                    "{} users={users} gap not monotone",
                    protocol.name()
                );
                last_gap = point.gap;
            }
        }
    }

    #[test]
    fn hadamard_is_noisier_than_randomized_response() {
        // At equal α the Hadamard channel's hit probability for zeros is
        // 1/2 — strictly less informative than RR's α/(1+α) — so its
        // post-processed loss can only be worse.
        let level = level(1, 2);
        for users in 2..=4 {
            let rr = ldp_gap(
                LdpProtocol::RandomizedResponse,
                users,
                &level,
                Arc::new(AbsoluteError),
            )
            .unwrap();
            let had = ldp_gap(
                LdpProtocol::Hadamard,
                users,
                &level,
                Arc::new(AbsoluteError),
            )
            .unwrap();
            assert!(had.ldp_loss >= rr.ldp_loss, "users = {users}");
            assert_eq!(had.central_loss, rr.central_loss);
        }
    }

    #[test]
    fn user_bounds_are_enforced() {
        let level = level(1, 2);
        assert!(induced_mechanism::<Rational>(LdpProtocol::Hadamard, 0, &level).is_err());
        assert!(
            induced_mechanism::<Rational>(LdpProtocol::Hadamard, MAX_LDP_USERS + 1, &level)
                .is_err()
        );
    }
}
