//! # privmech-zoo — the limits of universal optimality, made computable
//!
//! The paper proves one mechanism (the geometric) is simultaneously optimal
//! for *every* minimax consumer of a count query. This crate maps the edges
//! of that theorem with three exact, deterministic experiment families:
//!
//! * **Query classes and regret tables** ([`query`], [`tailored`],
//!   [`regret`]): generalize the count setup to sum and median queries via
//!   their induced adjacency on the result space, solve each consumer's
//!   tailored optimum, evaluate every candidate mechanism against every
//!   consumer (interaction LP), and exhibit the Brenner–Nissim
//!   impossibility — count tables collapse to a zero-regret geometric row,
//!   sum/median tables contain a non-dominated consumer pair.
//! * **LDP baselines** ([`ldp`]): randomized-response and Hadamard-response
//!   per-user channels, their exact induced central mechanisms, and the
//!   exact price of locality versus the centralized tailored optimum
//!   (Duchi–Jordan–Wainwright, computed rather than bounded).
//! * **Multi-agent composition** ([`mod@compose`]): per-agent tailored
//!   mechanisms released side by side, with the composed privacy level
//!   (`∏ α_a`) and joint loss.
//!
//! Everything is evaluated through `privmech-core`'s `PrivacyEngine` and
//! exact `Rational` arithmetic (with the `f64` backend available through
//! the same generic interfaces), so zoo results obey the same bit-identity
//! contracts as solves: the serving layer caches, fingerprints and routes
//! them byte-identically (`zoo_eval` / `zoo_table` in
//! `crates/serve/PROTOCOL.md`). See `ZOO.md` for the experiment narrative
//! and reproduction commands.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compose;
pub mod ldp;
pub mod query;
pub mod regret;
pub mod tailored;

pub use compose::{compose, AgentReport, AgentSpec, Composition};
pub use ldp::{induced_mechanism, ldp_gap, LdpGap, LdpProtocol, MAX_LDP_USERS};
pub use query::QueryClass;
pub use regret::{regret_table, RegretTable};
pub use tailored::{is_private_for_class, tailored_optimum, TailoredOptimum};
