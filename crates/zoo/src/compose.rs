//! Multi-agent composition: per-agent mechanisms released side by side.
//!
//! The scenario (SNIPPETS.md's gridworld shape): `k` agents each publish a
//! privatized count about the *same* underlying individual — think one
//! agent per region of a gridworld, each releasing its own occupancy
//! count. Each agent solves its own tailored optimum at its own level
//! `α_a`; the adversary sees the whole tuple. Sequential composition makes
//! the joint release `∏ α_a`-differentially private (the ε's add, so the
//! α's multiply — verified exactly on the product channel in the tests),
//! and the per-agent minimax losses add for separable per-agent losses, so
//! the zoo reports the composed level and the joint loss as the scenario's
//! two headline numbers.

use privmech_core::{CoreError, PrivacyEngine, PrivacyLevel, Result, SolveRequest};
use privmech_linalg::Scalar;
use std::sync::Arc;

/// One agent of the composition scenario.
#[derive(Clone)]
pub struct AgentSpec<T: Scalar> {
    /// Display name (carried into the report).
    pub name: String,
    /// The agent's count-query bound (its database rows).
    pub users: usize,
    /// The agent's own privacy parameter.
    pub alpha: T,
    /// The agent's loss function (full side information is assumed — each
    /// agent guards its own worst case).
    pub loss: Arc<dyn privmech_core::LossFunction<T> + Send + Sync>,
}

impl<T: Scalar> std::fmt::Debug for AgentSpec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentSpec")
            .field("name", &self.name)
            .field("users", &self.users)
            .field("alpha", &self.alpha)
            .field("loss", &self.loss.name())
            .finish()
    }
}

/// One agent's solved contribution.
#[derive(Debug, Clone)]
pub struct AgentReport<T: Scalar> {
    /// The agent's name.
    pub name: String,
    /// Its count bound.
    pub users: usize,
    /// Its privacy parameter.
    pub alpha: T,
    /// Its tailored minimax-optimal loss.
    pub loss: T,
}

/// The composed scenario report.
#[derive(Debug, Clone)]
pub struct Composition<T: Scalar> {
    /// Per-agent solves, in input order.
    pub per_agent: Vec<AgentReport<T>>,
    /// The joint release's privacy parameter: `∏ α_a` (sequential
    /// composition about one individual).
    pub composed_alpha: T,
    /// The sum of per-agent minimax losses.
    pub joint_loss: T,
}

/// Solve every agent's tailored optimum and compose the levels and losses.
pub fn compose<T: Scalar + Send + Sync>(agents: &[AgentSpec<T>]) -> Result<Composition<T>> {
    if agents.is_empty() {
        return Err(CoreError::InvalidRequest {
            reason: "composition needs at least one agent".into(),
        });
    }
    let engine = PrivacyEngine::with_threads(1);
    let mut per_agent = Vec::with_capacity(agents.len());
    let mut composed_alpha = T::one();
    let mut joint_loss = T::zero();
    for agent in agents {
        // PrivacyLevel::new re-validates α ∈ [0, 1] per agent.
        let level = PrivacyLevel::new(agent.alpha.clone())?;
        let request = SolveRequest::minimax()
            .name(agent.name.clone())
            .loss(agent.loss.clone())
            .support(agent.users, 0..=agent.users)
            .at(level)
            .validate()?;
        let solve = engine.solve(&request)?;
        composed_alpha = composed_alpha * agent.alpha.clone();
        joint_loss = joint_loss + solve.loss.clone();
        per_agent.push(AgentReport {
            name: agent.name.clone(),
            users: agent.users,
            alpha: agent.alpha.clone(),
            loss: solve.loss,
        });
    }
    Ok(Composition {
        per_agent,
        composed_alpha,
        joint_loss,
    })
}

#[cfg(test)]
mod tests {
    use privmech_core::loss::AbsoluteError;
    use privmech_core::Mechanism;
    use privmech_numerics::{rat, Rational};

    use super::*;

    fn agent(name: &str, users: usize, alpha: Rational) -> AgentSpec<Rational> {
        AgentSpec {
            name: name.into(),
            users,
            alpha,
            loss: Arc::new(AbsoluteError),
        }
    }

    #[test]
    fn composition_multiplies_levels_and_adds_losses() {
        let report =
            compose(&[agent("north", 3, rat(1, 4)), agent("south", 3, rat(1, 2))]).unwrap();
        assert_eq!(report.composed_alpha, rat(1, 8));
        // The first agent is the paper's pinned instance.
        assert_eq!(report.per_agent[0].loss, rat(168, 415));
        assert_eq!(
            report.joint_loss,
            report.per_agent[0].loss.clone() + report.per_agent[1].loss.clone()
        );
    }

    #[test]
    fn product_channel_achieves_the_composed_level_exactly() {
        // The claim behind `composed_alpha`: the product mechanism on pair
        // inputs (both coordinates moved by a single-row change of the
        // shared database) has row ratios bounded by 1/(α₁·α₂), and the
        // bound is *tight* — the composed level is exactly the product.
        let l1 = PrivacyLevel::new(rat(1, 2)).unwrap();
        let l2 = PrivacyLevel::new(rat(1, 3)).unwrap();
        let engine = PrivacyEngine::new();
        let a: Mechanism<Rational> = engine.geometric(2, &l1).unwrap();
        let b: Mechanism<Rational> = engine.geometric(2, &l2).unwrap();
        let composed = rat(1, 2) * rat(1, 3);
        let mut worst = Rational::one();
        for i1 in 0..=2usize {
            for i2 in 0..=2usize {
                // Neighboring joint inputs: each coordinate moves by <= 1.
                for j1 in i1.saturating_sub(1)..=(i1 + 1).min(2) {
                    for j2 in i2.saturating_sub(1)..=(i2 + 1).min(2) {
                        for r1 in 0..=2usize {
                            for r2 in 0..=2usize {
                                let p = a.prob(i1, r1).unwrap().clone()
                                    * b.prob(i2, r2).unwrap().clone();
                                let q = a.prob(j1, r1).unwrap().clone()
                                    * b.prob(j2, r2).unwrap().clone();
                                let ratio = if p < q { p / q } else { q / p };
                                assert!(ratio >= composed, "composition bound violated");
                                if ratio < worst {
                                    worst = ratio;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(worst, composed, "the composed level is tight");
    }

    #[test]
    fn empty_and_invalid_agents_are_rejected() {
        assert!(compose::<Rational>(&[]).is_err());
        assert!(compose(&[agent("bad", 3, rat(3, 2))]).is_err());
    }
}
