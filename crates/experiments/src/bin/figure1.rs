//! Experiment E-FIG1 — Figure 1 of the paper.
//!
//! The figure plots the output distribution of the geometric mechanism for
//! α = 0.2 and true query result 5. We print the unbounded two-sided geometric
//! pmf on the window the paper plots ([-20, 20] around the result) and the
//! range-restricted variant for n = 20, plus an empirical check that the
//! sampler reproduces the analytic pmf.

use privmech_core::{
    range_restricted_pmf, sample_geometric_output, two_sided_geometric_pmf, PrivacyEngine,
    PrivacyLevel,
};
use privmech_experiments::{bar, section};
use privmech_numerics::{rat, Rational};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let alpha_exact = rat(1, 5);
    let alpha = 0.2f64;
    let true_result = 5usize;
    let n = 20usize;

    section("Figure 1: geometric mechanism pmf, alpha = 0.2, true result = 5");
    println!(
        "paper: two-sided geometric distribution Pr[Z=z] = (1-a)/(1+a) * a^|z| around the result"
    );
    println!();
    println!(
        "{:>6} | {:>12} | {:>12} | chart (unbounded)",
        "output", "unbounded", "restricted"
    );
    for output in -15i64..=25 {
        let offset = output - true_result as i64;
        let unbounded = two_sided_geometric_pmf(&alpha_exact, offset);
        let restricted = if (0..=n as i64).contains(&output) {
            range_restricted_pmf(n, &alpha_exact, true_result, output as usize)
        } else {
            Rational::zero()
        };
        println!(
            "{:>6} | {:>12} | {:>12} | {}",
            output,
            unbounded.to_string(),
            restricted.to_string(),
            bar(unbounded.to_f64(), 40)
        );
    }

    section("Peak value check");
    let peak = two_sided_geometric_pmf(&alpha_exact, 0);
    println!(
        "paper figure peak at the true result: (1-0.2)/(1+0.2) = 2/3 ≈ 0.667; reproduced = {} ≈ {:.4}",
        peak,
        peak.to_f64()
    );

    section("Sampler agreement (40,000 samples, n = 20)");
    let mut rng = StdRng::seed_from_u64(1);
    let trials = 40_000usize;
    let mut counts = vec![0usize; n + 1];
    for _ in 0..trials {
        counts[sample_geometric_output(n, true_result, alpha, &mut rng)] += 1;
    }
    let mut max_abs_dev: f64 = 0.0;
    #[allow(clippy::needless_range_loop)] // z is also the analytic pmf argument
    for z in 0..=n {
        let expected = range_restricted_pmf(n, &alpha, true_result, z);
        let observed = counts[z] as f64 / trials as f64;
        max_abs_dev = max_abs_dev.max((observed - expected).abs());
    }
    println!("max |empirical - analytic| over all outputs = {max_abs_dev:.4} (expect < 0.01)");

    // The mechanism built from the pmf is exactly alpha-DP.
    let level = PrivacyLevel::new(rat(1, 5)).unwrap();
    let g = PrivacyEngine::new().geometric(n, &level).unwrap();
    println!(
        "range-restricted mechanism is row-stochastic: {} ; best privacy level = {}",
        g.matrix().is_row_stochastic(),
        g.best_privacy_level()
    );
}
