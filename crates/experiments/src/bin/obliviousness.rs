//! Experiment E-APXA — Appendix A: restricting to oblivious mechanisms is
//! without loss of generality.
//!
//! We enumerate the universe of 2^5 databases over five binary individuals,
//! build a deliberately non-oblivious differentially-private mechanism
//! (databases with the same count get different output distributions), apply
//! the paper's averaging construction, and verify that the averaged oblivious
//! mechanism is still differentially private and has no larger worst-case
//! loss — for several loss functions and side-information sets.

use privmech_core::{AbsoluteError, LossFunction, PrivacyLevel, SquaredError, ZeroOneError};
use privmech_db::{CountQuery, Database, DatabaseMechanism, Predicate, Record};
use privmech_experiments::{section, Tally};
use privmech_numerics::{rat, Rational};

/// All 2^n databases over n binary (flu / no flu) individuals.
fn boolean_universe(n: usize) -> Vec<Database> {
    (0..(1usize << n))
        .map(|mask| {
            Database::new(
                (0..n)
                    .map(|i| Record::new(40, "San Diego", (mask >> i) & 1 == 1, false))
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let n = 5usize;
    let dbs = boolean_universe(n);
    let query = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));

    section("Constructing a non-oblivious 2/5-DP mechanism over all 32 databases (n = 5)");
    // Each database's output distribution: a uniform floor of (4/5)/(n+1) plus
    // a bump of 1/5 whose position depends on the *identity pattern* of the
    // database (not just its count), making the mechanism deliberately
    // non-oblivious. Every entry is either 2/15 or 1/3, so every pair of
    // databases is within a factor 2.5 = 1/(2/5) and the mechanism is 2/5-DP.
    let rows: Vec<Vec<Rational>> = dbs
        .iter()
        .enumerate()
        .map(|(d, db)| {
            let count = query.evaluate(db);
            let bump_target = (count + d % 2) % (n + 1);
            (0..=n)
                .map(|r| {
                    let floor = rat(4, 5) * rat(1, (n + 1) as i64);
                    if r == bump_target {
                        floor + rat(1, 5)
                    } else {
                        floor
                    }
                })
                .collect()
        })
        .collect();
    let mechanism = DatabaseMechanism::new(dbs, rows, query).unwrap();
    let level = PrivacyLevel::new(rat(2, 5)).unwrap();
    println!("is oblivious: {}", mechanism.is_oblivious());
    println!(
        "is 2/5-differentially private over all neighboring database pairs: {}",
        mechanism.is_differentially_private(&level)
    );

    section("Appendix A averaging construction");
    let averaged = mechanism.averaged_oblivious().unwrap();
    println!(
        "averaged mechanism row-stochastic: {}; 2/5-DP (count-query form): {}",
        averaged.matrix().is_row_stochastic(),
        averaged.is_differentially_private(&level)
    );

    section("Loss comparison: averaged oblivious never loses (Lemma 6)");
    let losses: Vec<(&str, Box<dyn LossFunction<Rational>>)> = vec![
        ("absolute", Box::new(AbsoluteError)),
        ("squared", Box::new(SquaredError)),
        ("zero-one", Box::new(ZeroOneError)),
    ];
    let side_infos: Vec<(&str, Vec<usize>)> = vec![
        ("full", (0..=n).collect()),
        ("at-least-3", (3..=n).collect()),
        ("endpoints", vec![0, n]),
    ];
    println!(
        "{:<10} {:<12} {:>18} {:>18} {:>8}",
        "loss", "side-info", "non-oblivious", "averaged oblivious", "<= ?"
    );
    let mut tally = Tally::default();
    for (loss_name, loss) in &losses {
        for (side_name, side) in &side_infos {
            let before = mechanism.minimax_loss(side, loss.as_ref()).unwrap();
            let after = averaged.minimax_loss(side, loss.as_ref()).unwrap();
            let ok = after <= before;
            tally.record(ok);
            println!(
                "{:<10} {:<12} {:>18.5} {:>18.5} {:>8}",
                loss_name,
                side_name,
                before.to_f64(),
                after.to_f64(),
                ok
            );
        }
    }
    let all_ok = tally.report("Appendix A checks");
    println!(
        "obliviousness-WLOG claim reproduced: {}",
        if all_ok { "PASS" } else { "FAIL" }
    );
}
