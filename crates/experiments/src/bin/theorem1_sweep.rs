//! Experiment E-THM1 — Theorem 1: universal optimality of the geometric
//! mechanism for minimax consumers.
//!
//! For every consumer in a sweep over losses, side-information families, α and
//! n, we compare (i) the loss of the consumer-tailored optimal DP mechanism
//! (Section 2.5 LP) against (ii) the loss the consumer achieves by optimally
//! post-processing the *deployed* geometric mechanism (Section 2.4.3 LP). The
//! paper claims exact equality for all of them; the sweep verifies it exactly
//! with rational arithmetic for small n and within 1e-6 with the f64 backend
//! for larger n. We also report how much worse the raw (un-post-processed)
//! geometric mechanism and the randomized-response baseline are, which is the
//! "shape" of the utility comparison the paper's model implies.
//!
//! The α dimension runs through [`PrivacyEngine::sweep`]: one Section 2.5 LP
//! template per consumer, re-parameterized per α and solved across worker
//! threads. The tailored side deliberately uses
//! [`SolveStrategy::DirectLp`] — with the default geometric-factorization
//! strategy the equality would hold *by construction* and verify nothing.
//!
//! Set `PRIVMECH_SWEEP_QUICK=1` to cap the exact sweep at n = 3 (CI smoke).

use std::sync::Arc;

use privmech_core::{
    randomized_response, LossFunction, PrivacyEngine, PrivacyLevel, SolveRequest, SolveStrategy,
    ValidatedRequest,
};
use privmech_experiments::{section, Tally};
use privmech_linalg::Scalar;
use privmech_numerics::{rat, Rational};

fn side_infos(n: usize) -> Vec<(String, Vec<usize>)> {
    let mut out = vec![("full".to_string(), (0..=n).collect::<Vec<_>>())];
    if n >= 2 {
        out.push((format!("at-least-{}", n / 2), (n / 2..=n).collect()));
        out.push((format!("at-most-{}", n / 2), (0..=n / 2).collect()));
        out.push(("endpoints".to_string(), vec![0, n]));
    }
    out
}

fn losses<T: Scalar>() -> Vec<(&'static str, Arc<dyn LossFunction<T> + Send + Sync>)> {
    use privmech_core::{AbsoluteError, SquaredError, ZeroOneError};
    vec![
        (
            "absolute",
            Arc::new(AbsoluteError) as Arc<dyn LossFunction<T> + Send + Sync>,
        ),
        ("squared", Arc::new(SquaredError)),
        ("zero-one", Arc::new(ZeroOneError)),
    ]
}

fn main() {
    let quick = std::env::var("PRIVMECH_SWEEP_QUICK").is_ok_and(|v| v == "1");
    let max_n = if quick { 3 } else { 5 };
    let engine = PrivacyEngine::new();

    section(&format!(
        "Theorem 1 sweep (exact rational arithmetic, n = 2..{max_n}, engine.sweep over α)"
    ));
    println!(
        "{:>3} {:>6} {:>9} {:>12} {:>14} {:>14} {:>14} {:>7}",
        "n",
        "alpha",
        "loss",
        "side-info",
        "tailored opt",
        "geo+interact",
        "raw geometric",
        "equal?"
    );
    let alphas: [(i64, i64); 5] = [(1, 5), (1, 4), (1, 3), (1, 2), (2, 3)];
    let levels: Vec<PrivacyLevel<Rational>> = alphas
        .iter()
        .map(|&(num, den)| PrivacyLevel::new(rat(num, den)).unwrap())
        .collect();
    let mut exact_tally = Tally::default();
    let mut dominance_tally = Tally::default();
    for n in 2usize..=max_n {
        let geometrics: Vec<_> = levels
            .iter()
            .map(|level| engine.geometric(n, level).unwrap())
            .collect();
        let rrs: Vec<_> = levels
            .iter()
            .map(|level| randomized_response(n, level).unwrap())
            .collect();
        for (loss_name, loss) in losses::<Rational>() {
            for (side_name, side) in side_infos(n) {
                // One request per consumer; the engine sweeps it over all α
                // with a single warm LP template.
                let request: ValidatedRequest<Rational> = SolveRequest::minimax()
                    .name("sweep")
                    .loss(loss.clone())
                    .support(n, side.iter().copied())
                    .at(levels[0].clone())
                    .strategy(SolveStrategy::DirectLp)
                    .validate()
                    .unwrap();
                let tailored = engine.sweep(&levels, &request).unwrap();
                for (k, solve) in tailored.iter().enumerate() {
                    let interaction = engine.interact(&geometrics[k], &request).unwrap();
                    let raw = request.consumer().disutility(&geometrics[k]).unwrap();
                    let rr_loss = request.consumer().disutility(&rrs[k]).unwrap();
                    let equal = solve.loss == interaction.loss;
                    exact_tally.record(equal);
                    // The optimum never exceeds the raw geometric mechanism or
                    // randomized response (who-wins shape).
                    dominance_tally.record(solve.loss <= raw && solve.loss <= rr_loss);
                    if side_name == "full" && loss_name == "absolute" {
                        let (num, den) = alphas[k];
                        println!(
                            "{:>3} {:>6} {:>9} {:>12} {:>14.5} {:>14.5} {:>14.5} {:>7}",
                            n,
                            format!("{num}/{den}"),
                            loss_name,
                            side_name,
                            solve.loss.to_f64(),
                            interaction.loss.to_f64(),
                            raw.to_f64(),
                            equal
                        );
                    }
                }
            }
        }
    }
    exact_tally.report("exact equality: tailored optimum == geometric + optimal interaction");
    dominance_tally.report("dominance: optimum <= raw geometric and <= randomized response");

    section("Theorem 1 at larger n (f64 backend)");
    println!("The exact sweep above is the source of truth: equality is certified with rational");
    println!("arithmetic. The f64 backend handles larger n quickly but its dense-tableau simplex");
    println!(
        "accumulates round-off on the tailored-mechanism LP (~160 rows), occasionally leaving"
    );
    println!(
        "it a few percent above the true optimum. We therefore verify the practically relevant"
    );
    println!("direction with floats: interacting with the deployed geometric mechanism achieves a");
    println!("loss no worse than whatever the tailored f64 LP attains.");
    println!(
        "{:>3} {:>6} {:>9} {:>14} {:>14} {:>12}",
        "n", "alpha", "loss", "tailored opt", "geo+interact", "difference"
    );
    let float_ns: &[usize] = if quick { &[6] } else { &[6, 7] };
    let float_levels: Vec<PrivacyLevel<f64>> = [0.25f64, 0.5]
        .into_iter()
        .map(|alpha| PrivacyLevel::new(alpha).unwrap())
        .collect();
    let mut float_tally = Tally::default();
    for &n in float_ns {
        let geometrics: Vec<_> = float_levels
            .iter()
            .map(|level| engine.geometric(n, level).unwrap())
            .collect();
        for (loss_name, loss) in losses::<f64>() {
            let request: ValidatedRequest<f64> = SolveRequest::minimax()
                .name("sweep")
                .loss(loss.clone())
                .support(n, 0..=n)
                .at(float_levels[0].clone())
                .strategy(SolveStrategy::DirectLp)
                .validate()
                .unwrap();
            let tailored = engine.sweep(&float_levels, &request).unwrap();
            for (k, solve) in tailored.iter().enumerate() {
                let interaction = engine.interact(&geometrics[k], &request).unwrap();
                let diff = solve.loss - interaction.loss;
                // Directional check: the deployed geometric mechanism plus
                // optimal post-processing is never worse than the tailored
                // float LP (up to float tolerance).
                float_tally
                    .record(interaction.loss <= solve.loss + 1e-6 * solve.loss.abs().max(1.0));
                println!(
                    "{:>3} {:>6} {:>9} {:>14.6} {:>14.6} {:>12.2e}",
                    n,
                    float_levels[k].alpha(),
                    loss_name,
                    solve.loss,
                    interaction.loss,
                    diff
                );
            }
        }
    }
    let float_ok =
        float_tally.report("geometric + interaction <= tailored f64 LP (directional check)");

    section("Summary");
    let exact_ok = exact_tally.failed == 0 && dominance_tally.failed == 0;
    println!(
        "Theorem 1 (simultaneous utility maximization): {}",
        if exact_ok && float_ok {
            "REPRODUCED (exact equality for small n; directional agreement with f64 at larger n)"
        } else {
            "FAILED"
        }
    );
}
