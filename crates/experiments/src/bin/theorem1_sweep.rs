//! Experiment E-THM1 — Theorem 1: universal optimality of the geometric
//! mechanism for minimax consumers.
//!
//! For every consumer in a sweep over losses, side-information families, α and
//! n, we compare (i) the loss of the consumer-tailored optimal DP mechanism
//! (Section 2.5 LP) against (ii) the loss the consumer achieves by optimally
//! post-processing the *deployed* geometric mechanism (Section 2.4.3 LP). The
//! paper claims exact equality for all of them; the sweep verifies it exactly
//! with rational arithmetic for small n and within 1e-6 with the f64 backend
//! for larger n. We also report how much worse the raw (un-post-processed)
//! geometric mechanism and the randomized-response baseline are, which is the
//! "shape" of the utility comparison the paper's model implies.

use std::sync::Arc;

use privmech_core::{
    geometric_mechanism, optimal_interaction, optimal_mechanism, randomized_response,
    AbsoluteError, LossFunction, MinimaxConsumer, PrivacyLevel, SideInformation, SquaredError,
    ZeroOneError,
};
use privmech_experiments::{section, Tally};
use privmech_linalg::Scalar;
use privmech_numerics::{rat, Rational};

fn side_infos(n: usize) -> Vec<(String, SideInformation)> {
    let mut out = vec![("full".to_string(), SideInformation::full(n))];
    if n >= 2 {
        out.push((
            format!("at-least-{}", n / 2),
            SideInformation::at_least(n, n / 2).unwrap(),
        ));
        out.push((
            format!("at-most-{}", n / 2),
            SideInformation::at_most(n, n / 2).unwrap(),
        ));
        out.push((
            "endpoints".to_string(),
            SideInformation::new(n, vec![0, n]).unwrap(),
        ));
    }
    out
}

fn losses<T: Scalar>() -> Vec<(&'static str, Arc<dyn LossFunction<T> + Send + Sync>)> {
    vec![
        (
            "absolute",
            Arc::new(AbsoluteError) as Arc<dyn LossFunction<T> + Send + Sync>,
        ),
        ("squared", Arc::new(SquaredError)),
        ("zero-one", Arc::new(ZeroOneError)),
    ]
}

fn main() {
    section("Theorem 1 sweep (exact rational arithmetic, n = 2..5)");
    println!(
        "{:>3} {:>6} {:>9} {:>12} {:>14} {:>14} {:>14} {:>7}",
        "n",
        "alpha",
        "loss",
        "side-info",
        "tailored opt",
        "geo+interact",
        "raw geometric",
        "equal?"
    );
    let mut exact_tally = Tally::default();
    let mut dominance_tally = Tally::default();
    for n in 2usize..=5 {
        for (num, den) in [(1i64, 5i64), (1, 4), (1, 3), (1, 2), (2, 3)] {
            let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(num, den)).unwrap();
            let g = geometric_mechanism(n, &level).unwrap();
            let rr = randomized_response(n, &level).unwrap();
            for (loss_name, loss) in losses::<Rational>() {
                for (side_name, side) in side_infos(n) {
                    let consumer =
                        MinimaxConsumer::new("sweep", loss.clone(), side.clone()).unwrap();
                    let tailored = optimal_mechanism(&level, &consumer).unwrap();
                    let interaction = optimal_interaction(&g, &consumer).unwrap();
                    let raw = consumer.disutility(&g).unwrap();
                    let rr_loss = consumer.disutility(&rr).unwrap();
                    let equal = tailored.loss == interaction.loss;
                    exact_tally.record(equal);
                    // The optimum never exceeds the raw geometric mechanism or
                    // randomized response (who-wins shape).
                    dominance_tally.record(tailored.loss <= raw && tailored.loss <= rr_loss);
                    if side_name == "full" && loss_name == "absolute" {
                        println!(
                            "{:>3} {:>6} {:>9} {:>12} {:>14.5} {:>14.5} {:>14.5} {:>7}",
                            n,
                            format!("{num}/{den}"),
                            loss_name,
                            side_name,
                            tailored.loss.to_f64(),
                            interaction.loss.to_f64(),
                            raw.to_f64(),
                            equal
                        );
                    }
                }
            }
        }
    }
    exact_tally.report("exact equality: tailored optimum == geometric + optimal interaction");
    dominance_tally.report("dominance: optimum <= raw geometric and <= randomized response");

    section("Theorem 1 at larger n (f64 backend)");
    println!("The exact sweep above is the source of truth: equality is certified with rational");
    println!("arithmetic. The f64 backend handles larger n quickly but its dense-tableau simplex");
    println!(
        "accumulates round-off on the tailored-mechanism LP (~160 rows), occasionally leaving"
    );
    println!(
        "it a few percent above the true optimum. We therefore verify the practically relevant"
    );
    println!("direction with floats: interacting with the deployed geometric mechanism achieves a");
    println!("loss no worse than whatever the tailored f64 LP attains.");
    println!(
        "{:>3} {:>6} {:>9} {:>14} {:>14} {:>12}",
        "n", "alpha", "loss", "tailored opt", "geo+interact", "difference"
    );
    let mut float_tally = Tally::default();
    for n in [6usize, 7] {
        for alpha in [0.25f64, 0.5] {
            let level: PrivacyLevel<f64> = PrivacyLevel::new(alpha).unwrap();
            let g = geometric_mechanism(n, &level).unwrap();
            for (loss_name, loss) in losses::<f64>() {
                let consumer =
                    MinimaxConsumer::new("sweep", loss.clone(), SideInformation::full(n)).unwrap();
                let tailored = optimal_mechanism(&level, &consumer).unwrap();
                let interaction = optimal_interaction(&g, &consumer).unwrap();
                let diff = tailored.loss - interaction.loss;
                // Directional check: the deployed geometric mechanism plus
                // optimal post-processing is never worse than the tailored
                // float LP (up to float tolerance).
                float_tally.record(
                    interaction.loss <= tailored.loss + 1e-6 * tailored.loss.abs().max(1.0),
                );
                println!(
                    "{:>3} {:>6} {:>9} {:>14.6} {:>14.6} {:>12.2e}",
                    n, alpha, loss_name, tailored.loss, interaction.loss, diff
                );
            }
        }
    }
    let float_ok =
        float_tally.report("geometric + interaction <= tailored f64 LP (directional check)");

    section("Summary");
    let exact_ok = exact_tally.failed == 0 && dominance_tally.failed == 0;
    println!(
        "Theorem 1 (simultaneous utility maximization): {}",
        if exact_ok && float_ok {
            "REPRODUCED (exact equality for n <= 5; directional agreement with f64 at n = 6, 7)"
        } else {
            "FAILED"
        }
    );
}
