//! Experiment E-BAYES — Section 2.7: minimax vs Bayesian consumers.
//!
//! The paper contrasts its minimax model with the Bayesian model of Ghosh,
//! Roughgarden and Sundararajan: Bayesian consumers post-process the geometric
//! mechanism with a *deterministic* remap, while minimax consumers may need a
//! *randomized* remap (Table 1(c)'s fractional first row). We reproduce both
//! behaviours on the Table 1 setting and show that each consumer type reaches
//! its own optimum by interacting with the same deployed geometric mechanism —
//! the "universal deployment" message of both papers.

use std::sync::Arc;

use privmech_core::{AbsoluteError, PrivacyEngine, PrivacyLevel, SolveRequest, SolveStrategy};
use privmech_experiments::{print_matrix, section};
use privmech_numerics::{rat, Rational};

fn is_deterministic(matrix: &privmech_linalg::Matrix<Rational>) -> bool {
    (0..matrix.rows()).all(|r| {
        (0..matrix.cols())
            .all(|c| matrix[(r, c)] == Rational::zero() || matrix[(r, c)] == Rational::one())
    })
}

fn main() {
    let n = 3usize;
    let engine = PrivacyEngine::new();
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).unwrap();
    let g = engine.geometric(n, &level).unwrap();

    section("Minimax consumer (|i-r| loss, S = {0..3}) interacting with G_{3,1/4}");
    let minimax_request = SolveRequest::<Rational>::minimax()
        .name("minimax")
        .loss(Arc::new(AbsoluteError))
        .support(n, 0..=n)
        .at(level.clone())
        // DirectLp so the tailored/interaction equality is the Theorem 1
        // claim, not a construction identity.
        .strategy(SolveStrategy::DirectLp)
        .validate()
        .unwrap();
    let mm = engine.interact(&g, &minimax_request).unwrap();
    print_matrix("minimax-optimal post-processing T*", &mm.post_processing);
    println!(
        "randomized post-processing (some rows fractional): {}",
        !is_deterministic(&mm.post_processing)
    );
    let tailored = engine.solve(&minimax_request).unwrap();
    println!(
        "minimax loss via interaction = {} ; tailored optimum = {} ; equal (Theorem 1): {}",
        mm.loss,
        tailored.loss,
        mm.loss == tailored.loss
    );

    section("Bayesian consumers (various priors, |i-r| loss) interacting with G_{3,1/4}");
    let priors: Vec<(&str, Vec<Rational>)> = vec![
        ("uniform", vec![rat(1, 4); 4]),
        (
            "skewed-low",
            vec![rat(1, 2), rat(1, 4), rat(1, 8), rat(1, 8)],
        ),
        (
            "skewed-high",
            vec![rat(1, 8), rat(1, 8), rat(1, 4), rat(1, 2)],
        ),
        (
            "point-mass-2",
            vec![rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)],
        ),
    ];
    println!(
        "{:<14} {:>16} {:>16} {:>14}",
        "prior", "raw geometric", "after remap", "deterministic"
    );
    for (name, prior) in priors {
        let request = SolveRequest::<Rational>::bayesian()
            .name(name)
            .loss(Arc::new(AbsoluteError))
            .prior(prior)
            .at(level.clone())
            .validate()
            .unwrap();
        let raw = request.consumer().disutility(&g).unwrap();
        let interaction = engine.interact(&g, &request).unwrap();
        println!(
            "{:<14} {:>16.5} {:>16.5} {:>14}",
            name,
            raw.to_f64(),
            interaction.loss.to_f64(),
            is_deterministic(&interaction.post_processing)
        );
        assert!(interaction.loss <= raw);
    }

    section("Qualitative contrast (paper's Section 2.7)");
    println!(
        "minimax consumers may require randomized post-processing: {}",
        !is_deterministic(&mm.post_processing)
    );
    println!("Bayesian consumers always use deterministic post-processing: true (by construction of the posterior-argmin remap)");
    println!("both reach their optimum against the *same* deployed geometric mechanism — universal deployment");
}
