//! Experiment E-TAB2 — Table 2 and Lemma 1 of the paper.
//!
//! Table 2 displays the range-restricted geometric mechanism `G_{n,α}` and its
//! column-rescaled form `G'_{n,α}` with entries `α^{|i-j|}`. Lemma 1 computes
//! `det G'_{n,α} = (1-α²)^{m-1}` for an `m × m` matrix. We print both matrices
//! for the paper's running parameters and verify the determinant identity (and
//! hence `det G > 0`) across a sweep of sizes and privacy levels, using exact
//! rational arithmetic.

use privmech_core::{
    g_prime_matrix, geometric_matrix, lemma1_determinant, PrivacyEngine, PrivacyLevel,
};
use privmech_experiments::{print_matrix, section, Tally};
use privmech_numerics::{rat, Rational};

fn main() {
    let engine = PrivacyEngine::new();
    let alpha = rat(1, 4);

    section("Table 2: G_{3,1/4} (row-stochastic) and G'_{3,1/4} (entries α^{|i-j|})");
    let g = geometric_matrix(3, &alpha);
    print_matrix("G_{3,1/4}", &g);
    let gp = g_prime_matrix(3, &alpha);
    print_matrix("G'_{3,1/4}", &gp);
    println!("paper: G'[i][j] = α^{{|i-j|}}; first row should read 1, 1/4, 1/16, 1/64");

    section("Column scaling relation between G and G'");
    let one_plus = Rational::one() + alpha.clone();
    let interior = (Rational::one() + alpha.clone()) / (Rational::one() - alpha.clone());
    println!(
        "G' = G with first/last columns scaled by (1+α) = {one_plus} and interior columns by (1+α)/(1-α) = {interior}"
    );
    let mut scaling = Tally::default();
    for i in 0..=3usize {
        for j in 0..=3usize {
            let scale = if j == 0 || j == 3 {
                one_plus.clone()
            } else {
                interior.clone()
            };
            scaling.record(gp[(i, j)] == g[(i, j)].clone() * scale);
        }
    }
    scaling.report("entries satisfying the scaling relation");

    section("Lemma 1: det G'_{n,α} = (1-α²)^{(size-1)} and det G_{n,α} > 0 (sweep)");
    println!(
        "{:>4} {:>8} {:>26} {:>26} {:>8}",
        "n", "alpha", "det G' (reproduced)", "(1-α²)^n (paper)", "match"
    );
    let mut tally = Tally::default();
    for n in 1usize..=10 {
        for (num, den) in [(1i64, 5i64), (1, 4), (1, 3), (1, 2), (2, 3), (4, 5)] {
            let a = rat(num, den);
            let level = PrivacyLevel::new(a.clone()).unwrap();
            let gp = g_prime_matrix(n, &a);
            let det = gp.determinant().unwrap();
            let closed_form = lemma1_determinant(n, &a);
            let ok = det == closed_form;
            tally.record(ok);
            if den == 4 {
                println!(
                    "{:>4} {:>8} {:>26} {:>26} {:>8}",
                    n,
                    format!("{num}/{den}"),
                    det.to_string(),
                    closed_form.to_string(),
                    ok
                );
            }
            // det G > 0 (Lemma 1's statement for the stochastic form).
            let det_g = geometric_matrix(n, &a).determinant().unwrap();
            tally.record(det_g.is_positive());
            // And the mechanism itself is exactly α-private.
            let g = engine.geometric(n, &level).unwrap();
            tally.record(g.best_privacy_level() == a);
        }
    }
    let all_ok = tally.report("Lemma 1 checks across the sweep (n = 1..10, six α values)");
    println!("overall: {}", if all_ok { "PASS" } else { "FAIL" });
}
