//! Experiment E-TAB1 — Table 1 of the paper.
//!
//! Table 1 shows, for the consumer with loss `|i-r|`, side information
//! `S = {0,1,2,3}`, `n = 3` and `α = 1/4`:
//!   (a) the optimal mechanism tailored to the consumer,
//!   (b) the (rescaled) geometric mechanism `G_{3,1/4}`, and
//!   (c) the consumer's optimal interaction with the geometric mechanism.
//!
//! We regenerate all three with exact rational arithmetic. The paper's printed
//! fractions are rounded (its Table 1(a) rows do not sum to one), so the
//! factor-level comparison is: the exact optimum we compute is at least as
//! good as — and within 1% of — the loss achieved by the paper's printed
//! matrices, and Theorem 1's equality (tailored optimum = interaction with the
//! geometric mechanism) holds exactly.

use std::sync::Arc;

use privmech_core::{
    table1b_scaled_geometric, AbsoluteError, PrivacyEngine, PrivacyLevel, SolveRequest,
    SolveStrategy,
};
use privmech_experiments::{print_matrix, print_matrix_decimal, section};
use privmech_linalg::Matrix;
use privmech_numerics::{rat, Rational};

fn main() {
    let n = 3usize;
    let engine = PrivacyEngine::new();
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).unwrap();
    // DirectLp: Table 1(a) is the optimal vertex of the Section 2.5 LP
    // itself, so reproduce exactly that formulation (the default
    // geometric-factorization strategy attains the same loss but may sit on a
    // different optimal vertex).
    let request = SolveRequest::<Rational>::minimax()
        .name("table-1 consumer (|i-r| loss, S = {0,1,2,3})")
        .loss(Arc::new(AbsoluteError))
        .support(n, 0..=n)
        .at(level.clone())
        .strategy(SolveStrategy::DirectLp)
        .validate()
        .unwrap();

    section("Table 1(b): the geometric mechanism G_{3,1/4}");
    let g = engine.geometric(n, &level).unwrap();
    print_matrix("reproduced G_{3,1/4} (row-stochastic form)", g.matrix());
    let scaled = table1b_scaled_geometric(n, level.alpha());
    print_matrix(
        "reproduced (1+α)/(1-α) · G_{3,1/4} — the scaling the paper actually prints",
        &scaled,
    );
    let paper_b = Matrix::from_rows(vec![
        vec![rat(4, 3), rat(1, 4), rat(1, 16), rat(1, 48)],
        vec![rat(1, 3), rat(1, 1), rat(1, 4), rat(1, 12)],
        vec![rat(1, 12), rat(1, 4), rat(1, 1), rat(1, 3)],
        vec![rat(1, 48), rat(1, 16), rat(1, 4), rat(4, 3)],
    ])
    .unwrap();
    println!(
        "matches the paper's Table 1(b) entries exactly: {}",
        scaled == paper_b
    );

    section("Table 1(a): optimal mechanism tailored to the consumer (Section 2.5 LP)");
    let tailored = engine.solve(&request).unwrap();
    print_matrix(
        "reproduced optimal mechanism (exact)",
        tailored.mechanism.matrix(),
    );
    print_matrix_decimal("reproduced optimal mechanism", tailored.mechanism.matrix());
    println!("paper Table 1(a) (rounded by the authors):");
    println!("[ 2/3  5/17  1/25  1/98 ]");
    println!("[ 1/6  7/11  7/44  2/49 ]");
    println!("[ 2/49 7/44  7/11  1/6  ]");
    println!("[ 1/98 1/25  5/17  2/3  ]");
    println!(
        "reproduced optimal worst-case loss = {} ≈ {:.5}",
        tailored.loss,
        tailored.loss.to_f64()
    );
    println!(
        "is α-differentially private: {}",
        tailored.mechanism.is_differentially_private(&level)
    );

    section("Table 1(c): the consumer's optimal interaction with G_{3,1/4} (Section 2.4.3 LP)");
    let interaction = engine.interact(&g, &request).unwrap();
    print_matrix(
        "reproduced optimal interaction T*",
        &interaction.post_processing,
    );
    print_matrix_decimal(
        "reproduced optimal interaction T*",
        &interaction.post_processing,
    );
    println!("paper Table 1(c) (rounded by the authors):");
    println!("[ 9/11 2/11 0    0    ]");
    println!("[ 0    1    0    0    ]");
    println!("[ 0    0    1    0    ]");
    println!("[ 0    0    2/11 9/11 ]");
    let paper_c = Matrix::from_rows(vec![
        vec![rat(9, 11), rat(2, 11), rat(0, 1), rat(0, 1)],
        vec![rat(0, 1), rat(1, 1), rat(0, 1), rat(0, 1)],
        vec![rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)],
        vec![rat(0, 1), rat(0, 1), rat(2, 11), rat(9, 11)],
    ])
    .unwrap();
    let paper_induced = g.post_process(&paper_c).unwrap();
    let paper_loss = request.consumer().disutility(&paper_induced).unwrap();

    section("Comparison (who wins, by how much)");
    println!(
        "loss of interacting with the paper's printed T  = {} ≈ {:.5}",
        paper_loss,
        paper_loss.to_f64()
    );
    println!(
        "loss of our exact optimal interaction           = {} ≈ {:.5}",
        interaction.loss,
        interaction.loss.to_f64()
    );
    println!(
        "loss of our exact tailored optimal mechanism    = {} ≈ {:.5}",
        tailored.loss,
        tailored.loss.to_f64()
    );
    println!(
        "Theorem 1 equality (tailored optimum == interaction with geometric): {}",
        tailored.loss == interaction.loss
    );
    let gap = (paper_loss.clone() - interaction.loss.clone()) / paper_loss;
    println!(
        "our exact optimum improves on the paper's rounded matrices by {:.3}% (expected < 1%)",
        100.0 * gap.to_f64()
    );
}
