//! Experiment E-ZOO-REGRET — the limits of universal optimality, as regret
//! tables.
//!
//! Theorem 1 says one mechanism (the geometric) serves *every* minimax
//! consumer of a count query optimally. Brenner–Nissim say that collapse is
//! special to counts: for sum and median queries no single mechanism can be
//! simultaneously optimal for all consumers. This experiment renders both
//! halves as exact regret tables over the zoo's standard three-consumer
//! panel (absolute loss / zero-one loss over full side information, plus
//! absolute loss knowing only the endpoints):
//!
//! * **Count, n = 3, α = 1/4** — the geometric candidate's regret row is
//!   identically zero and the tailored optimum reproduces the paper's
//!   pinned 168/415.
//! * **Sum, 2 rows × 2, α = 1/2** and **Median, 3 rows over {0,1,2},
//!   α = 1/2** — no candidate row is all-zero, and a consumer pair with
//!   *mutual* positive regret witnesses the impossibility.
//!
//! All arithmetic is exact rational; every printed fraction is the true
//! optimum, not a float estimate. Set `PRIVMECH_SWEEP_QUICK=1` to print the
//! three headline tables only (CI smoke); the full run additionally sweeps
//! the sum counterexample across α to show it is not an artifact of one
//! privacy level.

use std::sync::Arc;

use privmech_core::loss::{AbsoluteError, ZeroOneError};
use privmech_core::{MinimaxConsumer, PrivacyLevel, SideInformation};
use privmech_experiments::section;
use privmech_numerics::{rat, Rational};
use privmech_zoo::{regret_table, QueryClass, RegretTable};

/// The standard three-consumer panel over `{0, …, bound}` (the same panel
/// the zoo's pinned tests use).
fn panel(bound: usize) -> Vec<MinimaxConsumer<Rational>> {
    vec![
        MinimaxConsumer::new("abs", Arc::new(AbsoluteError), SideInformation::full(bound)).unwrap(),
        MinimaxConsumer::new(
            "zero-one",
            Arc::new(ZeroOneError),
            SideInformation::full(bound),
        )
        .unwrap(),
        MinimaxConsumer::new(
            "abs-ends",
            Arc::new(AbsoluteError),
            SideInformation::new(bound, [0, bound]).unwrap(),
        )
        .unwrap(),
    ]
}

fn print_table(table: &RegretTable<Rational>) {
    println!(
        "{:>22} | {}",
        "candidate \\ consumer",
        table
            .consumer_names
            .iter()
            .map(|n| format!("{n:>16}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "{:>22} | {}",
        "(tailored optimum)",
        table
            .opt
            .iter()
            .map(|v| format!("{:>16}", v.to_string()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for (row, name) in table.candidate_names.iter().enumerate() {
        println!(
            "{name:>22} | {}",
            table.regrets[row]
                .iter()
                .map(|v| format!("{:>16}", v.to_string()))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    match (&table.dominant[..], table.non_dominated_pair) {
        (dominant, _) if !dominant.is_empty() => {
            for &row in dominant {
                println!(
                    "=> dominant candidate: {} (regret row identically zero)",
                    table.candidate_names[row]
                );
            }
        }
        (_, Some((j, k))) => println!(
            "=> NO dominant candidate; consumers {} and {} have mutual positive regret \
             ({} vs {}) — the Brenner–Nissim witness",
            table.consumer_names[j],
            table.consumer_names[k],
            table.regrets[j][k],
            table.regrets[k][j],
        ),
        _ => println!("=> no dominant candidate and no witnessing pair (unexpected)"),
    }
}

fn main() {
    let quick = std::env::var("PRIVMECH_SWEEP_QUICK").is_ok_and(|v| v == "1");

    section("Count query, n = 3, α = 1/4: Theorem 1 as a regret table");
    let level = PrivacyLevel::new(rat(1, 4)).unwrap();
    let count = regret_table(&QueryClass::Count { n: 3 }, &level, &panel(3)).unwrap();
    print_table(&count);
    println!(
        "paper anchor: tailored optimum for the absolute consumer = {} (expected 168/415)",
        count.opt[0]
    );
    assert_eq!(count.opt[0], rat(168, 415));
    assert!(!count.dominant.is_empty(), "count table lost its collapse");

    section("Sum query, 2 rows × per-row ≤ 2, α = 1/2: the collapse fails");
    let level = PrivacyLevel::new(rat(1, 2)).unwrap();
    let sum_class = QueryClass::Sum {
        rows: 2,
        per_row: 2,
    };
    let sum = regret_table(&sum_class, &level, &panel(4)).unwrap();
    print_table(&sum);
    assert!(sum.dominant.is_empty(), "sum table unexpectedly collapsed");
    assert!(sum.non_dominated_pair.is_some(), "sum witness disappeared");

    section("Median query, 3 rows over {0,1,2}, α = 1/2: the collapse fails");
    let median = regret_table(
        &QueryClass::Median { rows: 3, domain: 3 },
        &level,
        &panel(3),
    )
    .unwrap();
    print_table(&median);
    assert!(
        median.dominant.is_empty(),
        "median table unexpectedly collapsed"
    );
    assert!(
        median.non_dominated_pair.is_some(),
        "median witness disappeared"
    );

    if quick {
        println!("\nPRIVMECH_SWEEP_QUICK=1: skipping the α-sweep of the sum counterexample");
        return;
    }

    section("α-sweep: the sum counterexample is not special to α = 1/2");
    println!(
        "{:>8} {:>10} {:>22} {:>22}",
        "alpha", "dominant?", "regret[j][k]", "regret[k][j]"
    );
    for (num, den) in [(1i64, 4i64), (1, 3), (1, 2), (2, 3), (3, 4)] {
        let level = PrivacyLevel::new(rat(num, den)).unwrap();
        let table = regret_table(&sum_class, &level, &panel(4)).unwrap();
        let (j, k) = table
            .non_dominated_pair
            .expect("sum counterexample vanished at this α");
        println!(
            "{:>8} {:>10} {:>22} {:>22}",
            format!("{num}/{den}"),
            if table.dominant.is_empty() {
                "no"
            } else {
                "YES"
            },
            table.regrets[j][k].to_string(),
            table.regrets[k][j].to_string(),
        );
        assert!(table.dominant.is_empty());
    }
    println!("no α in the sweep admits a dominant candidate for the sum class.");
}
