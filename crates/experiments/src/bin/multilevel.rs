//! Experiment E-ALG1 — Algorithm 1, Lemma 3 and Lemma 4: multi-level
//! collusion-resistant release.
//!
//! We build the correlated release chain for privacy levels
//! α = 1/5 < 1/3 < 1/2 < 3/4 over n = 20, verify structurally that every
//! transition matrix is stochastic and that the marginal seen at each level is
//! exactly the plain geometric mechanism (Lemma 3), and then run a Monte-Carlo
//! collusion experiment contrasting Algorithm 1 with the naive independent
//! release: under Algorithm 1 a coalition that averages its results learns no
//! more than its least-private member, while averaging naive independent
//! releases visibly cancels the noise (the failure mode the paper's
//! construction prevents).

use privmech_core::{collusion_experiment, PrivacyEngine, PrivacyLevel};
use privmech_experiments::{section, Tally};
use privmech_numerics::{rat, Rational};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 20usize;
    let engine = PrivacyEngine::new();
    let exact_levels: Vec<PrivacyLevel<Rational>> = [(1i64, 5i64), (1, 3), (1, 2), (3, 4)]
        .into_iter()
        .map(|(a, b)| PrivacyLevel::new(rat(a, b)).unwrap())
        .collect();

    section("Lemma 3 / Algorithm 1 structure (exact, n = 20, α = 1/5 < 1/3 < 1/2 < 3/4)");
    let release = engine.multi_level(n, exact_levels.clone()).unwrap();
    let mut tally = Tally::default();
    for (i, stage) in release.stages().iter().enumerate() {
        let stochastic = stage.is_row_stochastic();
        tally.record(stochastic);
        println!(
            "stage {i}: {}  (row-stochastic: {stochastic})",
            if i == 0 { "G_{n,α1}" } else { "T_{αi-1,αi}" }
        );
    }
    for (i, level) in release.levels().iter().enumerate() {
        let marginal = release.marginal_mechanism(i).unwrap();
        let direct = engine.geometric(n, level).unwrap();
        let equal = marginal == direct;
        tally.record(equal);
        println!("marginal mechanism at level {i} ({level}) equals G_{{n,α}} exactly: {equal}");
    }
    tally.report("structural checks (Lemma 3: every stage stochastic, every marginal geometric)");

    section("Collusion experiment (Lemma 4), 20,000 trials");
    // Six consumers at similar, strongly-private levels over n = 30: this is
    // the regime the paper's introduction warns about — with *independent*
    // re-randomizations a coalition can average its six noisy copies and
    // cancel the noise (Chernoff-style), whereas Algorithm 1's chained release
    // gives the coalition nothing beyond its least-private member.
    let collusion_n = 30usize;
    let float_levels: Vec<PrivacyLevel<f64>> = [0.70f64, 0.72, 0.74, 0.76, 0.78, 0.80]
        .into_iter()
        .map(|a| PrivacyLevel::new(a).unwrap())
        .collect();
    let float_release = engine.multi_level(collusion_n, float_levels).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let trials = 20_000usize;
    let true_result = 15usize;
    let correlated =
        collusion_experiment(&float_release, true_result, trials, true, &mut rng).unwrap();
    let naive = collusion_experiment(&float_release, true_result, trials, false, &mut rng).unwrap();

    println!(
        "{:<34} {:>18} {:>18}",
        "", "Algorithm 1 (chained)", "naive independent"
    );
    println!(
        "{:<34} {:>18.4} {:>18.4}",
        "coalition mean |error| (averaging)",
        correlated.coalition_mean_abs_error,
        naive.coalition_mean_abs_error
    );
    println!(
        "{:<34} {:>18.4} {:>18.4}",
        "least-private stage mean |error|",
        correlated.least_private_mean_abs_error,
        naive.least_private_mean_abs_error
    );
    println!(
        "{:<34} {:>18.4} {:>18.4}",
        "coalition exact-hit rate", correlated.coalition_hit_rate, naive.coalition_hit_rate
    );
    println!(
        "{:<34} {:>18.4} {:>18.4}",
        "least-private exact-hit rate",
        correlated.least_private_hit_rate,
        naive.least_private_hit_rate
    );

    section("Shape check (paper's qualitative claim)");
    let collusion_resistant =
        correlated.coalition_mean_abs_error + 0.05 >= correlated.least_private_mean_abs_error;
    let naive_leaks = naive.coalition_mean_abs_error < naive.least_private_mean_abs_error;
    println!(
        "Algorithm 1: coalition no better than least-private stage alone: {collusion_resistant}"
    );
    println!(
        "naive independent release: averaging cancels noise (coalition better): {naive_leaks}"
    );
    println!(
        "collusion-resistance reproduced: {}",
        if collusion_resistant && naive_leaks {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
