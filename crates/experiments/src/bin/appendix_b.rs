//! Experiment E-APXB — Appendix B: a differentially private mechanism that is
//! not derivable from the geometric mechanism.
//!
//! The paper exhibits an explicit ½-DP mechanism M over {0,…,3} and shows that
//! the Theorem 2 condition fails in one column, so M ≠ G_{3,1/2}·T for any
//! stochastic T. We verify (exactly) that M is ½-DP, locate the violated
//! window, and also compute G⁻¹·M explicitly to exhibit the negative entry.

use privmech_core::{
    appendix_b_mechanism, DerivabilityCheck, Mechanism, PrivacyEngine, PrivacyLevel,
};
use privmech_experiments::{print_matrix, section};
use privmech_numerics::{rat, Rational};

fn main() {
    let engine = PrivacyEngine::new();
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 2)).unwrap();
    let m: Mechanism<Rational> = appendix_b_mechanism();

    section("Appendix B mechanism M (paper's matrix)");
    print_matrix("M", m.matrix());
    println!(
        "row-stochastic: {}; is 1/2-differentially private: {}; best privacy level: {}",
        m.matrix().is_row_stochastic(),
        m.is_differentially_private(&level),
        m.best_privacy_level()
    );

    section("Theorem 2 characterization");
    match engine.check_derivability(&m, &level) {
        DerivabilityCheck::Derivable => {
            println!("UNEXPECTED: the characterization claims M is derivable");
        }
        DerivabilityCheck::Violated { column, row } => {
            println!(
                "violated in column {column}, rows {row}..{}; paper checks column 1 entries (2/9, 1/9, 2/9):",
                row + 2
            );
            let alpha = level.alpha().clone();
            let x1 = m.prob(row, column).unwrap().clone();
            let x2 = m.prob(row + 1, column).unwrap().clone();
            let x3 = m.prob(row + 2, column).unwrap().clone();
            let value = (Rational::one() + alpha.clone() * alpha.clone()) * x2 - alpha * (x1 + x3);
            println!(
                "(1+α²)·x2 − α·(x1+x3) = {value} ≈ {:.4}  (paper reports −0.75/9 ≈ −0.0833)",
                value.to_f64()
            );
        }
    }

    section("Explicit factorization attempt T = G⁻¹·M");
    let g = engine.geometric(3, &level).unwrap();
    let inv = g.matrix().inverse().unwrap();
    let t = inv.matmul(m.matrix()).unwrap();
    print_matrix("G_{3,1/2}⁻¹ · M (must contain a negative entry)", &t);
    let negative: Vec<(usize, usize)> = (0..4)
        .flat_map(|i| (0..4).map(move |j| (i, j)))
        .filter(|&(i, j)| t[(i, j)].is_negative())
        .collect();
    println!("negative entries at positions: {negative:?}");
    println!(
        "generalized-stochastic (unit row sums, as the stochastic-group argument requires): {}",
        t.is_generalized_stochastic()
    );
    println!(
        "conclusion: M is {} from the geometric mechanism — matches Appendix B",
        if negative.is_empty() {
            "derivable"
        } else {
            "NOT derivable"
        }
    );
}
