//! Experiment E-ZOO-LDP — the exact price of locality.
//!
//! In the local model each user randomizes their own bit before the
//! aggregator sees anything; the centralized model trusts a curator who
//! sees the true count. The zoo builds the **induced central mechanism** of
//! a local protocol (the exact distribution of the reported-ones count
//! given the true count) and scores it like any deployed mechanism: the
//! minimax consumer post-processes optimally (interaction LP) and the
//! difference to the centralized tailored optimum is the price of locality
//! — computed here as exact rationals, not asymptotics.
//!
//! The experiment prints the gap profile for randomized response and the
//! Hadamard response across user counts and privacy levels, and checks the
//! two structural facts the serving tier's `zoo_eval` op relies on: the gap
//! is strictly positive for every n ≥ 2, and it grows with n (locality
//! hurts more, absolutely, the more users must randomize).
//!
//! Set `PRIVMECH_SWEEP_QUICK=1` to cap the sweep at n = 4 and one α (CI
//! smoke); the full run goes to n = 8 across three privacy levels.

use std::sync::Arc;

use privmech_core::loss::AbsoluteError;
use privmech_core::PrivacyLevel;
use privmech_experiments::section;
use privmech_numerics::{rat, Rational};
use privmech_zoo::{ldp_gap, LdpProtocol};

fn main() {
    let quick = std::env::var("PRIVMECH_SWEEP_QUICK").is_ok_and(|v| v == "1");
    let max_users = if quick { 4 } else { 8 };
    let alphas: &[(i64, i64)] = if quick {
        &[(1, 4)]
    } else {
        &[(1, 4), (1, 2), (3, 4)]
    };

    for &(num, den) in alphas {
        let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(num, den)).unwrap();
        for protocol in [LdpProtocol::RandomizedResponse, LdpProtocol::Hadamard] {
            section(&format!(
                "{} at α = {num}/{den}, absolute loss, full side information",
                protocol.name()
            ));
            println!(
                "{:>4} {:>24} {:>24} {:>24} {:>10}",
                "n", "ldp loss", "central optimum", "gap", "gap (f64)"
            );
            let mut previous_gap = Rational::zero();
            for users in 2..=max_users {
                let point = ldp_gap(protocol, users, &level, Arc::new(AbsoluteError)).unwrap();
                println!(
                    "{:>4} {:>24} {:>24} {:>24} {:>10.5}",
                    users,
                    point.ldp_loss.to_string(),
                    point.central_loss.to_string(),
                    point.gap.to_string(),
                    point.gap.to_f64(),
                );
                assert!(
                    point.gap > Rational::zero(),
                    "locality came for free at n = {users}"
                );
                assert!(
                    point.gap > previous_gap,
                    "gap failed to grow at n = {users}"
                );
                previous_gap = point.gap;
            }
            println!("gap strictly positive and strictly growing in n — locality is never free.");
        }
    }
}
