//! Shared helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table, figure or claim of the
//! paper and prints the paper-reported value next to the reproduced value.
//! EXPERIMENTS.md records the outcome of running every binary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use privmech_linalg::{Matrix, Scalar};

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Print a matrix with a caption.
pub fn print_matrix<T: Scalar>(caption: &str, matrix: &Matrix<T>) {
    println!("{caption}:");
    print!("{matrix}");
}

/// Print a matrix converted to decimals (for easier visual comparison).
pub fn print_matrix_decimal<T: Scalar>(caption: &str, matrix: &Matrix<T>) {
    println!("{caption} (decimal):");
    for i in 0..matrix.rows() {
        print!("[ ");
        for j in 0..matrix.cols() {
            print!("{:>8.4} ", matrix[(i, j)].to_f64());
        }
        println!("]");
    }
}

/// Render a fixed-width ASCII bar for a probability (used by the Figure 1
/// binary).
#[must_use]
pub fn bar(probability: f64, width: usize) -> String {
    let filled = (probability.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { ' ' });
    }
    s
}

/// A simple pass/fail tally used by the sweep binaries.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tally {
    /// Number of checks that succeeded.
    pub passed: usize,
    /// Number of checks that failed.
    pub failed: usize,
}

impl Tally {
    /// Record one check.
    pub fn record(&mut self, ok: bool) {
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Print the tally and return `true` when everything passed.
    pub fn report(&self, what: &str) -> bool {
        println!("{what}: {} passed, {} failed", self.passed, self.failed);
        self.failed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::rat;

    #[test]
    fn bar_widths() {
        assert_eq!(bar(0.0, 10), "          ");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####     ");
        assert_eq!(bar(2.0, 4), "####");
    }

    #[test]
    fn tally_counts() {
        let mut t = Tally::default();
        t.record(true);
        t.record(true);
        t.record(false);
        assert_eq!(t.passed, 2);
        assert_eq!(t.failed, 1);
        assert!(!t.report("example"));
    }

    #[test]
    fn matrix_printers_do_not_panic() {
        let m = Matrix::from_rows(vec![vec![rat(1, 2), rat(1, 3)]]).unwrap();
        print_matrix("caption", &m);
        print_matrix_decimal("caption", &m);
        section("section");
    }
}
