//! The Appendix A construction: obliviousness is without loss of generality.
//!
//! A *non-oblivious* mechanism assigns each database its own output
//! distribution, even when two databases have the same query result. Appendix
//! A shows that averaging the output distributions over all databases with the
//! same query result yields an oblivious mechanism that (i) is still
//! α-differentially private and (ii) has no larger minimax loss. This module
//! implements that construction over an explicit universe of databases so the
//! claim can be verified computationally (experiment E-APXA).

use std::collections::BTreeMap;

use privmech_core::{CoreError, LossFunction, Mechanism, PrivacyLevel, Result};
use privmech_linalg::{Matrix, Scalar};

use crate::records::{CountQuery, Database};

/// A (possibly non-oblivious) mechanism over an explicit universe of
/// databases: each database has its own distribution over outputs
/// `{0, …, n}`, where `n` is the (common) number of rows of the databases.
#[derive(Debug, Clone)]
pub struct DatabaseMechanism<T: Scalar> {
    databases: Vec<Database>,
    /// `rows[d][r]` = probability of releasing `r` on database `d`.
    rows: Vec<Vec<T>>,
    query: CountQuery,
}

impl<T: Scalar> DatabaseMechanism<T> {
    /// Build a database-level mechanism, validating shapes and stochasticity.
    pub fn new(databases: Vec<Database>, rows: Vec<Vec<T>>, query: CountQuery) -> Result<Self> {
        if databases.is_empty() {
            return Err(CoreError::InvalidMechanism {
                reason: "at least one database is required".to_string(),
            });
        }
        let n = databases[0].len();
        if databases.iter().any(|d| d.len() != n) {
            return Err(CoreError::InvalidMechanism {
                reason: "all databases must have the same number of rows".to_string(),
            });
        }
        if rows.len() != databases.len() {
            return Err(CoreError::InvalidMechanism {
                reason: format!(
                    "need one distribution per database: {} vs {}",
                    rows.len(),
                    databases.len()
                ),
            });
        }
        for (d, row) in rows.iter().enumerate() {
            if row.len() != n + 1 {
                return Err(CoreError::InvalidMechanism {
                    reason: format!(
                        "distribution {d} has length {}, expected {}",
                        row.len(),
                        n + 1
                    ),
                });
            }
            let mut sum = T::zero();
            for v in row {
                if v.is_negative_approx() {
                    return Err(CoreError::InvalidMechanism {
                        reason: format!("negative probability in distribution {d}"),
                    });
                }
                sum = sum + v.clone();
            }
            if !sum.approx_eq(&T::one()) {
                return Err(CoreError::InvalidMechanism {
                    reason: format!("distribution {d} sums to {sum}, expected 1"),
                });
            }
        }
        Ok(DatabaseMechanism {
            databases,
            rows,
            query,
        })
    }

    /// The database universe.
    #[must_use]
    pub fn databases(&self) -> &[Database] {
        &self.databases
    }

    /// The common database size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.databases[0].len()
    }

    /// The query this mechanism answers.
    #[must_use]
    pub fn query(&self) -> &CountQuery {
        &self.query
    }

    /// True iff the mechanism is oblivious over this universe: databases with
    /// the same query result have identical output distributions.
    #[must_use]
    pub fn is_oblivious(&self) -> bool {
        let mut seen: BTreeMap<usize, &Vec<T>> = BTreeMap::new();
        for (db, row) in self.databases.iter().zip(self.rows.iter()) {
            let count = self.query.evaluate(db);
            match seen.get(&count) {
                None => {
                    seen.insert(count, row);
                }
                Some(existing) => {
                    if existing
                        .iter()
                        .zip(row.iter())
                        .any(|(a, b)| !a.approx_eq(b))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Check α-differential privacy over every *neighboring* pair of databases
    /// in the universe (databases differing in at most one row).
    #[must_use]
    pub fn is_differentially_private(&self, level: &PrivacyLevel<T>) -> bool {
        let alpha = level.alpha();
        if *alpha == T::zero() {
            return true;
        }
        for (a, row_a) in self.databases.iter().zip(self.rows.iter()) {
            for (b, row_b) in self.databases.iter().zip(self.rows.iter()) {
                if !a.is_neighbor_of(b) {
                    continue;
                }
                for (pa, pb) in row_a.iter().zip(row_b.iter()) {
                    if !pb.approx_ge(&(alpha.clone() * pa.clone()))
                        || !pa.approx_ge(&(alpha.clone() * pb.clone()))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Worst-case expected loss over databases whose query result lies in the
    /// side-information set `S` (Equation 5 of Appendix A).
    ///
    /// The expected-loss accumulation and worst-case fold are the core
    /// crate's [`privmech_core::worst_case_loss`] — the same kernel behind
    /// [`privmech_core::Mechanism::minimax_loss`] — applied to one
    /// distribution per *database* instead of one per count.
    pub fn minimax_loss(
        &self,
        side_information: &[usize],
        loss: &dyn LossFunction<T>,
    ) -> Result<T> {
        let relevant = self
            .databases
            .iter()
            .zip(self.rows.iter())
            .filter_map(|(db, row)| {
                let count = self.query.evaluate(db);
                side_information
                    .contains(&count)
                    .then_some((count, row.as_slice()))
            });
        privmech_core::worst_case_loss(relevant, loss).ok_or_else(|| {
            CoreError::InvalidSideInformation {
                reason: "no database in the universe has a query result inside S".to_string(),
            }
        })
    }

    /// The Appendix A averaging construction: the oblivious mechanism whose
    /// row for query result `i` is the average of the distributions of all
    /// databases with that result. Query results not realized by any database
    /// in the universe fall back to a point mass on themselves (they are never
    /// reachable, so any valid distribution works).
    pub fn averaged_oblivious(&self) -> Result<Mechanism<T>> {
        let n = self.n();
        let mut sums: Vec<Option<(Vec<T>, usize)>> = vec![None; n + 1];
        for (db, row) in self.databases.iter().zip(self.rows.iter()) {
            let count = self.query.evaluate(db);
            match &mut sums[count] {
                None => sums[count] = Some((row.clone(), 1)),
                Some((acc, k)) => {
                    for (a, v) in acc.iter_mut().zip(row.iter()) {
                        *a = a.clone() + v.clone();
                    }
                    *k += 1;
                }
            }
        }
        let matrix = Matrix::from_fn(n + 1, n + 1, |i, r| match &sums[i] {
            Some((acc, k)) => acc[r].clone() / T::from_i64(*k as i64),
            None => {
                if i == r {
                    T::one()
                } else {
                    T::zero()
                }
            }
        });
        Mechanism::from_matrix(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Predicate, Record};
    use privmech_core::AbsoluteError;
    use privmech_numerics::{rat, Rational};

    /// A tiny universe: two-person databases where each person either has the
    /// flu or not (region/age/drug fixed), so the query result is 0, 1 or 2.
    fn tiny_universe() -> (Vec<Database>, CountQuery) {
        let person = |flu: bool| Record::new(30, "San Diego", flu, false);
        let dbs = vec![
            Database::new(vec![person(false), person(false)]),
            Database::new(vec![person(false), person(true)]),
            Database::new(vec![person(true), person(false)]),
            Database::new(vec![person(true), person(true)]),
        ];
        let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
        (dbs, q)
    }

    /// A non-oblivious ½-DP mechanism: the two databases with count 1 get
    /// *different* output distributions.
    fn non_oblivious_mechanism() -> DatabaseMechanism<Rational> {
        let (dbs, q) = tiny_universe();
        let rows = vec![
            vec![rat(1, 2), rat(1, 4), rat(1, 4)],
            vec![rat(1, 4), rat(1, 2), rat(1, 4)],
            vec![rat(3, 8), rat(3, 8), rat(1, 4)],
            vec![rat(1, 4), rat(1, 4), rat(1, 2)],
        ];
        DatabaseMechanism::new(dbs, rows, q).unwrap()
    }

    #[test]
    fn validation_rejects_malformed_inputs() {
        let (dbs, q) = tiny_universe();
        assert!(DatabaseMechanism::<Rational>::new(vec![], vec![], q.clone()).is_err());
        // Wrong number of rows.
        assert!(
            DatabaseMechanism::new(dbs.clone(), vec![vec![rat(1, 1); 3]; 2], q.clone()).is_err()
        );
        // Wrong distribution length.
        assert!(DatabaseMechanism::new(
            dbs.clone(),
            vec![vec![rat(1, 2), rat(1, 2)]; 4],
            q.clone()
        )
        .is_err());
        // Negative probability.
        let mut rows = vec![vec![rat(1, 3); 3]; 4];
        rows[0] = vec![rat(3, 2), rat(-1, 4), rat(-1, 4)];
        assert!(DatabaseMechanism::new(dbs.clone(), rows, q.clone()).is_err());
        // Mixed database sizes.
        let mut mixed = dbs.clone();
        mixed[0] = Database::new(vec![Record::new(30, "San Diego", false, false)]);
        assert!(DatabaseMechanism::new(mixed, vec![vec![rat(1, 3); 3]; 4], q).is_err());
    }

    #[test]
    fn obliviousness_detection() {
        let m = non_oblivious_mechanism();
        assert!(!m.is_oblivious());
        assert_eq!(m.n(), 2);
        // Making the two count-1 databases share a distribution restores
        // obliviousness.
        let (dbs, q) = tiny_universe();
        let rows = vec![
            vec![rat(1, 2), rat(1, 4), rat(1, 4)],
            vec![rat(1, 4), rat(1, 2), rat(1, 4)],
            vec![rat(1, 4), rat(1, 2), rat(1, 4)],
            vec![rat(1, 4), rat(1, 4), rat(1, 2)],
        ];
        let oblivious = DatabaseMechanism::new(dbs, rows, q).unwrap();
        assert!(oblivious.is_oblivious());
    }

    #[test]
    fn averaging_preserves_privacy_and_does_not_increase_loss() {
        // The Appendix A claim on the tiny universe.
        let m = non_oblivious_mechanism();
        let half = PrivacyLevel::new(rat(1, 2)).unwrap();
        assert!(m.is_differentially_private(&half));

        let averaged = m.averaged_oblivious().unwrap();
        assert!(averaged.matrix().is_row_stochastic());
        assert!(averaged.is_differentially_private(&half));

        let s: Vec<usize> = vec![0, 1, 2];
        let loss = AbsoluteError;
        let non_oblivious_loss = m.minimax_loss(&s, &loss).unwrap();
        let oblivious_loss = averaged.minimax_loss(&s, &loss).unwrap();
        assert!(oblivious_loss <= non_oblivious_loss);
    }

    #[test]
    fn averaged_rows_are_the_group_averages() {
        let m = non_oblivious_mechanism();
        let averaged = m.averaged_oblivious().unwrap();
        // Count 1 is realized by two databases with distributions
        // (1/4,1/2,1/4) and (3/8,3/8,1/4); the average is (5/16, 7/16, 1/4).
        assert_eq!(*averaged.prob(1, 0).unwrap(), rat(5, 16));
        assert_eq!(*averaged.prob(1, 1).unwrap(), rat(7, 16));
        assert_eq!(*averaged.prob(1, 2).unwrap(), rat(1, 4));
        // Counts 0 and 2 are realized by a single database each.
        assert_eq!(*averaged.prob(0, 0).unwrap(), rat(1, 2));
        assert_eq!(*averaged.prob(2, 2).unwrap(), rat(1, 2));
    }

    #[test]
    fn minimax_loss_requires_reachable_side_information() {
        let m = non_oblivious_mechanism();
        assert!(m.minimax_loss(&[7], &AbsoluteError).is_err());
        let full = m.minimax_loss(&[0, 1, 2], &AbsoluteError).unwrap();
        let restricted = m.minimax_loss(&[1], &AbsoluteError).unwrap();
        assert!(restricted <= full);
    }

    #[test]
    fn dp_check_detects_violations_between_neighbors() {
        let (dbs, q) = tiny_universe();
        // Database 0 (count 0) and database 1 (count 1) are neighbors; give
        // them wildly different distributions.
        let rows = vec![
            vec![rat(1, 1), rat(0, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(0, 1), rat(1, 1)],
        ];
        let m = DatabaseMechanism::new(dbs, rows, q).unwrap();
        let half = PrivacyLevel::new(rat(1, 2)).unwrap();
        assert!(!m.is_differentially_private(&half));
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        assert!(m.is_differentially_private(&zero));
    }
}
