//! The database substrate of the paper's running example: rows about
//! individuals, predicates over rows, count queries, and the neighboring
//! relation of differential privacy.
//!
//! The paper's motivating query is *"How many adults from San Diego contracted
//! the flu this October?"*. The mechanisms only ever see the true count, so
//! any synthetic dataset with configurable prevalence exercises exactly the
//! same code paths as the (unavailable) real data — see the substitution table
//! in DESIGN.md.

use std::fmt;
use std::sync::Arc;

use rand::Rng;

/// A single individual's row in the database domain `D`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Age in years.
    pub age: u32,
    /// Region of residence (e.g. "San Diego").
    pub region: String,
    /// Whether the individual contracted the flu in the reporting period.
    pub contracted_flu: bool,
    /// Whether the individual bought the drug company's flu drug.
    pub bought_drug: bool,
}

impl Record {
    /// Convenience constructor.
    #[must_use]
    pub fn new(
        age: u32,
        region: impl Into<String>,
        contracted_flu: bool,
        bought_drug: bool,
    ) -> Self {
        Record {
            age,
            region: region.into(),
            contracted_flu,
            bought_drug,
        }
    }

    /// True iff the individual is an adult (age ≥ 18).
    #[must_use]
    pub fn is_adult(&self) -> bool {
        self.age >= 18
    }
}

/// A predicate over rows; a count query counts the rows satisfying it.
#[derive(Clone)]
pub struct Predicate {
    name: String,
    test: Arc<dyn Fn(&Record) -> bool + Send + Sync>,
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Predicate({})", self.name)
    }
}

impl Predicate {
    /// Build a predicate from a closure.
    pub fn new(
        name: impl Into<String>,
        test: impl Fn(&Record) -> bool + Send + Sync + 'static,
    ) -> Self {
        Predicate {
            name: name.into(),
            test: Arc::new(test),
        }
    }

    /// The paper's running example: adults in `region` who contracted the flu.
    #[must_use]
    pub fn adults_with_flu_in(region: &str) -> Self {
        let region = region.to_string();
        Predicate::new(format!("adults with flu in {region}"), move |r: &Record| {
            r.is_adult() && r.contracted_flu && r.region == region
        })
    }

    /// Individuals who bought the flu drug (the drug company's side information).
    #[must_use]
    pub fn bought_drug() -> Self {
        Predicate::new("bought the flu drug", |r: &Record| r.bought_drug)
    }

    /// Evaluate the predicate on a row.
    #[must_use]
    pub fn matches(&self, record: &Record) -> bool {
        (self.test)(record)
    }

    /// The predicate's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Conjunction of two predicates.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        let name = format!("({}) and ({})", self.name, other.name);
        Predicate::new(name, move |r: &Record| self.matches(r) && other.matches(r))
    }

    /// Disjunction of two predicates.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        let name = format!("({}) or ({})", self.name, other.name);
        Predicate::new(name, move |r: &Record| self.matches(r) || other.matches(r))
    }

    /// Negation of a predicate.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder-style negation, not `ops::Not`
    pub fn not(self) -> Predicate {
        let name = format!("not ({})", self.name);
        Predicate::new(name, move |r: &Record| !self.matches(r))
    }
}

/// A database: a fixed-size collection of rows, one per individual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    rows: Vec<Record>,
}

impl Database {
    /// Wrap a vector of rows.
    #[must_use]
    pub fn new(rows: Vec<Record>) -> Self {
        Database { rows }
    }

    /// Number of rows `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the database has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow the rows.
    #[must_use]
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Replace a single row, producing a neighboring database.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn with_row_replaced(&self, index: usize, record: Record) -> Database {
        let mut rows = self.rows.clone();
        rows[index] = record;
        Database { rows }
    }

    /// Number of rows in which two equal-sized databases differ.
    ///
    /// Returns `None` if the databases have different sizes (the neighbor
    /// relation of Definition 2 is only defined for equal-sized databases).
    #[must_use]
    pub fn hamming_distance(&self, other: &Database) -> Option<usize> {
        if self.len() != other.len() {
            return None;
        }
        Some(
            self.rows
                .iter()
                .zip(other.rows.iter())
                .filter(|(a, b)| a != b)
                .count(),
        )
    }

    /// True iff the databases differ in at most one individual's data.
    #[must_use]
    pub fn is_neighbor_of(&self, other: &Database) -> bool {
        matches!(self.hamming_distance(other), Some(0) | Some(1))
    }
}

/// A count query: the number of rows satisfying a predicate, a value in
/// `{0, …, n}`.
#[derive(Debug, Clone)]
pub struct CountQuery {
    predicate: Predicate,
}

impl CountQuery {
    /// Build a count query from a predicate.
    #[must_use]
    pub fn new(predicate: Predicate) -> Self {
        CountQuery { predicate }
    }

    /// The underlying predicate.
    #[must_use]
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Evaluate the query on a database.
    #[must_use]
    pub fn evaluate(&self, db: &Database) -> usize {
        db.rows()
            .iter()
            .filter(|r| self.predicate.matches(r))
            .count()
    }

    /// The sensitivity of a count query: changing one row changes the result
    /// by at most one. Exposed as a method (always 1) so the bound the paper
    /// relies on is explicit and testable.
    #[must_use]
    pub fn sensitivity(&self) -> usize {
        1
    }
}

/// Parameters of the synthetic "San Diego flu" population generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticPopulation {
    /// Number of individuals.
    pub size: usize,
    /// Probability that an individual is an adult.
    pub adult_rate: f64,
    /// Probability that an adult contracted the flu.
    pub flu_rate: f64,
    /// Probability that an individual with the flu bought the drug.
    pub drug_rate_given_flu: f64,
    /// Probability that an individual without the flu bought the drug.
    pub drug_rate_without_flu: f64,
}

impl Default for SyntheticPopulation {
    fn default() -> Self {
        SyntheticPopulation {
            size: 1000,
            adult_rate: 0.75,
            flu_rate: 0.08,
            drug_rate_given_flu: 0.6,
            drug_rate_without_flu: 0.05,
        }
    }
}

impl SyntheticPopulation {
    /// Generate a synthetic database for the given region.
    pub fn generate<R: Rng + ?Sized>(&self, region: &str, rng: &mut R) -> Database {
        let rows = (0..self.size)
            .map(|_| {
                let adult = rng.gen_bool(self.adult_rate.clamp(0.0, 1.0));
                let age = if adult {
                    rng.gen_range(18..=95)
                } else {
                    rng.gen_range(0..18)
                };
                let flu = rng.gen_bool(self.flu_rate.clamp(0.0, 1.0));
                let drug_rate = if flu {
                    self.drug_rate_given_flu
                } else {
                    self.drug_rate_without_flu
                };
                let drug = rng.gen_bool(drug_rate.clamp(0.0, 1.0));
                Record::new(age, region, flu, drug)
            })
            .collect();
        Database::new(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_db() -> Database {
        Database::new(vec![
            Record::new(34, "San Diego", true, true),
            Record::new(12, "San Diego", true, false),
            Record::new(60, "San Diego", false, false),
            Record::new(45, "Sacramento", true, true),
        ])
    }

    #[test]
    fn predicates_and_count_queries() {
        let db = sample_db();
        let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
        assert_eq!(q.evaluate(&db), 1);
        assert_eq!(q.sensitivity(), 1);
        let drug = CountQuery::new(Predicate::bought_drug());
        assert_eq!(drug.evaluate(&db), 2);
        let both = CountQuery::new(
            Predicate::adults_with_flu_in("San Diego").and(Predicate::bought_drug()),
        );
        assert_eq!(both.evaluate(&db), 1);
        let either = CountQuery::new(
            Predicate::adults_with_flu_in("San Diego").or(Predicate::bought_drug()),
        );
        assert_eq!(either.evaluate(&db), 2);
        let neither = CountQuery::new(Predicate::bought_drug().not());
        assert_eq!(neither.evaluate(&db), 2);
        assert!(Predicate::bought_drug().name().contains("drug"));
        assert!(format!("{:?}", Predicate::bought_drug()).contains("Predicate"));
    }

    #[test]
    fn neighbors_and_hamming_distance() {
        let db = sample_db();
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
        assert!(db.is_neighbor_of(&db));
        let neighbor = db.with_row_replaced(1, Record::new(30, "San Diego", false, false));
        assert_eq!(db.hamming_distance(&neighbor), Some(1));
        assert!(db.is_neighbor_of(&neighbor));
        let far = neighbor.with_row_replaced(0, Record::new(2, "Fresno", false, false));
        assert_eq!(db.hamming_distance(&far), Some(2));
        assert!(!db.is_neighbor_of(&far));
        let smaller = Database::new(db.rows()[..2].to_vec());
        assert_eq!(db.hamming_distance(&smaller), None);
        assert!(!db.is_neighbor_of(&smaller));
    }

    #[test]
    fn count_query_changes_by_at_most_one_on_neighbors() {
        let db = sample_db();
        let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
        let base = q.evaluate(&db);
        for i in 0..db.len() {
            for replacement in [
                Record::new(40, "San Diego", true, false),
                Record::new(5, "San Diego", false, false),
                Record::new(70, "Sacramento", true, true),
            ] {
                let neighbor = db.with_row_replaced(i, replacement);
                let value = q.evaluate(&neighbor);
                assert!(base.abs_diff(value) <= q.sensitivity());
            }
        }
    }

    #[test]
    fn synthetic_population_matches_parameters_roughly() {
        let params = SyntheticPopulation {
            size: 5000,
            adult_rate: 0.8,
            flu_rate: 0.1,
            drug_rate_given_flu: 0.5,
            drug_rate_without_flu: 0.02,
        };
        let mut rng = StdRng::seed_from_u64(2024);
        let db = params.generate("San Diego", &mut rng);
        assert_eq!(db.len(), 5000);
        let adults = db.rows().iter().filter(|r| r.is_adult()).count() as f64 / 5000.0;
        assert!((adults - 0.8).abs() < 0.03);
        let flu = db.rows().iter().filter(|r| r.contracted_flu).count() as f64 / 5000.0;
        assert!((flu - 0.1).abs() < 0.02);
        // The query result is bounded by the database size, as the paper's
        // "population of San Diego" side information requires.
        let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
        assert!(q.evaluate(&db) <= db.len());
    }
}
