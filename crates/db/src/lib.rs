//! # privmech-db
//!
//! The database substrate of the paper's running example: rows about
//! individuals, predicates, count queries, the neighbor relation of
//! differential privacy, a synthetic "San Diego flu" population generator, and
//! the Appendix A construction showing that restricting attention to oblivious
//! mechanisms is without loss of generality.
//!
//! ```
//! use privmech_db::{CountQuery, Predicate, Record, Database};
//!
//! let db = Database::new(vec![
//!     Record::new(34, "San Diego", true, false),
//!     Record::new(51, "San Diego", false, false),
//! ]);
//! let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
//! assert_eq!(q.evaluate(&db), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod oblivious;
pub mod records;

pub use oblivious::DatabaseMechanism;
pub use records::{CountQuery, Database, Predicate, Record, SyntheticPopulation};
