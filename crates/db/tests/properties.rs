//! Property-based tests for the database substrate: count-query sensitivity,
//! neighbor symmetry, and the Appendix A averaging construction on random
//! non-oblivious mechanisms.

use privmech_core::{AbsoluteError, PrivacyLevel};
use privmech_db::{CountQuery, Database, DatabaseMechanism, Predicate, Record};
use privmech_numerics::{rat, Rational};
use proptest::prelude::*;

fn record_from_bits(flu: bool, drug: bool) -> Record {
    Record::new(40, "San Diego", flu, drug)
}

/// All 2^n databases over n binary (flu) individuals.
fn boolean_universe(n: usize) -> Vec<Database> {
    (0..(1usize << n))
        .map(|mask| {
            Database::new(
                (0..n)
                    .map(|i| record_from_bits((mask >> i) & 1 == 1, false))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_query_sensitivity_is_one(
        flu in prop::collection::vec(any::<bool>(), 1..12),
        replace_index in 0usize..12,
        new_flu in any::<bool>(),
        new_drug in any::<bool>(),
    ) {
        let db = Database::new(flu.iter().map(|&f| record_from_bits(f, false)).collect());
        let idx = replace_index % db.len();
        let neighbor = db.with_row_replaced(idx, record_from_bits(new_flu, new_drug));
        let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
        prop_assert!(db.is_neighbor_of(&neighbor));
        prop_assert!(neighbor.is_neighbor_of(&db));
        prop_assert!(q.evaluate(&db).abs_diff(q.evaluate(&neighbor)) <= 1);
        prop_assert!(q.evaluate(&db) <= db.len());
    }

    #[test]
    fn hamming_distance_is_symmetric_and_bounded(
        a in prop::collection::vec(any::<bool>(), 6),
        b in prop::collection::vec(any::<bool>(), 6),
    ) {
        let da = Database::new(a.iter().map(|&f| record_from_bits(f, false)).collect());
        let db_ = Database::new(b.iter().map(|&f| record_from_bits(f, false)).collect());
        let d1 = da.hamming_distance(&db_).unwrap();
        let d2 = db_.hamming_distance(&da).unwrap();
        prop_assert_eq!(d1, d2);
        prop_assert!(d1 <= 6);
        prop_assert_eq!(da.hamming_distance(&da), Some(0));
    }

    #[test]
    fn averaging_random_noisy_mechanisms_preserves_privacy_and_loss(
        weights in prop::collection::vec(1i64..=6, 8 * 4),
    ) {
        // Universe: all 8 databases over 3 binary rows. Build a non-oblivious
        // mechanism by perturbing the geometric row for each database with
        // database-specific weights, then mixing enough uniform mass to keep
        // neighboring databases within a factor 2 of each other.
        let n = 3usize;
        let dbs = boolean_universe(n);
        let q = CountQuery::new(Predicate::adults_with_flu_in("San Diego"));
        // Each database's distribution: 3/4 uniform + 1/4 private weights.
        let rows: Vec<Vec<Rational>> = dbs
            .iter()
            .enumerate()
            .map(|(d, _)| {
                let w = &weights[d * (n + 1)..(d + 1) * (n + 1)];
                let total: i64 = w.iter().sum();
                (0..=n)
                    .map(|r| rat(3, 4) * rat(1, (n + 1) as i64) + rat(1, 4) * rat(w[r], total))
                    .collect()
            })
            .collect();
        let mechanism = DatabaseMechanism::new(dbs, rows, q).unwrap();
        // The uniform floor of 3/16 against a maximum entry of 3/16 + 1/4
        // keeps every ratio within [6/16 / ... ] — concretely within 1/2.37,
        // so α = 2/5 is always satisfied.
        let level = PrivacyLevel::new(rat(2, 5)).unwrap();
        prop_assert!(mechanism.is_differentially_private(&level));

        let averaged = mechanism.averaged_oblivious().unwrap();
        prop_assert!(averaged.matrix().is_row_stochastic());
        prop_assert!(averaged.is_differentially_private(&level));

        let s: Vec<usize> = (0..=n).collect();
        let loss = AbsoluteError;
        let before = mechanism.minimax_loss(&s, &loss).unwrap();
        let after = averaged.minimax_loss(&s, &loss).unwrap();
        prop_assert!(after <= before);
    }
}
