//! The fleet's core contract, checked differentially: a seeded mixed
//! workload replayed against a single `privmech-serve` process and against
//! a 4-shard fleet behind the consistent-hash router produces **byte
//! identical** reply streams, request for request.
//!
//! Responses in this protocol are pure functions of the parsed request plus
//! the per-key cache history, and the router partitions the keyspace — so
//! the k-th occurrence of a key is also its k-th occurrence on the owning
//! shard, and every disposition (`miss` then `hit` then `hit`…) lines up
//! with the single process. The comparison below therefore demands equality
//! of the *entire* frame sequence per request — streamed `sweep_item`s, the
//! terminal frame, envelopes, dispositions, everything — not just result
//! payloads. Afterwards the fan-out `stats` aggregation must agree with the
//! single process on every cache counter that is topology-independent.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use privmech_load::{Population, WorkloadConfig};
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::router::{self, RouterConfig};
use privmech_serve::server::{self, ServerConfig};

const SHARDS: usize = 4;
const REPLAY_LEN: usize = 160;

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Send `body` and collect its complete reply stream: zero or more
/// `sweep_item` frames followed by exactly one terminal frame.
fn exchange(stream: &TcpStream, body: &Json) -> Vec<Vec<u8>> {
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, json::to_string(body).as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut frames = Vec::new();
    loop {
        let frame = read_frame(&mut reader)
            .expect("read")
            .expect("reply before EOF");
        let streaming = json::parse(std::str::from_utf8(&frame).expect("UTF-8"))
            .expect("JSON")
            .get("stream")
            .map(|s| s.as_str() == Some("sweep_item"))
            .unwrap_or(false);
        frames.push(frame);
        if !streaming {
            return frames;
        }
    }
}

/// The topology-independent cache counters from a `stats` reply.
fn cache_counters(stream: &TcpStream) -> Vec<(String, u64)> {
    let reply = exchange(
        stream,
        &Json::obj()
            .with("v", Json::num_u64(2))
            .with("id", Json::num_u64(u64::MAX))
            .with("op", Json::str("stats")),
    );
    let parsed = json::parse(std::str::from_utf8(&reply[0]).expect("UTF-8")).expect("JSON");
    let result = parsed.get("result").expect("stats result");
    [
        "hits",
        "misses",
        "evictions",
        "entries",
        "neg_hits",
        "neg_misses",
    ]
    .iter()
    .map(|field| {
        (
            field.to_string(),
            result.get(field).and_then(Json::as_u64).expect("counter"),
        )
    })
    .collect()
}

#[test]
fn fleet_replay_is_byte_identical_to_a_single_process() {
    let workload = WorkloadConfig {
        seed: 11,
        templates: 32,
        ..WorkloadConfig::default()
    };
    let population = Population::generate(&workload);
    let order = population.sample_indices(0xFEED, REPLAY_LEN);

    let single = server::spawn(ServerConfig::default()).expect("spawn single server");
    let shards: Vec<_> = (0..SHARDS)
        .map(|_| server::spawn(ServerConfig::default()).expect("spawn shard"))
        .collect();
    let fleet = router::spawn(RouterConfig::new(
        shards.iter().map(|s| s.addr().to_string()).collect(),
    ))
    .expect("spawn router");

    let single_conn = connect(single.addr());
    let fleet_conn = connect(fleet.addr());

    for (k, &rank) in order.iter().enumerate() {
        let body = population.templates[rank]
            .body
            .clone()
            .with("v", Json::num_u64(2))
            .with("id", Json::num_u64(k as u64));
        let from_single = exchange(&single_conn, &body);
        let from_fleet = exchange(&fleet_conn, &body);
        assert_eq!(
            from_single, from_fleet,
            "replay step {k} (template rank {rank}, op {}) diverged between \
             the single process and the routed fleet",
            population.templates[rank].op,
        );
    }

    // The fan-out `stats` aggregation sums per-shard counters; every
    // topology-independent one must match the single process exactly —
    // same keys, same per-key histories, same hit/miss arithmetic, just
    // partitioned.
    assert_eq!(cache_counters(&single_conn), cache_counters(&fleet_conn));

    fleet.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    single.shutdown();
}
