//! Statistical and determinism guarantees of the synthetic workload.
//!
//! The harness is only trustworthy if (a) a seed pins the workload down to
//! the byte, so capacity records are reproducible, and (b) the Zipf sampler
//! actually produces the popularity curve it claims, so cache-hit ratios in
//! a run mean what the workload model says they mean.

use privmech_load::{Population, WorkloadConfig, ZipfSampler};
use privmech_serve::json;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn population_generation_is_deterministic_in_the_seed() {
    let config = WorkloadConfig::default();
    let first = Population::generate(&config);
    let second = Population::generate(&config);
    assert_eq!(first.templates.len(), second.templates.len());
    for (a, b) in first.templates.iter().zip(&second.templates) {
        assert_eq!(a.op, b.op);
        assert_eq!(json::to_string(&a.body), json::to_string(&b.body));
    }

    let other = Population::generate(&WorkloadConfig {
        seed: config.seed + 1,
        ..config
    });
    let render = |population: &Population| {
        population
            .templates
            .iter()
            .map(|t| json::to_string(&t.body))
            .collect::<Vec<_>>()
    };
    assert_ne!(
        render(&first),
        render(&other),
        "different seeds must generate different template sets"
    );
}

#[test]
fn arrival_sampling_is_deterministic_in_its_own_seed() {
    let population = Population::generate(&WorkloadConfig::default());
    let a = population.sample_indices(11, 5000);
    let b = population.sample_indices(11, 5000);
    assert_eq!(a, b, "equal arrival seeds must draw equal sequences");
    let c = population.sample_indices(12, 5000);
    assert_ne!(a, c, "distinct arrival seeds must diverge");
}

#[test]
fn zipf_empirical_rank_frequency_matches_the_distribution() {
    const RANKS: usize = 16;
    const DRAWS: usize = 200_000;
    let zipf = ZipfSampler::new(RANKS, 1.0);
    let mut rng = StdRng::seed_from_u64(99);
    let mut counts = [0usize; RANKS];
    for _ in 0..DRAWS {
        counts[zipf.sample(&mut rng)] += 1;
    }
    for (k, &count) in counts.iter().enumerate() {
        let expected = zipf.probability(k);
        let observed = count as f64 / DRAWS as f64;
        // 5% relative + a small absolute floor: ~18σ at rank 15 (p ≈ 0.018,
        // σ ≈ 0.0003 over 200k draws), so this never flakes while still
        // catching an off-by-one in the CDF search or a mis-normalized tail.
        let tolerance = 0.05 * expected + 0.001;
        assert!(
            (observed - expected).abs() < tolerance,
            "rank {k}: observed {observed:.5}, expected {expected:.5}"
        );
    }
    // The defining Zipf shape survives sampling: strictly more draws for
    // every more-popular rank at this exponent and sample size.
    for k in 1..RANKS {
        assert!(
            counts[k] < counts[k - 1],
            "rank {k} drawn {} times, rank {} drawn {} times",
            counts[k],
            k - 1,
            counts[k - 1]
        );
    }
}
