//! End-to-end proof of the open loop: the runner keeps sending while the
//! server is busy, so requests overlap in flight — a closed-loop (replay)
//! client on one connection can never have more than one outstanding.

use std::time::Duration;

use privmech_load::workload::RequestTemplate;
use privmech_load::{run, Population, RunConfig, Schedule, ZipfSampler};
use privmech_numerics::Rational;
use privmech_serve::json::Json;
use privmech_serve::proto::{ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::server::{self, ServerConfig};

/// A population of exactly one template: an exact-rational squared-loss
/// sweep at n = 6 over three α points. Its first (uncached) evaluation runs
/// three real LP solves, which takes long enough on any machine that an
/// open-loop sender scheduled at 1 kHz provably laps it.
fn slow_sweep_population() -> Population {
    let spec = ConsumerSpec::<Rational>::minimax(6, LossSpec::Squared);
    let alphas: Vec<Json> = [(1i64, 3i64), (1, 2), (2, 3)]
        .iter()
        .map(|&(num, den)| Rational::from_ratio(num, den).to_wire())
        .collect();
    let body = spec
        .encode_onto(
            Json::obj()
                .with("op", Json::str("sweep"))
                .with("scalar", Json::str("rational")),
        )
        .with("alphas", Json::Arr(alphas));
    Population {
        templates: vec![RequestTemplate { op: "sweep", body }],
        zipf: ZipfSampler::new(1, 1.0),
    }
}

#[test]
fn arrivals_do_not_wait_for_completions() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let population = slow_sweep_population();

    let report = run(
        &population,
        &Schedule::FixedRate {
            rate_per_sec: 1000.0,
            count: 100,
        },
        &RunConfig {
            addr: handle.addr().to_string(),
            connections: 1,
            arrival_seed: 1,
            drain_timeout: Duration::from_secs(30),
        },
    )
    .expect("run");
    handle.shutdown();

    assert_eq!(report.sent, 100);
    assert_eq!(report.completed, 100, "every sweep must terminate");
    assert_eq!(report.errors, 0);
    assert!(report.drained);
    // The open-loop invariant, observed: with a single connection, sends
    // overlapped in flight while the first sweep's LP solves were running.
    // A closed-loop client would report max_outstanding == 1 here.
    assert!(
        report.max_outstanding > 1,
        "only {} outstanding: the sender waited on completions",
        report.max_outstanding
    );
    // And the schedule held: each send happened at its precomputed offset,
    // not after the previous reply (100 arrivals at 1 kHz span 99 ms; a
    // closed-loop run against the slow first sweep would lag far more).
    let sweep = report
        .per_op
        .iter()
        .find(|(op, _)| *op == "sweep")
        .map(|(_, summary)| summary)
        .expect("sweep bucket present");
    assert_eq!(sweep.count, 100);
    assert!(
        sweep.max_ns >= sweep.p50_ns,
        "summary invariants hold on real data"
    );
}
