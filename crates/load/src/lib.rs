//! # privmech-load
//!
//! An **open-loop** load-generation and capacity harness for the privmech
//! serving tier (`privmech-serve`).
//!
//! Every serve-side number before this crate came from replaying small fixed
//! workloads, which cannot support a capacity claim: a replay client waits
//! for each reply before sending the next request (closed loop), so when the
//! server slows down the *offered load drops with it* and queueing delay is
//! invisible. This harness does the opposite:
//!
//! * [`workload`] synthesizes a heavy-tailed population of distinct
//!   `(n, α, loss)` requests — Zipf-distributed popularity over a seeded,
//!   deterministic template set, mixed `solve`/`sweep`/`interact` ops over
//!   both scalar backends — the traffic shape that exercises the sharded
//!   LRU cache and the exact-LP fallback path honestly (`--workload zoo`
//!   swaps in `zoo_table`/`zoo_eval` traffic over the same Zipf machinery),
//! * [`schedule`] computes arrival timestamps **up front**, as a pure
//!   function of the schedule (fixed-rate or ramp) and never of completion
//!   times, so saturation shows up as queueing delay in the measured
//!   latencies instead of silently thinning the load,
//! * [`runner`] drives many pipelined protocol-v2 connections concurrently,
//!   measures client-side per-op latency against the *scheduled* arrival
//!   time (queueing included), and runs a rate-ramp search for the
//!   saturation point — the first rate where p99 exceeds a bound or the
//!   server fails to drain the offered load,
//! * [`stats`] holds the exact (sorted-sample) p50/p99/p999 machinery,
//! * [`fleet`] spawns N real `privmech-serve` shard processes behind an
//!   in-process consistent-hash router, so the same harness measures a
//!   sharded deployment through one front-door address (`--fleet N`).
//!
//! The `privmech-load` bin ties these together and appends a
//! machine-readable capacity record to `BENCH_serve.json` (same JSON Lines
//! conventions as `BENCH_lp.json`). `crates/load/LOAD.md` documents the
//! methodology and how to reproduce a record.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fleet;
pub mod runner;
pub mod schedule;
pub mod stats;
pub mod workload;

pub use fleet::{Fleet, FleetConfig};
pub use runner::{ramp_search, run, RampOutcome, RampStep, RunConfig, RunReport};
pub use schedule::Schedule;
pub use stats::{LatencyRecorder, LatencySummary};
pub use workload::{Population, WorkloadConfig, WorkloadKind, ZipfSampler};
