//! The `privmech-load` capacity-harness binary.
//!
//! Generates a seeded Zipf-popular workload, drives it open-loop against a
//! server (an external one via `--addr`, or an in-process one it spawns and
//! tears down itself), prints per-op latency percentiles, correlates them
//! with the server's own `metrics` histograms, and appends a machine-
//! readable capacity record to the bench JSON Lines file. See
//! `crates/load/LOAD.md` for the methodology and how to reproduce a record.
//!
//! ```text
//! privmech-load [--addr HOST:PORT] [--label L] [--output PATH] [--no-record]
//!               [--workload compute|zoo] [--seed N] [--arrival-seed N]
//!               [--templates N] [--zipf F] [--max-n N] [--op-mix S:W:I]
//!               [--connections N] [--requests N]
//!               [--rate R | --ramp START:END:STEPS] [--p99-bound-ms F]
//!               [--drain-secs F] [--fleet N] [--serve-bin PATH]
//!               [--shard-cache-capacity N]
//! ```
//!
//! With `--rate` the harness runs one fixed-rate step; with `--ramp` it
//! steps geometrically from START to END requests/second in STEPS steps and
//! reports the saturation point (first step whose p99 exceeds the bound or
//! that fails to drain). Default is `--ramp 50:1600:6`.
//!
//! With `--fleet N` the harness spawns N `privmech-serve` shard processes
//! (from `--serve-bin`, default: the binary next to this one) behind an
//! in-process consistent-hash router and measures through the router's
//! address; the capacity record's `shards` field carries the count, so
//! fleet records and single-process records compare like for like.

use std::io::Write;
use std::time::Duration;

use privmech_load::fleet::{self, Fleet, FleetConfig};
use privmech_load::{ramp_search, run, RunConfig, Schedule};
use privmech_load::{Population, WorkloadConfig, WorkloadKind};
use privmech_serve::client::Client;
use privmech_serve::json::{self, Json};
use privmech_serve::server::{self, ServerConfig};

struct Args {
    addr: Option<String>,
    label: String,
    output: String,
    record: bool,
    workload: WorkloadConfig,
    arrival_seed: u64,
    connections: usize,
    requests: usize,
    rate: Option<f64>,
    ramp: (f64, f64, usize),
    p99_bound: Duration,
    drain: Duration,
    fleet: usize,
    serve_bin: Option<String>,
    shard_cache_capacity: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            label: "load".to_string(),
            output: "BENCH_serve.json".to_string(),
            record: true,
            workload: WorkloadConfig::default(),
            arrival_seed: 1,
            connections: 4,
            requests: 1000,
            rate: None,
            ramp: (50.0, 1600.0, 6),
            p99_bound: Duration::from_millis(50),
            drain: Duration::from_secs(10),
            fleet: 0,
            serve_bin: None,
            shard_cache_capacity: None,
        }
    }
}

fn main() {
    let args = parse_args();

    eprintln!(
        "privmech-load: {} workload, {} templates (zipf s={}, max n={}, mix {}:{}:{}), seed {}",
        args.workload.kind.name(),
        args.workload.templates,
        args.workload.zipf_exponent,
        args.workload.max_n,
        args.workload.solve_weight,
        args.workload.sweep_weight,
        args.workload.interact_weight,
        args.workload.seed,
    );
    let population = Population::generate(&args.workload);

    // Pick the serving side: an external server (--addr), a locally spawned
    // fleet of shard processes behind a router (--fleet N), or a private
    // in-process server (the default) — exactly like the bench harness does.
    if args.addr.is_some() && args.fleet > 0 {
        eprintln!("--addr and --fleet are mutually exclusive (a fleet is spawned locally)");
        std::process::exit(2);
    }
    let mut local = None;
    let mut local_fleet = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None if args.fleet > 0 => {
            let serve_bin = match &args.serve_bin {
                Some(path) => std::path::PathBuf::from(path),
                None => fleet::sibling_serve_bin().unwrap_or_else(|e| {
                    eprintln!("cannot locate privmech-serve: {e}");
                    std::process::exit(1);
                }),
            };
            let mut config = FleetConfig::new(args.fleet, serve_bin);
            if let Some(capacity) = args.shard_cache_capacity {
                config.shard_args = vec!["--cache-capacity".to_string(), capacity.to_string()];
            }
            let fleet = Fleet::spawn(&config).unwrap_or_else(|e| {
                eprintln!("failed to spawn fleet: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "privmech-load: fleet of {} shards behind router at {}",
                fleet.shards(),
                fleet.addr(),
            );
            let addr = fleet.addr().to_string();
            local_fleet = Some(fleet);
            addr
        }
        None => {
            let handle = server::spawn(ServerConfig::default()).unwrap_or_else(|e| {
                eprintln!("failed to spawn in-process server: {e}");
                std::process::exit(1);
            });
            local = Some(handle);
            local.as_ref().expect("just set").addr().to_string()
        }
    };
    let config = RunConfig {
        addr: addr.clone(),
        connections: args.connections,
        arrival_seed: args.arrival_seed,
        drain_timeout: args.drain,
    };

    let mut capacity = Json::obj()
        .with("workload", Json::str(args.workload.kind.name()))
        .with("seed", Json::num_u64(args.workload.seed))
        .with("arrival_seed", Json::num_u64(args.arrival_seed))
        .with("templates", Json::num_u64(args.workload.templates as u64))
        .with(
            "zipf_exponent",
            Json::num_f64(args.workload.zipf_exponent).expect("finite exponent"),
        )
        .with("max_n", Json::num_u64(args.workload.max_n as u64))
        .with(
            "op_mix",
            Json::str(format!(
                "{}:{}:{}",
                args.workload.solve_weight,
                args.workload.sweep_weight,
                args.workload.interact_weight
            )),
        )
        .with("connections", Json::num_u64(args.connections as u64))
        // 1 when the target is a single process; --addr targets are opaque,
        // so they also record as 1 unless the caller knows better.
        .with("shards", Json::num_u64(args.fleet.max(1) as u64))
        .with("requests_per_step", Json::num_u64(args.requests as u64))
        .with(
            "p99_bound_ms",
            Json::num_u64(args.p99_bound.as_millis() as u64),
        );

    if let Some(rate) = args.rate {
        let schedule = Schedule::FixedRate {
            rate_per_sec: rate,
            count: args.requests,
        };
        // A clean server-side window for the single step too.
        reset_metrics(&addr);
        let report = run(&population, &schedule, &config).unwrap_or_else(die);
        print_report(rate, &report);
        capacity = capacity
            .with("mode", Json::str("fixed"))
            .with("run", report.to_wire());
    } else {
        let (start, end, steps) = args.ramp;
        let rates = geometric_steps(start, end, steps);
        eprintln!(
            "privmech-load: ramp search over {:?} req/s ({} requests/step, p99 bound {:?})",
            rates
                .iter()
                .map(|r| (r * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
            args.requests,
            args.p99_bound,
        );
        let outcome = ramp_search(&population, &rates, args.requests, &config, args.p99_bound)
            .unwrap_or_else(die);
        for step in &outcome.steps {
            print_report(step.rate, &step.report);
        }
        match (outcome.last_good_rate, outcome.saturation_rate) {
            (good, Some(sat)) => eprintln!(
                "privmech-load: saturation at {sat:.1} req/s (last healthy: {})",
                good.map_or("none".to_string(), |g| format!("{g:.1} req/s")),
            ),
            (Some(good), None) => {
                eprintln!("privmech-load: no saturation up to {good:.1} req/s")
            }
            (None, None) => eprintln!("privmech-load: no steps ran"),
        }
        let mut steps_json = Vec::new();
        for step in &outcome.steps {
            steps_json.push(
                Json::obj()
                    .with(
                        "rate_per_sec",
                        Json::num_f64((step.rate * 100.0).round() / 100.0).expect("finite rate"),
                    )
                    .with("report", step.report.to_wire()),
            );
        }
        capacity = capacity
            .with("mode", Json::str("ramp"))
            .with("steps", Json::Arr(steps_json));
        if let Some(good) = outcome.last_good_rate {
            capacity = capacity.with(
                "last_good_rate_per_sec",
                Json::num_f64((good * 100.0).round() / 100.0).expect("finite rate"),
            );
        }
        if let Some(sat) = outcome.saturation_rate {
            capacity = capacity.with(
                "saturation_rate_per_sec",
                Json::num_f64((sat * 100.0).round() / 100.0).expect("finite rate"),
            );
        }
    }

    // Correlate with the server's own histograms (covering the last
    // measurement window — the harness resets them before each step).
    if let Some(server_ops) = fetch_server_ops(&addr) {
        capacity = capacity.with("server_ops", server_ops);
    }

    if let Some(handle) = local {
        handle.shutdown();
    }
    if let Some(fleet) = local_fleet {
        fleet.shutdown().unwrap_or_else(|e| {
            eprintln!("privmech-load: fleet shutdown failed: {e}");
            std::process::exit(1);
        });
    }

    if args.record {
        let record = Json::obj()
            .with("label", Json::str(args.label.clone()))
            .with("capacity", capacity);
        let line = json::to_string(&record);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&args.output)
            .unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", args.output);
                std::process::exit(1);
            });
        writeln!(file, "{line}").unwrap_or_else(|e| {
            eprintln!("cannot append to {}: {e}", args.output);
            std::process::exit(1);
        });
        eprintln!(
            "privmech-load: appended record {:?} to {}",
            args.label, args.output
        );
    }
}

fn die<T>(e: std::io::Error) -> T {
    eprintln!("privmech-load: run failed: {e}");
    std::process::exit(1);
}

fn reset_metrics(addr: &str) {
    if let Ok(mut client) = Client::connect(addr) {
        let _ = client.metrics_reset();
    }
}

/// `steps` rates spaced geometrically from `start` to `end` inclusive.
fn geometric_steps(start: f64, end: f64, steps: usize) -> Vec<f64> {
    if steps <= 1 {
        return vec![start];
    }
    let ratio = (end / start).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|k| start * ratio.powi(k as i32)).collect()
}

fn print_report(rate: f64, report: &privmech_load::RunReport) {
    eprintln!(
        "  rate {:7.1}/s: {}/{} completed, {} errors, drained={}, wall {:.2}s, peak in-flight {}, send lag {:.1}ms",
        rate,
        report.completed,
        report.sent,
        report.errors,
        report.drained,
        report.wall.as_secs_f64(),
        report.max_outstanding,
        report.max_send_lag.as_secs_f64() * 1e3,
    );
    for (op, s) in &report.per_op {
        eprintln!(
            "    {op:8} n={:5}  p50 {:9.3}ms  p99 {:9.3}ms  p999 {:9.3}ms  max {:9.3}ms",
            s.count,
            s.p50_ns as f64 / 1e6,
            s.p99_ns as f64 / 1e6,
            s.p999_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6,
        );
    }
    if let Some(s) = &report.all {
        eprintln!(
            "    {:8} n={:5}  p50 {:9.3}ms  p99 {:9.3}ms  p999 {:9.3}ms  max {:9.3}ms",
            "all",
            s.count,
            s.p50_ns as f64 / 1e6,
            s.p99_ns as f64 / 1e6,
            s.p999_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6,
        );
    }
}

/// Fetch the server's per-op histograms and compress each to
/// `{count, mean_ns, p99_le_ns}` (`p99_le_ns` is the upper bound of the
/// first histogram bucket covering the 99th percentile; 0 = overflow
/// bucket, i.e. beyond the largest bounded bucket).
fn fetch_server_ops(addr: &str) -> Option<Json> {
    let mut client = Client::connect(addr).ok()?;
    let metrics = client.metrics().ok()?;
    let ops = metrics.get("ops")?;
    let Json::Obj(entries) = ops else { return None };
    let mut out = Json::obj();
    for (op, histogram) in entries {
        let count = histogram.get("count").and_then(Json::as_u64)?;
        let total_ns = histogram.get("total_ns").and_then(Json::as_u64)?;
        let buckets = histogram.get("buckets").and_then(Json::as_arr)?;
        let threshold = (count as f64 * 0.99).ceil() as u64;
        let mut cumulative = 0;
        let mut p99_le_ns = 0;
        for bucket in buckets {
            cumulative += bucket.get("count").and_then(Json::as_u64).unwrap_or(0);
            if cumulative >= threshold {
                p99_le_ns = bucket.get("le_ns").and_then(Json::as_u64).unwrap_or(0);
                break;
            }
        }
        out = out.with(
            op,
            Json::obj()
                .with("count", Json::num_u64(count))
                .with(
                    "mean_ns",
                    Json::num_u64(total_ns.checked_div(count).unwrap_or(0)),
                )
                .with("p99_le_ns", Json::num_u64(p99_le_ns)),
        );
    }
    Some(out)
}

fn parse_args() -> Args {
    let mut parsed = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")),
            "--label" => parsed.label = value("--label"),
            "--output" => parsed.output = value("--output"),
            "--no-record" => parsed.record = false,
            "--workload" => {
                let raw = value("--workload");
                parsed.workload.kind = WorkloadKind::from_name(&raw).unwrap_or_else(|| {
                    eprintln!("--workload must be \"compute\" or \"zoo\", got {raw:?}");
                    std::process::exit(2);
                });
            }
            "--seed" => parsed.workload.seed = parse(&value("--seed"), "--seed"),
            "--arrival-seed" => {
                parsed.arrival_seed = parse(&value("--arrival-seed"), "--arrival-seed")
            }
            "--templates" => {
                parsed.workload.templates = parse(&value("--templates"), "--templates")
            }
            "--zipf" => parsed.workload.zipf_exponent = parse_f64(&value("--zipf"), "--zipf"),
            "--max-n" => parsed.workload.max_n = parse(&value("--max-n"), "--max-n"),
            "--op-mix" => {
                let raw = value("--op-mix");
                let parts: Vec<&str> = raw.split(':').collect();
                if parts.len() != 3 {
                    eprintln!("--op-mix needs SOLVE:SWEEP:INTERACT weights, got {raw:?}");
                    std::process::exit(2);
                }
                parsed.workload.solve_weight = parse(parts[0], "--op-mix");
                parsed.workload.sweep_weight = parse(parts[1], "--op-mix");
                parsed.workload.interact_weight = parse(parts[2], "--op-mix");
            }
            "--connections" => parsed.connections = parse(&value("--connections"), "--connections"),
            "--requests" => parsed.requests = parse(&value("--requests"), "--requests"),
            "--rate" => parsed.rate = Some(parse_f64(&value("--rate"), "--rate")),
            "--ramp" => {
                let raw = value("--ramp");
                let parts: Vec<&str> = raw.split(':').collect();
                if parts.len() != 3 {
                    eprintln!("--ramp needs START:END:STEPS, got {raw:?}");
                    std::process::exit(2);
                }
                parsed.ramp = (
                    parse_f64(parts[0], "--ramp"),
                    parse_f64(parts[1], "--ramp"),
                    parse(parts[2], "--ramp"),
                );
            }
            "--p99-bound-ms" => {
                parsed.p99_bound = Duration::from_secs_f64(
                    parse_f64(&value("--p99-bound-ms"), "--p99-bound-ms") / 1e3,
                )
            }
            "--drain-secs" => {
                parsed.drain =
                    Duration::from_secs_f64(parse_f64(&value("--drain-secs"), "--drain-secs"))
            }
            "--fleet" => parsed.fleet = parse(&value("--fleet"), "--fleet"),
            "--serve-bin" => parsed.serve_bin = Some(value("--serve-bin")),
            "--shard-cache-capacity" => {
                parsed.shard_cache_capacity = Some(parse(
                    &value("--shard-cache-capacity"),
                    "--shard-cache-capacity",
                ))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: privmech-load [--addr HOST:PORT] [--label L] [--output PATH] \
                     [--no-record] [--workload compute|zoo] [--seed N] [--arrival-seed N] \
                     [--templates N] [--zipf F] [--max-n N] [--op-mix S:W:I] \
                     [--connections N] [--requests N] \
                     [--rate R | --ramp START:END:STEPS] [--p99-bound-ms F] [--drain-secs F] \
                     [--fleet N] [--serve-bin PATH] [--shard-cache-capacity N]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} got an unparsable value {text:?}");
        std::process::exit(2);
    })
}

fn parse_f64(text: &str, flag: &str) -> f64 {
    let v: f64 = parse(text, flag);
    if !v.is_finite() {
        eprintln!("{flag} needs a finite number, got {text:?}");
        std::process::exit(2);
    }
    v
}
