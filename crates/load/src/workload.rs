//! Synthetic request populations: seeded, deterministic, Zipf-popular.
//!
//! A real deployment of universally-optimal-mechanism serving sees a
//! heavy-tailed mix of *distinct* `(n, α, loss)` requests — optimality is
//! query- and loss-specific, so every consumer shape is its own cache key.
//! This module samples such a population once (seeded `StdRng`, so the same
//! seed always yields byte-identical request bodies) and then draws request
//! *arrivals* from a Zipf popularity distribution over it: rank `k` is
//! requested with probability proportional to `1/(k+1)^s`. The head of the
//! distribution stresses the response cache's hit path; the tail keeps real
//! LP solves in the mix.

use std::collections::HashSet;

use privmech_core::PrivacyLevel;
use privmech_serve::json::{self, Json};
use privmech_serve::proto::{matrix_to_wire, ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::zoo::{query_to_wire, ZooAgentSpec, ZooConsumerSpec};
use privmech_zoo::{LdpProtocol, QueryClass};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A Zipf(s) sampler over ranks `0..count`: rank `k` is drawn with
/// probability proportional to `1/(k+1)^s`. Sampling is one uniform draw
/// plus a binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities; `cdf[k]` = P(rank ≤ k). The last entry is
    /// exactly 1.0 by construction.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `count ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` concentrates mass on low ranks).
    ///
    /// # Panics
    /// If `count == 0` or `exponent` is not finite and non-negative.
    #[must_use]
    pub fn new(count: usize, exponent: f64) -> Self {
        assert!(count > 0, "a Zipf sampler needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf: Vec<f64> = Vec::with_capacity(count);
        let mut total = 0.0;
        for k in 0..count {
            total += ((k + 1) as f64).powf(-exponent);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn count(&self) -> usize {
        self.cdf.len()
    }

    /// The probability of rank `k` (0-indexed).
    #[must_use]
    pub fn probability(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw one rank.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First rank whose cumulative probability covers u.
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

/// Which request family a population samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The classic engine ops: `solve` / `sweep` / `interact`.
    Compute,
    /// The zoo ops: `zoo_table` / `zoo_eval` (LDP gaps and compositions).
    /// The three op weights map to table : ldp : compose.
    Zoo,
}

impl WorkloadKind {
    /// The CLI/wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Compute => "compute",
            WorkloadKind::Zoo => "zoo",
        }
    }

    /// Parse a CLI name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "compute" => Some(WorkloadKind::Compute),
            "zoo" => Some(WorkloadKind::Zoo),
            _ => None,
        }
    }
}

/// Parameters of a synthetic population. Two equal configs generate
/// byte-identical template sets.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed for template generation (arrival sampling takes its own
    /// seed so the same population can serve many request sequences).
    pub seed: u64,
    /// Which request family to sample.
    pub kind: WorkloadKind,
    /// Number of distinct request templates (Zipf ranks).
    pub templates: usize,
    /// Zipf popularity exponent (≈1.1 is the classic web-traffic shape).
    pub zipf_exponent: f64,
    /// Largest query-range bound `n` sampled (inclusive; smallest is 2).
    pub max_n: usize,
    /// Relative weight of `solve` templates (`zoo_table` under
    /// [`WorkloadKind::Zoo`]).
    pub solve_weight: u32,
    /// Relative weight of `sweep` templates (LDP `zoo_eval` under
    /// [`WorkloadKind::Zoo`]).
    pub sweep_weight: u32,
    /// Relative weight of `interact` templates (compose `zoo_eval` under
    /// [`WorkloadKind::Zoo`]).
    pub interact_weight: u32,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 7,
            kind: WorkloadKind::Compute,
            templates: 64,
            zipf_exponent: 1.1,
            max_n: 6,
            solve_weight: 6,
            sweep_weight: 3,
            interact_weight: 1,
        }
    }
}

/// One distinct request shape: a complete request object minus the `v` and
/// `id` envelope fields (the runner stamps those per arrival).
#[derive(Debug, Clone)]
pub struct RequestTemplate {
    /// The wire op (`"solve"`, `"sweep"`, `"interact"`, `"zoo_table"` or
    /// `"zoo_eval"`) — the latency bucket this template's arrivals are
    /// recorded under.
    pub op: &'static str,
    /// The request body. Cloned and extended with `v`/`id` at send time.
    pub body: Json,
}

/// A generated template set plus its popularity distribution.
#[derive(Debug, Clone)]
pub struct Population {
    /// The distinct templates, most popular first (rank order).
    pub templates: Vec<RequestTemplate>,
    /// Popularity over template ranks.
    pub zipf: ZipfSampler,
}

impl Population {
    /// Generate the population for `config`: deterministic in `config` (same
    /// config, same templates, byte for byte). Distinctness is guaranteed by
    /// re-rolling collisions on the rendered body.
    #[must_use]
    pub fn generate(config: &WorkloadConfig) -> Self {
        assert!(config.templates > 0, "population needs at least 1 template");
        assert!(config.max_n >= 2, "max_n must be at least 2");
        let total_weight = config.solve_weight + config.sweep_weight + config.interact_weight;
        assert!(total_weight > 0, "op weights must not all be zero");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut seen: HashSet<String> = HashSet::new();
        let mut templates = Vec::with_capacity(config.templates);
        while templates.len() < config.templates {
            let pick = rng.gen_range(0..total_weight);
            let slot = if pick < config.solve_weight {
                0
            } else if pick < config.solve_weight + config.sweep_weight {
                1
            } else {
                2
            };
            let op: &'static str = match (config.kind, slot) {
                (WorkloadKind::Compute, 0) => "solve",
                (WorkloadKind::Compute, 1) => "sweep",
                (WorkloadKind::Compute, _) => "interact",
                (WorkloadKind::Zoo, 0) => "zoo_table",
                (WorkloadKind::Zoo, _) => "zoo_eval",
            };
            let n = rng.gen_range(2..=config.max_n);
            let body = match config.kind {
                WorkloadKind::Compute => {
                    if rng.gen_bool(0.5) {
                        build_body::<privmech_numerics::Rational>(&mut rng, op, n)
                    } else {
                        build_body::<f64>(&mut rng, op, n)
                    }
                }
                WorkloadKind::Zoo => {
                    if rng.gen_bool(0.5) {
                        build_zoo_body::<privmech_numerics::Rational>(&mut rng, slot, n)
                    } else {
                        build_zoo_body::<f64>(&mut rng, slot, n)
                    }
                }
            };
            let Some(body) = body else { continue };
            // Distinctness by rendered bytes; collisions re-roll (the space
            // of shapes is far larger than any practical template count, so
            // this terminates fast).
            if seen.insert(json::to_string(&body)) {
                templates.push(RequestTemplate { op, body });
            }
        }
        Population {
            templates,
            zipf: ZipfSampler::new(config.templates, config.zipf_exponent),
        }
    }

    /// Draw a sequence of `count` template ranks (the arrival sequence),
    /// deterministic in `seed`.
    #[must_use]
    pub fn sample_indices(&self, seed: u64, count: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.zipf.sample(&mut rng)).collect()
    }
}

/// Sample a privacy parameter α ∈ (0, 1) as a small exact fraction — exact
/// fractions keep the rational backend honest and render identically under
/// both backends' wire forms for equal values of distinct spellings.
fn sample_alpha<T: WireScalar>(rng: &mut StdRng) -> T {
    let den = rng.gen_range(3i64..=12);
    let num = rng.gen_range(1i64..den);
    T::from_ratio(num, den)
}

fn sample_loss<T: WireScalar>(rng: &mut StdRng, n: usize) -> LossSpec<T> {
    match rng.gen_range(0u32..4) {
        0 => LossSpec::Absolute,
        1 => LossSpec::Squared,
        2 => LossSpec::ZeroOne,
        _ => LossSpec::Tolerance(rng.gen_range(1..=n.max(2) - 1)),
    }
}

/// Build one request body for `op` at query-range bound `n`. Returns `None`
/// when a sampled shape is unusable (e.g. a geometric mechanism failing to
/// build for a degenerate α) — the caller re-rolls.
fn build_body<T: WireScalar>(rng: &mut StdRng, op: &'static str, n: usize) -> Option<Json> {
    let loss = sample_loss::<T>(rng, n);
    let spec = ConsumerSpec::<T>::minimax(n, loss);
    let base = spec.encode_onto(
        Json::obj()
            .with("op", Json::str(op))
            .with("scalar", Json::str(T::TAG)),
    );
    match op {
        "solve" => {
            let alpha: T = sample_alpha(rng);
            Some(base.with("alpha", alpha.to_wire()))
        }
        "sweep" => {
            let points = rng.gen_range(2usize..=4);
            let alphas: Vec<Json> = (0..points)
                .map(|_| sample_alpha::<T>(rng).to_wire())
                .collect();
            Some(base.with("alphas", Json::Arr(alphas)))
        }
        "interact" => {
            // Deploy a tailored geometric mechanism for one α, then ask the
            // server for another consumer's optimal post-processing of it —
            // the paper's oblivious-deployment scenario as traffic.
            let alpha: T = sample_alpha(rng);
            let level = PrivacyLevel::new(alpha).ok()?;
            let mechanism = privmech_core::geometric_mechanism(n, &level).ok()?;
            Some(base.with("mechanism", matrix_to_wire(mechanism.matrix())))
        }
        _ => unreachable!("op mix only produces the three compute ops"),
    }
}

/// Build one zoo request body for weight slot `slot` (0 = `zoo_table`,
/// 1 = LDP `zoo_eval`, 2 = compose `zoo_eval`) at size parameter `n`.
fn build_zoo_body<T: WireScalar>(rng: &mut StdRng, slot: u32, n: usize) -> Option<Json> {
    let base = Json::obj().with("scalar", Json::str(T::TAG));
    match slot {
        0 => {
            let query = match rng.gen_range(0u32..3) {
                0 => QueryClass::Count { n },
                1 => QueryClass::Sum {
                    rows: 2,
                    per_row: rng.gen_range(2..=3),
                },
                _ => QueryClass::Median { rows: 3, domain: 3 },
            };
            let bound = query.result_bound();
            let consumers: Vec<Json> = (0..rng.gen_range(1usize..=3))
                .map(|_| {
                    ZooConsumerSpec::<T> {
                        support: rng.gen_bool(0.25).then(|| vec![0, bound]),
                        loss: sample_loss(rng, bound),
                    }
                    .to_wire()
                })
                .collect();
            let alpha: T = sample_alpha(rng);
            Some(
                base.with("op", Json::str("zoo_table"))
                    .with("query", query_to_wire(&query))
                    .with("alpha", alpha.to_wire())
                    .with("consumers", Json::Arr(consumers)),
            )
        }
        1 => {
            let protocol = if rng.gen_bool(0.5) {
                LdpProtocol::RandomizedResponse
            } else {
                LdpProtocol::Hadamard
            };
            let users = rng.gen_range(2..=n.max(2));
            let alpha: T = sample_alpha(rng);
            let loss = sample_loss::<T>(rng, users);
            Some(
                base.with("op", Json::str("zoo_eval"))
                    .with("scenario", Json::str("ldp"))
                    .with("protocol", Json::str(protocol.name()))
                    .with("users", Json::num_u64(users as u64))
                    .with("alpha", alpha.to_wire())
                    .with("loss", loss.to_wire()),
            )
        }
        _ => {
            let agents: Vec<Json> = (0..rng.gen_range(1usize..=3))
                .enumerate()
                .map(|(i, _)| {
                    let users = rng.gen_range(2..=n.clamp(2, 4));
                    ZooAgentSpec::<T> {
                        name: format!("a{i}"),
                        users,
                        alpha: sample_alpha(rng),
                        loss: sample_loss(rng, users),
                    }
                    .to_wire()
                })
                .collect();
            Some(
                base.with("op", Json::str("zoo_eval"))
                    .with("scenario", Json::str("compose"))
                    .with("agents", Json::Arr(agents)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let zipf = ZipfSampler::new(16, 1.1);
        let total: f64 = (0..16).map(|k| zipf.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..16 {
            assert!(zipf.probability(k) < zipf.probability(k - 1));
        }
    }

    #[test]
    fn population_is_distinct_and_op_tagged() {
        let population = Population::generate(&WorkloadConfig::default());
        let mut rendered = HashSet::new();
        for template in &population.templates {
            assert!(matches!(template.op, "solve" | "sweep" | "interact"));
            assert_eq!(
                template.body.get("op").and_then(Json::as_str),
                Some(template.op)
            );
            assert!(rendered.insert(json::to_string(&template.body)));
        }
        assert_eq!(rendered.len(), 64);
    }

    #[test]
    fn zoo_population_is_distinct_deterministic_and_zoo_tagged() {
        let config = WorkloadConfig {
            kind: WorkloadKind::Zoo,
            templates: 32,
            ..WorkloadConfig::default()
        };
        let population = Population::generate(&config);
        let mut rendered = HashSet::new();
        let mut tables = 0;
        for template in &population.templates {
            assert!(matches!(template.op, "zoo_table" | "zoo_eval"));
            assert_eq!(
                template.body.get("op").and_then(Json::as_str),
                Some(template.op)
            );
            if template.op == "zoo_table" {
                tables += 1;
            } else {
                assert!(matches!(
                    template.body.get("scenario").and_then(Json::as_str),
                    Some("ldp" | "compose")
                ));
            }
            assert!(rendered.insert(json::to_string(&template.body)));
        }
        assert_eq!(rendered.len(), 32);
        assert!(
            tables > 0,
            "the default mix must produce zoo_table templates"
        );
        // Same config, byte-identical population.
        let again = Population::generate(&config);
        for (a, b) in population.templates.iter().zip(&again.templates) {
            assert_eq!(json::to_string(&a.body), json::to_string(&b.body));
        }
    }
}
