//! Exact client-side latency quantiles.
//!
//! A capacity harness lives or dies by its tail estimates, so nothing here
//! approximates: every sample is kept (a `u64` per request is cheap at any
//! rate this harness reaches) and quantiles are computed by sorting. The
//! p-quantile of `n` sorted samples is the sample at rank `⌈p·n⌉` (1-based),
//! i.e. the smallest value such that at least a `p` fraction of samples are
//! ≤ it — the standard "type 1" empirical quantile, chosen because it is
//! exact, monotone in `p`, and equals the maximum at `p = 1`.

use privmech_serve::json::Json;

/// Accumulates latency samples (nanoseconds) for one bucket (an op, or the
/// run as a whole).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// A recorder with no samples.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Summarize (sorts the samples). `None` when empty.
    #[must_use]
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let total: u128 = sorted.iter().map(|&ns| u128::from(ns)).sum();
        Some(LatencySummary {
            count: sorted.len() as u64,
            p50_ns: quantile(&sorted, 0.50),
            p99_ns: quantile(&sorted, 0.99),
            p999_ns: quantile(&sorted, 0.999),
            max_ns: *sorted.last().expect("nonempty"),
            mean_ns: u64::try_from(total / sorted.len() as u128).unwrap_or(u64::MAX),
        })
    }
}

/// The empirical p-quantile of an ascending-sorted sample set (see module
/// docs for the convention).
///
/// # Panics
/// If `sorted` is empty.
#[must_use]
pub fn quantile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample set");
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Exact latency percentiles of one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Largest observed latency in nanoseconds.
    pub max_ns: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
}

impl LatencySummary {
    /// Render for the bench record.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        Json::obj()
            .with("count", Json::num_u64(self.count))
            .with("p50_ns", Json::num_u64(self.p50_ns))
            .with("p99_ns", Json::num_u64(self.p99_ns))
            .with("p999_ns", Json::num_u64(self.p999_ns))
            .with("max_ns", Json::num_u64(self.max_ns))
            .with("mean_ns", Json::num_u64(self.mean_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_on_known_samples() {
        let mut recorder = LatencyRecorder::new();
        for ns in (1..=1000).rev() {
            recorder.record(ns);
        }
        let summary = recorder.summary().expect("nonempty");
        assert_eq!(summary.count, 1000);
        assert_eq!(summary.p50_ns, 500);
        assert_eq!(summary.p99_ns, 990);
        assert_eq!(summary.p999_ns, 999);
        assert_eq!(summary.max_ns, 1000);
        assert_eq!(summary.mean_ns, 500); // (1000+1)/2 truncated
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let sorted = [42u64];
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(quantile(&sorted, p), 42);
        }
    }

    #[test]
    fn empty_recorder_has_no_summary() {
        assert!(LatencyRecorder::new().summary().is_none());
    }
}
