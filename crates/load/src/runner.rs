//! The open-loop driver: many pipelined v2 connections, scheduled sends,
//! latency measured against the *scheduled* arrival.
//!
//! Per connection the runner splits the socket into a **sender thread**
//! (sleeps to each precomputed arrival offset, writes the pre-rendered
//! frame, never waits for a reply — the open-loop invariant) and a
//! **receiver thread** (reads frames, matches terminals by `id`, records
//! `terminal_received − scheduled_arrival` as the request's latency). That
//! latency definition deliberately includes every queue the request sat in:
//! the client's socket buffer, the server's backpressure gate, the worker
//! pool — so when the offered rate exceeds capacity, the tail explodes
//! instead of the throughput silently flattening.
//!
//! [`ramp_search`] runs a sequence of fixed-rate steps (server histograms
//! reset between steps via the `metrics` op's `reset` flag) and reports the
//! **saturation rate**: the first offered rate whose p99 exceeds the bound
//! or that the server fails to drain within the grace window.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use privmech_serve::client::Client;
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::proto::PROTOCOL_VERSION;

use crate::schedule::Schedule;
use crate::stats::{LatencyRecorder, LatencySummary};
use crate::workload::Population;

/// The op buckets a run reports (the compute and zoo ops the workload
/// generator can produce; ops with no completions are omitted from reports).
pub const RUN_OPS: &[&str] = &["solve", "sweep", "interact", "zoo_table", "zoo_eval"];

/// How a run connects and drains.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Number of concurrent pipelined connections (arrivals are dealt
    /// round-robin across them).
    pub connections: usize,
    /// Seed for drawing the arrival sequence from the population's Zipf
    /// distribution (independent of the population seed, so one population
    /// can serve many sequences).
    pub arrival_seed: u64,
    /// Grace window after the last scheduled arrival for the server to
    /// finish answering; a run that still has requests outstanding at the
    /// deadline reports `drained: false` (a saturation signal).
    pub drain_timeout: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            addr: String::new(),
            connections: 4,
            arrival_seed: 1,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Mean offered arrival rate (requests/second) of the schedule.
    pub offered_rate: f64,
    /// Requests actually written to sockets.
    pub sent: usize,
    /// Terminal frames received (including error terminals).
    pub completed: usize,
    /// Terminal frames that reported `ok: false`.
    pub errors: usize,
    /// Whether every scheduled request completed within the drain window.
    pub drained: bool,
    /// Start of the run to the last terminal frame (or the drain deadline).
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub achieved_rate: f64,
    /// Per-op latency summaries (ops with no completions omitted).
    pub per_op: Vec<(&'static str, LatencySummary)>,
    /// Latency summary over every completed request.
    pub all: Option<LatencySummary>,
    /// Peak requests in flight on any single connection, observed at send
    /// time — open-loop load keeps this well above 1 when the server lags.
    pub max_outstanding: usize,
    /// Worst lateness of an actual send behind its scheduled arrival (sender
    /// overload / scheduler noise; small values certify the open loop held).
    pub max_send_lag: Duration,
}

impl RunReport {
    /// The p99 across all completed requests (`None` for an empty run).
    #[must_use]
    pub fn overall_p99(&self) -> Option<Duration> {
        self.all.map(|s| Duration::from_nanos(s.p99_ns))
    }

    /// Render for the bench record.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        let mut ops = Json::obj();
        for (op, summary) in &self.per_op {
            ops = ops.with(op, summary.to_wire());
        }
        let mut obj = Json::obj()
            .with(
                "offered_rate_per_sec",
                Json::num_f64(round2(self.offered_rate)).unwrap_or(Json::num_u64(0)),
            )
            .with("sent", Json::num_u64(self.sent as u64))
            .with("completed", Json::num_u64(self.completed as u64))
            .with("errors", Json::num_u64(self.errors as u64))
            .with("drained", Json::Bool(self.drained))
            .with(
                "wall_ns",
                Json::num_u64(u64::try_from(self.wall.as_nanos()).unwrap_or(u64::MAX)),
            )
            .with(
                "achieved_rate_per_sec",
                Json::num_f64(round2(self.achieved_rate)).unwrap_or(Json::num_u64(0)),
            )
            .with(
                "max_outstanding",
                Json::num_u64(self.max_outstanding as u64),
            )
            .with(
                "max_send_lag_ns",
                Json::num_u64(u64::try_from(self.max_send_lag.as_nanos()).unwrap_or(u64::MAX)),
            )
            .with("ops", ops);
        if let Some(all) = &self.all {
            obj = obj.with("all", all.to_wire());
        }
        obj
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// One request assigned to a connection: its global arrival index, offset,
/// op bucket and pre-rendered frame payload.
struct Assigned {
    id: u64,
    offset: Duration,
    op: &'static str,
    payload: String,
}

/// What a connection's sender thread observed.
struct SenderOutcome {
    sent: usize,
    max_outstanding: usize,
    max_send_lag: Duration,
}

/// What a connection's receiver thread observed.
struct ReceiverOutcome {
    recorders: Vec<LatencyRecorder>, // indexed like RUN_OPS
    all: LatencyRecorder,
    completed: usize,
    errors: usize,
    finished_at: Duration, // offset from start when the receiver exited
}

/// Drive one open-loop run of `schedule` over `population` and measure it.
///
/// Arrivals are dealt round-robin over `config.connections` pipelined v2
/// connections; each request's latency is measured from its **scheduled**
/// arrival to its terminal frame, so time spent queueing behind a saturated
/// server counts (see the module docs for why that is the point).
pub fn run(
    population: &Population,
    schedule: &Schedule,
    config: &RunConfig,
) -> io::Result<RunReport> {
    let count = schedule.count();
    let offsets = schedule.arrival_offsets();
    let indices = population.sample_indices(config.arrival_seed, count);
    let connections = config.connections.max(1);

    // Pre-render every frame: the sender's inner loop is sleep + write only.
    let mut per_conn: Vec<Vec<Assigned>> = (0..connections).map(|_| Vec::new()).collect();
    for (k, (&template_idx, &offset)) in indices.iter().zip(&offsets).enumerate() {
        let template = &population.templates[template_idx];
        let id = k as u64 + 1;
        let mut framed = Json::obj()
            .with("v", Json::num_u64(PROTOCOL_VERSION))
            .with("id", Json::num_u64(id));
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut framed, template.body.clone()) {
            dst.extend(src);
        }
        per_conn[k % connections].push(Assigned {
            id,
            offset,
            op: template.op,
            payload: json::to_string(&framed),
        });
    }

    // Connect everything before starting the clock, so connection setup cost
    // never skews the first arrivals.
    let mut sockets = Vec::with_capacity(connections);
    for _ in 0..connections {
        let stream = TcpStream::connect(&config.addr)?;
        stream.set_nodelay(true)?;
        sockets.push(stream);
    }
    let last_offset = offsets.last().copied().unwrap_or_default();
    let start = Instant::now();
    let deadline = start + last_offset + config.drain_timeout;

    let mut sender_handles = Vec::with_capacity(connections);
    let mut receiver_handles = Vec::with_capacity(connections);
    for (stream, assigned) in sockets.iter().zip(per_conn) {
        let expected: HashMap<u64, (&'static str, Duration)> =
            assigned.iter().map(|a| (a.id, (a.op, a.offset))).collect();
        let done = Arc::new(AtomicUsize::new(0));

        let read_half = stream.try_clone()?;
        let done_rx = Arc::clone(&done);
        receiver_handles.push(std::thread::spawn(move || {
            receive_connection(read_half, expected, start, &done_rx)
        }));

        let write_half = stream.try_clone()?;
        sender_handles.push(std::thread::spawn(move || {
            send_connection(write_half, assigned, start, &done)
        }));
    }

    let mut sent = 0;
    let mut max_outstanding = 0;
    let mut max_send_lag = Duration::ZERO;
    for handle in sender_handles {
        let outcome = handle.join().expect("sender thread panicked");
        sent += outcome.sent;
        max_outstanding = max_outstanding.max(outcome.max_outstanding);
        max_send_lag = max_send_lag.max(outcome.max_send_lag);
    }

    // Drain: receivers exit on their own once every expected terminal is in;
    // at the deadline, force the laggards out by closing the read halves
    // (a receiver parked in a blocking read sees EOF).
    let all_done = |handles: &[std::thread::JoinHandle<ReceiverOutcome>]| {
        handles.iter().all(std::thread::JoinHandle::is_finished)
    };
    while !all_done(&receiver_handles) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    for stream in &sockets {
        let _ = stream.shutdown(Shutdown::Both);
    }

    let mut recorders: Vec<LatencyRecorder> =
        RUN_OPS.iter().map(|_| LatencyRecorder::new()).collect();
    let mut all = LatencyRecorder::new();
    let mut completed = 0;
    let mut errors = 0;
    let mut wall = Duration::ZERO;
    for handle in receiver_handles {
        let outcome = handle.join().expect("receiver thread panicked");
        for (merged, conn) in recorders.iter_mut().zip(&outcome.recorders) {
            merged.merge(conn);
        }
        all.merge(&outcome.all);
        completed += outcome.completed;
        errors += outcome.errors;
        wall = wall.max(outcome.finished_at);
    }

    let per_op = RUN_OPS
        .iter()
        .zip(&recorders)
        .filter_map(|(&op, recorder)| recorder.summary().map(|s| (op, s)))
        .collect();
    let wall_secs = wall.as_secs_f64();
    Ok(RunReport {
        offered_rate: schedule.offered_rate(),
        sent,
        completed,
        errors,
        drained: completed == count,
        wall,
        achieved_rate: if wall_secs > 0.0 {
            completed as f64 / wall_secs
        } else {
            0.0
        },
        per_op,
        all: all.summary(),
        max_outstanding,
        max_send_lag,
    })
}

/// The sender loop: sleep to each scheduled offset, write the frame. Never
/// reads, never waits on completions — the open-loop invariant lives here.
fn send_connection(
    stream: TcpStream,
    assigned: Vec<Assigned>,
    start: Instant,
    done: &AtomicUsize,
) -> SenderOutcome {
    let mut writer = BufWriter::new(stream);
    let mut outcome = SenderOutcome {
        sent: 0,
        max_outstanding: 0,
        max_send_lag: Duration::ZERO,
    };
    for request in &assigned {
        let now = start.elapsed();
        if request.offset > now {
            std::thread::sleep(request.offset - now);
        }
        if write_frame(&mut writer, request.payload.as_bytes())
            .and_then(|()| std::io::Write::flush(&mut writer))
            .is_err()
        {
            break;
        }
        outcome.sent += 1;
        let lag = start.elapsed().saturating_sub(request.offset);
        outcome.max_send_lag = outcome.max_send_lag.max(lag);
        let outstanding = outcome.sent.saturating_sub(done.load(Ordering::Relaxed));
        outcome.max_outstanding = outcome.max_outstanding.max(outstanding);
    }
    outcome
}

/// The receiver loop: classify frames lexically (the server's envelope
/// rendering is deterministic), record terminal latencies against the
/// scheduled arrival, exit when every expected terminal arrived (or on
/// EOF — the run's drain deadline closes the socket under us).
fn receive_connection(
    stream: TcpStream,
    mut expected: HashMap<u64, (&'static str, Duration)>,
    start: Instant,
    done: &AtomicUsize,
) -> ReceiverOutcome {
    let mut reader = BufReader::new(stream);
    let mut outcome = ReceiverOutcome {
        recorders: RUN_OPS.iter().map(|_| LatencyRecorder::new()).collect(),
        all: LatencyRecorder::new(),
        completed: 0,
        errors: 0,
        finished_at: Duration::ZERO,
    };
    while !expected.is_empty() {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => break, // EOF or deadline shutdown
        };
        let Ok(text) = std::str::from_utf8(&payload) else {
            continue;
        };
        if is_stream_item(text) {
            continue; // non-terminal sweep_item: its sweep is still running
        }
        let Some(id) = lexical_id(text) else { continue };
        let Some((op, scheduled)) = expected.remove(&id) else {
            continue;
        };
        let latency = start.elapsed().saturating_sub(scheduled);
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        if let Some(idx) = RUN_OPS.iter().position(|&o| o == op) {
            outcome.recorders[idx].record(ns);
        }
        outcome.all.record(ns);
        outcome.completed += 1;
        if text.contains("\"ok\":false") {
            outcome.errors += 1;
        }
        done.fetch_add(1, Ordering::Relaxed);
        outcome.finished_at = start.elapsed();
    }
    outcome
}

/// Whether a frame is a non-terminal `sweep_item`. The server renders the
/// envelope in a fixed field order (`v`, `id`, `ok`, then `stream` when
/// present), so the marker sits within the first few dozen bytes.
fn is_stream_item(text: &str) -> bool {
    let prefix = &text[..text.len().min(96)];
    prefix.contains("\"stream\":\"sweep_item\"")
}

/// Extract the envelope's numeric `id` lexically.
fn lexical_id(text: &str) -> Option<u64> {
    let at = text.find("\"id\":")? + "\"id\":".len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One step of a rate-ramp search.
#[derive(Debug, Clone)]
pub struct RampStep {
    /// The offered rate of this step (requests/second).
    pub rate: f64,
    /// The step's measurements.
    pub report: RunReport,
}

/// The result of a rate-ramp search.
#[derive(Debug, Clone)]
pub struct RampOutcome {
    /// Every step run, in order (the search stops at the first saturated
    /// step, which is included).
    pub steps: Vec<RampStep>,
    /// Highest tested rate that stayed healthy (p99 within bound, drained).
    pub last_good_rate: Option<f64>,
    /// First tested rate that saturated (`None` if every step stayed
    /// healthy — the search never found the knee).
    pub saturation_rate: Option<f64>,
}

/// Step through `rates` with fixed-rate runs of `requests_per_step` each,
/// resetting the server's latency histograms between steps (the `metrics`
/// op's `reset` flag), and stop at the first rate that **saturates**: p99
/// over the bound, or the offered load not drained within the grace window.
pub fn ramp_search(
    population: &Population,
    rates: &[f64],
    requests_per_step: usize,
    config: &RunConfig,
    p99_bound: Duration,
) -> io::Result<RampOutcome> {
    let mut outcome = RampOutcome {
        steps: Vec::new(),
        last_good_rate: None,
        saturation_rate: None,
    };
    for &rate in rates {
        // A clean measurement window per step, server-side too.
        let mut client = Client::connect(&config.addr)?;
        client
            .metrics_reset()
            .map_err(|e| io::Error::other(format!("metrics reset failed: {e}")))?;
        drop(client);

        let schedule = Schedule::FixedRate {
            rate_per_sec: rate,
            count: requests_per_step,
        };
        let report = run(population, &schedule, config)?;
        let saturated = !report.drained || report.overall_p99().is_some_and(|p99| p99 > p99_bound);
        outcome.steps.push(RampStep { rate, report });
        if saturated {
            outcome.saturation_rate = Some(rate);
            break;
        }
        outcome.last_good_rate = Some(rate);
    }
    Ok(outcome)
}
