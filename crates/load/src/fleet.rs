//! Fleet orchestration: spawn N real `privmech-serve` shard processes and an
//! in-process consistent-hash router fronting them, so the capacity harness
//! can measure a sharded deployment through the same single listen address
//! it uses for a single server.
//!
//! The harness stays completely ignorant of the topology — it connects to
//! [`Fleet::addr`] and drives load exactly as it would against one process.
//! What changes is the serving side: the router partitions the canonical
//! request keyspace across the shards, so each shard's LRU cache holds only
//! its own slice and the *aggregate* cache capacity (and hit rate, and
//! solver throughput) scales with the shard count. Shutdown goes through
//! the router's broadcast path, which is also how every shard gets the
//! chance to dump its `--cache-file` on the way down.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::router::{self, RouterConfig};
use privmech_serve::RouterHandle;

/// Configuration of a locally spawned fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shard processes (≥ 1).
    pub shards: usize,
    /// Path to the `privmech-serve` binary to spawn shards from.
    pub serve_bin: PathBuf,
    /// Extra CLI flags passed to every shard verbatim (e.g.
    /// `["--cache-capacity", "96"]` to constrain each shard's LRU).
    pub shard_args: Vec<String>,
}

impl FleetConfig {
    /// A fleet of `shards` processes spawned from `serve_bin`, default knobs.
    #[must_use]
    pub fn new(shards: usize, serve_bin: PathBuf) -> Self {
        FleetConfig {
            shards,
            serve_bin,
            shard_args: Vec::new(),
        }
    }
}

/// One spawned shard process.
#[derive(Debug)]
pub struct ShardProcess {
    child: Child,
    addr: String,
}

impl ShardProcess {
    /// The address the shard bound (parsed from its startup banner).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

/// A running fleet: shard children plus the router fronting them.
///
/// Dropping a `Fleet` without calling [`Fleet::shutdown`] kills the shard
/// processes instead of stopping them gracefully — fine for tests, wrong
/// for anything relying on `--cache-file` dumps.
pub struct Fleet {
    shards: Vec<ShardProcess>,
    router: Option<RouterHandle>,
}

impl Fleet {
    /// Spawn the shard processes, wait for each to report its address, and
    /// start the router over them.
    pub fn spawn(config: &FleetConfig) -> io::Result<Fleet> {
        if config.shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one shard",
            ));
        }
        let mut shards = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            shards.push(spawn_shard(&config.serve_bin, &config.shard_args)?);
        }
        let router = router::spawn(RouterConfig::new(
            shards.iter().map(|s| s.addr.clone()).collect(),
        ))?;
        Ok(Fleet {
            shards,
            router: Some(router),
        })
    }

    /// The router's listen address — the fleet's single front door.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.router
            .as_ref()
            .expect("router runs until shutdown")
            .addr()
    }

    /// Number of shard processes.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Graceful teardown: send one `shutdown` through the router (which
    /// broadcasts it to every shard), reap the shard processes, and join
    /// the router thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        let router = self.router.take().expect("router runs until shutdown");
        let stream = TcpStream::connect(router.addr())?;
        let body = Json::obj()
            .with("v", Json::num_u64(2))
            .with("id", Json::num_u64(0))
            .with("op", Json::str("shutdown"));
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_frame(&mut writer, json::to_string(&body).as_bytes())?;
        writer.flush()?;
        let mut reader = BufReader::new(stream);
        let _ = read_frame(&mut reader)?;
        router.join();
        for shard in &mut self.shards {
            shard.child.wait()?;
        }
        self.shards.clear();
        Ok(())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Reached only when `shutdown` was skipped (e.g. a panicking test):
        // don't leak child processes.
        for shard in &mut self.shards {
            let _ = shard.child.kill();
            let _ = shard.child.wait();
        }
    }
}

/// Spawn one `privmech-serve` on an ephemeral port and parse its banner.
fn spawn_shard(serve_bin: &Path, extra: &[String]) -> io::Result<ShardProcess> {
    let mut child = Command::new(serve_bin)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let banner = match lines.next() {
        Some(Ok(line)) => line,
        Some(Err(e)) => {
            let _ = child.kill();
            return Err(e);
        }
        None => {
            let _ = child.kill();
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "shard exited before printing its address",
            ));
        }
    };
    let Some(addr) = banner.strip_prefix("privmech-serve listening on ") else {
        let _ = child.kill();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected shard banner: {banner}"),
        ));
    };
    let addr = addr.to_string();
    // Keep draining stdout so the child can never block on a full pipe.
    std::thread::spawn(move || lines.for_each(drop));
    Ok(ShardProcess { child, addr })
}

/// The `privmech-serve` binary expected next to the currently running one —
/// the layout cargo produces for both `target/debug` and `target/release`.
pub fn sibling_serve_bin() -> io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, "current executable has no parent")
    })?;
    let candidate = dir.join(format!("privmech-serve{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "no privmech-serve next to {} — build it or pass --serve-bin",
                exe.display()
            ),
        ))
    }
}
