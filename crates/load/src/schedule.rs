//! Open-loop arrival schedules.
//!
//! The defining property of an **open-loop** load generator is that arrival
//! times are decided *before* the run, independent of how fast the server
//! answers — the antithesis of a replay client, which implicitly waits for
//! each reply and therefore can never offer more load than the server
//! absorbs. Everything here is a pure function from a [`Schedule`] to a
//! vector of arrival offsets; the runner's only job is to hit those
//! timestamps. When the server falls behind, requests queue (client-side in
//! the socket, server-side at the backpressure gate) and the queueing delay
//! lands in the measured latency, which is exactly the signal a capacity
//! search needs.

use std::time::Duration;

/// An open-loop arrival schedule. All variants are deterministic: equal
/// schedules produce equal arrival offsets, every time, with no dependence
/// on wall-clock, completions, or randomness.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// `count` arrivals at a constant `rate_per_sec` (arrival `k` at
    /// `k / rate` seconds).
    FixedRate {
        /// Offered arrival rate in requests per second (must be positive).
        rate_per_sec: f64,
        /// Total number of arrivals.
        count: usize,
    },
    /// `count` arrivals whose instantaneous rate ramps linearly from
    /// `start_rate` to `end_rate`: the gap before arrival `k` is the
    /// reciprocal of the rate interpolated at `k`.
    Ramp {
        /// Rate at the first arrival (requests per second, positive).
        start_rate: f64,
        /// Rate at the last arrival (requests per second, positive).
        end_rate: f64,
        /// Total number of arrivals.
        count: usize,
    },
}

impl Schedule {
    /// Number of arrivals this schedule produces.
    #[must_use]
    pub fn count(&self) -> usize {
        match self {
            Schedule::FixedRate { count, .. } | Schedule::Ramp { count, .. } => *count,
        }
    }

    /// The arrival timestamps as offsets from the run's start instant —
    /// monotone non-decreasing, `count()` entries. A pure function of the
    /// schedule: by construction no completion time (or any other runtime
    /// feedback) can influence an arrival.
    #[must_use]
    pub fn arrival_offsets(&self) -> Vec<Duration> {
        match *self {
            Schedule::FixedRate {
                rate_per_sec,
                count,
            } => {
                assert!(
                    rate_per_sec > 0.0 && rate_per_sec.is_finite(),
                    "rate must be positive and finite"
                );
                (0..count)
                    .map(|k| Duration::from_secs_f64(k as f64 / rate_per_sec))
                    .collect()
            }
            Schedule::Ramp {
                start_rate,
                end_rate,
                count,
            } => {
                assert!(
                    start_rate > 0.0 && end_rate > 0.0,
                    "ramp rates must be positive"
                );
                let mut offsets = Vec::with_capacity(count);
                let mut t = 0.0f64;
                for k in 0..count {
                    if k > 0 {
                        let frac = k as f64 / (count.max(2) - 1) as f64;
                        let rate = start_rate + (end_rate - start_rate) * frac;
                        t += 1.0 / rate;
                    }
                    offsets.push(Duration::from_secs_f64(t));
                }
                offsets
            }
        }
    }

    /// Mean offered rate over the whole schedule, in requests per second.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        match *self {
            Schedule::FixedRate { rate_per_sec, .. } => rate_per_sec,
            Schedule::Ramp {
                start_rate,
                end_rate,
                ..
            } => {
                let span = self
                    .arrival_offsets()
                    .last()
                    .copied()
                    .unwrap_or_default()
                    .as_secs_f64();
                if span > 0.0 {
                    (self.count().max(1) - 1) as f64 / span
                } else {
                    (start_rate + end_rate) / 2.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_offsets_are_exact_and_pure() {
        let schedule = Schedule::FixedRate {
            rate_per_sec: 1000.0,
            count: 100,
        };
        let offsets = schedule.arrival_offsets();
        assert_eq!(offsets.len(), 100);
        for (k, offset) in offsets.iter().enumerate() {
            assert_eq!(*offset, Duration::from_secs_f64(k as f64 / 1000.0));
        }
        // Pure: the same schedule yields the same offsets on every call.
        assert_eq!(offsets, schedule.arrival_offsets());
    }

    #[test]
    fn ramp_offsets_are_monotone_and_accelerate() {
        let schedule = Schedule::Ramp {
            start_rate: 10.0,
            end_rate: 100.0,
            count: 50,
        };
        let offsets = schedule.arrival_offsets();
        assert_eq!(offsets.len(), 50);
        let gaps: Vec<f64> = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        for pair in gaps.windows(2) {
            assert!(pair[1] < pair[0], "gaps shrink as the rate ramps up");
        }
        assert_eq!(offsets, schedule.arrival_offsets());
    }
}
