//! Perf-trajectory tool: run the LP benchmark workloads in quick mode and
//! append one JSON record to `BENCH_lp.json`.
//!
//! Unlike the Criterion suite this drives the engine directly, so it can
//! record the solver's [`PivotStats`] next to each wall time — a perf
//! regression then decomposes into "more pivots" (pricing/algorithmic) vs
//! "slower pivots" (arithmetic/kernel).
//!
//! Usage:
//!
//! ```text
//! bench-summary [--label <label>] [--output <path>] [--max-n <n>] [--reps <k>]
//!               [--sweep] [--sweep-n <n>] [--sweep-points <k>] [--sweep-threads <t>]
//!               [--serve] [--serve-n <n>] [--serve-points <k>] [--serve-repeat <r>]
//!               [--compare-forms] [--compare-n <n>]
//! ```
//!
//! `--sweep` appends an α-sweep comparison record instead of the per-size
//! solve record: a 16-point exact α-sweep solved (a) cold, by sequential
//! per-α calls of the deprecated `optimal_mechanism` free function, (b) by
//! the warm-started `engine.sweep` on the same Section 2.5 LP (strategy
//! DirectLp — results asserted bit-identical to the cold baseline), and (c)
//! by the engine's default Theorem-1 factorization strategy (losses asserted
//! bit-identical; mechanisms optimal and derivable by construction).
//!
//! `--serve` appends a serving-layer throughput record instead: an
//! in-process `privmech-serve` server is driven over real TCP with a
//! repeated-request workload of `serve-points` distinct exact solves at
//! `serve-n`, measuring cold (all cache misses) against cached (all hits)
//! per-request latency. Every cached response is asserted byte-identical to
//! a cache-bypassing fresh solve before the record is written.
//!
//! `--compare-forms` appends a solver-form identity record instead: one
//! exact solve at `compare-n` run under both the dense tableau and the
//! revised simplex ([`privmech_lp::SolverForm`]), runtime-asserting the
//! bit-identity contract (equal mechanism, loss and pivot statistics) and
//! recording the revised-over-dense speedup. CI runs this on every push so
//! the dense ≡ revised contract is exercised outside the unit suites too.
//!
//! The output file is JSON Lines: one self-contained record per invocation,
//! so successive PRs build up a comparable history.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

use privmech_bench::{bench_consumer, bench_interval_consumer};
use privmech_core::{
    MinimaxConsumer, PivotStats, PrivacyEngine, PrivacyLevel, SolveStrategy, ValidatedRequest,
};
use privmech_numerics::{rat, Rational};

struct RunResult {
    name: String,
    scalar: &'static str,
    n: usize,
    median_ns: u128,
    samples: usize,
    stats: PivotStats,
}

/// Time `f` adaptively: slow workloads run once, fast ones `reps` times; the
/// median is reported.
fn time_workload<F: FnMut() -> PivotStats>(reps: usize, mut f: F) -> (u128, usize, PivotStats) {
    let start = Instant::now();
    let stats = f();
    let first = start.elapsed().as_nanos();
    // Re-running a multi-second exact solve several times buys no precision
    // worth its wall-clock cost.
    let extra = if first > 2_000_000_000 {
        0
    } else {
        reps.saturating_sub(1)
    };
    let mut times = vec![first];
    for _ in 0..extra {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], times.len(), stats)
}

fn direct_request<T: privmech_linalg::Scalar>(
    level: PrivacyLevel<T>,
    consumer: MinimaxConsumer<T>,
) -> ValidatedRequest<T> {
    ValidatedRequest::minimax(level, consumer).with_strategy(SolveStrategy::DirectLp)
}

fn run_exact(n: usize, reps: usize) -> RunResult {
    let engine = PrivacyEngine::with_threads(1);
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).expect("valid alpha");
    let request = direct_request(level, bench_consumer(n));
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("exact_full_S/{n}"),
        scalar: "rational",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn run_f64(n: usize, reps: usize) -> RunResult {
    let engine = PrivacyEngine::with_threads(1);
    let level = PrivacyLevel::new(0.25f64).expect("valid alpha");
    let request = direct_request(level, bench_consumer(n));
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("f64_full_S/{n}"),
        scalar: "f64",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn run_f64_interval(n: usize, reps: usize) -> RunResult {
    let engine = PrivacyEngine::with_threads(1);
    let level = PrivacyLevel::new(0.25f64).expect("valid alpha");
    let request = direct_request(level, bench_interval_consumer(n));
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("f64_interval_S/{n}"),
        scalar: "f64",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn json_record(label: &str, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"label\": \"{label}\", \"results\": ["));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"scalar\": \"{}\", \"n\": {}, \"median_ns\": {}, \
             \"samples\": {}, \"pivots\": {}, \"phase1_pivots\": {}, \
             \"degenerate_pivots\": {}, \"dantzig_pivots\": {}, \"bland_pivots\": {}, \
             \"fallback_activations\": {}}}",
            r.name,
            r.scalar,
            r.n,
            r.median_ns,
            r.samples,
            r.stats.total_pivots(),
            r.stats.phase1_pivots,
            r.stats.degenerate_pivots,
            r.stats.dantzig_pivots,
            r.stats.bland_pivots,
            r.stats.fallback_activations,
        ));
    }
    out.push_str("]}");
    out
}

/// The α-sweep acceptance benchmark: `sweep_points` exact levels
/// `α_k = k / (points + 1)` over the full-S absolute-error consumer at
/// `sweep_n`.
fn run_sweep(label: &str, n: usize, points: usize, threads: usize) -> String {
    if points == 0 {
        eprintln!("--sweep-points must be at least 1");
        std::process::exit(2);
    }
    let levels: Vec<PrivacyLevel<Rational>> = (1..=points)
        .map(|k| PrivacyLevel::new(rat(k as i64, points as i64 + 1)).expect("alpha in (0,1)"))
        .collect();
    let consumer: MinimaxConsumer<Rational> = bench_consumer(n);

    // (a) Cold baseline: sequential per-α calls of the seed free function.
    eprintln!("sweep baseline: {points} sequential cold optimal_mechanism calls at n = {n} ...");
    let start = Instant::now();
    #[allow(deprecated)]
    let cold: Vec<_> = levels
        .iter()
        .map(|level| privmech_core::optimal_mechanism(level, &consumer).expect("solvable LP"))
        .collect();
    let cold_ns = start.elapsed().as_nanos();

    // (b) Warm-started engine sweep on the same Section 2.5 LP.
    eprintln!("sweep direct: engine.sweep (DirectLp template, {threads} threads) ...");
    let engine = PrivacyEngine::with_threads(threads);
    let direct_req = direct_request(levels[0].clone(), consumer.clone());
    let start = Instant::now();
    let direct = engine.sweep(&levels, &direct_req).expect("sweepable LP");
    let direct_ns = start.elapsed().as_nanos();
    let mut direct_identical = true;
    for (c, d) in cold.iter().zip(&direct) {
        direct_identical &= c.mechanism == d.mechanism && c.loss == d.loss;
    }
    assert!(
        direct_identical,
        "DirectLp sweep must be bit-identical to the cold free-function baseline"
    );

    // (c) The engine's default strategy: Theorem 1 factorization.
    eprintln!("sweep factorized: engine.sweep (GeometricFactorization, {threads} threads) ...");
    let factor_req = ValidatedRequest::minimax(levels[0].clone(), consumer.clone());
    let start = Instant::now();
    let factored = engine.sweep(&levels, &factor_req).expect("sweepable LP");
    let factor_ns = start.elapsed().as_nanos();
    let mut losses_identical = true;
    for ((level, c), f) in levels.iter().zip(&cold).zip(&factored) {
        losses_identical &= c.loss == f.loss;
        assert!(
            f.mechanism.is_differentially_private(level),
            "factorized sweep mechanism must be α-DP"
        );
    }
    assert!(
        losses_identical,
        "Theorem 1: factorized sweep losses must equal the tailored optima bit for bit"
    );

    let speedup_direct = cold_ns as f64 / direct_ns as f64;
    let speedup_factor = cold_ns as f64 / factor_ns as f64;
    eprintln!(
        "cold sequential: {:.3}s | direct warm sweep: {:.3}s ({speedup_direct:.2}x) | \
         factorized warm sweep: {:.3}s ({speedup_factor:.2}x)",
        cold_ns as f64 / 1e9,
        direct_ns as f64 / 1e9,
        factor_ns as f64 / 1e9,
    );

    format!(
        "{{\"label\": \"{label}\", \"sweep\": {{\"n\": {n}, \"points\": {points}, \
         \"threads\": {threads}, \"scalar\": \"rational\", \
         \"cold_sequential_ns\": {cold_ns}, \"warm_direct_sweep_ns\": {direct_ns}, \
         \"warm_factorized_sweep_ns\": {factor_ns}, \
         \"speedup_direct\": {speedup_direct:.4}, \"speedup_factorized\": {speedup_factor:.4}, \
         \"direct_bit_identical\": {direct_identical}, \
         \"factorized_losses_bit_identical\": {losses_identical}}}}}"
    )
}

/// The solver-form identity benchmark: one exact solve at size `n` run under
/// both simplex forms ([`privmech_lp::SolverForm::Dense`] and
/// [`privmech_lp::SolverForm::Revised`]), asserting the PR 4 contract —
/// bit-identical mechanism, loss and pivot statistics (identical pivot
/// counts are the visible consequence of the identical pivot *sequence*) —
/// and recording the revised-over-dense speedup.
fn run_compare_forms(label: &str, n: usize) -> String {
    use privmech_lp::{SolverForm, SolverOptions};
    let engine = PrivacyEngine::with_threads(1);
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).expect("valid alpha");
    let with_form = |form: SolverForm| {
        direct_request(level.clone(), bench_consumer(n)).with_options(SolverOptions {
            form,
            ..SolverOptions::default()
        })
    };

    eprintln!("compare-forms: dense-tableau exact solve at n = {n} ...");
    let start = Instant::now();
    let dense = engine
        .solve(&with_form(SolverForm::Dense))
        .expect("solvable LP");
    let dense_ns = start.elapsed().as_nanos();

    eprintln!("compare-forms: revised-simplex exact solve at n = {n} ...");
    let start = Instant::now();
    let revised = engine
        .solve(&with_form(SolverForm::Revised))
        .expect("solvable LP");
    let revised_ns = start.elapsed().as_nanos();

    assert_eq!(
        dense.mechanism, revised.mechanism,
        "dense ≡ revised: mechanisms must be bit-identical"
    );
    assert_eq!(
        dense.loss, revised.loss,
        "dense ≡ revised: losses must be bit-identical"
    );
    assert_eq!(
        dense.stats, revised.stats,
        "dense ≡ revised: identical pivot sequences imply identical stats"
    );

    let speedup = dense_ns as f64 / revised_ns as f64;
    eprintln!(
        "dense: {:.3}s | revised: {:.3}s ({speedup:.2}x) | pivots {} (identical)",
        dense_ns as f64 / 1e9,
        revised_ns as f64 / 1e9,
        dense.stats.total_pivots(),
    );

    format!(
        "{{\"label\": \"{label}\", \"compare_forms\": {{\"n\": {n}, \"scalar\": \"rational\", \
         \"dense_ns\": {dense_ns}, \"revised_ns\": {revised_ns}, \
         \"speedup_revised\": {speedup:.4}, \"pivots\": {}, \"bit_identical\": true}}}}",
        dense.stats.total_pivots()
    )
}

/// The serving-layer acceptance benchmark: `points` distinct exact solves at
/// size `n` driven through a real `privmech-serve` TCP round trip, cold
/// (every request misses) vs cached (`repeat` hot passes, every request
/// hits), with the cached ≡ uncached byte identity asserted per request.
fn run_serve(label: &str, n: usize, points: usize, repeat: usize) -> String {
    use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
    use privmech_serve::{client::Client, server, server::ServerConfig};

    if points == 0 || repeat == 0 {
        eprintln!("--serve-points and --serve-repeat must be at least 1");
        std::process::exit(2);
    }
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(n, LossSpec::Absolute);
    let alphas: Vec<Rational> = (1..=points)
        .map(|k| rat(k as i64, points as i64 + 1))
        .collect();

    // Cold pass: every request computes and populates the cache.
    eprintln!("serve cold: {points} distinct solves at n = {n} over TCP ...");
    let start = Instant::now();
    let cold_replies: Vec<_> = alphas
        .iter()
        .map(|alpha| client.solve(&spec, alpha, CacheMode::Use).expect("solve"))
        .collect();
    let cold_ns = start.elapsed().as_nanos();
    assert!(
        cold_replies
            .iter()
            .all(|r| r.cache == CacheDisposition::Miss),
        "cold pass must miss on every distinct request"
    );

    // Hot passes: the same requests, answered from the cache.
    eprintln!("serve cached: {repeat} hot passes over the same {points} requests ...");
    let start = Instant::now();
    let mut hits = 0usize;
    for _ in 0..repeat {
        for (alpha, cold) in alphas.iter().zip(&cold_replies) {
            let reply = client.solve(&spec, alpha, CacheMode::Use).expect("solve");
            assert_eq!(reply.cache, CacheDisposition::Hit, "hot pass must hit");
            assert_eq!(
                reply.raw, cold.raw,
                "cached response must be byte-identical to the cold solve"
            );
            hits += 1;
        }
    }
    let cached_ns = start.elapsed().as_nanos();

    // Runtime bit-identity against *fresh* solves: bypass the cache entirely
    // and compare bytes.
    eprintln!("serve verify: cache-bypassing fresh solves vs cached responses ...");
    for (alpha, cold) in alphas.iter().zip(&cold_replies) {
        let fresh = client
            .solve(&spec, alpha, CacheMode::Bypass)
            .expect("bypass solve");
        assert_eq!(
            fresh.raw, cold.raw,
            "uncached engine solve must render byte-identically"
        );
    }
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.misses as usize, points);
    assert_eq!(stats.hits as usize, hits);
    client.shutdown().expect("shutdown");
    handle.join();

    let cold_per = cold_ns as f64 / points as f64;
    let cached_per = cached_ns as f64 / (points * repeat) as f64;
    let speedup = cold_per / cached_per;
    eprintln!(
        "cold: {:.3}ms/request | cached: {:.4}ms/request | {speedup:.1}x",
        cold_per / 1e6,
        cached_per / 1e6,
    );
    assert!(
        speedup >= 5.0,
        "acceptance: cached serving must be at least 5x cold, got {speedup:.2}x"
    );

    format!(
        "{{\"label\": \"{label}\", \"serve\": {{\"n\": {n}, \"points\": {points}, \
         \"repeat\": {repeat}, \"scalar\": \"rational\", \"transport\": \"tcp-loopback\", \
         \"cold_ns\": {cold_ns}, \"cached_ns\": {cached_ns}, \
         \"cold_per_request_ns\": {cold_per:.0}, \"cached_per_request_ns\": {cached_per:.0}, \
         \"speedup_cached\": {speedup:.4}, \"bit_identical\": true, \
         \"cache_hits\": {}, \"cache_misses\": {}}}}}",
        stats.hits, stats.misses
    )
}

fn main() {
    let mut label = "dev".to_string();
    let mut output = "BENCH_lp.json".to_string();
    let mut max_n = 16usize;
    let mut reps = 5usize;
    let mut sweep = false;
    let mut sweep_n = 6usize;
    let mut sweep_points = 16usize;
    let mut sweep_threads = 4usize;
    let mut serve = false;
    let mut serve_n = 6usize;
    let mut serve_points = 8usize;
    let mut serve_repeat = 50usize;
    let mut compare_forms = false;
    let mut compare_n = 8usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--output" => output = args.next().expect("--output needs a value"),
            "--max-n" => {
                max_n = args
                    .next()
                    .expect("--max-n needs a value")
                    .parse()
                    .expect("--max-n needs an integer")
            }
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps needs an integer")
            }
            "--sweep" => sweep = true,
            "--sweep-n" => {
                sweep_n = args
                    .next()
                    .expect("--sweep-n needs a value")
                    .parse()
                    .expect("--sweep-n needs an integer")
            }
            "--sweep-points" => {
                sweep_points = args
                    .next()
                    .expect("--sweep-points needs a value")
                    .parse()
                    .expect("--sweep-points needs an integer")
            }
            "--sweep-threads" => {
                sweep_threads = args
                    .next()
                    .expect("--sweep-threads needs a value")
                    .parse()
                    .expect("--sweep-threads needs an integer")
            }
            "--compare-forms" => compare_forms = true,
            "--compare-n" => {
                compare_n = args
                    .next()
                    .expect("--compare-n needs a value")
                    .parse()
                    .expect("--compare-n needs an integer")
            }
            "--serve" => serve = true,
            "--serve-n" => {
                serve_n = args
                    .next()
                    .expect("--serve-n needs a value")
                    .parse()
                    .expect("--serve-n needs an integer")
            }
            "--serve-points" => {
                serve_points = args
                    .next()
                    .expect("--serve-points needs a value")
                    .parse()
                    .expect("--serve-points needs an integer")
            }
            "--serve-repeat" => {
                serve_repeat = args
                    .next()
                    .expect("--serve-repeat needs a value")
                    .parse()
                    .expect("--serve-repeat needs an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench-summary [--label L] [--output PATH] [--max-n N] [--reps K] \
                     [--sweep] [--sweep-n N] [--sweep-points K] [--sweep-threads T] \
                     [--serve] [--serve-n N] [--serve-points K] [--serve-repeat R] \
                     [--compare-forms] [--compare-n N]"
                );
                std::process::exit(2);
            }
        }
    }

    let record = if compare_forms {
        run_compare_forms(&label, compare_n)
    } else if serve {
        run_serve(&label, serve_n, serve_points, serve_repeat)
    } else if sweep {
        run_sweep(&label, sweep_n, sweep_points, sweep_threads)
    } else {
        let mut results = Vec::new();
        for n in [3usize, 4, 6, 8, 10] {
            if n > max_n {
                break;
            }
            eprintln!("running f64_full_S/{n} ...");
            results.push(run_f64(n, reps));
        }
        for n in [6usize, 10] {
            if n > max_n {
                break;
            }
            eprintln!("running f64_interval_S/{n} ...");
            results.push(run_f64_interval(n, reps));
        }
        for n in [3usize, 4, 5, 8, 12, 16] {
            if n > max_n {
                break;
            }
            eprintln!("running exact_full_S/{n} ...");
            results.push(run_exact(n, reps));
        }

        for r in &results {
            eprintln!(
                "{:<22} median {:>12} ns  pivots {:>5} (phase1 {}, degenerate {}, fallbacks {})",
                r.name,
                r.median_ns,
                r.stats.total_pivots(),
                r.stats.phase1_pivots,
                r.stats.degenerate_pivots,
                r.stats.fallback_activations,
            );
        }
        json_record(&label, &results)
    };

    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&output)
        .expect("open output file");
    writeln!(file, "{record}").expect("write output file");
    eprintln!("appended record \"{label}\" to {output}");
}
