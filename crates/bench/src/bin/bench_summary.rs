//! Perf-trajectory tool: run the LP benchmark workloads in quick mode and
//! append one JSON record to `BENCH_lp.json`.
//!
//! Unlike the Criterion suite this drives `optimal_mechanism` directly, so it
//! can record the solver's [`PivotStats`] next to each wall time — a perf
//! regression then decomposes into "more pivots" (pricing/algorithmic) vs
//! "slower pivots" (arithmetic/kernel).
//!
//! Usage:
//!
//! ```text
//! bench-summary [--label <label>] [--output <path>] [--max-n <n>] [--reps <k>]
//! ```
//!
//! The output file is JSON Lines: one self-contained record per invocation,
//! so successive PRs build up a comparable history. Each record looks like
//!
//! ```json
//! {"label": "pr1", "results": [
//!   {"name": "exact_full_S/8", "scalar": "rational", "n": 8,
//!    "median_ns": 123456, "pivots": 42, "phase1_pivots": 17,
//!    "degenerate_pivots": 3, "fallback_activations": 0}, ...]}
//! ```

use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

use privmech_bench::{bench_consumer, bench_interval_consumer};
use privmech_core::{optimal_mechanism, MinimaxConsumer, PrivacyLevel};
use privmech_lp::PivotStats;
use privmech_numerics::{rat, Rational};

struct RunResult {
    name: String,
    scalar: &'static str,
    n: usize,
    median_ns: u128,
    samples: usize,
    stats: PivotStats,
}

/// Time `f` adaptively: slow workloads run once, fast ones `reps` times; the
/// median is reported.
fn time_workload<F: FnMut() -> PivotStats>(reps: usize, mut f: F) -> (u128, usize, PivotStats) {
    let start = Instant::now();
    let stats = f();
    let first = start.elapsed().as_nanos();
    // Re-running a multi-second exact solve several times buys no precision
    // worth its wall-clock cost.
    let extra = if first > 2_000_000_000 {
        0
    } else {
        reps.saturating_sub(1)
    };
    let mut times = vec![first];
    for _ in 0..extra {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], times.len(), stats)
}

fn run_exact(n: usize, reps: usize) -> RunResult {
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).expect("valid alpha");
    let consumer: MinimaxConsumer<Rational> = bench_consumer(n);
    let (median_ns, samples, stats) = time_workload(reps, || {
        optimal_mechanism(&level, &consumer)
            .expect("solvable LP")
            .lp_stats
    });
    RunResult {
        name: format!("exact_full_S/{n}"),
        scalar: "rational",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn run_f64(n: usize, reps: usize) -> RunResult {
    let level = PrivacyLevel::new(0.25f64).expect("valid alpha");
    let consumer: MinimaxConsumer<f64> = bench_consumer(n);
    let (median_ns, samples, stats) = time_workload(reps, || {
        optimal_mechanism(&level, &consumer)
            .expect("solvable LP")
            .lp_stats
    });
    RunResult {
        name: format!("f64_full_S/{n}"),
        scalar: "f64",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn run_f64_interval(n: usize, reps: usize) -> RunResult {
    let level = PrivacyLevel::new(0.25f64).expect("valid alpha");
    let consumer: MinimaxConsumer<f64> = bench_interval_consumer(n);
    let (median_ns, samples, stats) = time_workload(reps, || {
        optimal_mechanism(&level, &consumer)
            .expect("solvable LP")
            .lp_stats
    });
    RunResult {
        name: format!("f64_interval_S/{n}"),
        scalar: "f64",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn json_record(label: &str, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"label\": \"{label}\", \"results\": ["));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"scalar\": \"{}\", \"n\": {}, \"median_ns\": {}, \
             \"samples\": {}, \"pivots\": {}, \"phase1_pivots\": {}, \
             \"degenerate_pivots\": {}, \"dantzig_pivots\": {}, \"bland_pivots\": {}, \
             \"fallback_activations\": {}}}",
            r.name,
            r.scalar,
            r.n,
            r.median_ns,
            r.samples,
            r.stats.total_pivots(),
            r.stats.phase1_pivots,
            r.stats.degenerate_pivots,
            r.stats.dantzig_pivots,
            r.stats.bland_pivots,
            r.stats.fallback_activations,
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let mut label = "dev".to_string();
    let mut output = "BENCH_lp.json".to_string();
    let mut max_n = 16usize;
    let mut reps = 5usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--output" => output = args.next().expect("--output needs a value"),
            "--max-n" => {
                max_n = args
                    .next()
                    .expect("--max-n needs a value")
                    .parse()
                    .expect("--max-n needs an integer")
            }
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps needs an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench-summary [--label L] [--output PATH] [--max-n N] [--reps K]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut results = Vec::new();
    for n in [3usize, 4, 6, 8, 10] {
        if n > max_n {
            break;
        }
        eprintln!("running f64_full_S/{n} ...");
        results.push(run_f64(n, reps));
    }
    for n in [6usize, 10] {
        if n > max_n {
            break;
        }
        eprintln!("running f64_interval_S/{n} ...");
        results.push(run_f64_interval(n, reps));
    }
    for n in [3usize, 4, 5, 8, 12, 16] {
        if n > max_n {
            break;
        }
        eprintln!("running exact_full_S/{n} ...");
        results.push(run_exact(n, reps));
    }

    for r in &results {
        eprintln!(
            "{:<22} median {:>12} ns  pivots {:>5} (phase1 {}, degenerate {}, fallbacks {})",
            r.name,
            r.median_ns,
            r.stats.total_pivots(),
            r.stats.phase1_pivots,
            r.stats.degenerate_pivots,
            r.stats.fallback_activations,
        );
    }

    let record = json_record(&label, &results);
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&output)
        .expect("open output file");
    writeln!(file, "{record}").expect("write output file");
    eprintln!("appended record \"{label}\" to {output}");
}
