//! Perf-trajectory tool: run the LP benchmark workloads in quick mode and
//! append one JSON record to `BENCH_lp.json`.
//!
//! Unlike the Criterion suite this drives the engine directly, so it can
//! record the solver's [`PivotStats`] next to each wall time — a perf
//! regression then decomposes into "more pivots" (pricing/algorithmic) vs
//! "slower pivots" (arithmetic/kernel).
//!
//! Usage:
//!
//! ```text
//! bench-summary [--label <label>] [--output <path>] [--max-n <n>] [--reps <k>]
//!               [--sweep] [--sweep-n <n>] [--sweep-points <k>] [--sweep-threads <t>]
//!               [--serve] [--serve-n <n>] [--serve-points <k>] [--serve-repeat <r>]
//!               [--serve-pipelined] [--pipeline-n <n>] [--pipeline-points <k>]
//!               [--pipeline-solves <s>] [--compare-forms] [--compare-n <n>]
//!               [--warm-sweep] [--warm-n <n>] [--warm-points <k>]
//!               [--sweep-mem] [--sweep-mem-n <n>] [--sweep-mem-points <k>]
//! ```
//!
//! `--sweep` appends an α-sweep comparison record instead of the per-size
//! solve record: a 16-point exact α-sweep solved (a) cold, by sequential
//! per-α `DirectLp` engine solves each rebuilding the Section 2.5 LP, (b) by
//! the warm-started `engine.sweep` on the same Section 2.5 LP (strategy
//! DirectLp — results asserted bit-identical to the cold baseline), and (c)
//! by the engine's default Theorem-1 factorization strategy (losses asserted
//! bit-identical; mechanisms optimal and derivable by construction).
//!
//! `--serve` appends a serving-layer throughput record instead: an
//! in-process `privmech-serve` server is driven over real TCP with a
//! repeated-request workload of `serve-points` distinct exact solves at
//! `serve-n`, measuring cold (all cache misses) against cached (all hits)
//! per-request latency. Every cached response is asserted byte-identical to
//! a cache-bypassing fresh solve before the record is written, and the
//! server's per-op latency histograms (`metrics` op) are printed.
//!
//! `--serve-pipelined` appends the protocol-v2 pipelining record instead: a
//! mixed workload (one `pipeline-points`-α exact sweep + `pipeline-solves`
//! repeated solves at `pipeline-n`) timed serially over strict v1
//! request/response and pipelined over v2 on the same warmed server, with
//! byte identity asserted between the two transports per request — plus a
//! cache-bypassed streamed sweep asserting the first `sweep_item` frame
//! lands in the first half of the sweep's wall-clock (streaming streams).
//!
//! `--compare-forms` appends a solver-form identity record instead: one
//! exact solve at `compare-n` run under both the dense tableau and the
//! revised simplex ([`privmech_lp::SolverForm`]), runtime-asserting the
//! bit-identity contract (equal mechanism, loss and pivot statistics) and
//! recording the revised-over-dense speedup, plus — since PR 6 — a
//! devex-priced solve and a small dual-simplex warm-started sweep, both
//! certificate-verified inside the solver and asserted to land on the
//! default path's optimal loss. CI runs this on every push so both tiers of
//! the correctness contract are exercised outside the unit suites too.
//!
//! `--sweep-mem` appends a sweep peak-memory record instead: the same exact
//! α-sweep solved sequentially under the dense tableau and under the
//! CSR-backed revised simplex, with each pass's peak RSS (`VmHWM`, reset
//! between passes via `/proc/self/clear_refs` where supported) recorded and
//! the losses asserted bit-identical — the tracked number behind the PR 8
//! claim that the CSR store shrinks sweep memory, not just wall-clock.
//!
//! `--warm-sweep` appends a warm-start acceptance record instead: a
//! `warm-points`-α exact sweep at `warm-n` timed cold (sequential per-α
//! solves from scratch) against the dual-simplex warm-started engine sweep,
//! with per-α pivot counts recorded and every level's warm loss asserted
//! equal to the cold optimum. Honors `PRIVMECH_SWEEP_QUICK=1` (CI smoke
//! size).
//!
//! The output file is JSON Lines: one self-contained record per invocation,
//! so successive PRs build up a comparable history.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::Instant;

use privmech_bench::{bench_consumer, bench_interval_consumer};
use privmech_core::{
    MinimaxConsumer, PivotStats, PrivacyEngine, PrivacyLevel, SolveStrategy, ValidatedRequest,
};
use privmech_numerics::{rat, Rational};

struct RunResult {
    name: String,
    scalar: &'static str,
    n: usize,
    median_ns: u128,
    samples: usize,
    stats: PivotStats,
}

/// Time `f` adaptively: slow workloads run once, fast ones `reps` times; the
/// median is reported.
fn time_workload<F: FnMut() -> PivotStats>(reps: usize, mut f: F) -> (u128, usize, PivotStats) {
    let start = Instant::now();
    let stats = f();
    let first = start.elapsed().as_nanos();
    // Re-running a multi-second exact solve several times buys no precision
    // worth its wall-clock cost.
    let extra = if first > 2_000_000_000 {
        0
    } else {
        reps.saturating_sub(1)
    };
    let mut times = vec![first];
    for _ in 0..extra {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], times.len(), stats)
}

fn direct_request<T: privmech_linalg::Scalar>(
    level: PrivacyLevel<T>,
    consumer: MinimaxConsumer<T>,
) -> ValidatedRequest<T> {
    ValidatedRequest::minimax(level, consumer).with_strategy(SolveStrategy::DirectLp)
}

fn run_exact(n: usize, reps: usize) -> RunResult {
    let engine = PrivacyEngine::with_threads(1);
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).expect("valid alpha");
    let request = direct_request(level, bench_consumer(n));
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("exact_full_S/{n}"),
        scalar: "rational",
        n,
        median_ns,
        samples,
        stats,
    }
}

/// Same exact ladder entry under devex pricing. Devex changes the pivot
/// sequence, so each timed solve includes the engine's per-solve exact
/// optimality certificate — the reported time is the certified fast path,
/// not an unchecked one.
fn run_exact_devex(n: usize, reps: usize) -> RunResult {
    use privmech_lp::{PricingRule, SolverOptions};
    let engine = PrivacyEngine::with_threads(1);
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).expect("valid alpha");
    let request = direct_request(level, bench_consumer(n)).with_options(SolverOptions {
        pricing: PricingRule::Devex,
        ..SolverOptions::default()
    });
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("exact_full_S_devex/{n}"),
        scalar: "rational",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn run_f64(n: usize, reps: usize) -> RunResult {
    let engine = PrivacyEngine::with_threads(1);
    let level = PrivacyLevel::new(0.25f64).expect("valid alpha");
    let request = direct_request(level, bench_consumer(n));
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("f64_full_S/{n}"),
        scalar: "f64",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn run_f64_interval(n: usize, reps: usize) -> RunResult {
    let engine = PrivacyEngine::with_threads(1);
    let level = PrivacyLevel::new(0.25f64).expect("valid alpha");
    let request = direct_request(level, bench_interval_consumer(n));
    let (median_ns, samples, stats) =
        time_workload(reps, || engine.solve(&request).expect("solvable LP").stats);
    RunResult {
        name: format!("f64_interval_S/{n}"),
        scalar: "f64",
        n,
        median_ns,
        samples,
        stats,
    }
}

fn json_record(label: &str, results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"label\": \"{label}\", \"results\": ["));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"scalar\": \"{}\", \"n\": {}, \"median_ns\": {}, \
             \"samples\": {}, \"pivots\": {}, \"phase1_pivots\": {}, \
             \"degenerate_pivots\": {}, \"dantzig_pivots\": {}, \"bland_pivots\": {}, \
             \"fallback_activations\": {}}}",
            r.name,
            r.scalar,
            r.n,
            r.median_ns,
            r.samples,
            r.stats.total_pivots(),
            r.stats.phase1_pivots,
            r.stats.degenerate_pivots,
            r.stats.dantzig_pivots,
            r.stats.bland_pivots,
            r.stats.fallback_activations,
        ));
    }
    out.push_str("]}");
    out
}

/// The α-sweep acceptance benchmark: `sweep_points` exact levels
/// `α_k = k / (points + 1)` over the full-S absolute-error consumer at
/// `sweep_n`.
fn run_sweep(label: &str, n: usize, points: usize, threads: usize) -> String {
    if points == 0 {
        eprintln!("--sweep-points must be at least 1");
        std::process::exit(2);
    }
    let levels: Vec<PrivacyLevel<Rational>> = (1..=points)
        .map(|k| PrivacyLevel::new(rat(k as i64, points as i64 + 1)).expect("alpha in (0,1)"))
        .collect();
    let consumer: MinimaxConsumer<Rational> = bench_consumer(n);

    // (a) Cold baseline: sequential per-α engine solves, each rebuilding the
    // Section 2.5 LP from scratch (what the seed's `optimal_mechanism` free
    // function — removed in PR 5 — did per call; DirectLp is bit-identical).
    eprintln!("sweep baseline: {points} sequential cold DirectLp solves at n = {n} ...");
    let cold_engine = PrivacyEngine::with_threads(1);
    let start = Instant::now();
    let cold: Vec<_> = levels
        .iter()
        .map(|level| {
            cold_engine
                .solve(&direct_request(level.clone(), consumer.clone()))
                .expect("solvable LP")
        })
        .collect();
    let cold_ns = start.elapsed().as_nanos();

    // (b) Warm-started engine sweep on the same Section 2.5 LP.
    eprintln!("sweep direct: engine.sweep (DirectLp template, {threads} threads) ...");
    let engine = PrivacyEngine::with_threads(threads);
    let direct_req = direct_request(levels[0].clone(), consumer.clone());
    let start = Instant::now();
    let direct = engine.sweep(&levels, &direct_req).expect("sweepable LP");
    let direct_ns = start.elapsed().as_nanos();
    let mut direct_identical = true;
    for (c, d) in cold.iter().zip(&direct) {
        direct_identical &= c.mechanism == d.mechanism && c.loss == d.loss;
    }
    assert!(
        direct_identical,
        "DirectLp sweep must be bit-identical to the cold free-function baseline"
    );

    // (c) The engine's default strategy: Theorem 1 factorization.
    eprintln!("sweep factorized: engine.sweep (GeometricFactorization, {threads} threads) ...");
    let factor_req = ValidatedRequest::minimax(levels[0].clone(), consumer.clone());
    let start = Instant::now();
    let factored = engine.sweep(&levels, &factor_req).expect("sweepable LP");
    let factor_ns = start.elapsed().as_nanos();
    let mut losses_identical = true;
    for ((level, c), f) in levels.iter().zip(&cold).zip(&factored) {
        losses_identical &= c.loss == f.loss;
        assert!(
            f.mechanism.is_differentially_private(level),
            "factorized sweep mechanism must be α-DP"
        );
    }
    assert!(
        losses_identical,
        "Theorem 1: factorized sweep losses must equal the tailored optima bit for bit"
    );

    let speedup_direct = cold_ns as f64 / direct_ns as f64;
    let speedup_factor = cold_ns as f64 / factor_ns as f64;
    eprintln!(
        "cold sequential: {:.3}s | direct warm sweep: {:.3}s ({speedup_direct:.2}x) | \
         factorized warm sweep: {:.3}s ({speedup_factor:.2}x)",
        cold_ns as f64 / 1e9,
        direct_ns as f64 / 1e9,
        factor_ns as f64 / 1e9,
    );

    format!(
        "{{\"label\": \"{label}\", \"sweep\": {{\"n\": {n}, \"points\": {points}, \
         \"threads\": {threads}, \"scalar\": \"rational\", \
         \"cold_sequential_ns\": {cold_ns}, \"warm_direct_sweep_ns\": {direct_ns}, \
         \"warm_factorized_sweep_ns\": {factor_ns}, \
         \"speedup_direct\": {speedup_direct:.4}, \"speedup_factorized\": {speedup_factor:.4}, \
         \"direct_bit_identical\": {direct_identical}, \
         \"factorized_losses_bit_identical\": {losses_identical}}}}}"
    )
}

/// The solver-form identity benchmark: one exact solve at size `n` run under
/// both simplex forms ([`privmech_lp::SolverForm::Dense`] and
/// [`privmech_lp::SolverForm::Revised`]), asserting the PR 4 contract —
/// bit-identical mechanism, loss and pivot statistics (identical pivot
/// counts are the visible consequence of the identical pivot *sequence*) —
/// and recording the revised-over-dense speedup.
///
/// Since PR 6 this smoke also covers the *certificate-verified* tier of the
/// contract: a devex-priced solve (every devex solve is checked against the
/// exact optimality certificate inside the solver before it is released) and
/// a small dual-simplex warm-started α-sweep (every warm reoptimization is
/// certificate-checked the same way), both asserted to land on the default
/// path's optimal loss.
fn run_compare_forms(label: &str, n: usize) -> String {
    use privmech_lp::{PricingRule, SolverForm, SolverOptions, WarmStartMode};
    let engine = PrivacyEngine::with_threads(1);
    let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).expect("valid alpha");
    let with_form = |form: SolverForm| {
        direct_request(level.clone(), bench_consumer(n)).with_options(SolverOptions {
            form,
            ..SolverOptions::default()
        })
    };

    eprintln!("compare-forms: dense-tableau exact solve at n = {n} ...");
    let start = Instant::now();
    let dense = engine
        .solve(&with_form(SolverForm::Dense))
        .expect("solvable LP");
    let dense_ns = start.elapsed().as_nanos();

    eprintln!("compare-forms: revised-simplex exact solve at n = {n} ...");
    let start = Instant::now();
    let revised = engine
        .solve(&with_form(SolverForm::Revised))
        .expect("solvable LP");
    let revised_ns = start.elapsed().as_nanos();

    assert_eq!(
        dense.mechanism, revised.mechanism,
        "dense ≡ revised: mechanisms must be bit-identical"
    );
    assert_eq!(
        dense.loss, revised.loss,
        "dense ≡ revised: losses must be bit-identical"
    );
    assert_eq!(
        dense.stats, revised.stats,
        "dense ≡ revised: identical pivot sequences imply identical stats"
    );

    // Certificate tier 1: devex pricing. A different pivot sequence, so
    // equality is at the solution level — the internal certificate proves
    // optimality, loss equality proves it is *the* optimum.
    eprintln!("compare-forms: devex-priced (certificate-verified) exact solve at n = {n} ...");
    let start = Instant::now();
    let devex = engine
        .solve(
            &direct_request(level.clone(), bench_consumer(n)).with_options(SolverOptions {
                pricing: PricingRule::Devex,
                ..SolverOptions::default()
            }),
        )
        .expect("solvable LP");
    let devex_ns = start.elapsed().as_nanos();
    assert_eq!(
        dense.loss, devex.loss,
        "devex optimum must match the default-path optimal loss"
    );
    assert!(devex.stats.devex_pivots > 0, "devex pricing must engage");

    // Certificate tier 2: a small dual-simplex warm-started sweep. Each warm
    // reoptimization is certificate-checked inside the solver; each level's
    // loss must equal an independent cold solve's.
    let warm_points = 4usize;
    eprintln!("compare-forms: {warm_points}-α dual-simplex warm sweep (certificate-verified) ...");
    let warm_levels: Vec<PrivacyLevel<Rational>> = (1..=warm_points)
        .map(|k| PrivacyLevel::new(rat(k as i64, warm_points as i64 + 1)).expect("alpha in (0,1)"))
        .collect();
    let warm_req =
        direct_request(warm_levels[0].clone(), bench_consumer(n)).with_options(SolverOptions {
            warm_start: WarmStartMode::DualSimplex,
            ..SolverOptions::default()
        });
    let warm = engine.sweep(&warm_levels, &warm_req).expect("sweepable LP");
    for (warm_level, w) in warm_levels.iter().zip(&warm) {
        let cold = engine
            .solve(&direct_request(warm_level.clone(), bench_consumer(n)))
            .expect("solvable LP");
        assert_eq!(
            cold.loss, w.loss,
            "warm-started sweep must match cold optima at the solution level"
        );
        assert!(
            w.mechanism.is_differentially_private(warm_level),
            "warm sweep mechanism must be α-DP"
        );
    }

    let speedup = dense_ns as f64 / revised_ns as f64;
    eprintln!(
        "dense: {:.3}s | revised: {:.3}s ({speedup:.2}x) | devex: {:.3}s | pivots {} (identical)",
        dense_ns as f64 / 1e9,
        revised_ns as f64 / 1e9,
        devex_ns as f64 / 1e9,
        dense.stats.total_pivots(),
    );

    format!(
        "{{\"label\": \"{label}\", \"compare_forms\": {{\"n\": {n}, \"scalar\": \"rational\", \
         \"dense_ns\": {dense_ns}, \"revised_ns\": {revised_ns}, \
         \"speedup_revised\": {speedup:.4}, \"pivots\": {}, \"bit_identical\": true, \
         \"devex_ns\": {devex_ns}, \"devex_loss_identical\": true, \
         \"warm_sweep_points\": {warm_points}, \"warm_losses_identical\": true, \
         \"certified\": true}}}}",
        dense.stats.total_pivots()
    )
}

/// The warm-start acceptance benchmark: a `points`-α exact sweep at size `n`
/// solved (a) cold — sequential per-α `DirectLp` engine solves, each starting
/// from scratch — and (b) by the same engine's sweep with
/// [`privmech_lp::WarmStartMode::DualSimplex`], which chains each α's final
/// basis into the next solve. Both passes run `reps` times and report the
/// median total. Every warm reoptimization is certificate-verified inside the
/// solver; on top of that each level's warm loss is asserted equal to the
/// cold optimum (the solution-level sweep ≡ solve guarantee), and the per-α
/// pivot counts go into the record so it shows *where* the warm path
/// reoptimized instead of re-solving. `PRIVMECH_SWEEP_QUICK=1` shrinks the
/// workload to CI smoke size.
fn run_warm_sweep(label: &str, n: usize, points: usize, reps: usize) -> String {
    use privmech_lp::{SolverOptions, WarmStartMode};
    let quick = std::env::var("PRIVMECH_SWEEP_QUICK").is_ok_and(|v| v == "1");
    let (n, points, reps) = if quick {
        (4, 6, 1)
    } else {
        (n, points, reps.max(1))
    };
    let levels: Vec<PrivacyLevel<Rational>> = (1..=points)
        .map(|k| PrivacyLevel::new(rat(k as i64, points as i64 + 1)).expect("alpha in (0,1)"))
        .collect();
    let consumer: MinimaxConsumer<Rational> = bench_consumer(n);
    // One worker: warm starts chain along the α axis, so the comparison is
    // sequential-vs-sequential and isolates the reoptimization saving.
    let engine = PrivacyEngine::with_threads(1);

    eprintln!("warm-sweep cold: {reps}x {points} sequential cold DirectLp solves at n = {n} ...");
    let mut cold_totals = Vec::with_capacity(reps);
    let mut cold_results = Vec::new();
    for rep in 0..reps {
        let start = Instant::now();
        let results: Vec<_> = levels
            .iter()
            .map(|level| {
                engine
                    .solve(&direct_request(level.clone(), consumer.clone()))
                    .expect("solvable LP")
            })
            .collect();
        cold_totals.push(start.elapsed().as_nanos());
        if rep == 0 {
            cold_results = results;
        }
    }
    cold_totals.sort_unstable();
    let cold_ns = cold_totals[cold_totals.len() / 2];

    eprintln!("warm-sweep warm: {reps}x engine.sweep with dual-simplex warm starts ...");
    let warm_req =
        direct_request(levels[0].clone(), consumer.clone()).with_options(SolverOptions {
            warm_start: WarmStartMode::DualSimplex,
            ..SolverOptions::default()
        });
    let mut warm_totals = Vec::with_capacity(reps);
    let mut warm_results = Vec::new();
    for rep in 0..reps {
        let start = Instant::now();
        let results = engine.sweep(&levels, &warm_req).expect("sweepable LP");
        warm_totals.push(start.elapsed().as_nanos());
        if rep == 0 {
            warm_results = results;
        }
    }
    warm_totals.sort_unstable();
    let warm_ns = warm_totals[warm_totals.len() / 2];

    // Solution-level sweep ≡ solve: equal optimal losses, α-DP mechanisms.
    // (The optimal vertex itself may differ under degeneracy — that is the
    // documented weakening of the warm-start guarantee; each warm solve was
    // already certificate-verified inside the solver.)
    let mut per_alpha = String::new();
    let mut warm_hits = 0usize;
    for (k, ((level, c), w)) in levels
        .iter()
        .zip(&cold_results)
        .zip(&warm_results)
        .enumerate()
    {
        assert_eq!(
            c.loss,
            w.loss,
            "warm sweep must match the cold optimum at alpha {}",
            level.alpha()
        );
        assert!(
            w.mechanism.is_differentially_private(level),
            "warm sweep mechanism must be α-DP"
        );
        // A warm hit skipped phase 1 entirely (no artificials, no rebuild).
        if w.stats.phase1_pivots == 0 {
            warm_hits += 1;
        }
        if k > 0 {
            per_alpha.push_str(", ");
        }
        per_alpha.push_str(&format!(
            "{{\"alpha\": \"{}\", \"cold_pivots\": {}, \"warm_pivots\": {}, \
             \"warm_dual_pivots\": {}}}",
            level.alpha(),
            c.stats.total_pivots(),
            w.stats.total_pivots(),
            w.stats.dual_pivots,
        ));
    }
    assert!(
        warm_hits > 0,
        "at least one level must actually reoptimize from the previous basis"
    );

    let speedup = cold_ns as f64 / warm_ns as f64;
    eprintln!(
        "cold sequential: {:.3}s | warm sweep: {:.3}s ({speedup:.2}x) | \
         {warm_hits}/{points} levels warm-started",
        cold_ns as f64 / 1e9,
        warm_ns as f64 / 1e9,
    );

    format!(
        "{{\"label\": \"{label}\", \"warm_sweep\": {{\"n\": {n}, \"points\": {points}, \
         \"reps\": {reps}, \"scalar\": \"rational\", \
         \"cold_sequential_ns\": {cold_ns}, \"warm_sweep_ns\": {warm_ns}, \
         \"speedup_warm\": {speedup:.4}, \"warm_started_levels\": {warm_hits}, \
         \"losses_identical\": true, \"per_alpha\": [{per_alpha}]}}}}"
    )
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Reset the kernel's peak-RSS watermark (`echo 5 > /proc/self/clear_refs`)
/// so per-pass peaks can be measured in one process. Returns whether the
/// reset took effect.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// The sweep peak-memory benchmark (PR 8): the same `points`-α exact sweep
/// at size `n` solved sequentially under the dense tableau and under the
/// CSR-backed revised simplex, recording each pass's peak RSS. The dense
/// form materializes the full `[B⁻¹A | B⁻¹b]` tableau per solve; the
/// revised form keeps only the CSR constraint store plus the basis
/// factorization — this record makes that difference a tracked number.
/// Losses are asserted bit-identical between the passes (they follow the
/// identical pivot sequence, so anything else is a solver bug).
fn run_sweep_mem(label: &str, n: usize, points: usize) -> String {
    use privmech_lp::{SolverForm, SolverOptions};
    let quick = std::env::var("PRIVMECH_SWEEP_QUICK").is_ok_and(|v| v == "1");
    let (n, points) = if quick { (5, 3) } else { (n, points) };
    let levels: Vec<PrivacyLevel<Rational>> = (1..=points)
        .map(|k| PrivacyLevel::new(rat(k as i64, points as i64 + 1)).expect("alpha in (0,1)"))
        .collect();
    let consumer: MinimaxConsumer<Rational> = bench_consumer(n);
    let engine = PrivacyEngine::with_threads(1);
    let run_pass = |form: SolverForm| -> Vec<_> {
        levels
            .iter()
            .map(|level| {
                let req =
                    direct_request(level.clone(), consumer.clone()).with_options(SolverOptions {
                        form,
                        ..SolverOptions::default()
                    });
                engine.solve(&req).expect("solvable LP")
            })
            .collect()
    };

    // Revised first: without watermark resets `VmHWM` is monotone, so this
    // order can only *understate* the dense pass's margin, never fake one.
    let reset_supported = reset_peak_rss();
    eprintln!("sweep-mem: {points}-α CSR revised-simplex pass at n = {n} ...");
    let revised = run_pass(SolverForm::Revised);
    let revised_peak = peak_rss_bytes().unwrap_or(0);

    if reset_supported {
        reset_peak_rss();
    }
    eprintln!("sweep-mem: {points}-α dense-tableau pass at n = {n} ...");
    let dense = run_pass(SolverForm::Dense);
    let dense_peak = peak_rss_bytes().unwrap_or(0);

    for (r, d) in revised.iter().zip(&dense) {
        assert_eq!(
            r.loss, d.loss,
            "dense ≡ revised: sweep losses must be bit-identical"
        );
        assert_eq!(r.mechanism, d.mechanism, "mechanisms must be bit-identical");
    }
    assert!(
        revised_peak <= dense_peak,
        "the CSR revised pass must not out-allocate the dense tableau \
         (revised {revised_peak} B vs dense {dense_peak} B)"
    );

    let ratio = dense_peak as f64 / revised_peak.max(1) as f64;
    eprintln!(
        "peak RSS — revised/CSR: {:.1} MiB | dense tableau: {:.1} MiB ({ratio:.2}x) \
         [watermark resets {}]",
        revised_peak as f64 / (1024.0 * 1024.0),
        dense_peak as f64 / (1024.0 * 1024.0),
        if reset_supported { "on" } else { "OFF" },
    );

    format!(
        "{{\"label\": \"{label}\", \"sweep_mem\": {{\"n\": {n}, \"points\": {points}, \
         \"scalar\": \"rational\", \"peak_rss_revised_bytes\": {revised_peak}, \
         \"peak_rss_dense_bytes\": {dense_peak}, \"dense_over_revised\": {ratio:.4}, \
         \"peak_reset_supported\": {reset_supported}, \"losses_identical\": true}}}}"
    )
}

/// The serving-layer acceptance benchmark: `points` distinct exact solves at
/// size `n` driven through a real `privmech-serve` TCP round trip, cold
/// (every request misses) vs cached (`repeat` hot passes, every request
/// hits), with the cached ≡ uncached byte identity asserted per request.
fn run_serve(label: &str, n: usize, points: usize, repeat: usize) -> String {
    use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
    use privmech_serve::{client::Client, server, server::ServerConfig};

    if points == 0 || repeat == 0 {
        eprintln!("--serve-points and --serve-repeat must be at least 1");
        std::process::exit(2);
    }
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(n, LossSpec::Absolute);
    let alphas: Vec<Rational> = (1..=points)
        .map(|k| rat(k as i64, points as i64 + 1))
        .collect();

    // Cold pass: every request computes and populates the cache.
    eprintln!("serve cold: {points} distinct solves at n = {n} over TCP ...");
    let start = Instant::now();
    let cold_replies: Vec<_> = alphas
        .iter()
        .map(|alpha| client.solve(&spec, alpha, CacheMode::Use).expect("solve"))
        .collect();
    let cold_ns = start.elapsed().as_nanos();
    assert!(
        cold_replies
            .iter()
            .all(|r| r.cache == CacheDisposition::Miss),
        "cold pass must miss on every distinct request"
    );

    // Hot passes: the same requests, answered from the cache.
    eprintln!("serve cached: {repeat} hot passes over the same {points} requests ...");
    let start = Instant::now();
    let mut hits = 0usize;
    for _ in 0..repeat {
        for (alpha, cold) in alphas.iter().zip(&cold_replies) {
            let reply = client.solve(&spec, alpha, CacheMode::Use).expect("solve");
            assert_eq!(reply.cache, CacheDisposition::Hit, "hot pass must hit");
            assert_eq!(
                reply.raw, cold.raw,
                "cached response must be byte-identical to the cold solve"
            );
            hits += 1;
        }
    }
    let cached_ns = start.elapsed().as_nanos();

    // Runtime bit-identity against *fresh* solves: bypass the cache entirely
    // and compare bytes.
    eprintln!("serve verify: cache-bypassing fresh solves vs cached responses ...");
    for (alpha, cold) in alphas.iter().zip(&cold_replies) {
        let fresh = client
            .solve(&spec, alpha, CacheMode::Bypass)
            .expect("bypass solve");
        assert_eq!(
            fresh.raw, cold.raw,
            "uncached engine solve must render byte-identically"
        );
    }
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.misses as usize, points);
    assert_eq!(stats.hits as usize, hits);
    print_metrics(&mut client);
    client.shutdown().expect("shutdown");
    handle.join();

    let cold_per = cold_ns as f64 / points as f64;
    let cached_per = cached_ns as f64 / (points * repeat) as f64;
    let speedup = cold_per / cached_per;
    eprintln!(
        "cold: {:.3}ms/request | cached: {:.4}ms/request | {speedup:.1}x",
        cold_per / 1e6,
        cached_per / 1e6,
    );
    assert!(
        speedup >= 5.0,
        "acceptance: cached serving must be at least 5x cold, got {speedup:.2}x"
    );

    format!(
        "{{\"label\": \"{label}\", \"serve\": {{\"n\": {n}, \"points\": {points}, \
         \"repeat\": {repeat}, \"scalar\": \"rational\", \"transport\": \"tcp-loopback\", \
         \"cold_ns\": {cold_ns}, \"cached_ns\": {cached_ns}, \
         \"cold_per_request_ns\": {cold_per:.0}, \"cached_per_request_ns\": {cached_per:.0}, \
         \"speedup_cached\": {speedup:.4}, \"bit_identical\": true, \
         \"cache_hits\": {}, \"cache_misses\": {}}}}}",
        stats.hits, stats.misses
    )
}

/// Print the server's per-op latency histograms (the `metrics` op) to
/// stderr, next to the hit/miss counters the `--serve` modes already report.
fn print_metrics(client: &mut privmech_serve::client::Client) {
    use privmech_serve::json::Json;
    let Ok(metrics) = client.metrics() else {
        eprintln!("metrics op unavailable");
        return;
    };
    let Some(Json::Obj(ops)) = metrics.get("ops").cloned() else {
        return;
    };
    eprintln!("server latency histograms (metrics op):");
    for (op, histogram) in ops {
        let count = histogram.get("count").and_then(Json::as_u64).unwrap_or(0);
        let total_ns = histogram
            .get("total_ns")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let mean_us = if count > 0 {
            total_ns as f64 / count as f64 / 1e3
        } else {
            0.0
        };
        let buckets: Vec<String> = histogram
            .get("buckets")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|b| {
                let le_ns = b.get("le_ns").and_then(Json::as_u64).unwrap_or(0);
                let c = b.get("count").and_then(Json::as_u64).unwrap_or(0);
                if le_ns == 0 {
                    format!("+inf:{c}")
                } else if le_ns >= 1_000_000 {
                    format!("<={}ms:{c}", le_ns / 1_000_000)
                } else {
                    format!("<={}us:{c}", le_ns / 1_000)
                }
            })
            .collect();
        eprintln!(
            "  {op:<9} count {count:>6}  mean {mean_us:>10.1}us  [{}]",
            buckets.join(" ")
        );
    }
}

/// The pipelining acceptance benchmark: a mixed workload — one `points`-α
/// exact sweep plus `solves` repeated solve requests at size `n` — run (a)
/// serially over strict v1 request/response and (b) pipelined over protocol
/// v2 (everything submitted up front, completions drained as they arrive),
/// on the same warmed server over loopback. Byte identity between the two
/// transports is asserted per request, and a cache-bypassing streamed sweep
/// first proves that streaming actually streams (first `sweep_item` arrives
/// in the first half of the sweep's wall-clock).
fn run_serve_pipelined(label: &str, n: usize, points: usize, solves: usize) -> String {
    use privmech_serve::client::{Client, Event};
    use privmech_serve::json;
    use privmech_serve::proto::{CacheMode, ConsumerSpec, LossSpec};
    use privmech_serve::{server, server::ServerConfig};

    if points == 0 || solves == 0 {
        eprintln!("--pipeline-points and --pipeline-solves must be at least 1");
        std::process::exit(2);
    }
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let spec = ConsumerSpec::<Rational>::minimax(n, LossSpec::Absolute);
    let sweep_alphas: Vec<Rational> = (1..=points)
        .map(|k| rat(k as i64, points as i64 + 1))
        .collect();
    // 8 distinct solve levels, cycled: a repeated-request workload.
    let solve_alphas: Vec<Rational> = (0..solves).map(|k| rat((k % 8) as i64 + 1, 9)).collect();

    // (a) Streaming proof, uncached: the first per-α result must arrive
    // while the rest of the sweep is still solving.
    eprintln!("pipeline streaming check: cache-bypassed {points}-α streamed sweep at n = {n} ...");
    let mut v2 = Client::connect(addr).expect("connect v2");
    assert_eq!(v2.version(), 2, "negotiation must land on v2");
    let start = Instant::now();
    let mut first_item_ns: Option<u128> = None;
    let mut streamed = 0usize;
    let mut stream = v2
        .sweep_stream(&spec, &sweep_alphas, CacheMode::Bypass)
        .expect("stream");
    for item in stream.by_ref() {
        item.expect("streamed item");
        first_item_ns.get_or_insert_with(|| start.elapsed().as_nanos());
        streamed += 1;
    }
    let done = stream.done().expect("sweep_done");
    let sweep_total_ns = start.elapsed().as_nanos();
    let first_item_ns = first_item_ns.expect("at least one item");
    assert_eq!(streamed, points);
    assert_eq!(done.count as usize, points);
    assert!(
        first_item_ns < sweep_total_ns,
        "first sweep_item must arrive before the sweep completes"
    );
    assert!(
        2 * first_item_ns < sweep_total_ns,
        "streaming: first of {points} items must land in the first half \
         (first at {first_item_ns} ns of {sweep_total_ns} ns)"
    );
    eprintln!(
        "  first sweep_item after {:.1}ms of {:.1}ms total ({:.1}% in)",
        first_item_ns as f64 / 1e6,
        sweep_total_ns as f64 / 1e6,
        100.0 * first_item_ns as f64 / sweep_total_ns as f64,
    );

    // (b) Prime the cache once (uncounted), so both timed transports run the
    // same all-hit workload and the comparison isolates transport overhead.
    eprintln!("pipeline prime: warming the cache with the full workload ...");
    let mut v1 = Client::connect_with_version(addr, 1).expect("connect v1");
    let _ = v1
        .sweep(&spec, &sweep_alphas, CacheMode::Use)
        .expect("sweep");
    for alpha in solve_alphas.iter().take(8) {
        let _ = v1.solve(&spec, alpha, CacheMode::Use).expect("solve");
    }

    // (c) Timed: serial v1 — one request in flight at a time, ever.
    eprintln!(
        "pipeline serial v1: {} wire requests ({points}-α sweep + {solves} solves) ...",
        1 + solves
    );
    let start = Instant::now();
    let v1_sweep_raw = v1
        .sweep(&spec, &sweep_alphas, CacheMode::Use)
        .expect("sweep")
        .raw;
    let v1_solve_raws: Vec<String> = solve_alphas
        .iter()
        .map(|alpha| v1.solve(&spec, alpha, CacheMode::Use).expect("solve").raw)
        .collect();
    let serial_ns = start.elapsed().as_nanos();

    // (d) Timed: pipelined v2 — submit everything, then drain completions in
    // whatever order they finish.
    eprintln!("pipeline v2: same workload, all requests in flight at once ...");
    let start = Instant::now();
    let sweep_ticket = v2
        .submit_sweep(&spec, &sweep_alphas, CacheMode::Use)
        .expect("submit sweep");
    let solve_tickets: Vec<_> = solve_alphas
        .iter()
        .map(|alpha| {
            v2.submit_solve(&spec, alpha, CacheMode::Use)
                .expect("submit solve")
        })
        .collect();
    let mut sweep_slots: Vec<Option<String>> = vec![None; points];
    let mut solve_raws: Vec<Option<String>> = vec![None; solves];
    let mut open = 1 + solves;
    while open > 0 {
        match v2.recv().expect("recv") {
            Event::Reply { ticket, response } => {
                let idx = solve_tickets
                    .iter()
                    .position(|t| *t == ticket)
                    .expect("a submitted solve");
                let result = response.get("result").expect("result");
                solve_raws[idx] = Some(json::to_string(result));
                open -= 1;
            }
            Event::SweepItem {
                ticket,
                index,
                response,
            } => {
                assert_eq!(ticket, sweep_ticket);
                let result = response.get("result").expect("result");
                sweep_slots[index] = Some(json::to_string(result));
            }
            Event::SweepDone { ticket, .. } => {
                assert_eq!(ticket, sweep_ticket);
                open -= 1;
            }
            Event::Error { error, .. } => panic!("pipelined request failed: {error}"),
        }
    }
    let pipelined_ns = start.elapsed().as_nanos();

    // (e) Byte identity between the two transports, per request.
    let v2_items: Vec<String> = sweep_slots
        .into_iter()
        .map(|s| s.expect("every index streamed"))
        .collect();
    let v2_sweep_raw = privmech_serve::proto::assemble_solves(v2_items.iter().map(String::as_str));
    assert_eq!(
        v1_sweep_raw, v2_sweep_raw,
        "v1 monolithic sweep ≡ reassembled v2 stream"
    );
    for (k, (a, b)) in v1_solve_raws.iter().zip(&solve_raws).enumerate() {
        assert_eq!(a, b.as_ref().expect("every solve answered"), "solve {k}");
    }

    let speedup = serial_ns as f64 / pipelined_ns as f64;
    eprintln!(
        "serial v1: {:.1}ms | pipelined v2: {:.1}ms | {speedup:.2}x",
        serial_ns as f64 / 1e6,
        pipelined_ns as f64 / 1e6,
    );
    assert!(
        speedup > 1.2,
        "acceptance: pipelined v2 must beat serial v1 measurably, got {speedup:.2}x"
    );
    print_metrics(&mut v2);
    v2.shutdown().expect("shutdown");
    handle.join();

    format!(
        "{{\"label\": \"{label}\", \"pipeline\": {{\"n\": {n}, \"scalar\": \"rational\", \
         \"transport\": \"tcp-loopback\", \"sweep_points\": {points}, \"solves\": {solves}, \
         \"wire_requests\": {}, \"alpha_solves\": {}, \
         \"serial_v1_ns\": {serial_ns}, \"pipelined_v2_ns\": {pipelined_ns}, \
         \"speedup_pipelined\": {speedup:.4}, \"bit_identical\": true, \
         \"stream_first_item_ns\": {first_item_ns}, \"stream_total_ns\": {sweep_total_ns}, \
         \"streams\": true}}}}",
        1 + solves,
        points + solves,
    )
}

fn main() {
    let mut label = "dev".to_string();
    let mut output = "BENCH_lp.json".to_string();
    let mut max_n = 16usize;
    let mut reps = 5usize;
    let mut sweep = false;
    let mut sweep_n = 6usize;
    let mut sweep_points = 16usize;
    let mut sweep_threads = 4usize;
    let mut sweep_mem = false;
    let mut sweep_mem_n = 10usize;
    let mut sweep_mem_points = 4usize;
    let mut serve = false;
    let mut serve_n = 6usize;
    let mut serve_points = 8usize;
    let mut serve_repeat = 50usize;
    let mut serve_pipelined = false;
    let mut pipeline_n = 6usize;
    let mut pipeline_points = 16usize;
    let mut pipeline_solves = 48usize;
    let mut compare_forms = false;
    let mut compare_n = 8usize;
    let mut warm_sweep = false;
    let mut warm_n = 8usize;
    let mut warm_points = 16usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--output" => output = args.next().expect("--output needs a value"),
            "--max-n" => {
                max_n = args
                    .next()
                    .expect("--max-n needs a value")
                    .parse()
                    .expect("--max-n needs an integer")
            }
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps needs an integer")
            }
            "--sweep" => sweep = true,
            "--sweep-n" => {
                sweep_n = args
                    .next()
                    .expect("--sweep-n needs a value")
                    .parse()
                    .expect("--sweep-n needs an integer")
            }
            "--sweep-points" => {
                sweep_points = args
                    .next()
                    .expect("--sweep-points needs a value")
                    .parse()
                    .expect("--sweep-points needs an integer")
            }
            "--sweep-threads" => {
                sweep_threads = args
                    .next()
                    .expect("--sweep-threads needs a value")
                    .parse()
                    .expect("--sweep-threads needs an integer")
            }
            "--sweep-mem" => sweep_mem = true,
            "--sweep-mem-n" => {
                sweep_mem_n = args
                    .next()
                    .expect("--sweep-mem-n needs a value")
                    .parse()
                    .expect("--sweep-mem-n needs an integer")
            }
            "--sweep-mem-points" => {
                sweep_mem_points = args
                    .next()
                    .expect("--sweep-mem-points needs a value")
                    .parse()
                    .expect("--sweep-mem-points needs an integer")
            }
            "--compare-forms" => compare_forms = true,
            "--warm-sweep" => warm_sweep = true,
            "--warm-n" => {
                warm_n = args
                    .next()
                    .expect("--warm-n needs a value")
                    .parse()
                    .expect("--warm-n needs an integer")
            }
            "--warm-points" => {
                warm_points = args
                    .next()
                    .expect("--warm-points needs a value")
                    .parse()
                    .expect("--warm-points needs an integer")
            }
            "--compare-n" => {
                compare_n = args
                    .next()
                    .expect("--compare-n needs a value")
                    .parse()
                    .expect("--compare-n needs an integer")
            }
            "--serve" => serve = true,
            "--serve-n" => {
                serve_n = args
                    .next()
                    .expect("--serve-n needs a value")
                    .parse()
                    .expect("--serve-n needs an integer")
            }
            "--serve-points" => {
                serve_points = args
                    .next()
                    .expect("--serve-points needs a value")
                    .parse()
                    .expect("--serve-points needs an integer")
            }
            "--serve-repeat" => {
                serve_repeat = args
                    .next()
                    .expect("--serve-repeat needs a value")
                    .parse()
                    .expect("--serve-repeat needs an integer")
            }
            "--serve-pipelined" => serve_pipelined = true,
            "--pipeline-n" => {
                pipeline_n = args
                    .next()
                    .expect("--pipeline-n needs a value")
                    .parse()
                    .expect("--pipeline-n needs an integer")
            }
            "--pipeline-points" => {
                pipeline_points = args
                    .next()
                    .expect("--pipeline-points needs a value")
                    .parse()
                    .expect("--pipeline-points needs an integer")
            }
            "--pipeline-solves" => {
                pipeline_solves = args
                    .next()
                    .expect("--pipeline-solves needs a value")
                    .parse()
                    .expect("--pipeline-solves needs an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench-summary [--label L] [--output PATH] [--max-n N] [--reps K] \
                     [--sweep] [--sweep-n N] [--sweep-points K] [--sweep-threads T] \
                     [--serve] [--serve-n N] [--serve-points K] [--serve-repeat R] \
                     [--serve-pipelined] [--pipeline-n N] [--pipeline-points K] \
                     [--pipeline-solves S] [--compare-forms] [--compare-n N] \
                     [--warm-sweep] [--warm-n N] [--warm-points K] \
                     [--sweep-mem] [--sweep-mem-n N] [--sweep-mem-points K]"
                );
                std::process::exit(2);
            }
        }
    }

    let record = if compare_forms {
        run_compare_forms(&label, compare_n)
    } else if warm_sweep {
        run_warm_sweep(&label, warm_n, warm_points, reps.min(3))
    } else if serve_pipelined {
        run_serve_pipelined(&label, pipeline_n, pipeline_points, pipeline_solves)
    } else if serve {
        run_serve(&label, serve_n, serve_points, serve_repeat)
    } else if sweep_mem {
        run_sweep_mem(&label, sweep_mem_n, sweep_mem_points)
    } else if sweep {
        run_sweep(&label, sweep_n, sweep_points, sweep_threads)
    } else {
        let mut results = Vec::new();
        for n in [3usize, 4, 6, 8, 10] {
            if n > max_n {
                break;
            }
            eprintln!("running f64_full_S/{n} ...");
            results.push(run_f64(n, reps));
        }
        for n in [6usize, 10] {
            if n > max_n {
                break;
            }
            eprintln!("running f64_interval_S/{n} ...");
            results.push(run_f64_interval(n, reps));
        }
        for n in [3usize, 4, 5, 8, 12, 16, 20, 24] {
            if n > max_n {
                break;
            }
            eprintln!("running exact_full_S/{n} ...");
            results.push(run_exact(n, reps));
            eprintln!("running exact_full_S_devex/{n} ...");
            results.push(run_exact_devex(n, reps));
        }

        for r in &results {
            eprintln!(
                "{:<22} median {:>12} ns  pivots {:>5} (phase1 {}, degenerate {}, fallbacks {})",
                r.name,
                r.median_ns,
                r.stats.total_pivots(),
                r.stats.phase1_pivots,
                r.stats.degenerate_pivots,
                r.stats.fallback_activations,
            );
        }
        json_record(&label, &results)
    };

    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&output)
        .expect("open output file");
    writeln!(file, "{record}").expect("write output file");
    eprintln!("appended record \"{label}\" to {output}");
}
