//! Shared helpers for the Criterion benchmark suite.
//!
//! Each bench file in `benches/` regenerates the computational kernel behind
//! one experiment of DESIGN.md's per-experiment index, plus the ablations the
//! design calls out (exact vs f64 simplex, characterization scan vs explicit
//! inverse, correlated vs naive multi-level release).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::Arc;

use privmech_core::{AbsoluteError, LossFunction, MinimaxConsumer, SideInformation};
use privmech_linalg::Scalar;

/// The standard benchmark consumer: absolute-error loss with full side
/// information over `{0..=n}`.
pub fn bench_consumer<T: Scalar>(n: usize) -> MinimaxConsumer<T> {
    MinimaxConsumer::new(
        "bench",
        Arc::new(AbsoluteError) as Arc<dyn LossFunction<T> + Send + Sync>,
        SideInformation::full(n),
    )
    .expect("absolute error is monotone")
}

/// A consumer with interval side information (exercises restricted-S paths).
pub fn bench_interval_consumer<T: Scalar>(n: usize) -> MinimaxConsumer<T> {
    MinimaxConsumer::new(
        "bench-interval",
        Arc::new(AbsoluteError) as Arc<dyn LossFunction<T> + Send + Sync>,
        SideInformation::interval(n, n / 4, 3 * n / 4).expect("non-empty interval"),
    )
    .expect("absolute error is monotone")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::Rational;

    #[test]
    fn helpers_build_consumers() {
        let c = bench_consumer::<Rational>(4);
        assert_eq!(c.side_information().members().len(), 5);
        let c = bench_interval_consumer::<f64>(8);
        assert_eq!(c.side_information().members(), &[2, 3, 4, 5, 6]);
    }
}
