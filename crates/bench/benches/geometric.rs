//! Bench E-FIG1: constructing the geometric mechanism and sampling from it.
//!
//! Ablation: matrix-row sampling vs the closed-form clamp-the-noise sampler.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_core::{geometric_mechanism, sample_geometric_output, PrivacyLevel};
use privmech_numerics::rat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometric_construction");
    for n in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::new("f64", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            b.iter(|| geometric_mechanism(black_box(n), &level).unwrap());
        });
    }
    for n in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, &n| {
            let level = PrivacyLevel::new(rat(1, 4)).unwrap();
            b.iter(|| geometric_mechanism(black_box(n), &level).unwrap());
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometric_sampling");
    for n in [32usize, 256] {
        let level = PrivacyLevel::new(0.25f64).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        group.bench_with_input(BenchmarkId::new("matrix_row", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| g.sample(black_box(n / 2), &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("closed_form", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sample_geometric_output(black_box(n), n / 2, 0.25, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_sampling);
criterion_main!(benches);
