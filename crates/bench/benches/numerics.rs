//! Bench for the exact-arithmetic substrate: the BigInt/Rational kernels the
//! exact simplex spends its time in, and the exact-vs-f64 matrix ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_linalg::Matrix;
use privmech_numerics::{BigInt, Rational};

fn big(digits: usize) -> BigInt {
    let s: String = std::iter::once('7')
        .chain(std::iter::repeat_n('3', digits - 1))
        .collect();
    s.parse().unwrap()
}

fn bench_bigint(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint");
    for digits in [20usize, 100, 400] {
        let a = big(digits);
        let b = big(digits / 2 + 1);
        group.bench_with_input(BenchmarkId::new("mul", digits), &digits, |bench, _| {
            bench.iter(|| black_box(&a) * black_box(&b));
        });
        group.bench_with_input(BenchmarkId::new("div_rem", digits), &digits, |bench, _| {
            bench.iter(|| black_box(&a).div_rem(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("gcd", digits), &digits, |bench, _| {
            bench.iter(|| black_box(&a).gcd(black_box(&b)));
        });
    }
    group.finish();
}

fn bench_rational_and_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("rational_matrix");
    group.sample_size(20);
    let a = Rational::from_ratio(355, 113);
    let b = Rational::from_ratio(-1_234_567, 89_011);
    group.bench_function("rational_add_mul", |bench| {
        bench.iter(|| {
            let s = black_box(&a) + black_box(&b);
            black_box(&s) * black_box(&a)
        });
    });

    for n in [8usize, 16] {
        let exact = Matrix::from_fn(n, n, |i, j| {
            Rational::from_ratio((i * n + j + 1) as i64, (i + j + 3) as i64)
        });
        let float = exact.map(|v| v.to_f64());
        group.bench_with_input(BenchmarkId::new("det_exact", n), &n, |bench, _| {
            bench.iter(|| exact.determinant().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("det_f64", n), &n, |bench, _| {
            bench.iter(|| float.determinant().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bigint, bench_rational_and_matrix);
criterion_main!(benches);
