//! Bench E-TAB1(c): the Section 2.4.3 optimal-interaction LP.
//!
//! Ablation: the LP-based minimax interaction vs the direct posterior-argmin
//! remap available to Bayesian consumers, both through the engine.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_bench::bench_consumer;
use privmech_core::{
    AbsoluteError, BayesianConsumer, PrivacyEngine, PrivacyLevel, ValidatedRequest,
};
use privmech_numerics::{rat, Rational};

fn bench_interaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_interaction_lp");
    group.sample_size(10);
    let engine = PrivacyEngine::with_threads(1);

    for n in [3usize, 4, 6, 8, 12] {
        group.bench_with_input(BenchmarkId::new("minimax_lp_f64", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            let g = engine.geometric(n, &level).unwrap();
            let request = ValidatedRequest::minimax(level, bench_consumer::<f64>(n));
            b.iter(|| engine.interact(black_box(&g), &request).unwrap());
        });
    }
    for n in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::new("minimax_lp_exact", n), &n, |b, &n| {
            let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).unwrap();
            let g = engine.geometric(n, &level).unwrap();
            let request = ValidatedRequest::minimax(level, bench_consumer::<Rational>(n));
            b.iter(|| engine.interact(black_box(&g), &request).unwrap());
        });
    }
    for n in [6usize, 12] {
        group.bench_with_input(BenchmarkId::new("bayesian_direct_f64", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            let g = engine.geometric(n, &level).unwrap();
            let consumer =
                BayesianConsumer::<f64>::uniform("bench", Arc::new(AbsoluteError), n).unwrap();
            let request = ValidatedRequest::bayesian(level, consumer);
            b.iter(|| engine.interact(black_box(&g), &request).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interaction);
criterion_main!(benches);
