//! Bench E-TAB2 / Theorem 2: deciding derivability from the geometric
//! mechanism.
//!
//! Ablation: the O(n²) Theorem 2 column scan vs the O(n³) explicit
//! factorization `T = G⁻¹·M`, plus the Lemma 1 determinant as the underlying
//! linear-algebra kernel.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_core::{
    derive_post_processing, g_prime_matrix, geometric_mechanism, theorem2_check, Mechanism,
    PrivacyLevel,
};
use privmech_linalg::Matrix;

/// A derivable test subject: the geometric mechanism post-processed by a
/// smoothing kernel. Built through the normalizing constructor because f64
/// accumulation on large products can leave row sums a couple of ulps-of-1e-9
/// away from one.
fn derivable_mechanism(n: usize, level: &PrivacyLevel<f64>) -> Mechanism<f64> {
    let g = geometric_mechanism(n, level).unwrap();
    let t = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i == j {
            0.8
        } else if i.abs_diff(j) == 1 {
            if i == 0 || i == n {
                0.2
            } else {
                0.1
            }
        } else {
            0.0
        }
    });
    let product = g.matrix().matmul(&t).unwrap();
    Mechanism::from_matrix_normalized(product).unwrap()
}

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("derivability");
    for n in [16usize, 64, 128] {
        let level = PrivacyLevel::new(0.3f64).unwrap();
        let m = derivable_mechanism(n, &level);
        let g = geometric_mechanism(n, &level).unwrap();
        group.bench_with_input(BenchmarkId::new("theorem2_scan", n), &n, |b, _| {
            b.iter(|| theorem2_check(black_box(&m), &level));
        });
        group.bench_with_input(BenchmarkId::new("explicit_inverse", n), &n, |b, _| {
            b.iter(|| derive_post_processing(black_box(&g), &m).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lemma1_determinant");
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("g_prime_det_f64", n), &n, |b, &n| {
            let gp = g_prime_matrix(n, &0.3f64);
            b.iter(|| gp.determinant().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
