//! Bench E-ALG1: building the Algorithm 1 release chain and releasing through
//! it.
//!
//! Ablation: correlated (Algorithm 1) vs naive independent release.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_core::{MultiLevelRelease, PrivacyLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn levels(k: usize) -> Vec<PrivacyLevel<f64>> {
    (0..k)
        .map(|i| PrivacyLevel::new(0.2 + 0.6 * i as f64 / k as f64).unwrap())
        .collect()
}

fn bench_chain_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_chain_construction");
    group.sample_size(10);
    for (n, k) in [(16usize, 3usize), (64, 3), (64, 6), (128, 4)] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| MultiLevelRelease::new(black_box(n), levels(k)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_release");
    let n = 64usize;
    let k = 4usize;
    let release = MultiLevelRelease::new(n, levels(k)).unwrap();
    group.bench_function(BenchmarkId::new("correlated", format!("n{n}_k{k}")), |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| release.release(black_box(n / 2), &mut rng).unwrap());
    });
    group.bench_function(BenchmarkId::new("naive", format!("n{n}_k{k}")), |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| release.release_naive(black_box(n / 2), &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_chain_construction, bench_release);
criterion_main!(benches);
