//! Bench E-TAB1 / E-THM1: computing the consumer-tailored optimal mechanism.
//!
//! Ablations: exact rational simplex vs the f64 backend, full vs interval
//! side information, and the direct Section 2.5 LP vs the Theorem 1
//! geometric-factorization route (deploy `G_{n,α}`, solve the much smaller
//! interaction LP). Benchmark IDs for the direct LP match the pre-engine
//! records so `BENCH_lp.json` stays a comparable trajectory.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_bench::{bench_consumer, bench_interval_consumer};
use privmech_core::{PrivacyEngine, PrivacyLevel, SolveStrategy, ValidatedRequest};
use privmech_numerics::{rat, Rational};

fn bench_optimal_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_mechanism_lp");
    group.sample_size(10);
    let engine = PrivacyEngine::with_threads(1);

    for n in [3usize, 4, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::new("f64_full_S", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            let request = ValidatedRequest::minimax(level, bench_consumer::<f64>(n))
                .with_strategy(SolveStrategy::DirectLp);
            b.iter(|| engine.solve(black_box(&request)).unwrap());
        });
    }
    for n in [3usize, 4, 5, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("exact_full_S", n), &n, |b, &n| {
            let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).unwrap();
            let request = ValidatedRequest::minimax(level, bench_consumer::<Rational>(n))
                .with_strategy(SolveStrategy::DirectLp);
            b.iter(|| engine.solve(black_box(&request)).unwrap());
        });
    }
    for n in [6usize, 10] {
        group.bench_with_input(BenchmarkId::new("f64_interval_S", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            let request = ValidatedRequest::minimax(level, bench_interval_consumer::<f64>(n))
                .with_strategy(SolveStrategy::DirectLp);
            b.iter(|| engine.solve(black_box(&request)).unwrap());
        });
    }
    // The Theorem 1 route: same optimal loss through an LP with ~2n(n+1)
    // fewer rows.
    for n in [5usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("exact_factorized", n), &n, |b, &n| {
            let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).unwrap();
            let request = ValidatedRequest::minimax(level, bench_consumer::<Rational>(n))
                .with_strategy(SolveStrategy::GeometricFactorization);
            b.iter(|| engine.solve(black_box(&request)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_lp);
criterion_main!(benches);
