//! Bench E-TAB1 / E-THM1: the Section 2.5 tailored-optimal-mechanism LP.
//!
//! Ablation: exact rational simplex vs the f64 backend, and full vs interval
//! side information.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use privmech_bench::{bench_consumer, bench_interval_consumer};
use privmech_core::{optimal_mechanism, PrivacyLevel};
use privmech_numerics::{rat, Rational};

fn bench_optimal_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_mechanism_lp");
    group.sample_size(10);

    for n in [3usize, 4, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::new("f64_full_S", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            let consumer = bench_consumer::<f64>(n);
            b.iter(|| optimal_mechanism(black_box(&level), &consumer).unwrap());
        });
    }
    for n in [3usize, 4, 5, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("exact_full_S", n), &n, |b, &n| {
            let level: PrivacyLevel<Rational> = PrivacyLevel::new(rat(1, 4)).unwrap();
            let consumer = bench_consumer::<Rational>(n);
            b.iter(|| optimal_mechanism(black_box(&level), &consumer).unwrap());
        });
    }
    for n in [6usize, 10] {
        group.bench_with_input(BenchmarkId::new("f64_interval_S", n), &n, |b, &n| {
            let level = PrivacyLevel::new(0.25f64).unwrap();
            let consumer = bench_interval_consumer::<f64>(n);
            b.iter(|| optimal_mechanism(black_box(&level), &consumer).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_lp);
criterion_main!(benches);
