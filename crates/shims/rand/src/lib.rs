//! Offline stand-in for the `rand` crate.
//!
//! The privmech CI environment has no network access, so the workspace vendors
//! this minimal, API-compatible subset of `rand` 0.8: the [`Rng`] extension
//! trait with `gen_range` / `gen_bool` / `gen`, the [`SeedableRng`]
//! constructor trait, and a deterministic [`rngs::StdRng`] built on
//! xoshiro256** seeded via SplitMix64. Every sampler in the workspace seeds
//! explicitly with `seed_from_u64`, so reproducibility is preserved and no
//! OS entropy source is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = uniform_u64(rng, span);
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on an empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = uniform_u64(rng, span + 1);
                ((start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Rejection-sampled uniform draw from `[0, span)` (`span == 0` means 2^64).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Widening-multiply rejection sampling (Lemire); bias-free.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw a uniform sample using `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Uniform sample of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive an RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not cryptographically
    /// secure; the workspace only uses it for reproducible experiment
    /// sampling, never for security decisions.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(18..=95);
            assert!((18..=95).contains(&v));
            let u = rng.gen_range(0..18);
            assert!((0..18).contains(&u));
            let f = rng.gen_range(0.25..1.5);
            assert!((0.25..1.5).contains(&f));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(1u64..=6)
        }
        let mut rng = StdRng::seed_from_u64(0);
        let v = takes_dyn(&mut rng);
        assert!((1..=6).contains(&v));
    }
}
