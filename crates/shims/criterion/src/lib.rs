//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The privmech CI environment has no network access, so the workspace vendors
//! this minimal, API-compatible subset of criterion 0.5: `Criterion`,
//! `BenchmarkGroup` with `sample_size` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark is warmed up once, an iteration batch
//! size is chosen so a sample takes a measurable slice of wall time, and the
//! reported figure is the **median** per-iteration time over the samples.
//!
//! Environment knobs (used by the `bench-summary` tooling):
//! - `PRIVMECH_BENCH_QUICK=1` — cap samples at 3 and shrink the time budget.
//! - `PRIVMECH_BENCH_JSON=path` — append one JSON line per benchmark:
//!   `{"name": ..., "median_ns": ..., "samples": ...}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    median_ns: f64,
    samples: usize,
    sample_target: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record its median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let quick = quick_mode();
        let budget = if quick {
            Duration::from_millis(300)
        } else {
            Duration::from_secs(3)
        };

        // Warmup + batch-size calibration.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));

        let sample_target = if quick {
            self.sample_target.clamp(1, 3)
        } else {
            self.sample_target.max(1)
        };
        // Aim for each sample to take ~budget/samples, batching fast bodies.
        let per_sample = budget / sample_target as u32;
        let batch = (per_sample.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        // For slow bodies (first iteration alone blows the budget) fall back
        // to the smallest honest measurement: one batch of one.
        let samples = if first > budget { 1 } else { sample_target };

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples + 1);
        per_iter.push(first.as_nanos() as f64);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            per_iter.push(elapsed.as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = per_iter[per_iter.len() / 2];
        self.samples = per_iter.len();
    }
}

fn quick_mode() -> bool {
    std::env::var("PRIVMECH_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(full_name: &str, median_ns: f64, samples: usize) {
    println!(
        "{full_name:<50} time: [{}]  ({samples} samples)",
        human(median_ns)
    );
    if let Ok(path) = std::env::var("PRIVMECH_BENCH_JSON") {
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"name\": \"{full_name}\", \"median_ns\": {median_ns:.1}, \"samples\": {samples}}}"
            );
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            median_ns: 0.0,
            samples: 0,
            sample_target: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.median_ns, b.samples);
        self
    }

    /// Benchmark a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            median_ns: 0.0,
            samples: 0,
            sample_target: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.median_ns, b.samples);
        self
    }

    /// Finish the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "default".to_string(),
            sample_size: 10,
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("mul", 20).id, "mul/20");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("PRIVMECH_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }
}
