//! Offline stand-in for the `proptest` crate.
//!
//! The privmech CI environment has no network access, so the workspace vendors
//! this minimal, API-compatible subset of proptest: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `boxed`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], `prop_oneof!`, and the
//! `proptest!` test-runner macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted for offline use:
//! no shrinking on failure (the failing input is printed instead), no
//! persisted failure regression files, and a fixed deterministic RNG seeded
//! from the test name so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing: configuration, RNG, and rejection signalling.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` when a generated case is rejected.
    #[derive(Debug)]
    pub struct Rejection;

    /// Deterministic RNG handed to strategies while generating values.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seed deterministically from a label (normally the test name), so
        /// each test sees a stable but distinct stream across runs.
        #[must_use]
        pub fn deterministic(label: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Borrow the underlying `rand` generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// produces a single value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Keep only values satisfying `pred`; panics after too many
        /// consecutive rejections (real proptest reports a similar error).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected too many values: {}", self.reason);
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between several boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the already-boxed arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.rng().gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// [`any`](arbitrary::any) and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value, biased towards boundary cases.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // One case in eight is a boundary value, matching real
                    // proptest's bias towards interesting inputs.
                    if rng.next_u64() % 8 == 0 {
                        const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX ^ 1];
                        EDGES[(rng.next_u64() % 5) as usize]
                    } else {
                        let mut v: u128 = rng.next_u64() as u128;
                        if std::mem::size_of::<$t>() > 8 {
                            v |= (rng.next_u64() as u128) << 64;
                        }
                        v as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite doubles spanning many magnitudes.
            let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mantissa * 2f64.powi(exp)
        }
    }
}

/// Collection strategies ([`vec`](collection::vec)).
pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, glob-importable.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a `proptest!` body (panics with the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_eq!($l, $r, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_ne!($l, $r, $($fmt)*) };
}

/// Reject the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejection);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejection);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `config.cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(100).max(10_000),
                    "too many prop_assume! rejections in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` an early-exit channel.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejection> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __ran += 1;
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i64..=5, b in 1usize..4) {
            prop_assert!((-5..=5).contains(&a));
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn assume_rejects(a in 0i64..=10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0i64..=9, any::<bool>()), 2..5),
            w in prop_oneof![Just(1i64), 2i64..=3],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!((1..=3).contains(&w));
        }

        #[test]
        fn filter_and_map(x in (1i64..=9).prop_filter("odd", |v| v % 2 == 1).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!((2..=18).contains(&x));
        }
    }
}
