//! Exact solutions of textbook linear programs, solved with the rational
//! backend and checked against their known closed-form optima. These guard the
//! simplex implementation against regressions that the randomized property
//! tests might miss (degeneracy, equality-heavy programs, redundant
//! constraints, mixed senses).

#![allow(clippy::needless_range_loop)] // index-coupled access into vars[i][j]

use privmech_lp::{LinExpr, LpError, Model, Relation, Sense, VarBound};
use privmech_numerics::{rat, Rational};

fn r(n: i64) -> Rational {
    rat(n, 1)
}

#[test]
fn diet_style_lp_exact_optimum() {
    // Minimize 50x + 30y subject to nutrient constraints:
    //   2x +  y >= 12,  x + 3y >= 15,  x, y >= 0.
    // Optimum at the intersection: x = 21/5, y = 18/5, objective 318.
    let mut m: Model<Rational> = Model::new();
    let x = m.add_var("x", VarBound::NonNegative);
    let y = m.add_var("y", VarBound::NonNegative);
    m.add_constraint(LinExpr::term(x, r(2)).plus(y, r(1)), Relation::Ge, r(12))
        .unwrap();
    m.add_constraint(LinExpr::term(x, r(1)).plus(y, r(3)), Relation::Ge, r(15))
        .unwrap();
    m.set_objective(Sense::Minimize, LinExpr::term(x, r(50)).plus(y, r(30)))
        .unwrap();
    let sol = m.solve().unwrap();
    assert_eq!(*sol.value(x), rat(21, 5));
    assert_eq!(*sol.value(y), rat(18, 5));
    assert_eq!(sol.objective, r(318));
}

#[test]
fn production_lp_with_redundant_constraint() {
    // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x <= 100 (redundant).
    // Known optimum 21 at (3, 3/2).
    let mut m: Model<Rational> = Model::new();
    let x = m.add_var("x", VarBound::NonNegative);
    let y = m.add_var("y", VarBound::NonNegative);
    m.add_constraint(LinExpr::term(x, r(6)).plus(y, r(4)), Relation::Le, r(24))
        .unwrap();
    m.add_constraint(LinExpr::term(x, r(1)).plus(y, r(2)), Relation::Le, r(6))
        .unwrap();
    m.add_constraint(LinExpr::term(x, r(1)), Relation::Le, r(100))
        .unwrap();
    m.set_objective(Sense::Maximize, LinExpr::term(x, r(5)).plus(y, r(4)))
        .unwrap();
    let sol = m.solve().unwrap();
    assert_eq!(sol.objective, r(21));
    assert_eq!(*sol.value(x), r(3));
    assert_eq!(*sol.value(y), rat(3, 2));
}

#[test]
fn assignment_relaxation_is_integral() {
    // The LP relaxation of a 3x3 assignment problem has an integral optimal
    // vertex (Birkhoff); the simplex must find cost 1+2+1 = 4 for this matrix.
    //   costs = [1 4 5; 7 2 3; 9 8 1] -> pick (0,0), (1,1), (2,2) = 1+2+1.
    let costs = [[1i64, 4, 5], [7, 2, 3], [9, 8, 1]];
    let mut m: Model<Rational> = Model::new();
    let mut vars = Vec::new();
    for i in 0..3 {
        vars.push(m.add_nonneg_vars(&format!("x{i}"), 3));
    }
    for i in 0..3 {
        let mut row = LinExpr::new();
        let mut col = LinExpr::new();
        for j in 0..3 {
            row.add_term(vars[i][j], r(1));
            col.add_term(vars[j][i], r(1));
        }
        m.add_constraint(row, Relation::Eq, r(1)).unwrap();
        m.add_constraint(col, Relation::Eq, r(1)).unwrap();
    }
    let mut obj = LinExpr::new();
    for i in 0..3 {
        for j in 0..3 {
            obj.add_term(vars[i][j], r(costs[i][j]));
        }
    }
    m.set_objective(Sense::Minimize, obj).unwrap();
    let sol = m.solve().unwrap();
    assert_eq!(sol.objective, r(4));
    // The optimal vertex is a permutation matrix.
    for i in 0..3 {
        for j in 0..3 {
            let v = sol.value(vars[i][j]);
            assert!(*v == Rational::zero() || *v == Rational::one());
        }
    }
}

#[test]
fn equality_only_program_with_negative_rhs() {
    // x - y = -3, x + y = 7  =>  x = 2, y = 5; minimize x + 2y = 12.
    let mut m: Model<Rational> = Model::new();
    let x = m.add_var("x", VarBound::NonNegative);
    let y = m.add_var("y", VarBound::NonNegative);
    m.add_constraint(LinExpr::term(x, r(1)).plus(y, r(-1)), Relation::Eq, r(-3))
        .unwrap();
    m.add_constraint(LinExpr::term(x, r(1)).plus(y, r(1)), Relation::Eq, r(7))
        .unwrap();
    m.set_objective(Sense::Minimize, LinExpr::term(x, r(1)).plus(y, r(2)))
        .unwrap();
    let sol = m.solve().unwrap();
    assert_eq!(*sol.value(x), r(2));
    assert_eq!(*sol.value(y), r(5));
    assert_eq!(sol.objective, r(12));
}

#[test]
fn objective_constant_is_reported() {
    // Constants in the objective expression must flow through to the reported
    // optimum: minimize (x + 10) with x >= 3 is 13.
    let mut m: Model<Rational> = Model::new();
    let x = m.add_var("x", VarBound::NonNegative);
    m.add_constraint(LinExpr::term(x, r(1)), Relation::Ge, r(3))
        .unwrap();
    let mut obj = LinExpr::term(x, r(1));
    obj.add_constant(r(10));
    m.set_objective(Sense::Minimize, obj).unwrap();
    let sol = m.solve().unwrap();
    assert_eq!(sol.objective, r(13));
    assert_eq!(*sol.value(x), r(3));
}

#[test]
fn free_variable_can_go_negative_in_both_backends() {
    // minimize z subject to z >= x - 10, x <= 4, x >= 0, z free:
    // optimum z = -10 at x = 0.
    fn build<T: privmech_linalg::Scalar>() -> (Model<T>, privmech_lp::Var) {
        let mut m: Model<T> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let z = m.add_var("z", VarBound::Free);
        let mut rhs_expr = LinExpr::term(z, T::one());
        rhs_expr.add_term(x, -T::one());
        m.add_constraint(rhs_expr, Relation::Ge, -T::from_i64(10))
            .unwrap();
        m.add_constraint(LinExpr::term(x, T::one()), Relation::Le, T::from_i64(4))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(z, T::one()))
            .unwrap();
        (m, z)
    }
    let (m, z) = build::<Rational>();
    let sol = m.solve().unwrap();
    assert_eq!(*sol.value(z), r(-10));
    let (m, z) = build::<f64>();
    let sol = m.solve().unwrap();
    assert!((sol.value(z) + 10.0).abs() < 1e-9);
}

#[test]
fn infeasible_equalities_and_unbounded_free_objective() {
    // Infeasible: x + y = 1 and x + y = 2.
    let mut m: Model<Rational> = Model::new();
    let x = m.add_var("x", VarBound::NonNegative);
    let y = m.add_var("y", VarBound::NonNegative);
    m.add_constraint(LinExpr::term(x, r(1)).plus(y, r(1)), Relation::Eq, r(1))
        .unwrap();
    m.add_constraint(LinExpr::term(x, r(1)).plus(y, r(1)), Relation::Eq, r(2))
        .unwrap();
    m.set_objective(Sense::Minimize, LinExpr::term(x, r(1)))
        .unwrap();
    assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);

    // Unbounded: minimize a free variable with no lower bound.
    let mut m: Model<Rational> = Model::new();
    let z = m.add_var("z", VarBound::Free);
    m.add_constraint(LinExpr::term(z, r(1)), Relation::Le, r(5))
        .unwrap();
    m.set_objective(Sense::Minimize, LinExpr::term(z, r(1)))
        .unwrap();
    assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
}
