//! Property-based and randomized tests for the simplex solver: feasibility of
//! returned solutions, optimality certificates on problem families with known
//! closed-form optima, and agreement between the exact and floating-point
//! backends.

use privmech_lp::{LinExpr, Model, Relation, Sense, VarBound};
use privmech_numerics::{rat, Rational};
use proptest::prelude::*;

mod common;
use common::{beale_degenerate_model, random_model, structured_corpus};

/// Check that a solution satisfies every constraint of the model it came from.
fn assert_feasible_rational(
    model: &Model<Rational>,
    values: &[Rational],
    constraints: &[(LinExpr<Rational>, Relation, Rational)],
) {
    let _ = model;
    for (expr, rel, rhs) in constraints {
        let lhs = expr.evaluate(values);
        match rel {
            Relation::Le => assert!(lhs <= *rhs, "violated: {lhs} <= {rhs}"),
            Relation::Ge => assert!(lhs >= *rhs, "violated: {lhs} >= {rhs}"),
            Relation::Eq => assert_eq!(lhs, *rhs),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transportation-style LP with known optimum: ship `demand` units from
    /// two sources with capacities `cap0`, `cap1` and unit costs `c0 < c1`.
    /// The optimum greedily fills the cheaper source first.
    #[test]
    fn greedy_transportation_optimum(
        cap0 in 1i64..=20,
        cap1 in 1i64..=20,
        demand_frac in 1i64..=10,
        c0 in 1i64..=5,
        dc in 1i64..=5,
    ) {
        let total = cap0 + cap1;
        let demand = (total * demand_frac) / 10;
        prop_assume!(demand >= 1);
        let c1 = c0 + dc;

        let mut m: Model<Rational> = Model::new();
        let x0 = m.add_var("x0", VarBound::NonNegative);
        let x1 = m.add_var("x1", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x0, rat(1, 1)), Relation::Le, rat(cap0, 1)).unwrap();
        m.add_constraint(LinExpr::term(x1, rat(1, 1)), Relation::Le, rat(cap1, 1)).unwrap();
        m.add_constraint(
            LinExpr::term(x0, rat(1, 1)).plus(x1, rat(1, 1)),
            Relation::Eq,
            rat(demand, 1),
        ).unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x0, rat(c0, 1)).plus(x1, rat(c1, 1)),
        ).unwrap();

        let sol = m.solve().unwrap();
        let from_cheap = demand.min(cap0);
        let from_expensive = demand - from_cheap;
        let expected = c0 * from_cheap + c1 * from_expensive;
        prop_assert_eq!(sol.objective, rat(expected, 1));
    }

    /// Random feasible LPs: minimize a non-negative cost over a standard
    /// simplex-like region. The returned point must satisfy every constraint
    /// and achieve an objective no larger than any of a set of random feasible
    /// points (a weak but broad optimality sanity check).
    #[test]
    fn solution_is_feasible_and_not_dominated(
        costs in prop::collection::vec(0i64..=9, 4),
        budget in 1i64..=12,
        probe in prop::collection::vec(0i64..=3, 4),
    ) {
        let mut m: Model<Rational> = Model::new();
        let vars = m.add_nonneg_vars("x", 4);
        // sum x_i == budget, x_i <= budget.
        let mut sum_expr = LinExpr::new();
        for &v in &vars {
            sum_expr.add_term(v, rat(1, 1));
        }
        let mut constraints = Vec::new();
        constraints.push((sum_expr.clone(), Relation::Eq, rat(budget, 1)));
        m.add_constraint(sum_expr, Relation::Eq, rat(budget, 1)).unwrap();
        for &v in &vars {
            let e = LinExpr::term(v, rat(1, 1));
            constraints.push((e.clone(), Relation::Le, rat(budget, 1)));
            m.add_constraint(e, Relation::Le, rat(budget, 1)).unwrap();
        }
        let mut obj = LinExpr::new();
        for (v, &c) in vars.iter().zip(costs.iter()) {
            obj.add_term(*v, rat(c, 1));
        }
        m.set_objective(Sense::Minimize, obj.clone()).unwrap();
        let sol = m.solve().unwrap();
        assert_feasible_rational(&m, &sol.values, &constraints);

        // The optimum puts all mass on the cheapest coordinate.
        let min_cost = *costs.iter().min().unwrap();
        prop_assert_eq!(sol.objective.clone(), rat(min_cost * budget, 1));

        // Any feasible probe point must not beat the reported optimum.
        let probe_sum: i64 = probe.iter().sum();
        if probe_sum > 0 {
            let probe_point: Vec<Rational> = probe
                .iter()
                .map(|&p| rat(p * budget, probe_sum))
                .collect();
            let probe_obj = obj.evaluate(&probe_point);
            prop_assert!(sol.objective <= probe_obj);
        }
    }

    /// The exact and f64 backends agree on random small LPs (within tolerance).
    #[test]
    fn exact_and_float_backends_agree(
        a in prop::collection::vec(1i64..=9, 6),
        b in prop::collection::vec(2i64..=15, 3),
        c in prop::collection::vec(1i64..=9, 2),
    ) {
        // min c.x s.t. A x >= b (3 constraints, 2 vars), x >= 0.
        let mut mr: Model<Rational> = Model::new();
        let xr = mr.add_nonneg_vars("x", 2);
        let mut mf: Model<f64> = Model::new();
        let xf = mf.add_nonneg_vars("x", 2);
        for i in 0..3 {
            let er = LinExpr::term(xr[0], rat(a[2 * i], 1)).plus(xr[1], rat(a[2 * i + 1], 1));
            let ef = LinExpr::term(xf[0], a[2 * i] as f64).plus(xf[1], a[2 * i + 1] as f64);
            mr.add_constraint(er, Relation::Ge, rat(b[i], 1)).unwrap();
            mf.add_constraint(ef, Relation::Ge, b[i] as f64).unwrap();
        }
        mr.set_objective(
            Sense::Minimize,
            LinExpr::term(xr[0], rat(c[0], 1)).plus(xr[1], rat(c[1], 1)),
        ).unwrap();
        mf.set_objective(
            Sense::Minimize,
            LinExpr::term(xf[0], c[0] as f64).plus(xf[1], c[1] as f64),
        ).unwrap();
        let sr = mr.solve().unwrap();
        let sf = mf.solve().unwrap();
        prop_assert!((sr.objective.to_f64() - sf.objective).abs() < 1e-6);
    }

    /// minimize_max: the epigraph optimum equals the explicit maximum of the
    /// expressions evaluated at the returned point, and no probe point does
    /// strictly better.
    #[test]
    fn minimize_max_certificate(
        weights in prop::collection::vec(1i64..=9, 3),
        total in 2i64..=10,
    ) {
        // Balance load: minimize max_i (w_i * x_i) subject to sum x_i = total.
        let mut m: Model<Rational> = Model::new();
        let vars = m.add_nonneg_vars("x", 3);
        let mut sum_expr = LinExpr::new();
        for &v in &vars {
            sum_expr.add_term(v, rat(1, 1));
        }
        m.add_constraint(sum_expr, Relation::Eq, rat(total, 1)).unwrap();
        let exprs: Vec<LinExpr<Rational>> = vars
            .iter()
            .zip(weights.iter())
            .map(|(&v, &w)| LinExpr::term(v, rat(w, 1)))
            .collect();
        m.minimize_max(exprs.clone()).unwrap();
        let sol = m.solve().unwrap();
        let achieved = exprs
            .iter()
            .map(|e| e.evaluate(&sol.values))
            .max()
            .unwrap();
        prop_assert_eq!(achieved.clone(), sol.objective.clone());
        // Closed form: optimum is total / sum_i (1/w_i).
        let denom: Rational = weights
            .iter()
            .fold(Rational::zero(), |acc, &w| acc + rat(1, w));
        let expected = rat(total, 1) / denom;
        prop_assert_eq!(sol.objective, expected);
    }
}

// ---------------------------------------------------------------------------
// Dense ≡ revised identity contract (PR 4).
//
// The revised simplex must follow the *identical pivot sequence* as the dense
// tableau — same entering column and leaving position at every iteration,
// phases included — and refactorization must be unobservable. These
// properties back the SOLVER.md contract that lets `SolverForm` stay out of
// request fingerprints and cache keys.
// ---------------------------------------------------------------------------

use privmech_lp::{solve_model_traced, SolverForm, SolverOptions};

fn with_form(form: SolverForm) -> SolverOptions {
    SolverOptions {
        form,
        ..SolverOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline contract: dense and revised return the same `Result` —
    /// bit-identical solution, stats, *and pivot-for-pivot trace* on
    /// success; the same error (infeasible/unbounded) otherwise.
    #[test]
    fn dense_and_revised_pivot_sequences_are_identical(
        coeffs in prop::collection::vec(-4i64..=4, 9),
        rhs in prop::collection::vec(-6i64..=6, 5),
        costs in prop::collection::vec(-3i64..=5, 3),
        free_var in any::<bool>(),
    ) {
        let m = random_model(&coeffs, &rhs, &costs, free_var);
        let dense = solve_model_traced(&m, &with_form(SolverForm::Dense));
        let revised = solve_model_traced(&m, &with_form(SolverForm::Revised));
        prop_assert_eq!(dense, revised);
    }

    /// Refactorization boundaries: refactorizing after every pivot, on the
    /// default trigger, or never must be completely unobservable — identical
    /// solutions and identical pivot sequences.
    #[test]
    fn refactorization_frequency_is_unobservable(
        coeffs in prop::collection::vec(-4i64..=4, 9),
        rhs in prop::collection::vec(-6i64..=6, 5),
        costs in prop::collection::vec(-3i64..=5, 3),
        free_var in any::<bool>(),
    ) {
        let m = random_model(&coeffs, &rhs, &costs, free_var);
        let every_pivot = solve_model_traced(&m, &SolverOptions {
            form: SolverForm::Revised,
            refactor_interval: 1,
            ..SolverOptions::default()
        });
        let default_trigger = solve_model_traced(&m, &with_form(SolverForm::Revised));
        let never = solve_model_traced(&m, &SolverOptions {
            form: SolverForm::Revised,
            refactor_interval: SolverOptions::NEVER_REFACTOR,
            ..SolverOptions::default()
        });
        prop_assert_eq!(&every_pivot, &default_trigger);
        prop_assert_eq!(&default_trigger, &never);
    }

    /// Factorization-kind × refactorization-interval boundary sweep (PR 6):
    /// the LU/Forrest–Tomlin default and the eta-file fallback must be
    /// mutually unobservable at every refactorization frequency — identical
    /// pivot traces under the default pricing rule — and the optimum they
    /// agree on must survive the exact optimality certificate (solved again
    /// under devex pricing, whose every solve is certificate-verified).
    #[test]
    fn factorization_kind_is_unobservable_at_every_refactor_boundary(
        coeffs in prop::collection::vec(-4i64..=4, 9),
        rhs in prop::collection::vec(-6i64..=6, 5),
        costs in prop::collection::vec(-3i64..=5, 3),
        free_var in any::<bool>(),
    ) {
        use privmech_lp::FactorizationKind;
        let m = random_model(&coeffs, &rhs, &costs, free_var);
        let reference = solve_model_traced(&m, &with_form(SolverForm::Revised));
        for factorization in [FactorizationKind::LuForrestTomlin, FactorizationKind::EtaFile] {
            for interval in [1, 64, SolverOptions::NEVER_REFACTOR] {
                let run = solve_model_traced(&m, &SolverOptions {
                    form: SolverForm::Revised,
                    factorization,
                    refactor_interval: interval,
                    ..SolverOptions::default()
                });
                prop_assert_eq!(&reference, &run,
                    "{:?} at interval {} diverged", factorization, interval);
            }
        }
        // Certificate cross-check: devex solves are verified against the
        // exact optimality certificate before release, so agreement on the
        // objective proves the traced optimum certificate-identical.
        if let Ok((sol, _)) = reference {
            let devex = privmech_lp::solve_model_with(&m, &SolverOptions {
                pricing: privmech_lp::PricingRule::Devex,
                ..SolverOptions::default()
            });
            let devex = devex.expect("devex must solve whatever the default solved");
            prop_assert_eq!(sol.objective, devex.objective);
        }
    }

    /// The same boundary sweep on the equilibrated `f64` path: scaling runs
    /// on the dense tableau, so factorization kind and refactorization
    /// interval must stay byte-for-byte inert there too.
    #[test]
    fn f64_equilibrated_path_ignores_factorization_boundaries(
        a in prop::collection::vec(1i64..=9, 6),
        b in prop::collection::vec(1i64..=15, 3),
        c in prop::collection::vec(1i64..=9, 2),
    ) {
        use privmech_lp::{FactorizationKind, ScalingMode};
        let mut m: Model<f64> = Model::new();
        let xs = m.add_nonneg_vars("x", 2);
        for i in 0..3 {
            // Spread the rows across ~7 orders of magnitude so equilibration
            // actually rescales.
            let scale = [1.0e3, 1.0, 1.0e-4][i];
            let e = LinExpr::term(xs[0], a[2 * i] as f64 * scale)
                .plus(xs[1], a[2 * i + 1] as f64 * scale);
            m.add_constraint(e, Relation::Ge, b[i] as f64 * scale).unwrap();
        }
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(xs[0], c[0] as f64).plus(xs[1], c[1] as f64),
        ).unwrap();
        let reference = solve_model_traced(&m, &SolverOptions {
            scaling: ScalingMode::Equilibrate,
            ..SolverOptions::default()
        }).unwrap();
        for factorization in [FactorizationKind::LuForrestTomlin, FactorizationKind::EtaFile] {
            for interval in [1, 64, SolverOptions::NEVER_REFACTOR] {
                let run = solve_model_traced(&m, &SolverOptions {
                    scaling: ScalingMode::Equilibrate,
                    factorization,
                    refactor_interval: interval,
                    ..SolverOptions::default()
                }).unwrap();
                prop_assert_eq!(&reference, &run,
                    "{:?} at interval {} diverged", factorization, interval);
            }
        }
        // Equilibration itself must not move the optimum. The unscaled solve
        // is allowed to fail — absolute tolerances misjudge rows seven orders
        // of magnitude apart, which is the failure mode equilibration exists
        // to remove — but when it does solve, the optima must agree.
        if let Ok(unscaled) = solve_model_traced(&m, &SolverOptions::default()) {
            prop_assert!((reference.0.objective - unscaled.0.objective).abs() < 1e-6);
        }
    }

    /// The f64 backend routes every `SolverForm` onto the dense tableau (a
    /// float FTRAN/BTRAN rounds differently than a float tableau update), so
    /// all three forms — and all refactorization intervals — must return
    /// byte-identical results there too.
    #[test]
    fn f64_solver_form_is_inert(
        a in prop::collection::vec(1i64..=9, 6),
        b in prop::collection::vec(1i64..=15, 3),
        c in prop::collection::vec(1i64..=9, 2),
    ) {
        let mut m: Model<f64> = Model::new();
        let xs = m.add_nonneg_vars("x", 2);
        for i in 0..3 {
            let e = LinExpr::term(xs[0], a[2 * i] as f64).plus(xs[1], a[2 * i + 1] as f64);
            m.add_constraint(e, Relation::Ge, b[i] as f64).unwrap();
        }
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(xs[0], c[0] as f64).plus(xs[1], c[1] as f64),
        ).unwrap();
        let auto = solve_model_traced(&m, &with_form(SolverForm::Auto)).unwrap();
        let dense = solve_model_traced(&m, &with_form(SolverForm::Dense)).unwrap();
        let revised = solve_model_traced(&m, &SolverOptions {
            form: SolverForm::Revised,
            refactor_interval: 1,
            ..SolverOptions::default()
        }).unwrap();
        prop_assert_eq!(&auto, &dense);
        prop_assert_eq!(&dense, &revised);
    }
}

/// Beale's cycling LP under the revised form at every refactorization
/// frequency: the degenerate-vertex fallback machinery (streak counting,
/// Bland engagement) must fire identically across forms and frequencies.
#[test]
fn degenerate_cycling_lp_identical_across_forms_and_frequencies() {
    // max 10a - 57b - 9c - 24d subject to Beale's rows (shared corpus entry);
    // forced tiny streak limit so the fallback engages.
    let m = beale_degenerate_model();

    let run = |form: SolverForm, interval: usize| {
        solve_model_traced(
            &m,
            &SolverOptions {
                form,
                refactor_interval: interval,
                degeneracy_streak_limit: 1,
                ..SolverOptions::default()
            },
        )
        .unwrap()
    };
    let reference = run(SolverForm::Dense, 64);
    assert_eq!(reference.0.objective, rat(1, 1));
    assert!(reference.0.stats.fallback_activations > 0 || reference.0.stats.degenerate_pivots > 0);
    for interval in [1, 64, SolverOptions::NEVER_REFACTOR] {
        let revised = run(SolverForm::Revised, interval);
        assert_eq!(reference, revised, "interval {interval}");
    }
}

// ---------------------------------------------------------------------------
// Shared-corpus CSR ≡ dense contract (PR 8).
//
// The revised driver now pulls entering columns straight out of the CSR
// constraint store, so the pivot-identity contract doubles as the proof that
// the sparse store represents exactly the matrix the dense tableau scatters.
// Both suites below run over the *same* structured corpus as the generators
// above — paper-shaped DP chains, one-block-dense epigraph rows, seeded
// random sparsity, and Beale's degenerate LP.
// ---------------------------------------------------------------------------

/// Every corpus entry: the CSR-backed revised driver must return the exact
/// `Result` of the dense oracle — bit-identical solution, stats, and pivot
/// trace — under both factorization kinds and at every refactorization
/// frequency, on the exact backend.
#[test]
fn structured_corpus_csr_revised_matches_dense_oracle() {
    use privmech_lp::FactorizationKind;
    for (name, m) in structured_corpus(0xC5B8) {
        let dense = solve_model_traced(&m, &with_form(SolverForm::Dense));
        for factorization in [
            FactorizationKind::LuForrestTomlin,
            FactorizationKind::EtaFile,
        ] {
            for interval in [
                1,
                SolverOptions::default().refactor_interval,
                SolverOptions::NEVER_REFACTOR,
            ] {
                let revised = solve_model_traced(
                    &m,
                    &SolverOptions {
                        form: SolverForm::Revised,
                        factorization,
                        refactor_interval: interval,
                        ..SolverOptions::default()
                    },
                );
                assert_eq!(
                    dense, revised,
                    "{name}: {factorization:?} at interval {interval} diverged from dense oracle"
                );
            }
        }
    }
}

/// The generic corpus shapes on the `f64` backend: every `SolverForm` and
/// factorization kind must be byte-for-byte inert there too (the float path
/// routes all forms onto the dense tableau).
#[test]
fn structured_corpus_f64_shapes_match_dense_oracle() {
    use privmech_lp::FactorizationKind;
    let corpus: Vec<(&str, Model<f64>)> = vec![
        ("dp_chain_4_alpha_1_2", common::dp_chain_model(4, (1, 2))),
        ("dp_chain_7_alpha_2_3", common::dp_chain_model(7, (2, 3))),
        (
            "epigraph_block_3",
            common::epigraph_block_model(&[1, 2, 3], 6),
        ),
        (
            "epigraph_block_5",
            common::epigraph_block_model(&[3, 1, 4, 1, 5], 10),
        ),
    ];
    for (name, m) in corpus {
        let dense = solve_model_traced(&m, &with_form(SolverForm::Dense));
        for factorization in [
            FactorizationKind::LuForrestTomlin,
            FactorizationKind::EtaFile,
        ] {
            for interval in [1, SolverOptions::NEVER_REFACTOR] {
                let revised = solve_model_traced(
                    &m,
                    &SolverOptions {
                        form: SolverForm::Revised,
                        factorization,
                        refactor_interval: interval,
                        ..SolverOptions::default()
                    },
                );
                assert_eq!(
                    dense, revised,
                    "{name}: f64 {factorization:?} at interval {interval} diverged"
                );
            }
        }
    }
}
