//! Shared structured-LP test generator: one corpus of paper-shaped models
//! that every differential suite (dense ≡ revised/CSR, warm-start, devex
//! certificates) draws from, so the solvers are proven against the *same*
//! problems rather than each test file inventing its own.
//!
//! The corpus covers the shapes the paper's mechanisms actually produce:
//!
//! * **DP-chain rows** with exactly two nonzeros (`v_i - α v_{i+1} >= 0`),
//!   the dominant row shape of the dynamic-programming reformulation;
//! * **epigraph rows dense over one prefix block** (`minimize_max` over
//!   cumulative loads), the minimax objective's footprint;
//! * **seeded random sparsity** — rows with 1–3 nonzeros at random columns,
//!   mixed relations, negative and zero right-hand sides;
//! * **degenerate vertices**: Beale's classic cycling LP.
//!
//! Everything is deterministic: random models take an explicit `u64` seed
//! (xoshiro via the vendored `rand` shim), so a failing corpus entry can be
//! replayed by name + seed alone.

// Each test binary compiles this module independently and uses a subset of
// the corpus; the unused remainder is expected.
#![allow(dead_code)]

use privmech_linalg::Scalar;
use privmech_lp::{LinExpr, Model, Relation, Sense, VarBound};
use privmech_numerics::{rat, Rational};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random small LP mixing `<=`/`>=`/`==` rows, negative right-hand sides
/// (exercising the row-negation rewrite), zero-rhs `>=` rows (exercising the
/// slack-seeding rewrite and producing degenerate vertices), and a free
/// variable (exercising the column split). Driven by proptest-supplied
/// integer pools; kept bit-compatible with the PR 4 original so existing
/// regression seeds still reproduce.
pub fn random_model(coeffs: &[i64], rhs: &[i64], costs: &[i64], free_var: bool) -> Model<Rational> {
    let vars = 3usize;
    let mut m: Model<Rational> = Model::new();
    let mut xs = Vec::new();
    for k in 0..vars {
        let bound = if free_var && k == 0 {
            VarBound::Free
        } else {
            VarBound::NonNegative
        };
        xs.push(m.add_var(format!("x{k}"), bound));
    }
    for (i, b) in rhs.iter().enumerate() {
        let mut e = LinExpr::new();
        for (k, &x) in xs.iter().enumerate() {
            e.add_term(x, rat(coeffs[(i * vars + k) % coeffs.len()], 1));
        }
        let relation = match i % 3 {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        // Every third >= row gets a zero rhs: the paper's dominant row shape.
        let b = if relation == Relation::Ge && i % 2 == 0 {
            0
        } else {
            *b
        };
        m.add_constraint(e, relation, rat(b, 1)).unwrap();
    }
    let mut obj = LinExpr::new();
    for (k, &x) in xs.iter().enumerate() {
        obj.add_term(x, rat(costs[k % costs.len()], 1));
    }
    m.set_objective(Sense::Minimize, obj).unwrap();
    m
}

/// DP-recurrence chain: `stages + 1` value variables linked by rows with
/// exactly two nonzeros each, `v_i - α v_{i+1} >= 0`, plus one normalization
/// row `Σ v_i = 1`. Minimizing `v_0` drives the chain tight, so every
/// two-nonzero row is active at the optimum. `alpha = (num, den)` with
/// `0 < num < den`.
pub fn dp_chain_model<T: Scalar>(stages: usize, alpha: (i64, i64)) -> Model<T> {
    assert!(stages >= 1 && alpha.0 > 0 && alpha.0 < alpha.1);
    let mut m: Model<T> = Model::new();
    let vs = m.add_nonneg_vars("v", stages + 1);
    for i in 0..stages {
        let e = LinExpr::term(vs[i], T::from_ratio(1, 1))
            .plus(vs[i + 1], T::from_ratio(-alpha.0, alpha.1));
        m.add_constraint(e, Relation::Ge, T::zero()).unwrap();
    }
    let mut sum = LinExpr::new();
    for &v in &vs {
        sum.add_term(v, T::from_ratio(1, 1));
    }
    m.add_constraint(sum, Relation::Eq, T::from_ratio(1, 1))
        .unwrap();
    m.set_objective(Sense::Minimize, LinExpr::term(vs[0], T::from_ratio(1, 1)))
        .unwrap();
    m
}

/// Minimax load balancing with epigraph rows dense over one prefix block:
/// `minimize_max` over *cumulative* loads `Σ_{j<=i} w_j x_j`, subject to
/// `Σ x_i = total`. Row `i` of the epigraph block carries `i + 2` nonzeros
/// (the prefix plus the epigraph variable), giving the corpus its one
/// dense-block shape.
pub fn epigraph_block_model<T: Scalar>(weights: &[i64], total: i64) -> Model<T> {
    assert!(!weights.is_empty() && weights.iter().all(|&w| w > 0));
    let mut m: Model<T> = Model::new();
    let xs = m.add_nonneg_vars("x", weights.len());
    let mut sum = LinExpr::new();
    for &x in &xs {
        sum.add_term(x, T::from_ratio(1, 1));
    }
    m.add_constraint(sum, Relation::Eq, T::from_ratio(total, 1))
        .unwrap();
    let mut exprs = Vec::new();
    let mut prefix = LinExpr::new();
    for (&x, &w) in xs.iter().zip(weights.iter()) {
        prefix.add_term(x, T::from_ratio(w, 1));
        exprs.push(prefix.clone());
    }
    m.minimize_max(exprs).unwrap();
    m
}

/// Seeded random-sparsity LP: `rows` constraints over `vars` variables, each
/// row holding 1–3 nonzeros at distinct random columns with coefficients in
/// `[-4, 4] \ {0}`, relations drawn uniformly, right-hand sides in
/// `[-6, 6]` with `>=` rows biased toward zero rhs. Variable 0 is free on
/// odd seeds. Deterministic in `seed`.
pub fn random_sparse_model(seed: u64, vars: usize, rows: usize) -> Model<Rational> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m: Model<Rational> = Model::new();
    let mut xs = Vec::new();
    for k in 0..vars {
        let bound = if seed % 2 == 1 && k == 0 {
            VarBound::Free
        } else {
            VarBound::NonNegative
        };
        xs.push(m.add_var(format!("x{k}"), bound));
    }
    for _ in 0..rows {
        let nnz = rng.gen_range(1..=3usize.min(vars));
        let mut cols: Vec<usize> = Vec::new();
        while cols.len() < nnz {
            let c = rng.gen_range(0..vars);
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        let mut e = LinExpr::new();
        for &c in &cols {
            let mut coeff = 0i64;
            while coeff == 0 {
                coeff = rng.gen_range(-4i64..=4);
            }
            e.add_term(xs[c], rat(coeff, 1));
        }
        let relation = match rng.gen_range(0..3u32) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let b = if relation == Relation::Ge && rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(-6i64..=6)
        };
        m.add_constraint(e, relation, rat(b, 1)).unwrap();
    }
    let mut obj = LinExpr::new();
    for &x in &xs {
        obj.add_term(x, rat(rng.gen_range(-3i64..=5), 1));
    }
    m.set_objective(Sense::Minimize, obj).unwrap();
    m
}

/// Beale's classic cycling LP (max `10a - 57b - 9c - 24d`), the corpus's
/// degenerate-vertex entry: without anti-cycling the dense tableau loops
/// forever, so it pins the Bland-fallback machinery on both drivers.
pub fn beale_degenerate_model() -> Model<Rational> {
    let mut m: Model<Rational> = Model::new();
    let a = m.add_var("a", VarBound::NonNegative);
    let b = m.add_var("b", VarBound::NonNegative);
    let c = m.add_var("c", VarBound::NonNegative);
    let d = m.add_var("d", VarBound::NonNegative);
    m.add_constraint(
        LinExpr::term(a, rat(1, 2))
            .plus(b, rat(-11, 2))
            .plus(c, rat(-5, 2))
            .plus(d, rat(9, 1)),
        Relation::Le,
        Rational::zero(),
    )
    .unwrap();
    m.add_constraint(
        LinExpr::term(a, rat(1, 2))
            .plus(b, rat(-3, 2))
            .plus(c, rat(-1, 2))
            .plus(d, rat(1, 1)),
        Relation::Le,
        Rational::zero(),
    )
    .unwrap();
    m.add_constraint(LinExpr::term(a, rat(1, 1)), Relation::Le, rat(1, 1))
        .unwrap();
    m.set_objective(
        Sense::Maximize,
        LinExpr::term(a, rat(10, 1))
            .plus(b, rat(-57, 1))
            .plus(c, rat(-9, 1))
            .plus(d, rat(-24, 1)),
    )
    .unwrap();
    m
}

/// The full structured corpus for a given seed: every paper shape plus a
/// handful of seeded random-sparsity instances. Entry names are stable so a
/// failure report identifies the model without dumping it.
pub fn structured_corpus(seed: u64) -> Vec<(String, Model<Rational>)> {
    let mut corpus: Vec<(String, Model<Rational>)> = vec![
        ("dp_chain_4_alpha_1_2".into(), dp_chain_model(4, (1, 2))),
        ("dp_chain_7_alpha_2_3".into(), dp_chain_model(7, (2, 3))),
        (
            "epigraph_block_3".into(),
            epigraph_block_model(&[1, 2, 3], 6),
        ),
        (
            "epigraph_block_5".into(),
            epigraph_block_model(&[3, 1, 4, 1, 5], 10),
        ),
        ("beale_degenerate".into(), beale_degenerate_model()),
    ];
    for k in 0..4u64 {
        let s = seed.wrapping_mul(4).wrapping_add(k);
        corpus.push((
            format!("random_sparse_seed_{s}"),
            random_sparse_model(s, 4, 5),
        ));
    }
    corpus
}
