//! Cross-α warm-start sweeps at the public API: the dual-simplex warm path
//! must report losses bit-identical to cold solves at every parameter of a
//! seeded α-sweep, and must actually warm-start (not silently fall back
//! cold every time).

use privmech_lp::{
    LinExpr, Model, ModelTemplate, Relation, Sense, SolverOptions, VarBound, WarmStartMode,
    WarmSweepHandle,
};
use privmech_numerics::{rat, Rational};
use rand::{rngs::StdRng, Rng, SeedableRng};

mod common;

/// DP-chain template: rows `v_i - α v_{i+1} >= 0` with the `-α` slot bound
/// per chain row (the tailored-mechanism shape), plus normalization and a
/// `minimize v_0` objective — the template twin of
/// [`common::dp_chain_model`].
fn dp_chain_template(stages: usize) -> ModelTemplate<Rational> {
    let mut m: Model<Rational> = Model::new();
    let mut vs = Vec::new();
    for k in 0..=stages {
        vs.push(m.add_var(format!("v{k}"), VarBound::NonNegative));
    }
    for i in 0..stages {
        // Placeholder coefficient -1 on the parameterized term.
        m.add_constraint(
            LinExpr::term(vs[i], rat(1, 1)).plus(vs[i + 1], rat(-1, 1)),
            Relation::Ge,
            Rational::zero(),
        )
        .unwrap();
    }
    let mut sum = LinExpr::new();
    for &v in &vs {
        sum.add_term(v, rat(1, 1));
    }
    m.add_constraint(sum, Relation::Eq, rat(1, 1)).unwrap();
    m.set_objective(Sense::Minimize, LinExpr::term(vs[0], rat(1, 1)))
        .unwrap();

    let mut t = ModelTemplate::new(m);
    for i in 0..stages {
        t.bind_scaled(i, vs[i + 1], rat(-1, 1)).unwrap();
    }
    t
}

/// Seeded α values in `(0, 1)`, sorted ascending like a real sweep.
fn seeded_alphas(seed: u64, count: usize) -> Vec<Rational> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alphas: Vec<Rational> = (0..count)
        .map(|_| {
            let den = rng.gen_range(2i64..=24);
            let num = rng.gen_range(1i64..den);
            rat(num, den)
        })
        .collect();
    alphas.sort();
    alphas.dedup();
    alphas
}

/// The headline satellite contract: across a seeded α-sweep, every warm
/// objective is bit-identical to the cold objective at the same α, and the
/// sweep genuinely reuses carried bases.
#[test]
fn warm_sweep_losses_are_bit_identical_to_cold() {
    for seed in [11u64, 42, 1009] {
        let mut warm_template = dp_chain_template(5);
        let mut cold_template = dp_chain_template(5);
        let warm_options = SolverOptions {
            warm_start: WarmStartMode::DualSimplex,
            ..SolverOptions::default()
        };
        let cold_options = SolverOptions::default();
        let mut handle = WarmSweepHandle::new();
        for alpha in seeded_alphas(seed, 12) {
            let warm = handle
                .solve_at(&mut warm_template, &alpha, &warm_options)
                .unwrap();
            let cold = cold_template.solve_at(&alpha, &cold_options).unwrap();
            assert_eq!(
                warm.objective, cold.objective,
                "seed {seed}, alpha {alpha}: warm loss diverged from cold"
            );
        }
        assert!(
            handle.warm_solves() > 0,
            "seed {seed}: the sweep never actually warm-started"
        );
        assert_eq!(handle.total_solves(), seeded_alphas(seed, 12).len());
    }
}

/// Re-running the *same* α through a warm handle is a zero-iteration warm
/// start: the carried basis is already optimal, and the result is still
/// bit-identical to cold.
#[test]
fn repeated_alpha_is_a_zero_iteration_warm_start() {
    let mut template = dp_chain_template(4);
    let options = SolverOptions {
        warm_start: WarmStartMode::DualSimplex,
        ..SolverOptions::default()
    };
    let mut handle = WarmSweepHandle::new();
    let alpha = rat(2, 3);
    let first = handle.solve_at(&mut template, &alpha, &options).unwrap();
    let second = handle.solve_at(&mut template, &alpha, &options).unwrap();
    assert_eq!(first.objective, second.objective);
    assert_eq!(handle.warm_solves(), 1, "second solve must reuse the basis");
    // Zero dual pivots: the carried basis is already optimal at the same α.
    assert_eq!(second.stats.dual_pivots, 0);
}

/// Corpus cross-check: a warm sweep over the corpus's DP-chain α values
/// agrees with fresh cold builds of [`common::dp_chain_model`] at the same
/// α — template rewriting and from-scratch construction price identically.
#[test]
fn warm_sweep_agrees_with_fresh_corpus_builds() {
    let mut template = dp_chain_template(4);
    let options = SolverOptions {
        warm_start: WarmStartMode::DualSimplex,
        ..SolverOptions::default()
    };
    let mut handle = WarmSweepHandle::new();
    for (num, den) in [(1i64, 2i64), (2, 3), (3, 4), (1, 3)] {
        let swept = handle
            .solve_at(&mut template, &rat(num, den), &options)
            .unwrap();
        let fresh = common::dp_chain_model::<Rational>(4, (num, den))
            .solve()
            .unwrap();
        assert_eq!(
            swept.objective, fresh.objective,
            "alpha {num}/{den}: template sweep diverged from fresh build"
        );
    }
}
