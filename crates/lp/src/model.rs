//! Linear-program model builder.
//!
//! The paper formulates two linear programs (Sections 2.4.3 and 2.5):
//! the consumer's optimal-interaction LP and the tailored optimal-mechanism
//! LP, both of the "minimize the maximum of several linear expressions subject
//! to linear constraints" shape. This module provides a small, strongly typed
//! model builder that those formulations are written against; the solver
//! itself lives in [`crate::simplex`].

use std::fmt;

use privmech_linalg::Scalar;

/// Identifier of a decision variable inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The dense index of this variable inside its model.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Bound specification for a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarBound {
    /// `x >= 0` (the default for probability masses).
    NonNegative,
    /// Unrestricted in sign (used for epigraph variables).
    Free,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Le => write!(f, "<="),
            Relation::Ge => write!(f, ">="),
            Relation::Eq => write!(f, "=="),
        }
    }
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// A linear expression `sum_j coeff_j * x_j + constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinExpr<T: Scalar> {
    pub(crate) terms: Vec<(Var, T)>,
    pub(crate) constant: T,
}

impl<T: Scalar> Default for LinExpr<T> {
    fn default() -> Self {
        LinExpr::new()
    }
}

impl<T: Scalar> LinExpr<T> {
    /// The empty (zero) expression.
    #[must_use]
    pub fn new() -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: T::zero(),
        }
    }

    /// A single-term expression `coeff * var`.
    #[must_use]
    pub fn term(var: Var, coeff: T) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: T::zero(),
        }
    }

    /// A constant expression.
    #[must_use]
    pub fn constant(value: T) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// Add `coeff * var` to the expression (builder style).
    #[must_use]
    pub fn plus(mut self, var: Var, coeff: T) -> Self {
        self.add_term(var, coeff);
        self
    }

    /// Add `coeff * var` to the expression in place.
    pub fn add_term(&mut self, var: Var, coeff: T) {
        if !coeff.is_zero_approx() {
            self.terms.push((var, coeff));
        }
    }

    /// Add a constant to the expression in place.
    pub fn add_constant(&mut self, value: T) {
        self.constant = self.constant.clone() + value;
    }

    /// Add another expression to this one in place, never materializing
    /// zero coefficients.
    pub fn add_expr(&mut self, other: &LinExpr<T>) {
        for (v, c) in &other.terms {
            if !c.is_zero_approx() {
                self.terms.push((*v, c.clone()));
            }
        }
        self.constant = self.constant.clone() + other.constant.clone();
    }

    /// The terms stably sorted by variable, with duplicate variables summed
    /// **in their original term order** and exactly-zero sums dropped.
    ///
    /// Standard-form construction consumes this instead of scattering into a
    /// dense row: because the sort is stable, duplicates accumulate in the
    /// same order a dense accumulation would, so the resulting coefficients
    /// are bit-identical to the historical dense build (including on `f64`).
    #[must_use]
    pub fn merged_terms(&self) -> Vec<(Var, T)> {
        let mut sorted: Vec<(Var, T)> = self.terms.clone();
        sorted.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(Var, T)> = Vec::with_capacity(sorted.len());
        for (v, c) in sorted {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => lc.add_assign_ref(&c),
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|(_, c)| !c.is_exactly_zero());
        merged
    }

    /// The (variable, coefficient) terms.
    #[must_use]
    pub fn terms(&self) -> &[(Var, T)] {
        &self.terms
    }

    /// The additive constant.
    #[must_use]
    pub fn constant_part(&self) -> &T {
        &self.constant
    }

    /// The epigraph row for `d >= self`: the left-hand side `d - self`
    /// (terms negated) paired with the right-hand side `self`'s constant.
    ///
    /// [`Model::minimize_max`] and model re-parameterization paths (e.g. the
    /// interaction LP's α-sweep) share this single transformation so a fresh
    /// build and a re-parameterized row are term-for-term identical by
    /// construction.
    #[must_use]
    pub fn epigraph_row(&self, d: Var) -> (LinExpr<T>, T) {
        let mut lhs = LinExpr::term(d, T::one());
        for (v, c) in &self.terms {
            lhs.add_term(*v, -c.clone());
        }
        (lhs, self.constant.clone())
    }

    /// Evaluate the expression at a dense assignment of variable values.
    ///
    /// # Panics
    /// Panics if a referenced variable index is out of bounds for `values`.
    #[must_use]
    pub fn evaluate(&self, values: &[T]) -> T {
        let mut acc = self.constant.clone();
        for (v, c) in &self.terms {
            acc = acc + c.clone() * values[v.0].clone();
        }
        acc
    }
}

/// A handle to one coefficient inside a model's constraint, recorded when a
/// [`ModelTemplate`](crate::template::ModelTemplate) is built and rewritten on
/// every re-parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoeffSlot {
    pub(crate) constraint: usize,
    pub(crate) term: usize,
}

/// A single linear constraint `expr (<=|>=|==) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint<T: Scalar> {
    /// Left-hand-side expression (its constant is folded into the rhs).
    pub expr: LinExpr<T>,
    /// Comparison relation.
    pub relation: Relation,
    /// Right-hand-side constant.
    pub rhs: T,
    /// Optional human-readable label (used in error messages and debugging).
    pub label: Option<String>,
}

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A variable from a different (or newer) model was used.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// The number of variables in the model.
        model_vars: usize,
    },
    /// The model has no objective set.
    MissingObjective,
    /// The linear program is infeasible.
    Infeasible,
    /// The linear program is unbounded in the direction of optimization.
    Unbounded,
    /// Internal invariant violation; indicates a bug in the solver.
    Internal(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable { index, model_vars } => write!(
                f,
                "variable #{index} does not belong to this model ({model_vars} variables)"
            ),
            LpError::MissingObjective => write!(f, "no objective has been set"),
            LpError::Infeasible => write!(f, "the linear program is infeasible"),
            LpError::Unbounded => write!(f, "the linear program is unbounded"),
            LpError::Internal(msg) => write!(f, "internal solver error: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Result of a successful solve: the optimal objective value, an optimal
/// assignment of the model's variables, and solver statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution<T: Scalar> {
    /// Optimal objective value (in the model's original sense).
    pub objective: T,
    /// Value of each model variable, indexed by [`Var::index`].
    pub values: Vec<T>,
    /// Pivot/iteration statistics recorded by the simplex solver.
    pub stats: crate::simplex::PivotStats,
}

impl<T: Scalar> Solution<T> {
    /// Value of a specific variable.
    #[must_use]
    pub fn value(&self, var: Var) -> &T {
        &self.values[var.0]
    }
}

/// A linear-programming model: variables, linear constraints, and a linear
/// objective.
#[derive(Debug, Clone)]
pub struct Model<T: Scalar> {
    pub(crate) bounds: Vec<VarBound>,
    pub(crate) names: Vec<String>,
    pub(crate) constraints: Vec<Constraint<T>>,
    pub(crate) objective: Option<(Sense, LinExpr<T>)>,
}

impl<T: Scalar> Default for Model<T> {
    fn default() -> Self {
        Model::new()
    }
}

impl<T: Scalar> Model<T> {
    /// An empty model.
    #[must_use]
    pub fn new() -> Self {
        Model {
            bounds: Vec::new(),
            names: Vec::new(),
            constraints: Vec::new(),
            objective: None,
        }
    }

    /// Add a decision variable with the given bound and name.
    pub fn add_var(&mut self, name: impl Into<String>, bound: VarBound) -> Var {
        self.bounds.push(bound);
        self.names.push(name.into());
        Var(self.bounds.len() - 1)
    }

    /// Add `count` non-negative variables named `prefix_k`.
    pub fn add_nonneg_vars(&mut self, prefix: &str, count: usize) -> Vec<Var> {
        (0..count)
            .map(|k| self.add_var(format!("{prefix}_{k}"), VarBound::NonNegative))
            .collect()
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.bounds.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    #[must_use]
    pub fn var_name(&self, var: Var) -> &str {
        &self.names[var.0]
    }

    /// Add a constraint `expr relation rhs`.
    pub fn add_constraint(
        &mut self,
        expr: LinExpr<T>,
        relation: Relation,
        rhs: T,
    ) -> Result<(), LpError> {
        self.add_labeled_constraint(expr, relation, rhs, None::<String>)
    }

    /// Add a constraint with a debugging label.
    pub fn add_labeled_constraint(
        &mut self,
        expr: LinExpr<T>,
        relation: Relation,
        rhs: T,
        label: Option<impl Into<String>>,
    ) -> Result<(), LpError> {
        self.check_expr(&expr)?;
        self.constraints.push(Constraint {
            expr,
            relation,
            rhs,
            label: label.map(Into::into),
        });
        Ok(())
    }

    /// Set the objective.
    pub fn set_objective(&mut self, sense: Sense, expr: LinExpr<T>) -> Result<(), LpError> {
        self.check_expr(&expr)?;
        self.objective = Some((sense, expr));
        Ok(())
    }

    /// Add an epigraph variable `d` with constraints `d >= expr_i` for every
    /// supplied expression and set the objective to `minimize d`.
    ///
    /// This is exactly the transformation the paper applies to turn
    /// `minimize max_{i in S} sum_r x_{i,r} l(i,r)` into a linear program
    /// (Section 2.5).
    pub fn minimize_max(&mut self, exprs: Vec<LinExpr<T>>) -> Result<Var, LpError> {
        let d = self.add_var("epigraph_d", VarBound::Free);
        for (k, expr) in exprs.into_iter().enumerate() {
            self.check_expr(&expr)?;
            // d - expr >= 0  <=>  -expr + d >= 0, move expr's constant to rhs.
            let (lhs, rhs) = expr.epigraph_row(d);
            self.add_labeled_constraint(lhs, Relation::Ge, rhs, Some(format!("epigraph_{k}")))?;
        }
        self.set_objective(Sense::Minimize, LinExpr::term(d, T::one()))?;
        Ok(d)
    }

    /// Locate the term of `var` inside constraint `constraint`, returning a
    /// [`CoeffSlot`] that [`Model::set_coeff`] (and
    /// [`ModelTemplate`](crate::template::ModelTemplate)) can rewrite later.
    /// Returns `None` when the constraint index is out of range or the
    /// variable has no term in that constraint (e.g. its coefficient was zero
    /// at build time and was dropped).
    #[must_use]
    pub fn find_coeff_slot(&self, constraint: usize, var: Var) -> Option<CoeffSlot> {
        let c = self.constraints.get(constraint)?;
        let term = c.expr.terms.iter().position(|(v, _)| *v == var)?;
        Some(CoeffSlot { constraint, term })
    }

    /// Overwrite the coefficient stored at `slot`.
    ///
    /// # Panics
    /// Panics if the slot does not address an existing term (slots obtained
    /// from [`Model::find_coeff_slot`] on this model are always valid as long
    /// as the model's constraint structure has not been rebuilt since).
    pub fn set_coeff(&mut self, slot: CoeffSlot, value: T) {
        self.constraints[slot.constraint].expr.terms[slot.term].1 = value;
    }

    /// Replace the left-hand-side expression of constraint `constraint`,
    /// keeping its relation, right-hand side and label. This is the
    /// re-parameterization path for constraint families whose whole
    /// coefficient row changes with the parameter (the interaction LP's
    /// epigraph rows, whose entries are products `y[i][r]·l(i,r')` of the
    /// deployed mechanism and the loss).
    pub fn replace_constraint_expr(
        &mut self,
        constraint: usize,
        expr: LinExpr<T>,
    ) -> Result<(), LpError> {
        self.check_expr(&expr)?;
        let slot = self
            .constraints
            .get_mut(constraint)
            .ok_or_else(|| LpError::Internal(format!("no constraint #{constraint} to replace")))?;
        slot.expr = expr;
        Ok(())
    }

    /// Replace the right-hand side of constraint `constraint` (the companion
    /// of [`Model::replace_constraint_expr`] for re-parameterizations whose
    /// source expression carries a constant, which epigraph rows fold into
    /// the rhs).
    pub fn set_constraint_rhs(&mut self, constraint: usize, rhs: T) -> Result<(), LpError> {
        let slot = self
            .constraints
            .get_mut(constraint)
            .ok_or_else(|| LpError::Internal(format!("no constraint #{constraint} to update")))?;
        slot.rhs = rhs;
        Ok(())
    }

    fn check_expr(&self, expr: &LinExpr<T>) -> Result<(), LpError> {
        for (v, _) in &expr.terms {
            if v.0 >= self.bounds.len() {
                return Err(LpError::UnknownVariable {
                    index: v.0,
                    model_vars: self.bounds.len(),
                });
            }
        }
        Ok(())
    }

    /// Solve the model with the two-phase simplex method and default options
    /// (Dantzig pricing with the Bland anti-cycling fallback).
    pub fn solve(&self) -> Result<Solution<T>, LpError> {
        crate::simplex::solve_model(self)
    }

    /// Solve with explicit [`SolverOptions`](crate::simplex::SolverOptions)
    /// (e.g. pure Bland pricing for cross-checking).
    pub fn solve_with(
        &self,
        options: &crate::simplex::SolverOptions,
    ) -> Result<Solution<T>, LpError> {
        crate::simplex::solve_model_with(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn linexpr_builders_and_eval() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        let e = LinExpr::term(x, rat(2, 1)).plus(y, rat(-1, 2));
        assert_eq!(e.terms().len(), 2);
        assert_eq!(e.evaluate(&[rat(3, 1), rat(4, 1)]), rat(4, 1));
        let mut e2 = LinExpr::constant(rat(1, 1));
        e2.add_expr(&e);
        e2.add_constant(rat(1, 1));
        assert_eq!(e2.evaluate(&[rat(3, 1), rat(4, 1)]), rat(6, 1));
        // Zero coefficients are dropped.
        let z = LinExpr::new().plus(x, Rational::zero());
        assert!(z.terms().is_empty());
    }

    #[test]
    fn merged_terms_sums_duplicates_in_order_and_drops_zeros() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        let z = m.add_var("z", VarBound::NonNegative);
        // y appears twice (out of order), z's terms cancel exactly.
        let e = LinExpr::term(y, rat(1, 3))
            .plus(z, rat(5, 1))
            .plus(x, rat(2, 1))
            .plus(y, rat(1, 6))
            .plus(z, rat(-5, 1));
        let merged = e.merged_terms();
        assert_eq!(merged, vec![(x, rat(2, 1)), (y, rat(1, 2))]);
        // The expression itself is untouched (CoeffSlot indices stay valid).
        assert_eq!(e.terms().len(), 5);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let mut m1: Model<f64> = Model::new();
        let _x1 = m1.add_var("x", VarBound::NonNegative);
        let mut m2: Model<f64> = Model::new();
        let _ = m2.add_var("a", VarBound::NonNegative);
        let ghost = Var(7);
        let err = m2
            .add_constraint(LinExpr::term(ghost, 1.0), Relation::Le, 1.0)
            .unwrap_err();
        assert!(matches!(err, LpError::UnknownVariable { index: 7, .. }));
        let err = m2
            .set_objective(Sense::Minimize, LinExpr::term(ghost, 1.0))
            .unwrap_err();
        assert!(matches!(err, LpError::UnknownVariable { .. }));
    }

    #[test]
    fn model_bookkeeping() {
        let mut m: Model<f64> = Model::new();
        let xs = m.add_nonneg_vars("p", 3);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.var_name(xs[1]), "p_1");
        m.add_constraint(LinExpr::term(xs[0], 1.0), Relation::Le, 2.0)
            .unwrap();
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(xs[2].index(), 2);
    }

    #[test]
    fn relation_display() {
        assert_eq!(Relation::Le.to_string(), "<=");
        assert_eq!(Relation::Ge.to_string(), ">=");
        assert_eq!(Relation::Eq.to_string(), "==");
    }
}
