//! # privmech-lp
//!
//! A two-phase simplex linear-programming solver, generic over the
//! [`privmech_linalg::Scalar`] field.
//!
//! The paper *Universally Optimal Privacy Mechanisms for Minimax Agents*
//! formulates both the consumer's optimal post-processing (Section 2.4.3) and
//! the consumer-tailored optimal mechanism (Section 2.5) as linear programs of
//! the "minimize a maximum of linear expressions" form. This crate provides:
//!
//! * a small strongly-typed [`Model`] builder (variables, `<=`/`>=`/`==`
//!   constraints, minimize/maximize objectives, and the
//!   [`Model::minimize_max`] epigraph helper),
//! * a two-phase simplex solver with Dantzig (most-negative reduced
//!   cost) pricing, optional devex pricing, and an automatic Bland
//!   anti-cycling fallback, instantiable with exact
//!   [`privmech_numerics::Rational`] pivoting (the source of truth for every
//!   theorem-level claim) or `f64` (for speed), in two interchangeable
//!   forms: a **revised simplex** over a sparse LU basis factorization with
//!   Forrest–Tomlin updates (the [`SolverForm::Auto`] default for exact
//!   scalars; the product-form eta file remains available via
//!   [`FactorizationKind`]) and the classic **dense tableau** (always used
//!   by `f64`). The correctness contract has two tiers: on the default
//!   configuration the two forms follow the identical pivot sequence and
//!   return bit-identical solutions; non-default configurations — devex
//!   pricing, dual-simplex warm starts ([`WarmStartMode`]) — are instead
//!   verified per solve by an exact optimality [`certificate`]. Contract,
//!   factorization lifecycle and standard-form construction are documented
//!   end to end in
//!   [`SOLVER.md`](https://github.com/privmech/privmech/blob/main/crates/lp/SOLVER.md)
//!   (in-tree: `crates/lp/SOLVER.md`). Every solve reports [`PivotStats`] on
//!   its [`Solution`]; [`solve_model_traced`] additionally exposes the pivot
//!   sequence itself.
//!
//! ```
//! use privmech_lp::{LinExpr, Model, Relation, Sense, VarBound};
//! use privmech_numerics::rat;
//!
//! let mut m = Model::new();
//! let x = m.add_var("x", VarBound::NonNegative);
//! let y = m.add_var("y", VarBound::NonNegative);
//! m.add_constraint(LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
//!                  Relation::Ge, rat(2, 1)).unwrap();
//! m.set_objective(Sense::Minimize,
//!                 LinExpr::term(x, rat(3, 1)).plus(y, rat(5, 1))).unwrap();
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.objective, rat(6, 1)); // put all weight on the cheap variable
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod basis;
pub mod certificate;
mod dual_simplex;
mod lu;
pub mod model;
mod pricing;
mod ratio;
mod revised;
pub mod simplex;
mod standard;
pub mod template;

pub use certificate::{check_certificate, CertificateError, OptimalityCertificate};
pub use model::{
    CoeffSlot, Constraint, LinExpr, LpError, Model, Relation, Sense, Solution, Var, VarBound,
};
pub use simplex::{
    solve_model, solve_model_traced, solve_model_with, FactorizationKind, PivotRecord, PivotStats,
    PricingRule, ScalingMode, SolverForm, SolverOptions, TracePhase, WarmStartMode,
};
pub use template::{ModelTemplate, WarmSweepHandle};
