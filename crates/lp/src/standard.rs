//! Standard-form construction shared by both simplex implementations.
//!
//! Both the dense tableau solver and the revised (product-form basis) solver
//! work on the same canonical shape: minimize `cᵀy` subject to `Ay = b`,
//! `y ≥ 0`, `b ≥ 0`. This module owns the model → standard-form translation
//! (documented end to end in `crates/lp/SOLVER.md`):
//!
//! 1. free variables are split `x = x⁺ - x⁻`;
//! 2. rows with a negative right-hand side are negated (flipping `<=`/`>=`);
//! 3. for **exact** scalars, `>=` rows with a zero right-hand side are
//!    negated into `<=` rows so their slack can seed the basis — the paper's
//!    LPs are dominated by such rows (the `2·n·(n+1)` differential-privacy
//!    adjacency constraints), and without this rewrite phase 1 wastes
//!    thousands of degenerate pivots driving their artificials out;
//! 4. `<=` rows gain a slack column (a basis seed), `>=` rows a surplus
//!    column, `==` rows nothing — rows without a seed receive an artificial
//!    variable at solve time.
//!
//! The constraint matrix is stored as a [`Csr`] sparse matrix: zeros are
//! never materialized, from [`LinExpr`](crate::model::LinExpr) terms through
//! standard form to the revised driver's column views. The dense tableau
//! solver scatters rows from the same store, so both solver forms consume the
//! *identical* standard form (and share the pricing and ratio-test stages in
//! [`crate::pricing`] / [`crate::ratio`]); their pivot sequences coincide
//! exactly on exact scalars — see `SOLVER.md` § "CSR constraint store" for
//! the layout and the bit-identity argument.

use privmech_linalg::sparse::Csr;
use privmech_linalg::Scalar;

use crate::model::{LpError, Model, Relation, Sense, VarBound};

/// How a model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColumnMap {
    /// A non-negative variable occupies a single column.
    Single(usize),
    /// A free variable is split as `x = plus - minus`.
    Split {
        /// Column of the non-negative part.
        plus: usize,
        /// Column of the non-positive part (negated).
        minus: usize,
    },
}

/// Internal standard-form representation: minimize `cᵀy` subject to
/// `Ay = b`, `y ≥ 0`, `b ≥ 0`.
pub(crate) struct StandardForm<T: Scalar> {
    /// Constraint matrix in CSR layout, including slack/surplus columns but
    /// not artificials (those are unit vectors the solvers append
    /// themselves). Row entries iterate in strictly increasing column order.
    pub(crate) matrix: Csr<T>,
    /// Right-hand sides, all non-negative.
    pub(crate) rhs: Vec<T>,
    /// Objective coefficients for every structural + slack column.
    pub(crate) costs: Vec<T>,
    /// Per-row basis seed: `Some(col)` if a slack column can start in the
    /// basis, `None` if the row needs an artificial variable.
    pub(crate) slack_basis: Vec<Option<usize>>,
    /// Mapping from model variables to columns.
    pub(crate) mapping: Vec<ColumnMap>,
    /// Number of columns (structural + slack/surplus).
    pub(crate) num_cols: usize,
}

impl<T: Scalar> StandardForm<T> {
    /// Number of constraint rows.
    pub(crate) fn num_rows(&self) -> usize {
        self.matrix.num_rows()
    }

    /// Row-major sparse view of the constraint matrix as owned `(col, value)`
    /// pair lists — the compatibility shape consumed by the public
    /// [`check_certificate`](crate::certificate::check_certificate) kernel.
    pub(crate) fn sparse_rows(&self) -> Vec<Vec<(usize, T)>> {
        (0..self.num_rows())
            .map(|i| self.matrix.row(i).to_pairs())
            .collect()
    }

    /// Power-of-two row/column equilibration for floating-point solves
    /// ([`ScalingMode::Equilibrate`](crate::simplex::ScalingMode)).
    ///
    /// Each row is scaled by `2^(−⌊log₂ max|aᵢⱼ|⌋)` (together with its
    /// right-hand side), then each column likewise (together with its cost),
    /// bringing every row and column maximum into `[1, 2)`. Powers of two are
    /// exactly representable, so scaling perturbs no `f64` mantissa — it only
    /// re-centers exponents so the solver's absolute tolerances act uniformly
    /// across badly scaled models. The CSR sparsity pattern is untouched:
    /// scaling only multiplies stored values in place.
    ///
    /// With `R`, `C` the diagonal scale matrices, the solved problem is
    /// `min (Cc)ᵀy  s.t. (RAC)y = Rb, y ≥ 0`; a solution maps back via
    /// `x = Cy`, and the objective value is unchanged (`(Cc)ᵀy = cᵀx`).
    /// Returns the per-column factors `C` for that unscaling.
    pub(crate) fn equilibrate(&mut self) -> Vec<T> {
        let pow2 = |e: i32| -> T {
            // Clamp to the i64-representable exponent range; anything beyond
            // is already far outside the solver's usable dynamic range.
            let e = e.clamp(-62, 62);
            if e >= 0 {
                T::from_ratio(1i64 << e, 1)
            } else {
                T::from_ratio(1, 1i64 << (-e))
            }
        };
        let exponent = |max: f64| -> i32 {
            if max > 0.0 && max.is_finite() {
                max.log2().floor() as i32
            } else {
                0
            }
        };

        let num_rows = self.num_rows();
        for i in 0..num_rows {
            let (lo, hi) = (self.matrix.row_ptr()[i], self.matrix.row_ptr()[i + 1]);
            let max = self.matrix.csr_values()[lo..hi]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs().to_f64()));
            let e = exponent(max);
            if e != 0 {
                let factor = pow2(-e);
                for v in &mut self.matrix.csr_values_mut()[lo..hi] {
                    *v = v.mul_ref(&factor);
                }
                self.rhs[i] = self.rhs[i].mul_ref(&factor);
            }
        }

        let mut col_max = vec![0.0f64; self.num_cols];
        for (&j, v) in self
            .matrix
            .col_indices()
            .iter()
            .zip(self.matrix.csr_values())
        {
            col_max[j] = col_max[j].max(v.abs().to_f64());
        }
        let mut col_factors = vec![T::one(); self.num_cols];
        let mut scaled_col = vec![false; self.num_cols];
        for (j, col_factor) in col_factors.iter_mut().enumerate() {
            let e = exponent(col_max[j]);
            if e != 0 {
                *col_factor = pow2(-e);
                self.costs[j] = self.costs[j].mul_ref(col_factor);
                scaled_col[j] = true;
            }
        }
        let col_idx = self.matrix.col_indices().to_vec();
        for (k, v) in self.matrix.csr_values_mut().iter_mut().enumerate() {
            let j = col_idx[k];
            if scaled_col[j] {
                *v = v.mul_ref(&col_factors[j]);
            }
        }
        col_factors
    }
}

/// Translate a [`Model`] into standard form (see the module docs for the
/// exact rewrite sequence). Construction is sparse end to end: each
/// constraint's terms are merged by [`LinExpr::merged_terms`]
/// (stable-sorted, duplicates summed in term order, zeros dropped), mapped
/// onto columns, and pushed straight into the CSR store — no dense row is
/// ever allocated.
pub(crate) fn build_standard_form<T: Scalar>(model: &Model<T>) -> Result<StandardForm<T>, LpError> {
    let (sense, objective) = model.objective.clone().ok_or(LpError::MissingObjective)?;

    // Map model variables onto non-negative columns.
    let mut mapping = Vec::with_capacity(model.bounds.len());
    let mut num_cols = 0usize;
    for bound in &model.bounds {
        match bound {
            VarBound::NonNegative => {
                mapping.push(ColumnMap::Single(num_cols));
                num_cols += 1;
            }
            VarBound::Free => {
                mapping.push(ColumnMap::Split {
                    plus: num_cols,
                    minus: num_cols + 1,
                });
                num_cols += 2;
            }
        }
    }
    // Constraint rows over structural columns as sorted sparse entry lists.
    // Variable order → column order is monotone under `mapping` (a Split
    // yields adjacent plus < minus), so the merged (by-Var) terms arrive in
    // strictly increasing column order.
    let mut rows: Vec<Vec<(usize, T)>> = Vec::with_capacity(model.constraints.len());
    let mut rhs: Vec<T> = Vec::with_capacity(model.constraints.len());
    let mut relations: Vec<Relation> = Vec::with_capacity(model.constraints.len());

    for constraint in &model.constraints {
        let merged = constraint.expr.merged_terms();
        let mut row: Vec<(usize, T)> = Vec::with_capacity(merged.len());
        for (var, coeff) in merged {
            match mapping[var.0] {
                ColumnMap::Single(col) => row.push((col, coeff)),
                ColumnMap::Split { plus, minus } => {
                    row.push((plus, coeff.clone()));
                    row.push((minus, -coeff));
                }
            }
        }
        let mut b = constraint.rhs.sub_ref(constraint.expr.constant_part());
        let mut relation = constraint.relation;
        if b.is_negative_approx() {
            // Multiply the whole row by -1 so that b >= 0, flipping <= / >=.
            for (_, v) in &mut row {
                v.neg_assign();
            }
            b.neg_assign();
            relation = match relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        if T::is_exact() && relation == Relation::Ge && b.is_exactly_zero() {
            // `expr >= 0` is `-expr <= 0`: negating lets a slack column seed
            // the basis, so the row needs no artificial variable. The
            // paper's LPs are dominated by such rows (2·n·(n+1) adjacency
            // constraints with zero rhs), and without this rewrite phase 1
            // spends thousands of degenerate pivots driving their
            // artificials out. Exact scalars only: like Dantzig pricing,
            // the changed pivot trajectory is a numerical-robustness hazard
            // for the `f64` backend, which stays on the seed solver's path.
            for (_, v) in &mut row {
                v.neg_assign();
            }
            relation = Relation::Le;
        }
        rows.push(row);
        rhs.push(b);
        relations.push(relation);
    }

    // Add slack / surplus columns. Their indices come after every structural
    // column, so appending the single ±1 entry keeps each row sorted.
    let num_rows = rows.len();
    let mut slack_basis: Vec<Option<usize>> = vec![None; num_rows];
    for (i, relation) in relations.iter().enumerate() {
        match relation {
            Relation::Le => {
                let col = num_cols;
                num_cols += 1;
                rows[i].push((col, T::one()));
                slack_basis[i] = Some(col);
            }
            Relation::Ge => {
                let col = num_cols;
                num_cols += 1;
                rows[i].push((col, -T::one()));
            }
            Relation::Eq => {}
        }
    }

    // Objective over structural columns (slack/surplus cost 0).
    let mut costs = vec![T::zero(); num_cols];
    let maximize = sense == Sense::Maximize;
    for (var, coeff) in objective.terms() {
        let signed = if maximize {
            -coeff.clone()
        } else {
            coeff.clone()
        };
        match mapping[var.0] {
            ColumnMap::Single(col) => costs[col].add_assign_ref(&signed),
            ColumnMap::Split { plus, minus } => {
                costs[plus].add_assign_ref(&signed);
                costs[minus].sub_assign_ref(&signed);
            }
        }
    }

    Ok(StandardForm {
        matrix: Csr::from_rows(num_cols, rows),
        rhs,
        costs,
        slack_basis,
        mapping,
        num_cols,
    })
}

/// Map standard-form column values back onto the model's variables.
pub(crate) fn extract_values<T: Scalar>(
    sf: &StandardForm<T>,
    column_values: &[T],
    total_cols: usize,
) -> Vec<T> {
    let get = |col: usize| -> T {
        if col < total_cols && col < column_values.len() {
            column_values[col].clone()
        } else {
            T::zero()
        }
    };
    sf.mapping
        .iter()
        .map(|m| match *m {
            ColumnMap::Single(col) => get(col),
            ColumnMap::Split { plus, minus } => get(plus) - get(minus),
        })
        .collect()
}

/// Evaluate the model's original objective at an extracted assignment.
///
/// # Panics
/// Panics if the model has no objective (checked during standard-form
/// construction).
pub(crate) fn report_objective<T: Scalar>(model: &Model<T>, values: &[T]) -> T {
    let (_, expr) = model
        .objective
        .as_ref()
        .expect("objective checked during standard-form construction");
    expr.evaluate(values)
}
