//! The revised simplex: two-phase simplex iterations priced from a
//! product-form basis factorization instead of a dense tableau.
//!
//! Where the dense form ([`crate::simplex`]) rewrites every tableau row on
//! every pivot (O(rows × cols) scalar operations), this form keeps only
//!
//! * the original constraint matrix: the standard form's CSR store borrowed
//!   as the row view, plus one owned transpose as the column view (neither
//!   changes during the solve; artificial unit columns are synthesized on
//!   demand, never stored),
//! * the basis factorization ([`crate::basis::Basis`]: sparse LU with
//!   Forrest–Tomlin updates by default, product-form eta file as the
//!   alternative representation),
//! * the current basic solution `x_B`,
//! * the current reduced-cost vector `d` and phase objective value,
//!
//! and performs per pivot: one sparse **FTRAN** of the entering column (the
//! ratio-test / pivot-column stage), one **unit BTRAN** of the leaving
//! position (recovering the pivot row of the tableau without storing any
//! tableau), a sparse sweep turning that row into reduced-cost updates, and
//! one appended eta. On the paper's LPs — thousands of rows touching 2–4
//! structural columns each — this replaces the dense update's full-matrix
//! pass with work proportional to the factorization's actual nonzeros.
//!
//! # Why the pivot sequence is identical to the dense form
//!
//! The three decisions a simplex iteration makes — entering column, leaving
//! position, degeneracy of the step — are functions of the reduced costs
//! `d`, the pivot column `B⁻¹a_q`, and the basic solution `x_B`. This module
//! maintains `d` by the *same recurrence* the dense form applies to its
//! objective row (`d_j ← d_j − d_q·(r_j/r_q)` over the BTRAN'd pivot row),
//! obtains the pivot column exactly via FTRAN, and updates `x_B` by the
//! dense form's right-hand-side recurrence. Over an exact field equal
//! recurrences from equal starting points stay equal forever, and the
//! decisions are made by the *shared* stage implementations
//! ([`crate::pricing`], [`crate::ratio`]) — so every entering/leaving choice
//! coincides with the dense form's, phases included. The contract is
//! asserted pivot-for-pivot in `tests/properties.rs` via
//! [`crate::simplex::solve_model_traced`]. The solver therefore refuses
//! inexact scalars (the dispatch in [`crate::simplex`] routes `f64` to the
//! dense form unconditionally).

use privmech_linalg::sparse;
use privmech_linalg::sparse::{Csr, SparseVec};
use privmech_linalg::Scalar;

use crate::basis::Basis;
use crate::model::LpError;
use crate::pricing::FallbackState;
use crate::ratio::choose_leaving;
use crate::simplex::{record, ColumnSolution, PivotStats, SolverOptions, TracePhase, TraceSink};
use crate::standard::StandardForm;

/// All constraint data the revised iterations read, fixed for the whole
/// solve: the standard form's CSR store (row view, borrowed) plus its
/// transpose (column view, built once per solve). Artificial columns are
/// never materialized — they are unit vectors synthesized on demand by
/// [`Matrix::col`] / appended last by [`Matrix::row_entries`], matching the
/// historical ordering of the copied sparse views exactly.
struct Matrix<'a, T: Scalar> {
    /// Row-major view: the constraint store itself.
    rows: &'a Csr<T>,
    /// Column-major view: the transpose (entries within a column iterate in
    /// row order, the order the basis replay and FTRAN scatter expect).
    cols: Csr<T>,
    /// Column count including artificials.
    total_cols: usize,
    /// First artificial column index (== structural + slack column count).
    first_artificial: usize,
    /// Row of artificial `k` (column `first_artificial + k`).
    art_rows: Vec<usize>,
    /// Row → its artificial column, `usize::MAX` when the row has none.
    row_art: Vec<usize>,
    /// The artificials' single stored value, borrowed by [`Matrix::col`].
    one: T,
}

impl<'a, T: Scalar> Matrix<'a, T> {
    fn build(sf: &'a StandardForm<T>, artificial_rows: &[usize]) -> Self {
        let first_artificial = sf.num_cols;
        let total_cols = sf.num_cols + artificial_rows.len();
        let mut row_art = vec![usize::MAX; sf.num_rows()];
        for (k, &row) in artificial_rows.iter().enumerate() {
            row_art[row] = first_artificial + k;
        }
        Matrix {
            rows: &sf.matrix,
            cols: sf.matrix.transpose(),
            total_cols,
            first_artificial,
            art_rows: artificial_rows.to_vec(),
            row_art,
            one: T::one(),
        }
    }

    /// Column `j` as a borrowed sparse vector: a transpose row for real
    /// columns, a synthesized unit vector for artificials.
    fn col(&self, j: usize) -> SparseVec<'_, T> {
        if j < self.first_artificial {
            self.cols.row(j)
        } else {
            let k = j - self.first_artificial;
            SparseVec::new(
                std::slice::from_ref(&self.art_rows[k]),
                std::slice::from_ref(&self.one),
            )
        }
    }

    /// Row `r`'s entries in increasing column order, the row's artificial
    /// (largest column index, if any) last.
    fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, &T)> + '_ {
        let art = self.row_art[r];
        self.rows
            .row(r)
            .iter()
            .chain((art != usize::MAX).then_some((art, &self.one)))
    }

    fn is_artificial(&self, col: usize) -> bool {
        col >= self.first_artificial
    }
}

/// Mutable iteration state of one revised solve.
struct State<T: Scalar> {
    file: Basis<T>,
    /// Basic column per position.
    basis: Vec<usize>,
    /// Current basic solution (`x_B`), by position.
    x_b: Vec<T>,
    /// Reduced costs of the current phase, by column.
    d: Vec<T>,
    /// Current phase objective value (read for the phase-1 feasibility
    /// verdict).
    obj_val: T,
    /// Dense scratch, internal-row space: FTRAN results.
    work: Vec<T>,
    /// Dense scratch, internal-row space: BTRAN results.
    rho: Vec<T>,
    /// Dense scratch, column space: the BTRAN'd pivot row.
    row: Vec<T>,
}

impl<T: Scalar> State<T> {
    /// Recover tableau row `position` into `self.row` (sparse sweep of
    /// `ρᵀA`): a unit BTRAN followed by row-major accumulation over the
    /// rows `ρ` actually touches.
    fn compute_pivot_row(&mut self, matrix: &Matrix<'_, T>, position: usize) {
        sparse::clear(&mut self.rho);
        self.file.btran_unit(&mut self.rho, position);
        sparse::clear(&mut self.row);
        for (r, mult) in self.rho.iter().enumerate() {
            if mult.is_exactly_zero() {
                continue;
            }
            for (j, a) in matrix.row_entries(r) {
                self.row[j].add_mul_assign(mult, a);
            }
        }
    }

    /// Execute the pivot at (`position`, `entering`): update `x_B`, the
    /// reduced costs (the dense objective-row recurrence over the BTRAN'd
    /// pivot row — skipped with `update_costs: false` for drive-out pivots,
    /// whose stale phase-1 costs the phase-2 rebuild discards anyway), the
    /// eta file and the basis. `self.work` must hold the entering column's
    /// FTRAN result.
    fn pivot(
        &mut self,
        matrix: &Matrix<'_, T>,
        position: usize,
        entering: usize,
        update_costs: bool,
    ) {
        let pivot_value = self.work[self.file.row_of(position)].clone();
        let theta = self.x_b[position].div_ref(&pivot_value);

        // x_B ← x_B − θ·(pivot column), x_B[position] ← θ; walking the FTRAN
        // result's nonzeros covers exactly the dense form's touched rows.
        for (r, t) in self.work.iter().enumerate() {
            if t.is_exactly_zero() {
                continue;
            }
            let c = self.file.position_of(r);
            if c == position {
                continue;
            }
            if !theta.is_exactly_zero() {
                self.x_b[c].sub_mul_assign(t, &theta);
            }
        }

        // Reduced costs: d_j ← d_j − d_q·(r_j / r_q) over the recovered
        // pivot row — the recurrence the dense form applies to its objective
        // row — plus the objective value's matching update.
        let d_q = self.d[entering].clone();
        if update_costs && !d_q.is_exactly_zero() {
            self.compute_pivot_row(matrix, position);
            for (j, r_j) in self.row.iter().enumerate() {
                if j == entering || r_j.is_exactly_zero() {
                    continue;
                }
                let normalized = r_j.div_ref(&pivot_value);
                self.d[j].sub_mul_assign(&d_q, &normalized);
            }
            self.d[entering] = T::zero();
            self.obj_val.add_mul_assign(&d_q, &theta);
        }

        self.file.push_pivot(position, &self.work);
        self.basis[position] = entering;
        self.x_b[position] = theta;
    }

    /// Refactorize when the trigger fires (pivot-count interval or
    /// factorization growth; see [`Basis::should_refactor`]). A refactorization changes
    /// no observable value — FTRAN/BTRAN results are exact regardless of how
    /// the factorization is composed — so this can run at any point between
    /// pivots.
    fn maybe_refactor(
        &mut self,
        matrix: &Matrix<'_, T>,
        options: &SolverOptions,
    ) -> Result<(), LpError> {
        if self.file.should_refactor(options.refactor_interval) {
            let basis = &self.basis;
            self.file.refactorize(|c| matrix.col(basis[c]))?;
        }
        Ok(())
    }

    /// Run simplex iterations for one phase until optimality or
    /// unboundedness — the revised twin of the dense `Tableau::optimize`,
    /// consuming the same pricing and ratio-test stages.
    fn optimize(
        &mut self,
        matrix: &Matrix<'_, T>,
        banned: &[bool],
        phase1: bool,
        options: &SolverOptions,
        stats: &mut PivotStats,
        trace: &mut TraceSink<'_>,
    ) -> Result<(), LpError> {
        let m = self.file.dim();
        let max_iters = 50_000usize.max(100 * (matrix.total_cols + m));
        let mut pricing = FallbackState::new::<T>(options);

        for _ in 0..max_iters {
            let Some(entering) = pricing.select(&self.d, banned, matrix.total_cols) else {
                return Ok(());
            };
            sparse::clear(&mut self.work);
            self.file.ftran(&mut self.work, matrix.col(entering));
            let bland_mode = pricing.bland_mode();
            let file = &self.file;
            let work = &self.work;
            let x_b = &self.x_b;
            let Some((position, degenerate)) = choose_leaving(
                m,
                &self.basis,
                bland_mode,
                |c| &work[file.row_of(c)],
                |c| &x_b[c],
            ) else {
                return Err(LpError::Unbounded);
            };
            let leaving_col = self.basis[position];
            let pivot_element = self.work[self.file.row_of(position)].to_f64();
            self.pivot(matrix, position, entering, true);
            // Devex reference-weight maintenance (no-op for other rules):
            // `self.row` still holds the raw BTRAN'd pivot row computed by
            // the reduced-cost update, so normalizing by the pivot element
            // yields the same α_rj/α_rq ratios the dense form reads off its
            // normalized row.
            let pivot_row = &self.row;
            pricing.update_devex_weights(entering, leaving_col, pivot_element, |j| {
                pivot_row[j].to_f64() / pivot_element
            });
            record(
                trace,
                if phase1 {
                    TracePhase::Phase1
                } else {
                    TracePhase::Phase2
                },
                entering,
                position,
            );

            if phase1 {
                stats.phase1_pivots += 1;
            } else {
                stats.phase2_pivots += 1;
            }
            pricing.after_pivot(degenerate, stats);
            self.maybe_refactor(matrix, options)?;
        }
        Err(LpError::Internal(
            "simplex iteration limit exceeded".to_string(),
        ))
    }
}

/// Solve a standard-form LP by the revised simplex. Only called for exact
/// scalars (the dispatch in [`crate::simplex`] keeps `f64` on the dense
/// form).
pub(crate) fn solve_revised<T: Scalar>(
    sf: StandardForm<T>,
    options: &SolverOptions,
    stats: &mut PivotStats,
    trace: &mut TraceSink<'_>,
) -> Result<ColumnSolution<T>, LpError> {
    debug_assert!(T::is_exact(), "revised simplex requires exact arithmetic");
    let m = sf.num_rows();

    // Initial basis: slack seeds where available, artificials elsewhere —
    // identical to the dense form. Every seed is a unit column, so the
    // initial basis matrix is the identity and the eta file starts empty.
    let mut artificial_rows: Vec<usize> = Vec::new();
    let mut basis = vec![usize::MAX; m];
    for (i, seed) in sf.slack_basis.iter().enumerate() {
        match seed {
            Some(col) => basis[i] = *col,
            None => {
                basis[i] = sf.num_cols + artificial_rows.len();
                artificial_rows.push(i);
            }
        }
    }
    let matrix = Matrix::build(&sf, &artificial_rows);

    let mut state = State {
        file: Basis::identity(options.factorization, m),
        basis,
        x_b: sf.rhs.clone(),
        d: vec![T::zero(); matrix.total_cols],
        obj_val: T::zero(),
        work: vec![T::zero(); m],
        rho: vec![T::zero(); m],
        row: vec![T::zero(); matrix.total_cols],
    };

    // -------------------------- Phase 1 --------------------------
    if !artificial_rows.is_empty() {
        // Phase-1 reduced costs: c1 = 1 on artificials, minus every
        // artificially-seeded row (B = I, so the basis inverse is trivial
        // here); the phase objective starts at the artificials' total mass.
        for j in matrix.first_artificial..matrix.total_cols {
            state.d[j] = T::one();
        }
        for &i in &artificial_rows {
            for (j, a) in matrix.row_entries(i) {
                state.d[j].sub_assign_ref(a);
            }
            state.obj_val.add_assign_ref(&sf.rhs[i]);
        }

        let banned = vec![false; matrix.total_cols];
        state.optimize(&matrix, &banned, true, options, stats, trace)?;

        if state.obj_val.is_positive_approx() {
            return Err(LpError::Infeasible);
        }

        // Drive any remaining artificial variables out of the basis: for
        // each position still holding an artificial, recover its tableau row
        // and pivot on the first non-artificial column with a nonzero entry
        // (the dense form's scan order). These cleanup pivots move no mass
        // (the artificial sits at value zero) and are not counted in the
        // stats — exactly like the dense form.
        for position in 0..m {
            if !matrix.is_artificial(state.basis[position]) {
                continue;
            }
            state.compute_pivot_row(&matrix, position);
            let replacement = (0..sf.num_cols).find(|&j| !state.row[j].is_zero_approx());
            if let Some(col) = replacement {
                sparse::clear(&mut state.work);
                state.file.ftran(&mut state.work, matrix.col(col));
                state.pivot(&matrix, position, col, false);
                record(trace, TracePhase::DriveOut, col, position);
            }
            // A row with no replacement is redundant; the artificial stays
            // basic at value zero, banned from re-entering in phase 2.
        }
    }

    // -------------------------- Phase 2 --------------------------
    // Reduced costs of the real objective from one dense BTRAN:
    // d = c − (c_Bᵀ B⁻¹) A, artificial columns banned from entering.
    let mut costs_full = sf.costs.clone();
    costs_full.resize(matrix.total_cols, T::zero());
    let cb: Vec<T> = state.basis.iter().map(|&b| costs_full[b].clone()).collect();
    sparse::clear(&mut state.rho);
    state.file.btran_dense(&mut state.rho, &cb);
    for (j, d_j) in state.d.iter_mut().enumerate() {
        *d_j = costs_full[j].clone();
        let y_a = matrix.col(j).dot(&state.rho);
        d_j.sub_assign_ref(&y_a);
    }
    // Basic columns price to exactly zero by construction.
    for &b in &state.basis {
        state.d[b] = T::zero();
    }
    state.obj_val = T::zero();
    for (c, &b) in state.basis.iter().enumerate() {
        state.obj_val.add_mul_assign(&costs_full[b], &state.x_b[c]);
    }

    let banned: Vec<bool> = (0..matrix.total_cols)
        .map(|j| matrix.is_artificial(j))
        .collect();
    state.optimize(&matrix, &banned, false, options, stats, trace)?;

    // ----------------------- Extract solution -----------------------
    let mut column_values = vec![T::zero(); matrix.total_cols];
    for (c, &b) in state.basis.iter().enumerate() {
        column_values[b] = state.x_b[c].clone();
    }
    let total_cols = matrix.total_cols;
    Ok(ColumnSolution {
        sf,
        column_values,
        total_cols,
        basis: state.basis,
    })
}

/// Phase 2 only, from a caller-supplied primal-feasible basis: the primal
/// half of the cross-parameter warm start ([`crate::dual_simplex`]).
///
/// `basis` must contain no artificial columns and factor nonsingularly (the
/// warm-start driver has already verified both), and `B⁻¹b ≥ 0` must hold —
/// then the ordinary phase-2 iterations converge from it without any
/// phase 1. Like every warm-started path this generally follows a different
/// pivot sequence than a cold solve, so the caller certificate-verifies the
/// result.
pub(crate) fn reoptimize_primal<T: Scalar>(
    sf: StandardForm<T>,
    basis: Vec<usize>,
    options: &SolverOptions,
    stats: &mut PivotStats,
) -> Result<ColumnSolution<T>, LpError> {
    debug_assert!(T::is_exact(), "revised simplex requires exact arithmetic");
    let m = sf.num_rows();
    debug_assert!(basis.iter().all(|&b| b < sf.num_cols));
    let matrix = Matrix::build(&sf, &[]);

    let mut state = State {
        file: Basis::identity(options.factorization, m),
        basis,
        x_b: vec![T::zero(); m],
        d: vec![T::zero(); matrix.total_cols],
        obj_val: T::zero(),
        work: vec![T::zero(); m],
        rho: vec![T::zero(); m],
        row: vec![T::zero(); matrix.total_cols],
    };
    {
        let basis = &state.basis;
        state.file.refactorize(|c| matrix.col(basis[c]))?;
    }

    // x_B = B⁻¹b, read per position through the factorization's row map.
    let mut rhs_idx: Vec<usize> = Vec::new();
    let mut rhs_val: Vec<T> = Vec::new();
    for (i, v) in sf.rhs.iter().enumerate() {
        if !v.is_exactly_zero() {
            rhs_idx.push(i);
            rhs_val.push(v.clone());
        }
    }
    state
        .file
        .ftran(&mut state.work, SparseVec::new(&rhs_idx, &rhs_val));
    for c in 0..m {
        state.x_b[c] = state.work[state.file.row_of(c)].clone();
    }

    // Reduced costs and objective — the phase-2 rebuild of `solve_revised`,
    // with no artificial columns to ban.
    let cb: Vec<T> = state.basis.iter().map(|&b| sf.costs[b].clone()).collect();
    sparse::clear(&mut state.rho);
    state.file.btran_dense(&mut state.rho, &cb);
    for (j, d_j) in state.d.iter_mut().enumerate() {
        *d_j = sf.costs[j].clone();
        let y_a = matrix.col(j).dot(&state.rho);
        d_j.sub_assign_ref(&y_a);
    }
    for &b in &state.basis {
        state.d[b] = T::zero();
    }
    for (c, &b) in state.basis.iter().enumerate() {
        state.obj_val.add_mul_assign(&sf.costs[b], &state.x_b[c]);
    }

    let banned = vec![false; matrix.total_cols];
    state.optimize(&matrix, &banned, false, options, stats, &mut None)?;

    let mut column_values = vec![T::zero(); matrix.total_cols];
    for (c, &b) in state.basis.iter().enumerate() {
        column_values[b] = state.x_b[c].clone();
    }
    let total_cols = matrix.total_cols;
    Ok(ColumnSolution {
        sf,
        column_values,
        total_cols,
        basis: state.basis,
    })
}
