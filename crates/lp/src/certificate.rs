//! Exact optimality certificates: the solution-level tier of the solver's
//! two-tier correctness contract.
//!
//! The default configuration is covered by the *pivot-identity* tier: dense
//! and revised forms provably follow the same pivot sequence, so their
//! results are bit-identical and one property suite covers both. A
//! non-default pricing rule (devex) or a dual-simplex warm start changes the
//! pivot sequence — possibly even the optimal vertex reached — so pivot
//! identity cannot certify it. This module provides the stronger,
//! representation-independent check those paths use instead: a complete
//! **weak-duality optimality proof** of the returned solution, evaluated in
//! the solver's own (exact, for `Rational`) arithmetic.
//!
//! For the standard form `min cᵀx  s.t.  Ax = b, x ≥ 0` a pair `(x, y)`
//! proves optimality iff
//!
//! 1. **primal feasibility**: `Ax = b` and `x ≥ 0`,
//! 2. **dual feasibility**: the reduced costs `d = c − Aᵀy` satisfy `d ≥ 0`,
//! 3. **complementary slackness**: `d_j · x_j = 0` for every column,
//!
//! because then `cᵀx = (d + Aᵀy)ᵀx = dᵀx + yᵀ(Ax) = yᵀb`, and for any
//! feasible `x'`, `cᵀx' = dᵀx' + yᵀb ≥ yᵀb = cᵀx`. The checker
//! ([`check_certificate`]) verifies all three conditions plus the objective
//! equality directly from the constraint data — it shares no state with the
//! solve being audited. The duals are recovered from the final basis by an
//! independent LU factorization (`yᵀ = c_BᵀB⁻¹`, one BTRAN), so a corrupted
//! basis, a wrong factorization update, or a premature optimality stop all
//! surface here.
//!
//! On exact scalars a passing certificate is a *proof*; on `f64` the same
//! conditions are checked under the scalar tolerance and form a strong
//! consistency test rather than a proof.

use privmech_linalg::sparse::SparseVec;
use privmech_linalg::Scalar;

use crate::lu::LuFactors;
use crate::model::LpError;
use crate::simplex::ColumnSolution;

/// Which optimality condition a certificate check found violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// `(Ax)_i ≠ b_i` for the reported row.
    PrimalRow(usize),
    /// `x_j < 0` for the reported column.
    NegativeVariable(usize),
    /// `d_j < 0` for the reported column (dual infeasibility: a better
    /// solution still exists).
    DualColumn(usize),
    /// `d_j · x_j ≠ 0` for the reported column (a basic variable with a
    /// nonzero reduced cost).
    Slackness(usize),
    /// `cᵀx ≠ yᵀb` (primal and dual objectives disagree).
    ObjectiveGap,
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::PrimalRow(i) => write!(f, "primal infeasibility in row {i}"),
            CertificateError::NegativeVariable(j) => write!(f, "negative variable in column {j}"),
            CertificateError::DualColumn(j) => write!(f, "dual infeasibility in column {j}"),
            CertificateError::Slackness(j) => {
                write!(f, "complementary slackness violated in column {j}")
            }
            CertificateError::ObjectiveGap => write!(f, "primal and dual objectives disagree"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// A verified optimality proof: the audited duals and reduced costs, plus
/// the common objective value. Returned by [`check_certificate`] so callers
/// can report or further cross-check the dual side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalityCertificate<T: Scalar> {
    /// Dual values, one per constraint row.
    pub duals: Vec<T>,
    /// Reduced costs `c − Aᵀy`, one per column, all non-negative.
    pub reduced_costs: Vec<T>,
    /// The certified optimal objective `cᵀx = yᵀb`.
    pub objective: T,
}

/// Verify that `(x, y)` proves optimality of `x` for
/// `min cᵀx  s.t.  Ax = b, x ≥ 0` (see the module docs for the conditions).
///
/// `rows` is the sparse row-major constraint matrix: `rows[i]` lists the
/// exactly-nonzero `(column, value)` pairs of row `i`. Sign and equality
/// tests use the scalar's approx predicates, so the check is exact for
/// `Rational` and tolerance-based for `f64`.
///
/// # Errors
/// Returns the first violated condition as a [`CertificateError`].
pub fn check_certificate<T: Scalar>(
    rows: &[Vec<(usize, T)>],
    rhs: &[T],
    costs: &[T],
    x: &[T],
    y: &[T],
) -> Result<OptimalityCertificate<T>, CertificateError> {
    // 1a. x ≥ 0.
    for (j, v) in x.iter().enumerate() {
        if v.is_negative_approx() {
            return Err(CertificateError::NegativeVariable(j));
        }
    }
    // 1b. Ax = b.
    for (i, row) in rows.iter().enumerate() {
        let mut ax = T::zero();
        for (j, a) in row {
            ax.add_mul_assign(a, &x[*j]);
        }
        ax.sub_assign_ref(&rhs[i]);
        if !ax.is_zero_approx() {
            return Err(CertificateError::PrimalRow(i));
        }
    }
    // d = c − Aᵀy via one pass over the sparse rows.
    let mut reduced: Vec<T> = costs.to_vec();
    for (i, row) in rows.iter().enumerate() {
        if y[i].is_exactly_zero() {
            continue;
        }
        for (j, a) in row {
            reduced[*j].sub_mul_assign(&y[i], a);
        }
    }
    // 2 + 3. d ≥ 0 and d_j·x_j = 0.
    for (j, d) in reduced.iter().enumerate() {
        if d.is_negative_approx() {
            return Err(CertificateError::DualColumn(j));
        }
        if !d.is_zero_approx() && !x[j].is_zero_approx() {
            return Err(CertificateError::Slackness(j));
        }
    }
    // 4. cᵀx = yᵀb (implied by 1–3 in exact arithmetic; kept as a cheap
    // final consistency check, and a real condition under f64 tolerances).
    let mut primal = T::zero();
    for (c, v) in costs.iter().zip(x) {
        primal.add_mul_assign(c, v);
    }
    let mut dual = T::zero();
    for (yi, bi) in y.iter().zip(rhs) {
        dual.add_mul_assign(yi, bi);
    }
    if !primal.approx_eq(&dual) {
        return Err(CertificateError::ObjectiveGap);
    }
    Ok(OptimalityCertificate {
        duals: y.to_vec(),
        reduced_costs: reduced,
        objective: primal,
    })
}

/// Audit a finished solve: recover the duals from its final basis by an
/// independent LU factorization and run [`check_certificate`] against the
/// standard-form data.
///
/// Artificial columns (basis entries `>= sf.num_cols`) are parked at value
/// zero on redundant rows; their basis column is the unit vector of their
/// position. They carry zero cost in phase 2, so they only influence the
/// solution through the duals recovered here — exactly as in the solver.
///
/// # Errors
/// [`LpError::Internal`] when the basis is singular or a certificate
/// condition fails (both indicate a solver bug, never bad user input).
pub(crate) fn certify_column_solution<T: Scalar>(sol: &ColumnSolution<T>) -> Result<(), LpError> {
    let sf = &sol.sf;
    let m = sf.num_rows();
    if m == 0 {
        return Ok(());
    }
    let cols = sf.matrix.transpose();
    let basis_cols: Vec<(Vec<usize>, Vec<T>)> = sol
        .basis
        .iter()
        .enumerate()
        .map(|(position, &b)| {
            if b < sf.num_cols {
                let col = cols.row(b);
                (col.indices().to_vec(), col.values().to_vec())
            } else {
                (vec![position], vec![T::one()])
            }
        })
        .collect();
    let mut lu: LuFactors<T> = LuFactors::identity(m);
    lu.refactorize(|c| SparseVec::new(&basis_cols[c].0, &basis_cols[c].1))?;

    // yᵀ = c_Bᵀ B⁻¹ — artificials cost zero, like the phase-2 objective.
    let cb: Vec<T> = sol
        .basis
        .iter()
        .map(|&b| {
            if b < sf.num_cols {
                sf.costs[b].clone()
            } else {
                T::zero()
            }
        })
        .collect();
    let mut y = vec![T::zero(); m];
    lu.btran_dense(&mut y, &cb);

    check_certificate(
        &sf.sparse_rows(),
        &sf.rhs,
        &sf.costs,
        &sol.column_values[..sf.num_cols],
        &y,
    )
    .map(|_| ())
    .map_err(|e| LpError::Internal(format!("optimality certificate failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    /// Sparse rows from a dense row-major matrix.
    fn rows(dense: &[&[i64]]) -> Vec<Vec<(usize, Rational)>> {
        dense
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, v)| **v != 0)
                    .map(|(j, v)| (j, rat(*v, 1)))
                    .collect()
            })
            .collect()
    }

    fn rats(v: &[(i64, i64)]) -> Vec<Rational> {
        v.iter().map(|&(n, d)| rat(n, d)).collect()
    }

    /// (A, b, c, x, y) in the sparse-row layout `check_certificate` takes.
    type LpInstance = (
        Vec<Vec<(usize, Rational)>>,
        Vec<Rational>,
        Vec<Rational>,
        Vec<Rational>,
        Vec<Rational>,
    );

    /// min −3x − 5y  s.t.  x + s1 = 4, 2y + s2 = 12, 3x + 2y + s3 = 18
    /// (the classic Dantzig example in equality form). Optimum −36 at
    /// x = 2, y = 6, s1 = 2; duals y = (0, −3/2, −1).
    fn dantzig_example() -> LpInstance {
        let a = rows(&[&[1, 0, 1, 0, 0], &[0, 2, 0, 1, 0], &[3, 2, 0, 0, 1]]);
        let b = rats(&[(4, 1), (12, 1), (18, 1)]);
        let c = rats(&[(-3, 1), (-5, 1), (0, 1), (0, 1), (0, 1)]);
        let x = rats(&[(2, 1), (6, 1), (2, 1), (0, 1), (0, 1)]);
        let y = rats(&[(0, 1), (-3, 2), (-1, 1)]);
        (a, b, c, x, y)
    }

    #[test]
    fn accepts_a_true_optimum_with_its_duals() {
        let (a, b, c, x, y) = dantzig_example();
        let cert = check_certificate(&a, &b, &c, &x, &y).unwrap();
        assert_eq!(cert.objective, rat(-36, 1));
        assert_eq!(cert.duals, y);
        // Reduced costs of the basic columns (x, y, s1) are exactly zero.
        assert_eq!(cert.reduced_costs[0], Rational::zero());
        assert_eq!(cert.reduced_costs[1], Rational::zero());
        assert_eq!(cert.reduced_costs[2], Rational::zero());
        // Nonbasic s2, s3 price to −y_2 and −y_3.
        assert_eq!(cert.reduced_costs[3], rat(3, 2));
        assert_eq!(cert.reduced_costs[4], rat(1, 1));
    }

    #[test]
    fn rejects_a_perturbed_dual_impostor() {
        let (a, b, c, x, mut y) = dantzig_example();
        y[1] = rat(-2, 1); // overstated dual
        let err = check_certificate(&a, &b, &c, &x, &y).unwrap_err();
        // The corrupted dual either prices a column negative, leaves a basic
        // column with a nonzero reduced cost, or breaks the objective
        // equality — any of those catches the impostor.
        assert!(
            matches!(
                err,
                CertificateError::DualColumn(_)
                    | CertificateError::Slackness(_)
                    | CertificateError::ObjectiveGap
            ),
            "unexpected verdict: {err}"
        );
    }

    #[test]
    fn rejects_a_perturbed_primal_impostor() {
        let (a, b, c, mut x, y) = dantzig_example();
        // Feasibility violation: move mass off the optimal vertex.
        x[0] = rat(3, 1);
        assert_eq!(
            check_certificate(&a, &b, &c, &x, &y).unwrap_err(),
            CertificateError::PrimalRow(0)
        );
        // Suboptimal *feasible* point: x = 4, y = 3, s2 = 6 (objective −27).
        let x_sub = rats(&[(4, 1), (3, 1), (0, 1), (6, 1), (0, 1)]);
        let err = check_certificate(&a, &b, &c, &x_sub, &y).unwrap_err();
        assert!(
            matches!(
                err,
                CertificateError::Slackness(_) | CertificateError::ObjectiveGap
            ),
            "unexpected verdict: {err}"
        );
    }

    #[test]
    fn rejects_negative_variables() {
        let (a, b, c, mut x, y) = dantzig_example();
        x[3] = rat(-1, 1);
        assert_eq!(
            check_certificate(&a, &b, &c, &x, &y).unwrap_err(),
            CertificateError::NegativeVariable(3)
        );
    }

    /// Beale's classic cycling LP — heavily degenerate, so the optimal basis
    /// carries basic variables at value zero and complementary slackness
    /// holds non-trivially:
    ///
    /// ```text
    /// min  −3/4·a + 150b − 1/50·c + 6d
    /// s.t.  1/4·a −  60b − 1/25·c + 9d + s1 = 0
    ///       1/2·a −  90b − 1/50·c + 3d + s2 = 0
    ///                          c      + s3 = 1
    /// ```
    ///
    /// Optimal basis {a, c, s1}: from rows 2 and 3, a = 1/25 and c = 1, then
    /// row 1 gives s1 = 3/100; objective −1/20. Duals solve c_B = B ᵀy:
    /// y = (0, −3/2, −1/20).
    #[test]
    fn accepts_the_degenerate_beale_optimum_and_rejects_its_impostor() {
        // Equality form with slacks s1, s2, s3 (columns 4, 5, 6).
        let a = vec![
            vec![
                (0, rat(1, 4)),
                (1, rat(-60, 1)),
                (2, rat(-1, 25)),
                (3, rat(9, 1)),
                (4, rat(1, 1)),
            ],
            vec![
                (0, rat(1, 2)),
                (1, rat(-90, 1)),
                (2, rat(-1, 50)),
                (3, rat(3, 1)),
                (5, rat(1, 1)),
            ],
            vec![(2, rat(1, 1)), (6, rat(1, 1))],
        ];
        let b = rats(&[(0, 1), (0, 1), (1, 1)]);
        let c = rats(&[(-3, 4), (150, 1), (-1, 50), (6, 1), (0, 1), (0, 1), (0, 1)]);
        let x = rats(&[(1, 25), (0, 1), (1, 1), (0, 1), (3, 100), (0, 1), (0, 1)]);
        let y = rats(&[(0, 1), (-3, 2), (-1, 20)]);
        let cert = check_certificate(&a, &b, &c, &x, &y).unwrap();
        // Degenerate optimum: objective −3/4·1/25 − 1/50 = −3/100 − 2/100.
        assert_eq!(cert.objective, rat(-1, 20));

        // Impostor: claim the same duals prove a point that parks mass on
        // the expensive column b.
        let x_bad = rats(&[(1, 25), (1, 100), (1, 1), (0, 1), (3, 100), (0, 1), (0, 1)]);
        assert!(check_certificate(&a, &b, &c, &x_bad, &y).is_err());
    }
}
