//! Parameterized model reuse: solve one LP structure at many parameter values.
//!
//! The paper's linear programs come in α-indexed families whose *structure*
//! (variables, constraint shapes, objective) does not depend on the privacy
//! level — only some coefficients do. The Section 2.5 tailored-mechanism LP
//! has `2·n·(n+1)` differential-privacy rows whose only α-dependent entry is
//! the `-α` coefficient; the Section 2.4.3 interaction LP keeps its row-sum
//! rows and objective fixed while its epigraph rows change with the deployed
//! mechanism `G_{n,α}`.
//!
//! Rebuilding such a model from scratch for every α re-runs every allocation
//! and coefficient computation of model construction. [`ModelTemplate`]
//! instead builds the model **once**, records which coefficients are
//! parameterized, and rewrites only those slots per solve — either in place
//! ([`ModelTemplate::set_parameter`], for sequential sweeps) or into a fresh
//! clone ([`ModelTemplate::instantiate`], for solving across threads).
//!
//! Equivalence guarantee relied on by the engine layer: a reparameterized
//! model and a freshly built model for the same parameter value produce the
//! same dense standard-form tableau (a retained term whose coefficient is set
//! to zero contributes exactly zero), hence the same pivot sequence and a
//! bit-identical [`Solution`] for exact scalars.

use privmech_linalg::Scalar;

use crate::model::{CoeffSlot, LpError, Model, Solution, Var};
use crate::simplex::SolverOptions;

/// A model plus the set of coefficient slots that scale with one scalar
/// parameter θ: each bound slot holds `scale · θ`.
///
/// The tailored-mechanism LP binds every differential-privacy row's second
/// term with `scale = -1`, so `set_parameter(α)` rewrites all `-α`
/// coefficients in one pass without touching the α-independent rows.
#[derive(Debug, Clone)]
pub struct ModelTemplate<T: Scalar> {
    model: Model<T>,
    slots: Vec<(CoeffSlot, T)>,
}

/// Write `scale · value` into each registered slot of `model` (the single
/// code path behind both in-place re-parameterization and instantiation).
fn write_slots<T: Scalar>(model: &mut Model<T>, slots: &[(CoeffSlot, T)], value: &T) {
    for (slot, scale) in slots {
        model.set_coeff(*slot, scale.mul_ref(value));
    }
}

impl<T: Scalar> ModelTemplate<T> {
    /// Wrap a fully built model whose parameterized slots will be registered
    /// with [`ModelTemplate::bind_scaled`].
    #[must_use]
    pub fn new(model: Model<T>) -> Self {
        ModelTemplate {
            model,
            slots: Vec::new(),
        }
    }

    /// Register the coefficient of `var` in constraint `constraint` as
    /// parameterized: every [`ModelTemplate::set_parameter`] call writes
    /// `scale · θ` into it.
    ///
    /// The term must exist (build the template with a nonzero placeholder
    /// coefficient so [`crate::model::LinExpr::add_term`]'s zero-dropping cannot remove it).
    pub fn bind_scaled(&mut self, constraint: usize, var: Var, scale: T) -> Result<(), LpError> {
        let slot = self.model.find_coeff_slot(constraint, var).ok_or_else(|| {
            LpError::Internal(format!(
                "cannot bind parameter slot: constraint #{constraint} has no term for \
                     variable #{}",
                var.index()
            ))
        })?;
        self.slots.push((slot, scale));
        Ok(())
    }

    /// Number of registered parameter slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The underlying model at its current parameter value.
    #[must_use]
    pub fn model(&self) -> &Model<T> {
        &self.model
    }

    /// Write `scale · value` into every bound slot, in place.
    pub fn set_parameter(&mut self, value: &T) {
        write_slots(&mut self.model, &self.slots, value);
    }

    /// A standalone model at the given parameter value (for handing one model
    /// per worker thread in a parallel sweep).
    #[must_use]
    pub fn instantiate(&self, value: &T) -> Model<T> {
        let mut model = self.model.clone();
        write_slots(&mut model, &self.slots, value);
        model
    }

    /// Set the parameter and solve with the given options.
    pub fn solve_at(&mut self, value: &T, options: &SolverOptions) -> Result<Solution<T>, LpError> {
        self.set_parameter(value);
        self.model.solve_with(options)
    }
}

/// Cross-parameter warm-start state for a sequential sweep: carries the
/// final basis of each solve into the next one.
///
/// When [`SolverOptions::warm_start`](crate::SolverOptions) is
/// [`WarmStartMode::DualSimplex`](crate::WarmStartMode), each
/// [`WarmSweepHandle::solve_at`] after the first reoptimizes from the
/// previous parameter's optimal basis — dual simplex when that basis is
/// still dual feasible, primal phase 2 when it is still primal feasible, a
/// cold solve otherwise (the `dual_simplex` module documents the
/// iteration). Warm-started solves are verified against the
/// exact optimality certificate, so they agree with cold solves at the
/// solution level: same objective, and the same solution values unless the
/// optimum is degenerate (then possibly a different optimal vertex). With
/// warm starts off the handle degrades to [`ModelTemplate::solve_at`]
/// exactly.
///
/// The handle holds no scalar data, only column indices — it can outlive
/// any particular template instance, but must only be reused across
/// *same-structure* models (the driver falls back to a cold solve on any
/// shape mismatch, so a stale handle costs performance, never correctness).
#[derive(Debug, Clone, Default)]
pub struct WarmSweepHandle {
    basis: Option<Vec<usize>>,
    warm_solves: usize,
    total_solves: usize,
}

impl WarmSweepHandle {
    /// A fresh handle; the first solve through it is always cold.
    #[must_use]
    pub fn new() -> Self {
        WarmSweepHandle::default()
    }

    /// Set `template`'s parameter and solve, reusing the previous solve's
    /// basis when warm starts are enabled in `options`.
    pub fn solve_at<T: Scalar>(
        &mut self,
        template: &mut ModelTemplate<T>,
        value: &T,
        options: &SolverOptions,
    ) -> Result<Solution<T>, LpError> {
        template.set_parameter(value);
        let (solution, basis, warm_used) =
            crate::simplex::solve_warm(&template.model, self.basis.as_deref(), options, None)?;
        self.total_solves += 1;
        if warm_used {
            self.warm_solves += 1;
        }
        if !basis.is_empty() {
            self.basis = Some(basis);
        }
        Ok(solution)
    }

    /// Solves that reused the previous basis (never more than
    /// [`WarmSweepHandle::total_solves`] − 1; the first solve is cold).
    #[must_use]
    pub fn warm_solves(&self) -> usize {
        self.warm_solves
    }

    /// Total solves performed through this handle.
    #[must_use]
    pub fn total_solves(&self) -> usize {
        self.total_solves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Relation, Sense, VarBound};
    use privmech_numerics::{rat, Rational};

    /// min x + y  s.t.  x >= θ, x + y >= 2, with θ swept over several values.
    fn theta_template() -> (ModelTemplate<Rational>, Var, Var) {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        // Build with a placeholder coefficient 1 on the parameterized term.
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Ge,
            rat(2, 1),
        )
        .unwrap();
        // x - θ·y >= 0, parameterized at the θ slot (scale -1).
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(-1, 1)),
            Relation::Ge,
            rat(0, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(2, 1)).plus(y, rat(1, 1)),
        )
        .unwrap();
        let mut t = ModelTemplate::new(m);
        t.bind_scaled(1, y, rat(-1, 1)).unwrap();
        assert_eq!(t.num_slots(), 1);
        (t, x, y)
    }

    #[test]
    fn reparameterized_solves_match_fresh_builds() {
        let (mut template, x, y) = theta_template();
        let options = SolverOptions::default();
        for (num, den) in [(1i64, 2i64), (1, 3), (1, 1), (0, 1), (3, 4)] {
            let theta = rat(num, den);
            let warm = template.solve_at(&theta, &options).unwrap();
            // Fresh build at the same θ.
            let mut fresh: Model<Rational> = Model::new();
            let fx = fresh.add_var("x", VarBound::NonNegative);
            let fy = fresh.add_var("y", VarBound::NonNegative);
            fresh
                .add_constraint(
                    LinExpr::term(fx, rat(1, 1)).plus(fy, rat(1, 1)),
                    Relation::Ge,
                    rat(2, 1),
                )
                .unwrap();
            fresh
                .add_constraint(
                    LinExpr::term(fx, rat(1, 1)).plus(fy, -theta.clone()),
                    Relation::Ge,
                    rat(0, 1),
                )
                .unwrap();
            fresh
                .set_objective(
                    Sense::Minimize,
                    LinExpr::term(fx, rat(2, 1)).plus(fy, rat(1, 1)),
                )
                .unwrap();
            let cold = fresh.solve_with(&options).unwrap();
            assert_eq!(warm.objective, cold.objective, "theta = {theta}");
            assert_eq!(warm.value(x), cold.value(fx), "theta = {theta}");
            assert_eq!(warm.value(y), cold.value(fy), "theta = {theta}");
            // Identical models must take identical pivot paths.
            assert_eq!(warm.stats, cold.stats, "theta = {theta}");
        }
    }

    #[test]
    fn instantiate_matches_in_place_reparameterization() {
        let (mut template, x, _) = theta_template();
        let options = SolverOptions::default();
        let theta = rat(2, 3);
        let standalone = template.instantiate(&theta);
        let warm = template.solve_at(&theta, &options).unwrap();
        let cloned = standalone.solve_with(&options).unwrap();
        assert_eq!(warm, cloned);
        assert_eq!(warm.value(x), cloned.value(x));
    }

    #[test]
    fn warm_sweep_matches_cold_solves_at_every_theta() {
        use crate::simplex::WarmStartMode;
        let (mut template, x, y) = theta_template();
        let options = SolverOptions {
            warm_start: WarmStartMode::DualSimplex,
            ..SolverOptions::default()
        };
        let cold_options = SolverOptions::default();
        let mut handle = WarmSweepHandle::new();
        let thetas = [(0i64, 1i64), (1, 4), (1, 2), (3, 4), (1, 1), (1, 2), (1, 8)];
        for (num, den) in thetas {
            let theta = rat(num, den);
            let warm = handle.solve_at(&mut template, &theta, &options).unwrap();
            let cold = template
                .instantiate(&theta)
                .solve_with(&cold_options)
                .unwrap();
            // This model's optimum is unique at every swept θ, so warm and
            // cold must agree on the values too, not just the objective.
            assert_eq!(warm.objective, cold.objective, "theta = {theta}");
            assert_eq!(warm.value(x), cold.value(x), "theta = {theta}");
            assert_eq!(warm.value(y), cold.value(y), "theta = {theta}");
        }
        assert_eq!(handle.total_solves(), thetas.len());
        assert!(
            handle.warm_solves() > 0,
            "at least one θ step should reuse the previous basis"
        );
        // With warm starts disabled the handle is a plain solve_at.
        let mut off = WarmSweepHandle::new();
        let sol = off
            .solve_at(&mut template, &rat(1, 2), &cold_options)
            .unwrap();
        assert_eq!(
            sol,
            template
                .instantiate(&rat(1, 2))
                .solve_with(&cold_options)
                .unwrap()
        );
        assert_eq!(off.warm_solves(), 0);
    }

    #[test]
    fn binding_a_dropped_term_is_an_error() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        // y's coefficient is zero at build time, so the term is dropped.
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, Rational::zero()),
            Relation::Ge,
            rat(1, 1),
        )
        .unwrap();
        let mut t = ModelTemplate::new(m);
        assert!(t.bind_scaled(0, y, rat(-1, 1)).is_err());
        assert!(t.bind_scaled(7, x, rat(-1, 1)).is_err());
    }

    #[test]
    fn replace_constraint_expr_swaps_rows() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(4, 1))
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, rat(1, 1)))
            .unwrap();
        assert_eq!(m.solve().unwrap().objective, rat(4, 1));
        // Tighten the row: 2x <= 4.
        m.replace_constraint_expr(0, LinExpr::term(x, rat(2, 1)))
            .unwrap();
        assert_eq!(m.solve().unwrap().objective, rat(2, 1));
        // Out-of-range indices and foreign variables are rejected.
        assert!(m
            .replace_constraint_expr(3, LinExpr::term(x, rat(1, 1)))
            .is_err());
        assert!(m
            .replace_constraint_expr(0, LinExpr::term(Var(9), rat(1, 1)))
            .is_err());
    }

    #[test]
    fn find_coeff_slot_and_set_coeff() {
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0).plus(y, 2.0), Relation::Le, 3.0)
            .unwrap();
        assert!(m.find_coeff_slot(0, y).is_some());
        assert!(m.find_coeff_slot(1, y).is_none());
        let slot = m.find_coeff_slot(0, y).unwrap();
        m.set_coeff(slot, 5.0);
        m.set_objective(Sense::Maximize, LinExpr::term(y, 1.0))
            .unwrap();
        // y now limited by 5y <= 3.
        let sol = m.solve().unwrap();
        assert!((sol.objective - 0.6).abs() < 1e-9);
    }
}
