//! Cross-parameter warm starts: reoptimize from a previous solve's basis.
//!
//! An α-sweep solves the same LP structure at many parameter values; only
//! the `-α` coefficients of the differential-privacy rows change between
//! solves ([`crate::template`]). The cold path rebuilds feasibility from
//! scratch every time — phase 1, drive-out, phase 2. But the optimal basis
//! of the previous α is usually an excellent starting point for the next:
//! re-evaluated against the new coefficients it is often still *dual
//! feasible* (all reduced costs non-negative), in which case the **dual
//! simplex** restores primal feasibility in a handful of pivots; failing
//! that it is often still *primal feasible*, in which case phase 2 of the
//! ordinary (primal) revised simplex finishes the job with no phase 1 at
//! all. Only when the old basis is neither — or is singular under the new
//! coefficients — does the driver fall back to a cold solve.
//!
//! # The dual simplex iteration
//!
//! Standard form `min cᵀx, Ax = b, x ≥ 0` with basis `B`, maintained
//! invariant `d = c − AᵀB⁻ᵀc_B ≥ 0` (dual feasibility):
//!
//! 1. **Leaving row**: pick a position `r` with `x_B[r] < 0` (none → the
//!    basis is primal feasible too, hence optimal).
//! 2. **Pivot row**: recover `α_r = (B⁻¹A)_r` by a unit BTRAN plus a sparse
//!    row sweep — the same kernel the primal revised iteration uses.
//! 3. **Entering column**: among `j` with `α_rj < 0`, minimize the ratio
//!    `d_j / (−α_rj)` (none → the row proves `Ax = b, x ≥ 0` unsatisfiable:
//!    the LP is infeasible). The min-ratio choice is exactly what keeps
//!    `d ≥ 0` through the update.
//! 4. **Pivot**: identical algebra to the primal pivot — FTRAN the entering
//!    column, update `x_B` and `d` by the shared recurrences, append the
//!    basis-change to the factorization.
//!
//! Anti-cycling mirrors the primal solver's policy: a streak of degenerate
//! pivots (`d_q = 0`, objective unchanged) beyond
//! [`SolverOptions::degeneracy_streak_limit`] switches both selection rules
//! to Bland-style smallest-index choices, which terminate finitely; a
//! strictly improving pivot switches back.
//!
//! # Contract
//!
//! A warm-started solve generally follows a different pivot path than a
//! cold solve and, on a degenerate optimum, may return a *different optimal
//! vertex* — so warm starts are covered by the solution-level tier of the
//! solver contract, never the pivot-identity tier: every warm result is
//! verified against the exact optimality certificate
//! ([`crate::certificate`]) before it is released, and
//! [`crate::simplex::SolverOptions::warm_start`] defaults to off.

use privmech_linalg::sparse;
use privmech_linalg::sparse::SparseVec;
use privmech_linalg::Scalar;

use crate::basis::Basis;
use crate::model::LpError;
use crate::simplex::{ColumnSolution, PivotStats, SolverOptions};
use crate::standard::StandardForm;

/// Result of a warm-start attempt.
pub(crate) enum WarmOutcome<T: Scalar> {
    /// The warm basis led to a certified optimum.
    Solved(ColumnSolution<T>),
    /// The warm basis was unusable (wrong shape, singular, or neither primal
    /// nor dual feasible); the standard form is handed back for a cold solve.
    Fallback(StandardForm<T>),
}

/// Try to reoptimize `sf` starting from `warm_basis`, a final basis returned
/// by a previous solve of a same-structure standard form.
///
/// Dispatches on what the old basis still is under the new coefficients:
/// dual feasible → dual simplex; primal feasible → primal phase 2
/// ([`crate::revised::reoptimize_primal`]); neither → [`WarmOutcome::Fallback`].
/// Successful outcomes are certificate-verified before release.
pub(crate) fn warm_reoptimize<T: Scalar>(
    sf: StandardForm<T>,
    warm_basis: &[usize],
    options: &SolverOptions,
    stats: &mut PivotStats,
) -> Result<WarmOutcome<T>, LpError> {
    let m = sf.num_rows();
    // Reject shapes the driver cannot reuse: dimension mismatch, duplicate
    // entries, or artificial columns (their unit-column trick is tied to the
    // *previous* form's redundant rows; a cold solve re-derives them).
    if warm_basis.len() != m || warm_basis.iter().any(|&b| b >= sf.num_cols) {
        return Ok(WarmOutcome::Fallback(sf));
    }

    // Column view: an owned transpose of the CSR store (row sweeps below
    // read `sf.matrix` directly). Owned, not borrowed, because `sf` must
    // stay movable for the mid-loop fallback return.
    let cols = sf.matrix.transpose();

    let mut basis = warm_basis.to_vec();
    let mut file: Basis<T> = Basis::identity(options.factorization, m);
    {
        let basis = &basis;
        let cols = &cols;
        if file.refactorize(|c| cols.row(basis[c])).is_err() {
            // Singular under the new coefficients.
            return Ok(WarmOutcome::Fallback(sf));
        }
    }

    // x_B = B⁻¹b, read per position through the factorization's row map.
    let mut rhs_idx: Vec<usize> = Vec::new();
    let mut rhs_val: Vec<T> = Vec::new();
    for (i, v) in sf.rhs.iter().enumerate() {
        if !v.is_exactly_zero() {
            rhs_idx.push(i);
            rhs_val.push(v.clone());
        }
    }
    let mut work = vec![T::zero(); m];
    file.ftran(&mut work, SparseVec::new(&rhs_idx, &rhs_val));
    let mut x_b: Vec<T> = (0..m).map(|c| work[file.row_of(c)].clone()).collect();

    // d = c − AᵀB⁻ᵀc_B from one dense BTRAN (basic columns price to exactly
    // zero by construction).
    let cb: Vec<T> = basis.iter().map(|&b| sf.costs[b].clone()).collect();
    let mut rho = vec![T::zero(); m];
    file.btran_dense(&mut rho, &cb);
    let mut d: Vec<T> = sf.costs.clone();
    for (i, y_i) in rho.iter().enumerate() {
        if y_i.is_exactly_zero() {
            continue;
        }
        for (j, a) in sf.matrix.row(i).iter() {
            d[j].sub_mul_assign(y_i, a);
        }
    }
    for &b in &basis {
        d[b] = T::zero();
    }

    if d.iter().any(|dj| dj.is_negative_approx()) {
        // Not dual feasible. Still primal feasible → primal phase 2 warm
        // start; otherwise give up and solve cold.
        if x_b.iter().any(|v| v.is_negative_approx()) {
            return Ok(WarmOutcome::Fallback(sf));
        }
        let solution = crate::revised::reoptimize_primal(sf, basis, options, stats)?;
        crate::certificate::certify_column_solution(&solution)?;
        return Ok(WarmOutcome::Solved(solution));
    }

    // ----------------------- Dual simplex loop -----------------------
    let num_cols = sf.num_cols;
    let mut row = vec![T::zero(); num_cols];
    let max_iters = 50_000usize.max(100 * (num_cols + m));
    let mut bland_mode = false;
    let mut degenerate_streak = 0usize;
    let mut iterations = 0usize;

    loop {
        // Leaving row: a primal-infeasible position. Most-negative value by
        // default; smallest basic column index under Bland's rule.
        let leaving = if bland_mode {
            (0..m)
                .filter(|&c| x_b[c].is_negative_approx())
                .min_by_key(|&c| basis[c])
        } else {
            let mut best: Option<usize> = None;
            for c in 0..m {
                if !x_b[c].is_negative_approx() {
                    continue;
                }
                match best {
                    None => best = Some(c),
                    Some(b) => {
                        if x_b[c] < x_b[b] {
                            best = Some(c);
                        }
                    }
                }
            }
            best
        };
        let Some(position) = leaving else {
            break; // Primal feasible and dual feasible: optimal.
        };

        iterations += 1;
        if iterations > max_iters {
            // Should be unreachable (Bland mode terminates finitely); hand
            // the model to the cold path rather than failing the solve.
            return Ok(WarmOutcome::Fallback(sf));
        }

        // Pivot row α_r via unit BTRAN + sparse row sweep.
        sparse::clear(&mut rho);
        file.btran_unit(&mut rho, position);
        sparse::clear(&mut row);
        for (r, mult) in rho.iter().enumerate() {
            if mult.is_exactly_zero() {
                continue;
            }
            for (j, a) in sf.matrix.row(r).iter() {
                row[j].add_mul_assign(mult, a);
            }
        }

        // Entering column: min ratio d_j / (−α_rj) over α_rj < 0, ties to
        // the smallest index (Bland-compatible in both modes).
        let mut entering: Option<(usize, T)> = None;
        for (j, r_j) in row.iter().enumerate() {
            if !r_j.is_negative_approx() {
                continue;
            }
            let ratio = d[j].div_ref(&-r_j.clone());
            match &entering {
                Some((_, best)) if *best <= ratio => {}
                _ => entering = Some((j, ratio)),
            }
        }
        let Some((entering, _)) = entering else {
            // Row r reads Σ α_rj·x_j = x_B[r] < 0 with every α_rj ≥ 0 and
            // x ≥ 0: the constraints are unsatisfiable.
            return Err(LpError::Infeasible);
        };

        // Pivot — the same algebra as the primal revised pivot.
        sparse::clear(&mut work);
        file.ftran(&mut work, cols.row(entering));
        let pivot_value = work[file.row_of(position)].clone();
        let theta = x_b[position].div_ref(&pivot_value);
        for (r, t) in work.iter().enumerate() {
            if t.is_exactly_zero() {
                continue;
            }
            let c = file.position_of(r);
            if c == position || theta.is_exactly_zero() {
                continue;
            }
            x_b[c].sub_mul_assign(t, &theta);
        }
        let d_q = d[entering].clone();
        let degenerate = d_q.is_exactly_zero();
        if !degenerate {
            for (j, r_j) in row.iter().enumerate() {
                if j == entering || r_j.is_exactly_zero() {
                    continue;
                }
                let normalized = r_j.div_ref(&pivot_value);
                d[j].sub_mul_assign(&d_q, &normalized);
            }
        }
        d[entering] = T::zero();
        file.push_pivot(position, &work);
        basis[position] = entering;
        x_b[position] = theta;

        stats.phase2_pivots += 1;
        stats.dual_pivots += 1;
        if degenerate {
            stats.degenerate_pivots += 1;
            degenerate_streak += 1;
            if !bland_mode && degenerate_streak > options.degeneracy_streak_limit {
                bland_mode = true;
                stats.fallback_activations += 1;
            }
        } else {
            degenerate_streak = 0;
            bland_mode = false;
        }

        if file.should_refactor(options.refactor_interval) {
            let basis = &basis;
            let cols = &cols;
            file.refactorize(|c| cols.row(basis[c]))?;
        }
    }

    let mut column_values = vec![T::zero(); num_cols];
    for (c, &b) in basis.iter().enumerate() {
        column_values[b] = x_b[c].clone();
    }
    let solution = ColumnSolution {
        sf,
        column_values,
        total_cols: num_cols,
        basis,
    };
    crate::certificate::certify_column_solution(&solution)?;
    Ok(WarmOutcome::Solved(solution))
}

#[cfg(test)]
mod tests {
    use privmech_numerics::{rat, Rational};

    use super::{warm_reoptimize, WarmOutcome};
    use crate::model::{LinExpr, Model, Relation, Sense, VarBound};
    use crate::simplex::{PivotStats, SolverOptions};
    use crate::standard::{build_standard_form, StandardForm};

    /// min -x1 - x2  s.t.  x1 <= 1, x2 <= 1. Standard-form columns:
    /// x1(0), x2(1), slack1(2), slack2(3); the optimal basis is [0, 1].
    fn box_maximum() -> StandardForm<Rational> {
        let mut m: Model<Rational> = Model::new();
        let x1 = m.add_var("x1", VarBound::NonNegative);
        let x2 = m.add_var("x2", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x1, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.add_constraint(LinExpr::term(x2, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x1, rat(-1, 1)).plus(x2, rat(-1, 1)),
        )
        .unwrap();
        build_standard_form(&m).unwrap()
    }

    /// min c·x  s.t.  x >= 1, x <= 3. Standard-form columns: x(0),
    /// surplus(1), slack(2). The slack/surplus basis [1, 2] reads
    /// x_B = (-1, 3): primal infeasible by construction.
    fn interval_lp(cost: i64) -> StandardForm<Rational> {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Ge, rat(1, 1))
            .unwrap();
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(3, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(cost, 1)))
            .unwrap();
        build_standard_form(&m).unwrap()
    }

    fn warm(
        sf: StandardForm<Rational>,
        basis: &[usize],
    ) -> (
        Result<WarmOutcome<Rational>, crate::model::LpError>,
        PivotStats,
    ) {
        let mut stats = PivotStats::default();
        let outcome = warm_reoptimize(sf, basis, &SolverOptions::default(), &mut stats);
        (outcome, stats)
    }

    /// A warm basis that is already optimal must be accepted with zero dual
    /// pivots — the loop never runs, the certificate still verifies.
    #[test]
    fn optimal_basis_warm_start_takes_zero_pivots() {
        let (outcome, stats) = warm(box_maximum(), &[0, 1]);
        match outcome.unwrap() {
            WarmOutcome::Solved(sol) => {
                assert_eq!(sol.column_values[0], rat(1, 1));
                assert_eq!(sol.column_values[1], rat(1, 1));
            }
            WarmOutcome::Fallback(_) => panic!("optimal basis must warm-start"),
        }
        assert_eq!(stats.dual_pivots, 0, "no dual pivots on an optimal basis");
        assert_eq!(stats.phase1_pivots, 0, "warm starts never run phase 1");
    }

    /// A dual-feasible but primal-infeasible basis (the reparameterized-sweep
    /// shape) is repaired by actual dual-simplex pivots.
    #[test]
    fn dual_feasible_basis_repairs_primal_infeasibility() {
        // min +x: costs price every column non-negative under the slack
        // basis, but x_B = (-1, 3) needs repair.
        let (outcome, stats) = warm(interval_lp(1), &[1, 2]);
        match outcome.unwrap() {
            WarmOutcome::Solved(sol) => assert_eq!(sol.column_values[0], rat(1, 1)),
            WarmOutcome::Fallback(_) => panic!("dual-feasible basis must warm-start"),
        }
        assert!(stats.dual_pivots >= 1, "repair requires dual pivots");
    }

    /// A carried basis that is neither primal nor dual feasible under the new
    /// coefficients must hand the standard form back for a cold solve.
    #[test]
    fn doubly_infeasible_basis_falls_back_cold() {
        // min -x: d[x] = -1 (dual infeasible) and x_B = (-1, 3) (primal
        // infeasible) — nothing to warm-start from.
        let (outcome, stats) = warm(interval_lp(-1), &[1, 2]);
        assert!(matches!(outcome.unwrap(), WarmOutcome::Fallback(_)));
        assert_eq!(stats.dual_pivots, 0);
    }

    /// A basis that is singular under the new coefficients (duplicate
    /// columns) must fall back instead of erroring.
    #[test]
    fn singular_basis_falls_back_cold() {
        let (outcome, _) = warm(interval_lp(1), &[0, 0]);
        assert!(matches!(outcome.unwrap(), WarmOutcome::Fallback(_)));
    }

    /// Shape mismatches — wrong length or out-of-range columns — are
    /// rejected before any factorization work.
    #[test]
    fn mismatched_basis_shapes_fall_back_cold() {
        let (outcome, _) = warm(interval_lp(1), &[1]);
        assert!(matches!(outcome.unwrap(), WarmOutcome::Fallback(_)));
        let (outcome, _) = warm(interval_lp(1), &[1, 99]);
        assert!(matches!(outcome.unwrap(), WarmOutcome::Fallback(_)));
    }
}
