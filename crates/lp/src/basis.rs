//! Product-form basis factorization for the revised simplex.
//!
//! The revised simplex never materializes `B⁻¹` or the tableau. Instead the
//! basis inverse is kept as a **product-form inverse** (an *eta file*): a
//! sequence of [`Eta`] matrices plus a position → row permutation, such that
//! for any vector `a`
//!
//! ```text
//! (B⁻¹ a)[position c] = (E_k⁻¹ ⋯ E_1⁻¹ a)[π(c)]
//! ```
//!
//! * **FTRAN** (`B x = a`) scatters the sparse column `a` into a dense work
//!   vector and applies every eta in file order
//!   ([`privmech_linalg::sparse::ftran_eta`]); position-space reads go
//!   through the permutation.
//! * **BTRAN** (`yᵀ B = cᵀ`) scatters through the permutation and applies
//!   the etas in reverse order ([`privmech_linalg::sparse::btran_eta`]).
//! * **Pivot**: replacing the basic variable at position `p` with a column
//!   whose FTRAN result is `t` appends one eta with pivot row `π(p)` and
//!   column `t` — the permutation never changes outside refactorization.
//! * **Refactorization** rebuilds the file from the current basic columns by
//!   replaying them through a fresh file (Gauss–Jordan in product form),
//!   processing sparsest columns first and skipping identity etas (slack
//!   columns still at their seed position cost nothing). This both bounds
//!   the file length at one eta per *basic* column — pivots accumulate one
//!   eta each, so a long solve's file otherwise grows without bound — and
//!   resets fill-in.
//!
//! Why this preserves bit-identity with the dense tableau: on exact scalars
//! FTRAN/BTRAN produce the *mathematically exact* entries of `B⁻¹a`, which
//! are precisely the dense tableau's column entries, independent of how the
//! factorization is currently composed. Refactorization therefore cannot
//! change any solver decision — property-tested across refactorization
//! frequencies in `crates/lp/tests/properties.rs`.

use privmech_linalg::sparse::{self, Eta, SparseVec};
use privmech_linalg::Scalar;

use crate::lu::LuFactors;
use crate::model::LpError;
use crate::simplex::FactorizationKind;

/// The basis factorization behind the revised simplex: either the
/// product-form inverse kept here ([`EtaFile`]) or the sparse LU with
/// Forrest–Tomlin updates ([`LuFactors`], the default — see
/// [`crate::lu`]).
///
/// Both variants expose the identical FTRAN/BTRAN/pivot interface and
/// produce mathematically exact results on exact scalars, so which one is
/// active is unobservable to the solver's pivot choices — the dispatch is a
/// pure representation switch, selected by
/// [`FactorizationKind`][crate::simplex::FactorizationKind].
pub(crate) enum Basis<T: Scalar> {
    /// Product-form inverse (eta file), the pre-LU representation.
    Eta(EtaFile<T>),
    /// Sparse LU with Forrest–Tomlin updates.
    Lu(LuFactors<T>),
}

impl<T: Scalar> Basis<T> {
    /// The identity basis of dimension `m` in the requested representation.
    pub(crate) fn identity(kind: FactorizationKind, m: usize) -> Self {
        match kind {
            FactorizationKind::EtaFile => Basis::Eta(EtaFile::identity(m)),
            FactorizationKind::LuForrestTomlin => Basis::Lu(LuFactors::identity(m)),
        }
    }

    /// Basis dimension.
    pub(crate) fn dim(&self) -> usize {
        match self {
            Basis::Eta(f) => f.dim(),
            Basis::Lu(f) => f.dim(),
        }
    }

    /// Internal row holding basis position `c`.
    pub(crate) fn row_of(&self, position: usize) -> usize {
        match self {
            Basis::Eta(f) => f.row_of(position),
            Basis::Lu(f) => f.row_of(position),
        }
    }

    /// Basis position of internal row `r`.
    pub(crate) fn position_of(&self, row: usize) -> usize {
        match self {
            Basis::Eta(f) => f.position_of(row),
            Basis::Lu(f) => f.position_of(row),
        }
    }

    /// FTRAN: overwrite the zeroed `work` vector with `B⁻¹a`. The column
    /// arrives as a borrowed [`SparseVec`] view — typically a row of the
    /// transposed CSR constraint store, with no per-call copy.
    pub(crate) fn ftran(&self, work: &mut [T], column: SparseVec<'_, T>) {
        match self {
            Basis::Eta(f) => f.ftran(work, column),
            Basis::Lu(f) => f.ftran(work, column),
        }
    }

    /// BTRAN of a unit position vector.
    pub(crate) fn btran_unit(&self, work: &mut [T], position: usize) {
        match self {
            Basis::Eta(f) => f.btran_unit(work, position),
            Basis::Lu(f) => f.btran_unit(work, position),
        }
    }

    /// BTRAN of a dense position-space vector.
    pub(crate) fn btran_dense(&self, work: &mut [T], position_values: &[T]) {
        match self {
            Basis::Eta(f) => f.btran_dense(work, position_values),
            Basis::Lu(f) => f.btran_dense(work, position_values),
        }
    }

    /// Record a pivot at basis position `position` whose FTRAN result is
    /// `ftran_work`.
    pub(crate) fn push_pivot(&mut self, position: usize, ftran_work: &[T]) {
        match self {
            Basis::Eta(f) => f.push_pivot(position, ftran_work),
            Basis::Lu(f) => f.push_pivot(position, ftran_work),
        }
    }

    /// Whether the refactorization trigger (interval or growth) has fired.
    pub(crate) fn should_refactor(&self, interval: usize) -> bool {
        match self {
            Basis::Eta(f) => f.should_refactor(interval),
            Basis::Lu(f) => f.should_refactor(interval),
        }
    }

    /// Refactorize from scratch for the basis whose position `c` holds the
    /// sparse column `columns(c)`.
    pub(crate) fn refactorize<'a, F>(&mut self, columns: F) -> Result<(), LpError>
    where
        F: Fn(usize) -> SparseVec<'a, T>,
        T: 'a,
    {
        match self {
            Basis::Eta(f) => f.refactorize(columns),
            Basis::Lu(f) => f.refactorize(columns),
        }
    }
}

/// Eta-file nonzero budget, as a multiple of the basis dimension: when the
/// file holds more than `ETA_GROWTH_FACTOR · m` nonzeros a refactorization
/// is triggered even before the pivot-count interval elapses. Beyond this
/// density an FTRAN costs as much as a dense-tableau column update, so the
/// factorized representation has lost its advantage.
const ETA_GROWTH_FACTOR: usize = 16;

/// A product-form inverse of the current simplex basis (see module docs).
pub(crate) struct EtaFile<T: Scalar> {
    etas: Vec<Eta<T>>,
    /// π: basis position → internal row.
    perm: Vec<usize>,
    /// π⁻¹: internal row → basis position.
    inv_perm: Vec<usize>,
    /// Total stored nonzeros across the file (growth-trigger input).
    nnz: usize,
    /// Pivots applied since the last refactorization (interval input).
    pivots_since_refactor: usize,
}

impl<T: Scalar> EtaFile<T> {
    /// The identity basis of dimension `m` (the two-phase start: every basis
    /// seed — slack or artificial — is a unit column).
    pub(crate) fn identity(m: usize) -> Self {
        EtaFile {
            etas: Vec::new(),
            perm: (0..m).collect(),
            inv_perm: (0..m).collect(),
            nnz: 0,
            pivots_since_refactor: 0,
        }
    }

    /// Basis dimension.
    pub(crate) fn dim(&self) -> usize {
        self.perm.len()
    }

    /// Internal row holding basis position `c` (for reading FTRAN results in
    /// position space: `work[file.row_of(c)]`).
    pub(crate) fn row_of(&self, position: usize) -> usize {
        self.perm[position]
    }

    /// Basis position of internal row `r` (for walking an FTRAN result's
    /// nonzeros back to positions).
    pub(crate) fn position_of(&self, row: usize) -> usize {
        self.inv_perm[row]
    }

    /// FTRAN: overwrite the zeroed `work` vector with `E_k⁻¹⋯E_1⁻¹ a` for a
    /// sparse column `a`. Read position-space entries through
    /// [`EtaFile::row_of`].
    pub(crate) fn ftran(&self, work: &mut [T], column: SparseVec<'_, T>) {
        column.scatter_into(work);
        for eta in &self.etas {
            sparse::ftran_eta(work, eta);
        }
    }

    /// BTRAN of a unit position vector: overwrite the zeroed `work` vector
    /// with `e_pᵀ B⁻¹` (the multipliers of tableau row `p`, indexed by
    /// internal row).
    pub(crate) fn btran_unit(&self, work: &mut [T], position: usize) {
        work[self.perm[position]] = T::one();
        self.btran_in_place(work);
    }

    /// BTRAN of a dense position-space vector `v` (e.g. the basic cost
    /// vector): overwrite the zeroed `work` vector with `vᵀ B⁻¹`.
    pub(crate) fn btran_dense(&self, work: &mut [T], position_values: &[T]) {
        for (c, v) in position_values.iter().enumerate() {
            if !v.is_exactly_zero() {
                work[self.perm[c]] = v.clone();
            }
        }
        self.btran_in_place(work);
    }

    fn btran_in_place(&self, work: &mut [T]) {
        for eta in self.etas.iter().rev() {
            sparse::btran_eta(work, eta);
        }
    }

    /// Record a pivot at basis position `position` whose FTRAN result (in
    /// internal row space) is `ftran_work`: appends one eta with pivot row
    /// `π(position)`.
    ///
    /// # Panics
    /// Panics if the FTRAN result is zero at the pivot position (the ratio
    /// test guarantees a positive pivot element).
    pub(crate) fn push_pivot(&mut self, position: usize, ftran_work: &[T]) {
        let eta = Eta::from_dense(self.perm[position], ftran_work);
        self.nnz += eta.nnz();
        self.etas.push(eta);
        self.pivots_since_refactor += 1;
    }

    /// Whether the refactorization trigger has fired: either the pivot-count
    /// interval elapsed or the file's nonzeros outgrew
    /// [`ETA_GROWTH_FACTOR`]`· m`. An interval of `usize::MAX` disables
    /// refactorization entirely (the "never" end of the property-test
    /// spectrum in `tests/properties.rs`).
    pub(crate) fn should_refactor(&self, interval: usize) -> bool {
        if interval == usize::MAX {
            return false;
        }
        self.pivots_since_refactor >= interval || self.nnz > ETA_GROWTH_FACTOR * self.dim()
    }

    /// Rebuild the file from scratch for the basis whose position `c` holds
    /// the sparse column `columns(c)`: replay every basic column through a
    /// fresh file, sparsest original columns first, assigning each a pivot
    /// row where its partially-eliminated image is nonzero. Unit images
    /// (slack columns still at their seed) produce no eta at all.
    ///
    /// Fails with [`LpError::Internal`] only if the basis is singular, which
    /// would indicate a solver bug — the simplex invariant keeps every basis
    /// nonsingular.
    pub(crate) fn refactorize<'a, F>(&mut self, columns: F) -> Result<(), LpError>
    where
        F: Fn(usize) -> SparseVec<'a, T>,
        T: 'a,
    {
        let m = self.dim();
        // Sparsest-first replay order (stable: ties by position) mimics a
        // triangular factorization and keeps fill-in down. The CSR store
        // answers the nnz query without materializing the column.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&c| (columns(c).len(), c));

        let mut etas: Vec<Eta<T>> = Vec::new();
        let mut nnz = 0usize;
        let mut perm = vec![usize::MAX; m];
        let mut used = vec![false; m];
        let mut work = vec![T::zero(); m];
        for &c in &order {
            columns(c).scatter_into(&mut work);
            for eta in &etas {
                sparse::ftran_eta(&mut work, eta);
            }
            let row = (0..m)
                .find(|&r| !used[r] && !work[r].is_exactly_zero())
                .ok_or_else(|| {
                    LpError::Internal("singular basis during refactorization".to_string())
                })?;
            used[row] = true;
            perm[c] = row;
            let eta = Eta::from_dense(row, &work);
            if !eta.is_identity() {
                nnz += eta.nnz();
                etas.push(eta);
            }
            sparse::clear(&mut work);
        }

        self.etas = etas;
        self.nnz = nnz;
        self.inv_perm = vec![0; m];
        for (c, &r) in perm.iter().enumerate() {
            self.inv_perm[r] = c;
        }
        self.perm = perm;
        self.pivots_since_refactor = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    /// Owned index/value storage a [`SparseVec`] view can borrow from.
    type Col = (Vec<usize>, Vec<Rational>);

    fn sv(col: &Col) -> SparseVec<'_, Rational> {
        SparseVec::new(&col.0, &col.1)
    }

    /// Columns of a small nonsingular matrix, sparse form.
    fn columns() -> Vec<Col> {
        // B = [[2, 0, 1], [0, 1, 1], [0, 0, 3]] by columns.
        vec![
            (vec![0], vec![rat(2, 1)]),
            (vec![1], vec![rat(1, 1)]),
            (vec![0, 1, 2], vec![rat(1, 1), rat(1, 1), rat(3, 1)]),
        ]
    }

    fn ftran_dense(file: &EtaFile<Rational>, col: &Col) -> Vec<Rational> {
        let m = file.dim();
        let mut work = vec![Rational::zero(); m];
        file.ftran(&mut work, sv(col));
        (0..m).map(|c| work[file.row_of(c)].clone()).collect()
    }

    #[test]
    fn pivot_then_ftran_solves_against_the_updated_basis() {
        // Start from the identity basis, pivot the three columns in, and
        // check B x = a solves for a fresh right-hand side.
        let cols = columns();
        let mut file: EtaFile<Rational> = EtaFile::identity(3);
        let mut work = vec![Rational::zero(); 3];
        for (p, col) in cols.iter().enumerate() {
            sparse::clear(&mut work);
            file.ftran(&mut work, sv(col));
            file.push_pivot(p, &work);
        }
        // Solve B x = (3, 2, 3)ᵀ: x = (1, 1, 1) since column sums are 3,2,...
        // B·(1,1,1) = (3, 2, 3)ᵀ.
        let rhs: Col = (vec![0, 1, 2], vec![rat(3, 1), rat(2, 1), rat(3, 1)]);
        let x = ftran_dense(&file, &rhs);
        assert_eq!(x, vec![rat(1, 1), rat(1, 1), rat(1, 1)]);
    }

    #[test]
    fn refactorize_preserves_every_solve_exactly() {
        let cols = columns();
        let mut file: EtaFile<Rational> = EtaFile::identity(3);
        let mut work = vec![Rational::zero(); 3];
        for (p, col) in cols.iter().enumerate() {
            sparse::clear(&mut work);
            file.ftran(&mut work, sv(col));
            file.push_pivot(p, &work);
        }
        let rhs: Col = (vec![0, 1, 2], vec![rat(7, 1), rat(-2, 1), rat(5, 2)]);
        let before = ftran_dense(&file, &rhs);
        // BTRAN reference before refactorization.
        let mut y_before = vec![Rational::zero(); 3];
        file.btran_unit(&mut y_before, 2);

        file.refactorize(|c| sv(&cols[c])).unwrap();
        let after = ftran_dense(&file, &rhs);
        assert_eq!(before, after, "FTRAN must be factorization-independent");
        let mut y_after = vec![Rational::zero(); 3];
        file.btran_unit(&mut y_after, 2);
        assert_eq!(y_before, y_after, "BTRAN must be factorization-independent");
    }

    #[test]
    fn btran_unit_recovers_inverse_rows() {
        // For B = I after identity construction, BTRAN of e_p is e_p.
        let file: EtaFile<Rational> = EtaFile::identity(2);
        let mut y = vec![Rational::zero(); 2];
        file.btran_unit(&mut y, 1);
        assert_eq!(y, vec![Rational::zero(), rat(1, 1)]);
    }

    #[test]
    fn growth_trigger_and_interval_semantics() {
        let file: EtaFile<Rational> = EtaFile::identity(2);
        assert!(!file.should_refactor(usize::MAX));
        assert!(!file.should_refactor(1), "no pivots yet");
        let cols: Vec<Col> = vec![
            (vec![0, 1], vec![rat(1, 2), rat(1, 3)]),
            (vec![1], vec![rat(2, 1)]),
        ];
        let mut file: EtaFile<Rational> = EtaFile::identity(2);
        let mut work = vec![Rational::zero(); 2];
        file.ftran(&mut work, sv(&cols[0]));
        file.push_pivot(0, &work);
        assert!(file.should_refactor(1));
        assert!(!file.should_refactor(2));
        assert!(
            !file.should_refactor(usize::MAX),
            "MAX disables both triggers"
        );
        file.refactorize(|c| sv(&cols[c])).unwrap();
        assert!(
            !file.should_refactor(1),
            "refactorization resets the counter"
        );
    }
}
