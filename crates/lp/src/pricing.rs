//! Entering-column pricing: the first stage of a simplex iteration.
//!
//! Both solver forms — the dense tableau and the revised simplex — price
//! entering columns from a dense vector of reduced costs. The dense tableau
//! maintains that vector as its objective row; the revised solver maintains
//! it incrementally from BTRAN'd pivot rows. Because the vectors hold the
//! *same exact values* on exact scalars and this module is the single
//! implementation of the entering rules, the two forms select the same
//! entering column at every iteration — one half of the dense ≡ revised
//! pivot-sequence contract (`crates/lp/SOLVER.md`; the other half is the
//! shared ratio test in [`crate::ratio`]).
//!
//! The rules themselves, and the Dantzig ↔ Bland fallback state machine,
//! are documented on [`PricingRule`] and in the `crate::simplex` module docs.

use privmech_linalg::Scalar;

use crate::simplex::{PivotStats, PricingRule, ScalingMode, SolverOptions};

/// Entering column under Bland's rule: smallest index with a negative
/// reduced cost, skipping banned columns.
pub(crate) fn entering_bland<T: Scalar>(
    reduced: &[T],
    banned: &[bool],
    cols: usize,
) -> Option<usize> {
    (0..cols).find(|&j| !banned[j] && reduced[j].is_negative_approx())
}

/// Entering column under Dantzig pricing: most negative reduced cost (ties
/// broken towards the smaller index), skipping banned columns.
pub(crate) fn entering_dantzig<T: Scalar>(
    reduced: &[T],
    banned: &[bool],
    cols: usize,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for j in 0..cols {
        if banned[j] || !reduced[j].is_negative_approx() {
            continue;
        }
        match best {
            None => best = Some(j),
            Some(b) => {
                if reduced[j] < reduced[b] {
                    best = Some(j);
                }
            }
        }
    }
    best
}

/// Entering column under devex pricing: maximize `d_j² / w_j` over the
/// columns with a negative reduced cost (ties broken towards the smaller
/// index), skipping banned columns.
///
/// The score is evaluated in `f64` even on exact backends: every candidate
/// has an **exactly** negative reduced cost (the sign test runs on the exact
/// value), so an imprecise score can only change *which* improving column
/// enters — never admit a non-improving one. Correctness of the final
/// solution is asserted by the exact optimality certificate
/// ([`crate::certificate`]); termination by the same Bland fallback that
/// guards Dantzig pricing.
pub(crate) fn entering_devex<T: Scalar>(
    reduced: &[T],
    banned: &[bool],
    cols: usize,
    weights: &[f64],
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for j in 0..cols {
        if banned[j] || !reduced[j].is_negative_approx() {
            continue;
        }
        let d = reduced[j].to_f64();
        let score = d * d / weights[j].max(1.0);
        match best {
            Some((_, s)) if score <= s => {}
            _ => best = Some((j, score)),
        }
    }
    best.map(|(j, _)| j)
}

/// The pricing state machine, shared verbatim by both solver forms: Dantzig
/// or devex selection with the Bland anti-cycling fallback, plus the devex
/// reference weights when that rule is active.
///
/// Aggressive (non-Bland) pricing only engages for exact scalars — or for
/// `f64` when equilibration scaling is on (see the `crate::simplex` module
/// docs for why the unscaled `f64` backend always prices by Bland's rule). A
/// streak of more than [`SolverOptions::degeneracy_streak_limit`] consecutive
/// degenerate pivots switches to Bland's anti-cycling rule; the first
/// objective-improving pivot switches back.
pub(crate) struct FallbackState {
    bland_mode: bool,
    aggressive_allowed: bool,
    /// Devex reference weights, one per column, lazily sized at the first
    /// selection. `Some` iff the configured rule is [`PricingRule::Devex`]
    /// (and aggressive pricing is allowed for this scalar type).
    devex_weights: Option<Vec<f64>>,
    degenerate_streak: usize,
    limit: usize,
}

impl FallbackState {
    /// Initial pricing state for one phase of a solve with scalar type `T`.
    pub(crate) fn new<T: Scalar>(options: &SolverOptions) -> Self {
        let aggressive_allowed = options.pricing != PricingRule::Bland
            && (T::is_exact() || options.scaling == ScalingMode::Equilibrate);
        let devex_weights =
            (aggressive_allowed && options.pricing == PricingRule::Devex).then(Vec::new);
        FallbackState {
            bland_mode: !aggressive_allowed,
            aggressive_allowed,
            devex_weights,
            degenerate_streak: 0,
            limit: options.degeneracy_streak_limit,
        }
    }

    /// Whether the *next* selection (and its ratio-test tie-break) uses
    /// Bland's rule.
    pub(crate) fn bland_mode(&self) -> bool {
        self.bland_mode
    }

    /// Select the entering column under the current mode.
    pub(crate) fn select<T: Scalar>(
        &mut self,
        reduced: &[T],
        banned: &[bool],
        cols: usize,
    ) -> Option<usize> {
        if self.bland_mode {
            return entering_bland(reduced, banned, cols);
        }
        match &mut self.devex_weights {
            Some(weights) => {
                if weights.len() < cols {
                    // First selection of the phase: the reference framework
                    // starts with unit weights on every column.
                    weights.resize(cols, 1.0);
                }
                entering_devex(reduced, banned, cols, weights)
            }
            None => entering_dantzig(reduced, banned, cols),
        }
    }

    /// Devex reference-weight update after a pivot: with entering column `q`,
    /// leaving column `t`, pivot element `α_rq` and normalized pivot row
    /// `α_rj / α_rq` (provided as a closure over column indices),
    ///
    /// ```text
    /// w_j ← max(w_j, (α_rj/α_rq)² · w_q)   for nonbasic j ≠ q
    /// w_t ← max(w_q / α_rq², 1)            for the leaving column
    /// ```
    ///
    /// A no-op unless devex is the configured rule. Weights are approximate
    /// by design; see [`entering_devex`] for why that is sound.
    pub(crate) fn update_devex_weights<F: Fn(usize) -> f64>(
        &mut self,
        entering: usize,
        leaving_col: usize,
        pivot_element: f64,
        normalized_row: F,
    ) {
        let Some(weights) = &mut self.devex_weights else {
            return;
        };
        if weights.is_empty() || pivot_element == 0.0 {
            return;
        }
        let w_q = weights[entering].max(1.0);
        for (j, w_j) in weights.iter_mut().enumerate() {
            if j == entering {
                continue;
            }
            let r = normalized_row(j);
            if r != 0.0 {
                let candidate = r * r * w_q;
                if candidate > *w_j {
                    *w_j = candidate;
                }
            }
        }
        weights[leaving_col] = (w_q / (pivot_element * pivot_element)).max(1.0);
        // The entering column is basic now; its weight restarts at the
        // reference value if it ever leaves again.
        weights[entering] = 1.0;
    }

    /// Record a completed pivot: updates the per-rule pivot counters, the
    /// degeneracy streak, and the aggressive ↔ Bland mode.
    pub(crate) fn after_pivot(&mut self, degenerate: bool, stats: &mut PivotStats) {
        if self.bland_mode {
            stats.bland_pivots += 1;
        } else if self.devex_weights.is_some() {
            stats.devex_pivots += 1;
        } else {
            stats.dantzig_pivots += 1;
        }
        if degenerate {
            stats.degenerate_pivots += 1;
            self.degenerate_streak += 1;
            if !self.bland_mode && self.aggressive_allowed && self.degenerate_streak > self.limit {
                self.bland_mode = true;
                stats.fallback_activations += 1;
            }
        } else {
            self.degenerate_streak = 0;
            // A strict objective improvement left the degenerate vertex;
            // resume the cheaper-converging aggressive rule.
            if self.aggressive_allowed {
                self.bland_mode = false;
            }
        }
    }
}
