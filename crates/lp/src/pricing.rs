//! Entering-column pricing: the first stage of a simplex iteration.
//!
//! Both solver forms — the dense tableau and the revised simplex — price
//! entering columns from a dense vector of reduced costs. The dense tableau
//! maintains that vector as its objective row; the revised solver maintains
//! it incrementally from BTRAN'd pivot rows. Because the vectors hold the
//! *same exact values* on exact scalars and this module is the single
//! implementation of the entering rules, the two forms select the same
//! entering column at every iteration — one half of the dense ≡ revised
//! pivot-sequence contract (`crates/lp/SOLVER.md`; the other half is the
//! shared ratio test in [`crate::ratio`]).
//!
//! The rules themselves, and the Dantzig ↔ Bland fallback state machine,
//! are documented on [`PricingRule`] and in the `crate::simplex` module docs.

use privmech_linalg::Scalar;

use crate::simplex::{PivotStats, PricingRule, SolverOptions};

/// Entering column under Bland's rule: smallest index with a negative
/// reduced cost, skipping banned columns.
pub(crate) fn entering_bland<T: Scalar>(
    reduced: &[T],
    banned: &[bool],
    cols: usize,
) -> Option<usize> {
    (0..cols).find(|&j| !banned[j] && reduced[j].is_negative_approx())
}

/// Entering column under Dantzig pricing: most negative reduced cost (ties
/// broken towards the smaller index), skipping banned columns.
pub(crate) fn entering_dantzig<T: Scalar>(
    reduced: &[T],
    banned: &[bool],
    cols: usize,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for j in 0..cols {
        if banned[j] || !reduced[j].is_negative_approx() {
            continue;
        }
        match best {
            None => best = Some(j),
            Some(b) => {
                if reduced[j] < reduced[b] {
                    best = Some(j);
                }
            }
        }
    }
    best
}

/// The Dantzig-with-Bland-fallback state machine, shared verbatim by both
/// solver forms.
///
/// Dantzig pricing only engages for exact scalars (see the `crate::simplex`
/// module docs for why the `f64` backend always prices by Bland's rule). A
/// streak of more than [`SolverOptions::degeneracy_streak_limit`] consecutive
/// degenerate pivots switches to Bland's anti-cycling rule; the first
/// objective-improving pivot switches back.
pub(crate) struct FallbackState {
    bland_mode: bool,
    dantzig_allowed: bool,
    degenerate_streak: usize,
    limit: usize,
}

impl FallbackState {
    /// Initial pricing state for one phase of a solve with scalar type `T`.
    pub(crate) fn new<T: Scalar>(options: &SolverOptions) -> Self {
        let dantzig_allowed =
            T::is_exact() && options.pricing == PricingRule::DantzigWithBlandFallback;
        FallbackState {
            bland_mode: !dantzig_allowed,
            dantzig_allowed,
            degenerate_streak: 0,
            limit: options.degeneracy_streak_limit,
        }
    }

    /// Whether the *next* selection (and its ratio-test tie-break) uses
    /// Bland's rule.
    pub(crate) fn bland_mode(&self) -> bool {
        self.bland_mode
    }

    /// Select the entering column under the current mode.
    pub(crate) fn select<T: Scalar>(
        &self,
        reduced: &[T],
        banned: &[bool],
        cols: usize,
    ) -> Option<usize> {
        if self.bland_mode {
            entering_bland(reduced, banned, cols)
        } else {
            entering_dantzig(reduced, banned, cols)
        }
    }

    /// Record a completed pivot: updates the per-rule pivot counters, the
    /// degeneracy streak, and the Dantzig ↔ Bland mode.
    pub(crate) fn after_pivot(&mut self, degenerate: bool, stats: &mut PivotStats) {
        if self.bland_mode {
            stats.bland_pivots += 1;
        } else {
            stats.dantzig_pivots += 1;
        }
        if degenerate {
            stats.degenerate_pivots += 1;
            self.degenerate_streak += 1;
            if !self.bland_mode && self.dantzig_allowed && self.degenerate_streak > self.limit {
                self.bland_mode = true;
                stats.fallback_activations += 1;
            }
        } else {
            self.degenerate_streak = 0;
            // A strict objective improvement left the degenerate vertex;
            // resume the cheaper-converging Dantzig rule.
            if self.dantzig_allowed {
                self.bland_mode = false;
            }
        }
    }
}
