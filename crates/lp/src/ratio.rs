//! The minimum-ratio test: the second stage of a simplex iteration.
//!
//! Given the entering column's coefficients against the current basis, pick
//! the leaving basis position. This is the single implementation consumed by
//! both solver forms — the dense tableau reads coefficients straight out of
//! its tableau column, the revised simplex out of its FTRAN result — which is
//! the second half of the dense ≡ revised pivot-sequence contract
//! (`crates/lp/SOLVER.md`).

use privmech_linalg::Scalar;

/// Leaving basis position for an entering column: minimum ratio
/// `rhs(r) / coeff(r)` over positions with a positive coefficient. Ties are
/// broken differently per pricing mode:
///
/// * Bland mode: smallest basic-variable index — part of Bland's
///   anti-cycling termination guarantee.
/// * Dantzig mode: **largest pivot coefficient**. Dantzig's
///   most-negative-cost column can pair a tied minimum ratio with a tiny
///   pivot element; dividing the row by a near-tolerance pivot destroys
///   `f64` tableaus (and bloats `Rational` entries), so among tied rows
///   the best-conditioned pivot wins. Cycling concerns are delegated to
///   the Bland fallback.
///
/// Returns `None` when the column is unbounded (no positive coefficient),
/// otherwise the position and whether the pivot is degenerate (ratio
/// approximately zero).
pub(crate) fn choose_leaving<'a, T, C, R>(
    rows: usize,
    basis: &[usize],
    bland_mode: bool,
    coeff: C,
    rhs: R,
) -> Option<(usize, bool)>
where
    T: Scalar + 'a,
    C: Fn(usize) -> &'a T,
    R: Fn(usize) -> &'a T,
{
    let mut best: Option<(usize, T)> = None;
    for r in 0..rows {
        let c = coeff(r);
        if !c.is_positive_approx() {
            continue;
        }
        let ratio = rhs(r).div_ref(c);
        match &best {
            None => best = Some((r, ratio)),
            Some((br, bratio)) => {
                if ratio == *bratio {
                    let tie_wins = if bland_mode {
                        basis[r] < basis[*br]
                    } else {
                        coeff(r).abs() > coeff(*br).abs()
                    };
                    if tie_wins {
                        best = Some((r, ratio));
                    }
                } else if ratio < *bratio {
                    best = Some((r, ratio));
                }
            }
        }
    }
    best.map(|(r, ratio)| (r, ratio.is_zero_approx()))
}
