//! The minimum-ratio test: the second stage of a simplex iteration.
//!
//! Given the entering column's coefficients against the current basis, pick
//! the leaving basis position. This is the single implementation consumed by
//! both solver forms — the dense tableau reads coefficients straight out of
//! its tableau column, the revised simplex out of its FTRAN result — which is
//! the second half of the dense ≡ revised pivot-sequence contract
//! (`crates/lp/SOLVER.md`).

use privmech_linalg::Scalar;

/// Leaving basis position for an entering column: minimum ratio
/// `rhs(r) / coeff(r)` over positions with a positive coefficient. Ties are
/// broken differently per pricing mode:
///
/// * Bland mode: smallest basic-variable index — part of Bland's
///   anti-cycling termination guarantee.
/// * Dantzig mode: **largest pivot coefficient**. Dantzig's
///   most-negative-cost column can pair a tied minimum ratio with a tiny
///   pivot element; dividing the row by a near-tolerance pivot destroys
///   `f64` tableaus (and bloats `Rational` entries), so among tied rows
///   the best-conditioned pivot wins. Cycling concerns are delegated to
///   the Bland fallback.
///
/// Returns `None` when the column is unbounded (no positive coefficient),
/// otherwise the position and whether the pivot is degenerate (ratio
/// approximately zero).
pub(crate) fn choose_leaving<'a, T, C, R>(
    rows: usize,
    basis: &[usize],
    bland_mode: bool,
    coeff: C,
    rhs: R,
) -> Option<(usize, bool)>
where
    T: Scalar + 'a,
    C: Fn(usize) -> &'a T,
    R: Fn(usize) -> &'a T,
{
    let mut best: Option<(usize, T)> = None;
    for r in 0..rows {
        let c = coeff(r);
        if !c.is_positive_approx() {
            continue;
        }
        let ratio = rhs(r).div_ref(c);
        match &best {
            None => best = Some((r, ratio)),
            Some((br, bratio)) => {
                if ratio == *bratio {
                    let tie_wins = if bland_mode {
                        basis[r] < basis[*br]
                    } else {
                        coeff(r).abs() > coeff(*br).abs()
                    };
                    if tie_wins {
                        best = Some((r, ratio));
                    }
                } else if ratio < *bratio {
                    best = Some((r, ratio));
                }
            }
        }
    }
    best.map(|(r, ratio)| (r, ratio.is_zero_approx()))
}

/// Harris two-pass ratio test for floating-point solves
/// ([`ScalingMode::Equilibrate`](crate::simplex::ScalingMode)).
///
/// Pass 1 computes a relaxed step bound `θ_max = min (rhs(r) + δ) / coeff(r)`
/// with `δ = T::tolerance()`, accepting every row whose basic variable would
/// go no more negative than `−δ`. Pass 2 picks, among rows whose *true* ratio
/// fits under `θ_max`, the one with the largest pivot coefficient. On
/// near-degenerate floating-point models the strict test is forced onto
/// whichever tiny-pivot row noise ranks first; the relaxation trades a
/// bounded (`≤ δ`) primal infeasibility — absorbed by the tolerance-based
/// feasibility checks — for a well-conditioned pivot.
///
/// Only reachable on inexact scalars: exact solves keep the strict test, so
/// the dense ≡ revised pivot-identity contract is untouched, and Bland
/// fallback mode bypasses Harris so the anti-cycling guarantee stands.
pub(crate) fn choose_leaving_harris<'a, T, C, R>(
    rows: usize,
    coeff: C,
    rhs: R,
) -> Option<(usize, bool)>
where
    T: Scalar + 'a,
    C: Fn(usize) -> &'a T,
    R: Fn(usize) -> &'a T,
{
    let delta = T::tolerance();
    let mut theta_max: Option<T> = None;
    for r in 0..rows {
        let c = coeff(r);
        if !c.is_positive_approx() {
            continue;
        }
        let relaxed = (rhs(r).clone() + delta.clone()).div_ref(c);
        match &theta_max {
            None => theta_max = Some(relaxed),
            Some(t) => {
                if relaxed < *t {
                    theta_max = Some(relaxed);
                }
            }
        }
    }
    let theta_max = theta_max?;

    let mut best: Option<(usize, T, T)> = None; // (position, ratio, |coeff|)
    for r in 0..rows {
        let c = coeff(r);
        if !c.is_positive_approx() {
            continue;
        }
        let ratio = rhs(r).div_ref(c);
        if ratio > theta_max {
            continue;
        }
        let mag = c.abs();
        match &best {
            None => best = Some((r, ratio, mag)),
            Some((_, _, bmag)) => {
                if mag > *bmag {
                    best = Some((r, ratio, mag));
                }
            }
        }
    }
    best.map(|(r, ratio, _)| (r, ratio.is_zero_approx()))
}
