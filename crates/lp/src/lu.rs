//! Sparse LU basis factorization with Forrest–Tomlin updates.
//!
//! This is the default basis representation behind the revised simplex
//! (see [`crate::basis`] for the dispatch and the product-form alternative).
//! The basis is held as `B = L·U`:
//!
//! * `L⁻¹` is a sequence of elementary eliminations ([`LOp`]): sparse
//!   column eliminations produced by factorization plus sparse row
//!   eliminations produced by Forrest–Tomlin updates. FTRAN applies them in
//!   order, BTRAN applies their transposes in reverse.
//! * `U` is sparse, column-wise, upper triangular with respect to a pair of
//!   permutation arrays mapping each logical basis *position* `j` onto its
//!   pivot row `rpos[j]` and physical column slot `cpos[j]`. The
//!   triangular-solve kernels live in [`privmech_linalg::sparse`]
//!   ([`sparse::solve_upper_ftran`] / [`sparse::solve_upper_btran`]).
//!
//! **Factorization** ([`LuFactors::refactorize`]) runs right-looking
//! Gaussian elimination with Markowitz pivot ordering: each step eliminates
//! the nonzero minimizing `(row_count − 1)·(col_count − 1)`, the classical
//! fill-in heuristic. Exact arithmetic needs no stability safeguard — any
//! exactly-nonzero pivot is sound — so the ordering is free to chase
//! sparsity alone, with deterministic tie-breaks (smaller column count,
//! then smaller row/column index) so repeated factorizations are
//! reproducible.
//!
//! **Update** ([`LuFactors::push_pivot`]): replacing the basis column at
//! position `p` turns column `p` of `U` into the *spike* `w = L⁻¹·a`. The
//! Forrest–Tomlin update cyclically permutes positions `p..m−1` so the
//! spike lands in the last position, then eliminates the displaced pivot
//! row's off-diagonal entries with one sparse row elimination appended to
//! `L` — computed column-by-column, so no row-wise copy of `U` is ever
//! maintained. Per pivot this costs one sparse matrix–vector product (the
//! spike), one scan of the columns right of `p`, and an `O(m − p)`
//! permutation shift; the dense-spike eta the product-form inverse would
//! have appended is replaced by a usually much shorter row elimination.
//!
//! **Why bit-identity with the eta file (and the dense tableau) holds:**
//! FTRAN and BTRAN compute the mathematically exact entries of `B⁻¹a` /
//! `yᵀB⁻¹` over an exact field, and every solver decision is a function of
//! those exact values — never of the internal permutations or of how the
//! factorization is composed. Swapping the basis representation therefore
//! cannot change any pivot choice; the contract is property-tested across
//! factorization kinds and refactorization frequencies in
//! `tests/properties.rs`.

use privmech_linalg::sparse::{self, SparseVec};
use privmech_linalg::Scalar;

use crate::model::LpError;

/// Nonzero budget, as a multiple of the basis dimension, shared with the
/// eta file: when `L` and `U` together hold more than this many nonzeros
/// per row a refactorization is triggered even before the pivot-count
/// interval elapses.
const LU_GROWTH_FACTOR: usize = 16;

/// One elementary elimination of the `L` factor.
#[derive(Debug, Clone)]
enum LOp<T: Scalar> {
    /// Column elimination from factorization: forward
    /// `work[i] -= v·work[pivot]`, transposed `work[pivot] -= Σ v·work[i]`.
    Col {
        /// Pivot row the multipliers were taken against.
        pivot: usize,
        /// Multiplier rows and values.
        entries: Vec<(usize, T)>,
    },
    /// Row elimination from a Forrest–Tomlin update: forward
    /// `work[target] -= Σ v·work[i]`, transposed `work[i] -= v·work[target]`.
    Row {
        /// The spiked row being eliminated.
        target: usize,
        /// Elimination rows and multipliers.
        entries: Vec<(usize, T)>,
    },
}

impl<T: Scalar> LOp<T> {
    fn apply(&self, work: &mut [T]) {
        match self {
            LOp::Col { pivot, entries } => sparse::sub_scaled_scatter(work, *pivot, entries),
            LOp::Row { target, entries } => sparse::sub_dot_gather(work, *target, entries),
        }
    }

    fn apply_transposed(&self, work: &mut [T]) {
        match self {
            LOp::Col { pivot, entries } => sparse::sub_dot_gather(work, *pivot, entries),
            LOp::Row { target, entries } => sparse::sub_scaled_scatter(work, *target, entries),
        }
    }
}

/// A sparse LU factorization of the current simplex basis, maintained
/// across pivots by Forrest–Tomlin updates (see the module docs).
pub(crate) struct LuFactors<T: Scalar> {
    /// Elementary eliminations composing `L⁻¹`, in application order.
    ops: Vec<LOp<T>>,
    /// Columns of `U`, indexed by **basis position** (the driver's slot for
    /// the basic variable); each holds its exactly-nonzero `(row, value)`
    /// pairs including the diagonal.
    ucols: Vec<Vec<(usize, T)>>,
    /// Triangular order → pivot row of `U`'s diagonal.
    rpos: Vec<usize>,
    /// Triangular order → basis position. The Forrest–Tomlin cyclic shift
    /// permutes this triangular order; the driver-facing basis-position ↔
    /// row maps below stay fixed between refactorizations (matching the eta
    /// file, whose permutation also never changes outside refactorization).
    cpos: Vec<usize>,
    /// Basis position → triangular order (inverse of `cpos`).
    cinv: Vec<usize>,
    /// Basis position → diagonal row of its `U` column (the row where that
    /// position's FTRAN component lives).
    slot_row: Vec<usize>,
    /// Row → basis position (inverse of `slot_row`).
    rinv: Vec<usize>,
    /// Total stored nonzeros across `L` and `U` (growth-trigger input).
    nnz: usize,
    /// Pivots applied since the last refactorization (interval input).
    pivots_since_refactor: usize,
    /// Dense scratch for spike reconstruction during updates.
    spike: Vec<T>,
}

impl<T: Scalar> LuFactors<T> {
    /// The identity basis of dimension `m` (the two-phase start: every basis
    /// seed — slack or artificial — is a unit column).
    pub(crate) fn identity(m: usize) -> Self {
        LuFactors {
            ops: Vec::new(),
            ucols: (0..m).map(|r| vec![(r, T::one())]).collect(),
            rpos: (0..m).collect(),
            cpos: (0..m).collect(),
            cinv: (0..m).collect(),
            slot_row: (0..m).collect(),
            rinv: (0..m).collect(),
            nnz: m,
            pivots_since_refactor: 0,
            spike: vec![T::zero(); m],
        }
    }

    /// Basis dimension.
    pub(crate) fn dim(&self) -> usize {
        self.rpos.len()
    }

    /// Internal row holding basis position `c` (for reading FTRAN results in
    /// position space: `work[lu.row_of(c)]`).
    pub(crate) fn row_of(&self, position: usize) -> usize {
        self.slot_row[position]
    }

    /// Basis position of internal row `r` (for walking an FTRAN result's
    /// nonzeros back to positions).
    pub(crate) fn position_of(&self, row: usize) -> usize {
        self.rinv[row]
    }

    /// FTRAN: overwrite the zeroed `work` vector with `B⁻¹a` for a sparse
    /// column `a` (apply `L⁻¹`, then solve with `U`). Read position-space
    /// entries through [`LuFactors::row_of`].
    pub(crate) fn ftran(&self, work: &mut [T], column: SparseVec<'_, T>) {
        column.scatter_into(work);
        for op in &self.ops {
            op.apply(work);
        }
        sparse::solve_upper_ftran(work, &self.ucols, &self.cpos, &self.rpos);
    }

    /// BTRAN of a unit position vector: overwrite the zeroed `work` vector
    /// with `e_pᵀB⁻¹` (the multipliers of tableau row `p`, indexed by
    /// internal row).
    pub(crate) fn btran_unit(&self, work: &mut [T], position: usize) {
        work[self.slot_row[position]] = T::one();
        self.btran_from(work, self.cinv[position]);
    }

    /// BTRAN of a dense position-space vector `v` (e.g. the basic cost
    /// vector): overwrite the zeroed `work` vector with `vᵀB⁻¹`.
    pub(crate) fn btran_dense(&self, work: &mut [T], position_values: &[T]) {
        let mut start = self.dim();
        for (c, v) in position_values.iter().enumerate() {
            if !v.is_exactly_zero() {
                work[self.slot_row[c]] = v.clone();
                start = start.min(self.cinv[c]);
            }
        }
        self.btran_from(work, start);
    }

    /// Shared BTRAN tail: solve `Uᵀ` ascending from `start_pos` (positions
    /// below the first nonzero input are exactly zero in the solution), then
    /// apply the transposed eliminations in reverse.
    fn btran_from(&self, work: &mut [T], start_pos: usize) {
        sparse::solve_upper_btran(work, &self.ucols, &self.cpos, &self.rpos, start_pos);
        for op in self.ops.iter().rev() {
            op.apply_transposed(work);
        }
    }

    /// Record a pivot at basis position `position` whose FTRAN result (in
    /// internal row space) is `ftran_work`: the Forrest–Tomlin update
    /// described in the module docs.
    ///
    /// # Panics
    /// Panics if the update produces a zero diagonal (the ratio test
    /// guarantees a nonzero pivot element, which makes the updated basis
    /// nonsingular).
    pub(crate) fn push_pivot(&mut self, position: usize, ftran_work: &[T]) {
        let m = self.dim();
        let t = m - 1;
        // `position` is the driver's basis position == the slot of the `U`
        // column being replaced; `p` is where that column currently sits in
        // the triangular order. The basis-position ↔ row maps are untouched
        // below: the replacement column keeps its slot and its diagonal row.
        let slot = position;
        let p = self.cinv[slot];
        let r_p = self.slot_row[slot];

        // Reconstruct the spike w = L⁻¹a = U·x from the FTRAN result x
        // (column access only): w = Σ_j x_j · U[:, cpos[j]].
        for j in 0..m {
            let x_j = &ftran_work[self.rpos[j]];
            if x_j.is_exactly_zero() {
                continue;
            }
            for (i, v) in &self.ucols[self.cpos[j]] {
                self.spike[*i].add_mul_assign(v, x_j);
            }
        }

        // Retire the replaced column and cyclically shift the triangular
        // order p..t so the spike lands last and r_p becomes the last pivot
        // row.
        self.nnz -= self.ucols[slot].len();
        self.ucols[slot].clear();
        for q in p..t {
            self.rpos[q] = self.rpos[q + 1];
            self.cpos[q] = self.cpos[q + 1];
            self.cinv[self.cpos[q]] = q;
        }
        self.rpos[t] = r_p;
        self.cpos[t] = slot;
        self.cinv[slot] = t;

        // Eliminate the displaced row r_p from the columns now at positions
        // p..t−1, column by column: the running row value at position j is
        // the stored entry minus the already-computed multipliers folded
        // through this column, so one scan per column suffices and no
        // row-wise structure is needed (the Forrest–Tomlin trick).
        let mut multipliers: Vec<(usize, T)> = Vec::new();
        for j in p..t {
            let col = &mut self.ucols[self.cpos[j]];
            let r_j = self.rpos[j];
            let mut numerator = T::zero();
            let mut diag_idx = None;
            let mut stored = None;
            for (k, (i, v)) in col.iter().enumerate() {
                if *i == r_p {
                    numerator.add_assign_ref(v);
                    stored = Some(k);
                } else if *i == r_j {
                    diag_idx = Some(k);
                } else {
                    for (mr, mv) in &multipliers {
                        if mr == i {
                            numerator.sub_mul_assign(mv, v);
                            break;
                        }
                    }
                }
            }
            if !numerator.is_exactly_zero() {
                let k = diag_idx.expect("upper-triangular column missing its diagonal entry");
                multipliers.push((r_j, numerator.div_ref(&col[k].1)));
            }
            if let Some(k) = stored {
                self.nnz -= 1;
                col.swap_remove(k);
            }
        }

        // New last column: the spike, with its diagonal replaced by the
        // eliminated value d = w[r_p] − Σ λ_j·w[r_j].
        let mut d = std::mem::replace(&mut self.spike[r_p], T::zero());
        for (r_j, lambda) in &multipliers {
            d.sub_mul_assign(lambda, &self.spike[*r_j]);
        }
        assert!(
            !d.is_exactly_zero(),
            "Forrest–Tomlin update produced a singular basis"
        );
        let mut new_col: Vec<(usize, T)> = Vec::new();
        for (i, w_i) in self.spike.iter_mut().enumerate() {
            if i == r_p {
                continue;
            }
            if !w_i.is_exactly_zero() {
                new_col.push((i, std::mem::replace(w_i, T::zero())));
            }
        }
        new_col.push((r_p, d));
        self.nnz += new_col.len();
        self.ucols[slot] = new_col;

        if !multipliers.is_empty() {
            self.nnz += multipliers.len();
            self.ops.push(LOp::Row {
                target: r_p,
                entries: multipliers,
            });
        }
        self.pivots_since_refactor += 1;
    }

    /// Whether the refactorization trigger has fired: either the pivot-count
    /// interval elapsed or the factors' nonzeros outgrew
    /// [`LU_GROWTH_FACTOR`]`· m`. An interval of `usize::MAX` disables
    /// refactorization entirely.
    pub(crate) fn should_refactor(&self, interval: usize) -> bool {
        if interval == usize::MAX {
            return false;
        }
        self.pivots_since_refactor >= interval || self.nnz > LU_GROWTH_FACTOR * self.dim()
    }

    /// Factorize the basis whose position `c` holds the sparse column
    /// `columns(c)` from scratch: right-looking Markowitz elimination (see
    /// the module docs).
    ///
    /// Fails with [`LpError::Internal`] only if the basis is singular, which
    /// would indicate a solver bug — the simplex invariant keeps every basis
    /// nonsingular.
    pub(crate) fn refactorize<'a, F>(&mut self, columns: F) -> Result<(), LpError>
    where
        F: Fn(usize) -> SparseVec<'a, T>,
        T: 'a,
    {
        let m = self.dim();

        // Working copy: active entries per column slot (slot = basis
        // position of the column), kept sorted by row for deterministic
        // scans and merge updates.
        let mut active: Vec<Vec<(usize, T)>> = (0..m)
            .map(|c| {
                let mut col = columns(c).to_pairs();
                col.sort_by_key(|&(r, _)| r);
                col
            })
            .collect();
        // Entries frozen into U as their row is eliminated.
        let mut frozen: Vec<Vec<(usize, T)>> = vec![Vec::new(); m];
        // Row occupancy (may hold stale slots; validated before use) and
        // active-column counts per row for the Markowitz score.
        let mut row_occ: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut row_cnt = vec![0usize; m];
        for (c, col) in active.iter().enumerate() {
            for (r, _) in col {
                row_occ[*r].push(c);
                row_cnt[*r] += 1;
            }
        }
        let mut col_alive = vec![true; m];
        let mut row_alive = vec![true; m];

        let mut ops: Vec<LOp<T>> = Vec::new();
        let mut nnz = 0usize;
        let mut rpos = vec![usize::MAX; m];
        let mut cpos = vec![usize::MAX; m];

        for step in 0..m {
            // Markowitz selection: minimize (row_cnt − 1)·(col_cnt − 1)
            // over all active nonzeros, deterministic tie-breaks.
            let mut best: Option<(usize, usize, usize, usize)> = None; // (score, cnt, r, c)
            for (c, col) in active.iter().enumerate() {
                if !col_alive[c] || col.is_empty() {
                    continue;
                }
                let cnt = col.len();
                for (r, _) in col {
                    let score = (row_cnt[*r] - 1) * (cnt - 1);
                    let key = (score, cnt, *r, c);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let Some((_, _, r, c)) = best else {
                return Err(LpError::Internal(
                    "singular basis during refactorization".to_string(),
                ));
            };

            // Freeze column c: diagonal at (r, pivot_value), multipliers
            // from the remaining active entries.
            let col = std::mem::take(&mut active[c]);
            col_alive[c] = false;
            row_alive[r] = false;
            rpos[step] = r;
            cpos[step] = c;
            let mut pivot_value = T::zero();
            let mut multipliers: Vec<(usize, T)> = Vec::new();
            for (i, v) in &col {
                if *i == r {
                    pivot_value = v.clone();
                } else {
                    row_cnt[*i] -= 1;
                }
            }
            debug_assert!(!pivot_value.is_exactly_zero());
            for (i, v) in &col {
                if *i != r {
                    multipliers.push((*i, v.div_ref(&pivot_value)));
                }
            }
            let mut ucol = std::mem::take(&mut frozen[c]);
            ucol.push((r, pivot_value));
            nnz += ucol.len();
            frozen[c] = ucol;

            // Update every other active column containing row r:
            // col' ← col' − u·l (merge of two row-sorted lists), freezing
            // the (r, u) entry into U.
            let mut targets = std::mem::take(&mut row_occ[r]);
            targets.sort_unstable();
            targets.dedup();
            for c_t in targets {
                if !col_alive[c_t] || c_t == c {
                    continue;
                }
                let Some(k) = active[c_t].iter().position(|(i, _)| *i == r) else {
                    continue; // stale occupancy entry
                };
                let u = active[c_t].remove(k);
                row_cnt[r] = row_cnt[r].saturating_sub(1);
                let factor = u.1.clone();
                frozen[c_t].push(u);
                // Merge: subtract factor·multipliers from the sorted column.
                let old = std::mem::take(&mut active[c_t]);
                let mut merged = Vec::with_capacity(old.len() + multipliers.len());
                let mut oi = old.into_iter().peekable();
                let mut mi = multipliers.iter().peekable();
                loop {
                    match (oi.peek(), mi.peek()) {
                        (Some((ri, _)), Some((rm, _))) if ri == rm => {
                            let (ri, mut val) = oi.next().expect("peeked");
                            let (_, l) = mi.next().expect("peeked");
                            val.sub_mul_assign(&factor, l);
                            if val.is_exactly_zero() {
                                // Exact cancellation: drop the entry.
                                row_cnt[ri] -= 1;
                            } else {
                                merged.push((ri, val));
                            }
                        }
                        (Some((ri, _)), Some((rm, _))) if ri < rm => {
                            merged.push(oi.next().expect("peeked"));
                        }
                        (Some(_), None) => {
                            merged.push(oi.next().expect("peeked"));
                        }
                        (_, Some(_)) => {
                            // Fill-in from the multiplier side.
                            let (rm, l) = mi.next().expect("peeked");
                            let mut val = T::zero();
                            val.sub_mul_assign(&factor, l);
                            if !val.is_exactly_zero() {
                                row_occ[*rm].push(c_t);
                                row_cnt[*rm] += 1;
                                merged.push((*rm, val));
                            }
                        }
                        (None, None) => break,
                    }
                }
                active[c_t] = merged;
            }

            if !multipliers.is_empty() {
                nnz += multipliers.len();
                ops.push(LOp::Col {
                    pivot: r,
                    entries: multipliers,
                });
            }
        }
        debug_assert!(row_alive.iter().all(|a| !a));

        self.ops = ops;
        self.ucols = frozen;
        self.cinv = vec![0; m];
        self.slot_row = vec![0; m];
        self.rinv = vec![0; m];
        for j in 0..m {
            self.cinv[cpos[j]] = j;
            self.slot_row[cpos[j]] = rpos[j];
            self.rinv[rpos[j]] = cpos[j];
        }
        self.rpos = rpos;
        self.cpos = cpos;
        self.nnz = nnz;
        self.pivots_since_refactor = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    /// Owned index/value storage a [`SparseVec`] view can borrow from.
    type Col = (Vec<usize>, Vec<Rational>);

    fn sv(col: &Col) -> SparseVec<'_, Rational> {
        SparseVec::new(&col.0, &col.1)
    }

    fn columns() -> Vec<Col> {
        // B = [[2, 0, 1], [0, 1, 1], [0, 0, 3]] by columns.
        vec![
            (vec![0], vec![rat(2, 1)]),
            (vec![1], vec![rat(1, 1)]),
            (vec![0, 1, 2], vec![rat(1, 1), rat(1, 1), rat(3, 1)]),
        ]
    }

    fn ftran_dense(lu: &LuFactors<Rational>, col: &Col) -> Vec<Rational> {
        let m = lu.dim();
        let mut work = vec![Rational::zero(); m];
        lu.ftran(&mut work, sv(col));
        (0..m).map(|c| work[lu.row_of(c)].clone()).collect()
    }

    #[test]
    fn push_pivot_then_ftran_solves_against_the_updated_basis() {
        let cols = columns();
        let mut lu: LuFactors<Rational> = LuFactors::identity(3);
        let mut work = vec![Rational::zero(); 3];
        for (p, col) in cols.iter().enumerate() {
            sparse::clear(&mut work);
            lu.ftran(&mut work, sv(col));
            lu.push_pivot(p, &work);
        }
        // B·(1,1,1) = (3, 2, 3)ᵀ.
        let rhs: Col = (vec![0, 1, 2], vec![rat(3, 1), rat(2, 1), rat(3, 1)]);
        let x = ftran_dense(&lu, &rhs);
        assert_eq!(x, vec![rat(1, 1), rat(1, 1), rat(1, 1)]);
    }

    #[test]
    fn refactorize_preserves_every_solve_exactly() {
        let cols = columns();
        let mut lu: LuFactors<Rational> = LuFactors::identity(3);
        let mut work = vec![Rational::zero(); 3];
        for (p, col) in cols.iter().enumerate() {
            sparse::clear(&mut work);
            lu.ftran(&mut work, sv(col));
            lu.push_pivot(p, &work);
        }
        let rhs: Col = (vec![0, 1, 2], vec![rat(7, 1), rat(-2, 1), rat(5, 2)]);
        let before = ftran_dense(&lu, &rhs);
        let mut y_before = vec![Rational::zero(); 3];
        lu.btran_unit(&mut y_before, 2);

        lu.refactorize(|c| sv(&cols[c])).unwrap();
        let after = ftran_dense(&lu, &rhs);
        assert_eq!(before, after, "FTRAN must be factorization-independent");
        let mut y_after = vec![Rational::zero(); 3];
        lu.btran_unit(&mut y_after, 2);
        assert_eq!(y_before, y_after, "BTRAN must be factorization-independent");
    }

    #[test]
    fn updates_in_the_middle_of_the_basis_shift_positions() {
        // Pivot all three columns in, then replace the middle one with a
        // denser column and check solves against the new matrix.
        let cols = columns();
        let mut lu: LuFactors<Rational> = LuFactors::identity(3);
        let mut work = vec![Rational::zero(); 3];
        for (p, col) in cols.iter().enumerate() {
            sparse::clear(&mut work);
            lu.ftran(&mut work, sv(col));
            lu.push_pivot(p, &work);
        }
        // Replace position 1 (column [0,1,0]ᵀ) with [1,2,1]ᵀ.
        let entering: Col = (vec![0, 1, 2], vec![rat(1, 1), rat(2, 1), rat(1, 1)]);
        sparse::clear(&mut work);
        lu.ftran(&mut work, sv(&entering));
        lu.push_pivot(1, &work);
        // New B = [[2,1,1],[0,2,1],[0,1,3]] (columns 0, entering, 2).
        // Solve B x = (4, 3, 4)ᵀ: x = (1, 1, 1).
        let rhs: Col = (vec![0, 1, 2], vec![rat(4, 1), rat(3, 1), rat(4, 1)]);
        assert_eq!(
            ftran_dense(&lu, &rhs),
            vec![rat(1, 1), rat(1, 1), rat(1, 1)]
        );
        // BTRAN cross-check: yᵀB = (1, 0, 0) row recovery.
        let mut y = vec![Rational::zero(); 3];
        lu.btran_unit(&mut y, 0);
        // y solves Bᵀy = e_pos0; verify against all three basis columns.
        let dot = |col: &Col| -> Rational { sv(col).dot(&y) };
        assert_eq!(dot(&cols[0]), rat(1, 1));
        assert_eq!(dot(&entering), Rational::zero());
        assert_eq!(dot(&cols[2]), Rational::zero());
    }

    #[test]
    fn growth_trigger_and_interval_semantics() {
        let lu: LuFactors<Rational> = LuFactors::identity(2);
        assert!(!lu.should_refactor(usize::MAX));
        assert!(!lu.should_refactor(1), "no pivots yet");
        let cols: Vec<Col> = vec![
            (vec![0, 1], vec![rat(1, 2), rat(1, 3)]),
            (vec![1], vec![rat(2, 1)]),
        ];
        let mut lu: LuFactors<Rational> = LuFactors::identity(2);
        let mut work = vec![Rational::zero(); 2];
        lu.ftran(&mut work, sv(&cols[0]));
        lu.push_pivot(0, &work);
        assert!(lu.should_refactor(1));
        assert!(!lu.should_refactor(2));
        assert!(
            !lu.should_refactor(usize::MAX),
            "MAX disables both triggers"
        );
        lu.refactorize(|c| sv(&cols[c])).unwrap();
        assert!(!lu.should_refactor(1), "refactorization resets the counter");
    }

    #[test]
    fn markowitz_keeps_a_banded_factorization_sparse() {
        // Arrow matrix: dense first column + diagonal. Eliminating the
        // diagonal columns first (which Markowitz does) produces zero
        // fill-in, while natural order would fill the whole matrix.
        let m = 8usize;
        let mut cols: Vec<Col> = Vec::new();
        let mut dense0: Col = ((0..m).collect(), (0..m).map(|_| rat(1, 1)).collect());
        dense0.1[0] = rat(5, 1);
        cols.push(dense0);
        for c in 1..m {
            cols.push((vec![0, c], vec![rat(1, 1), rat(2, 1)]));
        }
        let mut lu: LuFactors<Rational> = LuFactors::identity(m);
        lu.refactorize(|c| sv(&cols[c])).unwrap();
        // Fill-free bound: every original nonzero lands in L or U and nothing
        // else appears. Natural (column-0-first) order would instead fill the
        // entire m×m matrix.
        let original: usize = cols.iter().map(|c| c.0.len()).sum();
        assert!(
            lu.nnz <= original,
            "Markowitz ordering must avoid arrow-matrix fill-in (nnz = {}, original = {original})",
            lu.nnz
        );
        // And the factorization actually solves: B x = column sums → x = 1.
        let mut rhs_dense = vec![Rational::zero(); m];
        for col in &cols {
            for (r, v) in col.0.iter().zip(&col.1) {
                rhs_dense[*r].add_assign_ref(v);
            }
        }
        let mut rhs: Col = (Vec::new(), Vec::new());
        for (r, v) in rhs_dense.iter().enumerate() {
            if !v.is_exactly_zero() {
                rhs.0.push(r);
                rhs.1.push(v.clone());
            }
        }
        assert_eq!(ftran_dense(&lu, &rhs), vec![rat(1, 1); m]);
    }
}
