//! Dense two-phase simplex solver with Bland's anti-cycling rule.
//!
//! The solver is generic over [`Scalar`]: with `Rational` every pivot is exact
//! and termination is guaranteed by Bland's rule; with `f64` a small tolerance
//! is used for the sign tests. The LPs arising from the paper (Sections 2.4.3
//! and 2.5) are small and dense, so a full-tableau implementation is the
//! simplest correct choice.

use privmech_linalg::Scalar;

use crate::model::{LpError, Model, Relation, Sense, Solution, VarBound};

/// How a model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum ColumnMap {
    /// A non-negative variable occupies a single column.
    Single(usize),
    /// A free variable is split as `x = plus - minus`.
    Split { plus: usize, minus: usize },
}

/// Internal standard-form representation: minimize `c^T y` subject to
/// `A y = b`, `y >= 0`, `b >= 0`.
struct StandardForm<T: Scalar> {
    /// Constraint rows including slack/surplus columns but not artificials.
    rows: Vec<Vec<T>>,
    /// Right-hand sides, all non-negative.
    rhs: Vec<T>,
    /// Objective coefficients for every structural + slack column.
    costs: Vec<T>,
    /// Per-row basis seed: `Some(col)` if a slack column can start in the
    /// basis, `None` if the row needs an artificial variable.
    slack_basis: Vec<Option<usize>>,
    /// Mapping from model variables to columns.
    mapping: Vec<ColumnMap>,
    /// Number of columns (structural + slack/surplus).
    num_cols: usize,
}

fn build_standard_form<T: Scalar>(model: &Model<T>) -> Result<StandardForm<T>, LpError> {
    let (sense, objective) = model.objective.clone().ok_or(LpError::MissingObjective)?;

    // Map model variables onto non-negative columns.
    let mut mapping = Vec::with_capacity(model.bounds.len());
    let mut num_cols = 0usize;
    for bound in &model.bounds {
        match bound {
            VarBound::NonNegative => {
                mapping.push(ColumnMap::Single(num_cols));
                num_cols += 1;
            }
            VarBound::Free => {
                mapping.push(ColumnMap::Split {
                    plus: num_cols,
                    minus: num_cols + 1,
                });
                num_cols += 2;
            }
        }
    }
    let structural_cols = num_cols;

    // Constraint rows over structural columns; slack/surplus columns appended.
    let mut rows: Vec<Vec<T>> = Vec::with_capacity(model.constraints.len());
    let mut rhs: Vec<T> = Vec::with_capacity(model.constraints.len());
    let mut relations: Vec<Relation> = Vec::with_capacity(model.constraints.len());

    for constraint in &model.constraints {
        let mut row = vec![T::zero(); structural_cols];
        for (var, coeff) in constraint.expr.terms() {
            match mapping[var.0] {
                ColumnMap::Single(col) => {
                    row[col] = row[col].clone() + coeff.clone();
                }
                ColumnMap::Split { plus, minus } => {
                    row[plus] = row[plus].clone() + coeff.clone();
                    row[minus] = row[minus].clone() - coeff.clone();
                }
            }
        }
        let mut b = constraint.rhs.clone() - constraint.expr.constant_part().clone();
        let mut relation = constraint.relation;
        if b.is_negative_approx() {
            // Multiply the whole row by -1 so that b >= 0, flipping <= / >=.
            for cell in &mut row {
                *cell = -cell.clone();
            }
            b = -b;
            relation = match relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        rows.push(row);
        rhs.push(b);
        relations.push(relation);
    }

    // Add slack / surplus columns.
    let num_rows = rows.len();
    let mut slack_basis: Vec<Option<usize>> = vec![None; num_rows];
    for (i, relation) in relations.iter().enumerate() {
        match relation {
            Relation::Le => {
                let col = num_cols;
                num_cols += 1;
                for (r, row) in rows.iter_mut().enumerate() {
                    row.push(if r == i { T::one() } else { T::zero() });
                }
                slack_basis[i] = Some(col);
            }
            Relation::Ge => {
                num_cols += 1;
                for (r, row) in rows.iter_mut().enumerate() {
                    row.push(if r == i { -T::one() } else { T::zero() });
                }
            }
            Relation::Eq => {}
        }
    }

    // Objective over structural columns (slack/surplus cost 0).
    let mut costs = vec![T::zero(); num_cols];
    let maximize = sense == Sense::Maximize;
    for (var, coeff) in objective.terms() {
        let signed = if maximize { -coeff.clone() } else { coeff.clone() };
        match mapping[var.0] {
            ColumnMap::Single(col) => costs[col] = costs[col].clone() + signed,
            ColumnMap::Split { plus, minus } => {
                costs[plus] = costs[plus].clone() + signed.clone();
                costs[minus] = costs[minus].clone() - signed;
            }
        }
    }

    Ok(StandardForm {
        rows,
        rhs,
        costs,
        slack_basis,
        mapping,
        num_cols,
    })
}

/// A full simplex tableau: `rows x (cols + 1)` with the right-hand side in the
/// last column, plus a reduced-cost row.
struct Tableau<T: Scalar> {
    body: Vec<Vec<T>>,
    /// Reduced costs for the current phase objective, length `cols + 1`
    /// (last entry is minus the current objective value).
    obj: Vec<T>,
    basis: Vec<usize>,
    cols: usize,
    /// Columns the entering rule must skip (artificials during phase 2).
    banned: Vec<bool>,
}

impl<T: Scalar> Tableau<T> {
    fn rhs(&self, row: usize) -> &T {
        &self.body[row][self.cols]
    }

    /// One simplex pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_value = self.body[row][col].clone();
        // Normalize the pivot row.
        for j in 0..=self.cols {
            self.body[row][j] = self.body[row][j].clone() / pivot_value.clone();
        }
        // Eliminate the pivot column from all other rows and the objective row.
        for r in 0..self.body.len() {
            if r == row {
                continue;
            }
            let factor = self.body[r][col].clone();
            if factor.is_zero_approx() {
                continue;
            }
            for j in 0..=self.cols {
                let delta = factor.clone() * self.body[row][j].clone();
                self.body[r][j] = self.body[r][j].clone() - delta;
            }
        }
        let factor = self.obj[col].clone();
        if !factor.is_zero_approx() {
            for j in 0..=self.cols {
                let delta = factor.clone() * self.body[row][j].clone();
                self.obj[j] = self.obj[j].clone() - delta;
            }
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations with Bland's rule until optimality or
    /// unboundedness. Returns `Err(LpError::Unbounded)` when a column with a
    /// negative reduced cost has no positive entry.
    fn optimize(&mut self) -> Result<(), LpError> {
        // Generous iteration cap: Bland's rule guarantees finite termination,
        // this cap only guards against a solver bug turning into a hang.
        let max_iters = 50_000usize.max(100 * (self.cols + self.body.len()));
        for _ in 0..max_iters {
            // Entering column: smallest index with negative reduced cost.
            let entering = (0..self.cols)
                .find(|&j| !self.banned[j] && self.obj[j].is_negative_approx());
            let Some(col) = entering else {
                return Ok(());
            };
            // Leaving row: minimum ratio, ties broken by smallest basis index.
            let mut best: Option<(usize, T)> = None;
            for r in 0..self.body.len() {
                let coeff = self.body[r][col].clone();
                if !coeff.is_positive_approx() {
                    continue;
                }
                let ratio = self.rhs(r).clone() / coeff;
                match &best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < *bratio
                            || (ratio == *bratio && self.basis[r] < self.basis[*br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::Internal(
            "simplex iteration limit exceeded".to_string(),
        ))
    }
}

/// Solve a [`Model`] by the two-phase simplex method.
pub fn solve_model<T: Scalar>(model: &Model<T>) -> Result<Solution<T>, LpError> {
    let sf = build_standard_form(model)?;
    let num_rows = sf.rows.len();

    // Handle the degenerate "no constraints" case directly: the optimum is at
    // the origin if the costs are non-negative, otherwise unbounded.
    if num_rows == 0 {
        for c in &sf.costs {
            if c.is_negative_approx() {
                return Err(LpError::Unbounded);
            }
        }
        let values = extract_values(&sf, &[], &[], sf.num_cols);
        let objective = report_objective(model, &values);
        return Ok(Solution { objective, values });
    }

    // Build the initial tableau, adding artificial columns where no slack can
    // seed the basis.
    let mut artificial_cols: Vec<usize> = Vec::new();
    let mut basis = vec![usize::MAX; num_rows];
    let mut total_cols = sf.num_cols;
    for (i, seed) in sf.slack_basis.iter().enumerate() {
        match seed {
            Some(col) => basis[i] = *col,
            None => {
                let col = total_cols;
                total_cols += 1;
                artificial_cols.push(col);
                basis[i] = col;
            }
        }
    }

    let mut body: Vec<Vec<T>> = Vec::with_capacity(num_rows);
    for (i, row) in sf.rows.iter().enumerate() {
        let mut full = Vec::with_capacity(total_cols + 1);
        full.extend(row.iter().cloned());
        for &acol in &artificial_cols {
            full.push(if basis[i] == acol { T::one() } else { T::zero() });
        }
        full.push(sf.rhs[i].clone());
        body.push(full);
    }

    let is_artificial: Vec<bool> = (0..total_cols)
        .map(|j| j >= sf.num_cols)
        .collect();

    // -------------------------- Phase 1 --------------------------
    if !artificial_cols.is_empty() {
        // Phase-1 objective: minimize the sum of artificial variables.
        // Reduced costs: c1_j - sum_i c1_{B(i)} * a_ij, where c1 is 1 on
        // artificials and 0 elsewhere.
        let mut obj = vec![T::zero(); total_cols + 1];
        for j in 0..total_cols {
            let mut reduced = if is_artificial[j] { T::one() } else { T::zero() };
            for (i, row) in body.iter().enumerate() {
                if is_artificial[basis[i]] {
                    reduced = reduced - row[j].clone();
                }
            }
            obj[j] = reduced;
        }
        let mut objective_value = T::zero();
        for (i, row) in body.iter().enumerate() {
            if is_artificial[basis[i]] {
                objective_value = objective_value + row[total_cols].clone();
            }
        }
        obj[total_cols] = -objective_value;

        let mut tableau = Tableau {
            body,
            obj,
            basis,
            cols: total_cols,
            banned: vec![false; total_cols],
        };
        tableau.optimize()?;

        let phase1_value = -tableau.obj[total_cols].clone();
        if phase1_value.is_positive_approx() {
            return Err(LpError::Infeasible);
        }

        // Drive any remaining artificial variables out of the basis.
        for row in 0..tableau.body.len() {
            if !is_artificial[tableau.basis[row]] {
                continue;
            }
            // Find a non-artificial column with a nonzero coefficient.
            let replacement = (0..sf.num_cols)
                .find(|&j| !tableau.body[row][j].is_zero_approx());
            if let Some(col) = replacement {
                tableau.pivot(row, col);
            }
            // If no replacement exists the row is redundant; the artificial
            // stays basic at value zero, which is harmless because the column
            // is banned from entering and its value can only change through a
            // ratio test that keeps it at zero.
        }

        body = tableau.body;
        basis = tableau.basis;
    }

    // -------------------------- Phase 2 --------------------------
    // Reduced costs for the real objective.
    let mut costs_full = sf.costs.clone();
    costs_full.resize(total_cols, T::zero());
    let mut obj = vec![T::zero(); total_cols + 1];
    for j in 0..total_cols {
        let mut reduced = costs_full[j].clone();
        for (i, row) in body.iter().enumerate() {
            let cb = costs_full[basis[i]].clone();
            if cb.is_zero_approx() {
                continue;
            }
            reduced = reduced - cb * row[j].clone();
        }
        obj[j] = reduced;
    }
    let mut objective_value = T::zero();
    for (i, row) in body.iter().enumerate() {
        let cb = costs_full[basis[i]].clone();
        if cb.is_zero_approx() {
            continue;
        }
        objective_value = objective_value + cb * row[total_cols].clone();
    }
    obj[total_cols] = -objective_value;

    let mut tableau = Tableau {
        body,
        obj,
        basis,
        cols: total_cols,
        banned: is_artificial,
    };
    tableau.optimize()?;

    // ----------------------- Extract solution -----------------------
    let mut column_values = vec![T::zero(); total_cols];
    for (i, &b) in tableau.basis.iter().enumerate() {
        column_values[b] = tableau.rhs(i).clone();
    }
    let values = extract_values(&sf, &column_values, &tableau.basis, total_cols);
    let objective = report_objective(model, &values);
    Ok(Solution { objective, values })
}

fn extract_values<T: Scalar>(
    sf: &StandardForm<T>,
    column_values: &[T],
    _basis: &[usize],
    total_cols: usize,
) -> Vec<T> {
    let get = |col: usize| -> T {
        if col < total_cols && col < column_values.len() {
            column_values[col].clone()
        } else {
            T::zero()
        }
    };
    sf.mapping
        .iter()
        .map(|m| match *m {
            ColumnMap::Single(col) => get(col),
            ColumnMap::Split { plus, minus } => get(plus) - get(minus),
        })
        .collect()
}

fn report_objective<T: Scalar>(model: &Model<T>, values: &[T]) -> T {
    let (_, expr) = model
        .objective
        .as_ref()
        .expect("objective checked during standard-form construction");
    expr.evaluate(values)
}

#[cfg(test)]
mod tests {
    use crate::model::{LinExpr, LpError, Model, Relation, Sense, VarBound};
    use privmech_numerics::{rat, Rational};

    #[test]
    fn maximize_two_variable_example() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Classic Dantzig example; optimum 36 at (2, 6).
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0), Relation::Le, 4.0).unwrap();
        m.add_constraint(LinExpr::term(y, 2.0), Relation::Le, 12.0).unwrap();
        m.add_constraint(LinExpr::term(x, 3.0).plus(y, 2.0), Relation::Le, 18.0)
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 3.0).plus(y, 5.0))
            .unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!((sol.value(y) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn exact_rational_solution_is_exact() {
        // min x + y  s.t. x + 2y >= 3, 3x + y >= 4, x,y >= 0.
        // Optimum at intersection: x = 1, y = 1, objective 2.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(2, 1)),
            Relation::Ge,
            rat(3, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(3, 1)).plus(y, rat(1, 1)),
            Relation::Ge,
            rat(4, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(*sol.value(x), rat(1, 1));
        assert_eq!(*sol.value(y), rat(1, 1));
    }

    #[test]
    fn equality_constraints_and_free_variables() {
        // min |style| epigraph-free test: min z s.t. z free, z = x - 2,
        // x + y = 5, y >= 1, all vars >= 0 except z free.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        let z = m.add_var("z", VarBound::Free);
        m.add_constraint(
            LinExpr::term(z, rat(1, 1)).plus(x, rat(-1, 1)),
            Relation::Eq,
            rat(-2, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Eq,
            rat(5, 1),
        )
        .unwrap();
        m.add_constraint(LinExpr::term(y, rat(1, 1)), Relation::Ge, rat(1, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(z, rat(1, 1)))
            .unwrap();
        let sol = m.solve().unwrap();
        // x can go as low as 0 (then y = 5 >= 1), so z = x - 2 = -2.
        assert_eq!(sol.objective, rat(-2, 1));
        assert_eq!(*sol.value(z), rat(-2, 1));
    }

    #[test]
    fn infeasible_detected() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Ge, rat(2, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(1, 1)))
            .unwrap();
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0), Relation::Ge, 1.0).unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 1.0)).unwrap();
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn missing_objective_is_an_error() {
        let m: Model<f64> = Model::new();
        assert_eq!(m.solve().unwrap_err(), LpError::MissingObjective);
    }

    #[test]
    fn no_constraints_minimization_at_origin() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(3, 1)))
            .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, Rational::zero());
        // And the unbounded direction is detected without constraints too.
        let mut m2: Model<Rational> = Model::new();
        let y = m2.add_var("y", VarBound::NonNegative);
        m2.set_objective(Sense::Maximize, LinExpr::term(y, rat(1, 1)))
            .unwrap();
        assert_eq!(m2.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn minimize_max_epigraph_helper() {
        // minimize max(x, 4 - x) over 0 <= x <= 4: optimum 2 at x = 2.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(4, 1))
            .unwrap();
        // Expressions: x and 4 - x.
        let e1 = LinExpr::term(x, rat(1, 1));
        let mut e2 = LinExpr::term(x, rat(-1, 1));
        e2.add_constant(rat(4, 1));
        let d = m.minimize_max(vec![e1, e2]).unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(*sol.value(d), rat(2, 1));
        assert_eq!(*sol.value(x), rat(2, 1));
    }

    #[test]
    fn degenerate_lp_terminates_with_blands_rule() {
        // Beale's classical cycling example (Chvátal, Linear Programming):
        //   max 10a - 57b - 9c - 24d
        //   s.t. 0.5a - 5.5b - 2.5c + 9d <= 0
        //        0.5a - 1.5b - 0.5c +  d <= 0
        //        a <= 1
        // The textbook optimum is 1 at a = 1, c = 1, b = d = 0. Dantzig's
        // largest-coefficient rule cycles here; Bland's rule must terminate.
        let mut m: Model<Rational> = Model::new();
        let a = m.add_var("a", VarBound::NonNegative);
        let b = m.add_var("b", VarBound::NonNegative);
        let c = m.add_var("c", VarBound::NonNegative);
        let d = m.add_var("d", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(a, rat(1, 2))
                .plus(b, rat(-11, 2))
                .plus(c, rat(-5, 2))
                .plus(d, rat(9, 1)),
            Relation::Le,
            Rational::zero(),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(a, rat(1, 2))
                .plus(b, rat(-3, 2))
                .plus(c, rat(-1, 2))
                .plus(d, rat(1, 1)),
            Relation::Le,
            Rational::zero(),
        )
        .unwrap();
        m.add_constraint(LinExpr::term(a, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.set_objective(
            Sense::Maximize,
            LinExpr::term(a, rat(10, 1))
                .plus(b, rat(-57, 1))
                .plus(c, rat(-9, 1))
                .plus(d, rat(-24, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(1, 1));
        assert_eq!(*sol.value(a), rat(1, 1));
        assert_eq!(*sol.value(c), rat(1, 1));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // Constraint written with a negative right-hand side.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        // -x - y <= -2  (i.e. x + y >= 2)
        m.add_constraint(
            LinExpr::term(x, rat(-1, 1)).plus(y, rat(-1, 1)),
            Relation::Le,
            rat(-2, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(2, 1)).plus(y, rat(3, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(4, 1));
        assert_eq!(*sol.value(x), rat(2, 1));
    }
}
