//! Two-phase simplex solver: Dantzig pricing with a Bland fallback, in two
//! interchangeable forms — a dense tableau and a revised simplex with a
//! product-form basis factorization.
//!
//! The full solver design — standard-form construction, the zero-rhs `>=`
//! rewrite, the pricing rules, the basis-factorization lifecycle and the
//! dense ≡ revised pivot-sequence contract — is documented in
//! [`crates/lp/SOLVER.md`](https://github.com/privmech/privmech/blob/main/crates/lp/SOLVER.md)
//! (in-tree: `crates/lp/SOLVER.md`). This module header summarizes the parts
//! a caller needs.
//!
//! # Solver forms
//!
//! * **Dense tableau** ([`SolverForm::Dense`]): every pivot rewrites the full
//!   `rows × cols` tableau (support-masked). Simple, battle-tested, and the
//!   only form the `f64` backend runs (see below).
//! * **Revised simplex** ([`SolverForm::Revised`], the [`SolverForm::Auto`]
//!   default for exact scalars): the basis inverse is kept as an eta file
//!   (`crate::basis`), entering columns are FTRAN'd against the original
//!   sparse constraint columns, and the reduced-cost row is maintained from
//!   BTRAN'd pivot rows — each iteration prices from the factorization
//!   instead of rewriting the tableau, which is the ROADMAP's
//!   revised-simplex performance item.
//!
//! **Identity contract**: on exact scalars both forms follow the *identical*
//! pivot sequence (same entering column and leaving position at every
//! iteration, phases included) and therefore return bit-identical solutions
//! and [`PivotStats`]. The two forms share the entering rule
//! (`crate::pricing`) and ratio test (`crate::ratio`) as single
//! implementations, fed with exactly equal reduced costs / column entries
//! (exact arithmetic knows nothing of the representation that produced
//! them). The contract is property-tested over random and degenerate LPs
//! ([`solve_model_traced`] exposes the pivot sequence) and pinned end-to-end
//! through `PrivacyEngine` and the serve cache. The `f64` backend always
//! runs the dense tableau — a float FTRAN/BTRAN rounds differently than a
//! float tableau update, which would break both the contract and the
//! backend's carefully preserved seed trajectory — so [`SolverForm::Auto`]
//! (and even an explicit [`SolverForm::Revised`]) falls back to dense for
//! inexact scalars.
//!
//! # Pricing strategy
//!
//! The solver is generic over [`Scalar`]: with `Rational` every pivot is
//! exact; with `f64` a small tolerance is used for the sign tests. The
//! *entering column rule* matters enormously for how many pivots a solve
//! needs:
//!
//! * **Dantzig pricing** (the default): enter the column with the most
//!   negative reduced cost. Empirically this takes far fewer pivots on the
//!   privacy-mechanism LPs than Bland's rule, but on degenerate vertices it
//!   can cycle.
//! * **Bland fallback**: the solver counts consecutive *degenerate* pivots
//!   (leaving ratio exactly zero, so the objective does not move). Once the
//!   streak exceeds [`SolverOptions::degeneracy_streak_limit`], pricing
//!   switches to Bland's smallest-index rule, which provably never cycles.
//!   The first non-degenerate (objective-improving) pivot switches back to
//!   Dantzig. Termination is guaranteed: while Bland is engaged no cycle can
//!   form, so the solver eventually leaves the degenerate vertex with a strict
//!   objective decrease, and the objective can only strictly decrease finitely
//!   many times.
//!
//! Pure Bland pricing remains available through [`PricingRule::Bland`] (used
//! by the regression tests to cross-check objectives).
//!
//! Dantzig pricing only engages for **exact** scalars (`T::is_exact()`): on
//! the heavily degenerate phase-1 tableaus of the paper's LPs the
//! most-negative-cost rule steers `f64` through ill-conditioned bases until
//! accumulated noise fabricates infeasible/unbounded verdicts. The `f64`
//! backend therefore always prices by Bland's rule, exactly like the solver
//! before this rework; making Dantzig robust for floats would need scaling
//! plus a Harris-style ratio test and is left as an open item.
//!
//! # Statistics
//!
//! Every solve reports a [`PivotStats`] on the returned
//! [`Solution`]: pivot counts per phase, degenerate
//! pivot count, how many pivots each pricing rule performed, and how often the
//! Bland fallback engaged. The bench tooling records these alongside wall
//! times so perf regressions can be separated into "more pivots" vs "slower
//! pivots".

use privmech_linalg::{kernels, Scalar};

use crate::model::{LpError, Model, Solution};
use crate::pricing::FallbackState;
use crate::ratio::{choose_leaving, choose_leaving_harris};
use crate::standard::{build_standard_form, extract_values, report_objective, StandardForm};

/// Entering-column pricing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Most-negative reduced cost, falling back to Bland's rule after a
    /// degeneracy streak (see the module docs). The default. Only engages
    /// for exact scalars; inexact backends always price by Bland's rule.
    #[default]
    DantzigWithBlandFallback,
    /// Bland's smallest-index anti-cycling rule throughout.
    Bland,
    /// Devex pricing (Harris 1973): approximate steepest-edge reference
    /// weights, selecting the column maximizing `d_j² / w_j`. Weights are
    /// maintained in `f64` even on exact backends — the weight only *ranks*
    /// candidates among the exactly-negative reduced costs, so an inexact
    /// weight can never admit a non-improving column. Falls back to Bland on
    /// degeneracy streaks exactly like Dantzig. Changes the pivot sequence
    /// (and possibly the optimal vertex reached), so it is fingerprint- and
    /// cache-relevant; solutions are asserted through the exact optimality
    /// certificate ([`crate::certificate`]) instead of pivot identity.
    Devex,
}

/// Which simplex implementation executes the solve. Both forms follow the
/// identical pivot sequence on exact scalars (see the module docs), so this
/// is an execution detail — it never changes a result, and is therefore
/// deliberately excluded from request fingerprints and cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverForm {
    /// Revised simplex for exact scalars, dense tableau for `f64`. The
    /// default.
    #[default]
    Auto,
    /// Always the dense tableau.
    Dense,
    /// Revised simplex where sound: exact scalars run it, inexact backends
    /// still fall back to the dense tableau (a float FTRAN/BTRAN rounds
    /// differently than a float tableau update; see the module docs).
    Revised,
}

/// Which basis-factorization representation the revised simplex maintains.
/// Both kinds produce mathematically exact FTRAN/BTRAN results on exact
/// scalars, so this never changes a pivot choice or a solution — like
/// [`SolverForm`] it is an execution detail, deliberately excluded from
/// request fingerprints and cache keys (property-tested in
/// `crates/lp/tests/properties.rs` and `crates/core/tests/fingerprint.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorizationKind {
    /// Sparse LU with Markowitz ordering and Forrest–Tomlin updates
    /// (`crate::lu`). The default since the third solver-speed round.
    #[default]
    LuForrestTomlin,
    /// Product-form inverse (eta file), the previous default, retained as a
    /// cross-check and for the representation-invariance property tests.
    EtaFile,
}

/// Numeric pre-conditioning for the inexact (`f64`) backend.
///
/// Exact backends ignore this entirely — rational arithmetic needs no
/// conditioning, and scaling would only bloat the numerators/denominators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScalingMode {
    /// No scaling; the `f64` backend prices by Bland's rule exactly as it
    /// has since the seed solver, byte-preserving its pivot trajectory (and
    /// hence every cached `f64` artifact). The default.
    #[default]
    Off,
    /// Power-of-two row/column equilibration (lossless in binary floating
    /// point) plus the Harris two-pass ratio test, which together make
    /// Dantzig and devex pricing safe off the exact path. Changes the `f64`
    /// pivot trajectory, so it is fingerprint-relevant when enabled.
    Equilibrate,
}

/// Cross-parameter warm-start behavior for templated sweeps
/// ([`crate::template::ModelTemplate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStartMode {
    /// Every solve starts cold from the slack/artificial basis. The default.
    #[default]
    Off,
    /// Reoptimize from the previous parameter's optimal basis with the dual
    /// simplex (`crate::dual_simplex`), falling back to a cold solve when
    /// the carried basis is neither primal nor dual feasible. May reach a
    /// different optimal vertex than a cold solve, so it is
    /// fingerprint-relevant when enabled; correctness is asserted through
    /// the exact optimality certificate.
    DualSimplex,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Entering-column rule.
    pub pricing: PricingRule,
    /// Number of consecutive degenerate pivots tolerated under Dantzig
    /// pricing before switching to Bland's rule.
    pub degeneracy_streak_limit: usize,
    /// Which simplex implementation to run (a result-invariant execution
    /// detail; see [`SolverForm`]).
    pub form: SolverForm,
    /// Revised simplex only: pivots between basis refactorizations.
    /// [`SolverOptions::NEVER_REFACTOR`] disables refactorization (the
    /// factorization then grows by one update per pivot); a *growth* trigger
    /// fires early regardless of the interval (see `crate::basis`). Ignored
    /// by the dense form.
    pub refactor_interval: usize,
    /// Revised simplex only: which basis-factorization representation to
    /// maintain (a result-invariant execution detail; see
    /// [`FactorizationKind`]). Ignored by the dense form.
    pub factorization: FactorizationKind,
    /// `f64` backend only: numeric pre-conditioning (see [`ScalingMode`]).
    /// Exact backends ignore it.
    pub scaling: ScalingMode,
    /// Templated sweeps only: cross-parameter warm-start behavior (see
    /// [`WarmStartMode`]). Single solves ignore it.
    pub warm_start: WarmStartMode,
}

impl SolverOptions {
    /// Sentinel for [`SolverOptions::refactor_interval`] disabling
    /// refactorization (including the eta-growth trigger) entirely.
    pub const NEVER_REFACTOR: usize = usize::MAX;
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            pricing: PricingRule::default(),
            degeneracy_streak_limit: 8,
            form: SolverForm::default(),
            refactor_interval: 64,
            factorization: FactorizationKind::default(),
            scaling: ScalingMode::default(),
            warm_start: WarmStartMode::default(),
        }
    }
}

/// Pivot/iteration statistics for one solve (both phases combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PivotStats {
    /// Pivots performed during phase 1 (feasibility search).
    pub phase1_pivots: usize,
    /// Pivots performed during phase 2 (optimization).
    pub phase2_pivots: usize,
    /// Pivots whose leaving ratio was exactly zero (no objective movement).
    pub degenerate_pivots: usize,
    /// Pivots chosen by Dantzig (most-negative reduced cost) pricing.
    pub dantzig_pivots: usize,
    /// Pivots chosen by devex (reference-weight) pricing.
    pub devex_pivots: usize,
    /// Pivots chosen by Bland's smallest-index rule.
    pub bland_pivots: usize,
    /// Dual-simplex pivots performed by a cross-parameter warm start
    /// ([`crate::template::WarmSweepHandle`]); also counted in
    /// [`PivotStats::phase2_pivots`].
    pub dual_pivots: usize,
    /// Times the anti-cycling fallback engaged (Dantzig → Bland).
    pub fallback_activations: usize,
}

impl std::ops::AddAssign<&PivotStats> for PivotStats {
    /// Field-wise accumulation — the one place aggregate statistics (e.g. a
    /// sweep's per-α totals) are summed, so a future counter cannot be
    /// silently dropped from one of several hand-rolled summations.
    fn add_assign(&mut self, rhs: &PivotStats) {
        self.phase1_pivots += rhs.phase1_pivots;
        self.phase2_pivots += rhs.phase2_pivots;
        self.degenerate_pivots += rhs.degenerate_pivots;
        self.dantzig_pivots += rhs.dantzig_pivots;
        self.devex_pivots += rhs.devex_pivots;
        self.bland_pivots += rhs.bland_pivots;
        self.dual_pivots += rhs.dual_pivots;
        self.fallback_activations += rhs.fallback_activations;
    }
}

impl PivotStats {
    /// Total pivots across both phases.
    #[must_use]
    pub fn total_pivots(&self) -> usize {
        self.phase1_pivots + self.phase2_pivots
    }
}

/// Which stage of the two-phase method a traced pivot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Feasibility search (minimizing the sum of artificials).
    Phase1,
    /// Post-phase-1 cleanup pivots driving residual artificial variables out
    /// of a degenerate basis (not counted in [`PivotStats`]).
    DriveOut,
    /// Optimization of the real objective.
    Phase2,
}

/// One pivot of a simplex solve: which standard-form column entered and
/// which basis position left. [`solve_model_traced`] returns the full
/// sequence; the dense ≡ revised contract tests assert the two forms produce
/// equal traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PivotRecord {
    /// Stage of the two-phase method.
    pub phase: TracePhase,
    /// Entering standard-form column index.
    pub entering: usize,
    /// Leaving basis position (equivalently: dense tableau row).
    pub leaving: usize,
}

/// Trace sink threaded through a solve; `None` costs nothing.
pub(crate) type TraceSink<'a> = Option<&'a mut Vec<PivotRecord>>;

pub(crate) fn record(
    trace: &mut TraceSink<'_>,
    phase: TracePhase,
    entering: usize,
    leaving: usize,
) {
    if let Some(t) = trace.as_deref_mut() {
        t.push(PivotRecord {
            phase,
            entering,
            leaving,
        });
    }
}

/// A full simplex tableau: `rows x (cols + 1)` with the right-hand side in the
/// last column, plus a reduced-cost row.
struct Tableau<'a, T: Scalar> {
    body: Vec<Vec<T>>,
    /// Reduced costs for the current phase objective, length `cols + 1`
    /// (last entry is minus the current objective value).
    obj: Vec<T>,
    basis: Vec<usize>,
    cols: usize,
    /// Columns the entering rule must skip (artificials during phase 2).
    banned: Vec<bool>,
    /// Scratch buffer for the pivot row's nonzero support, reused across
    /// pivots so the hot loop performs no per-pivot allocation.
    support: Vec<usize>,
    options: &'a SolverOptions,
    stats: &'a mut PivotStats,
}

impl<T: Scalar> Tableau<'_, T> {
    fn rhs(&self, row: usize) -> &T {
        &self.body[row][self.cols]
    }

    /// One simplex pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        // Normalize the pivot row, then record its nonzero support once; all
        // remaining updates touch only those columns.
        let pivot_value = self.body[row][col].clone();
        kernels::div_all(&mut self.body[row], &pivot_value);
        let mut support = std::mem::take(&mut self.support);
        kernels::nonzero_support_into(&self.body[row], &mut support);

        // Eliminate the pivot column from all other rows and the objective
        // row. The pivot row is temporarily moved out so the borrow checker
        // allows in-place updates of its siblings.
        let pivot_row = std::mem::take(&mut self.body[row]);
        for (r, body_row) in self.body.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = body_row[col].clone();
            if factor.is_zero_approx() {
                continue;
            }
            kernels::sub_scaled_at(body_row, &factor, &pivot_row, &support);
            // Exact cancellation: make the pivot column exactly zero so no
            // residue survives in the f64 backend either.
            body_row[col] = T::zero();
        }
        let factor = self.obj[col].clone();
        if !factor.is_zero_approx() {
            kernels::sub_scaled_at(&mut self.obj, &factor, &pivot_row, &support);
            self.obj[col] = T::zero();
        }
        self.body[row] = pivot_row;
        self.support = support;
        self.basis[row] = col;
    }

    /// Run simplex iterations until optimality or unboundedness, following
    /// the configured pricing rule. Returns `Err(LpError::Unbounded)` when a
    /// column with a negative reduced cost has no positive entry.
    fn optimize(&mut self, phase1: bool, trace: &mut TraceSink<'_>) -> Result<(), LpError> {
        // Generous iteration cap: the Bland fallback guarantees finite
        // termination, this cap only guards against a solver bug turning
        // into a hang.
        let max_iters = 50_000usize.max(100 * (self.cols + self.body.len()));
        let mut pricing = FallbackState::new::<T>(self.options);
        // Harris's relaxed two-pass ratio test is a floating-point conditioning
        // device; exact scalars keep the strict test (pivot-identity contract),
        // and Bland fallback mode bypasses it (anti-cycling guarantee).
        let harris = !T::is_exact() && self.options.scaling == ScalingMode::Equilibrate;

        for _ in 0..max_iters {
            let Some(col) = pricing.select(&self.obj, &self.banned, self.cols) else {
                return Ok(());
            };
            let bland_mode = pricing.bland_mode();
            let choice = if harris && !bland_mode {
                choose_leaving_harris(self.body.len(), |r| &self.body[r][col], |r| self.rhs(r))
            } else {
                choose_leaving(
                    self.body.len(),
                    &self.basis,
                    bland_mode,
                    |r| &self.body[r][col],
                    |r| self.rhs(r),
                )
            };
            let Some((row, degenerate)) = choice else {
                return Err(LpError::Unbounded);
            };
            let leaving_col = self.basis[row];
            let pivot_element = self.body[row][col].to_f64();
            self.pivot(row, col);
            // Devex reference-weight maintenance (no-op for other rules):
            // after the pivot the row is normalized, so its entries are
            // exactly the α_rj/α_rq ratios the update needs.
            let pivot_row = &self.body[row];
            pricing
                .update_devex_weights(col, leaving_col, pivot_element, |j| pivot_row[j].to_f64());
            record(
                trace,
                if phase1 {
                    TracePhase::Phase1
                } else {
                    TracePhase::Phase2
                },
                col,
                row,
            );

            if phase1 {
                self.stats.phase1_pivots += 1;
            } else {
                self.stats.phase2_pivots += 1;
            }
            pricing.after_pivot(degenerate, self.stats);
        }
        Err(LpError::Internal(
            "simplex iteration limit exceeded".to_string(),
        ))
    }
}

/// Solve a [`Model`] by the two-phase simplex method with default options.
pub fn solve_model<T: Scalar>(model: &Model<T>) -> Result<Solution<T>, LpError> {
    solve_model_with(model, &SolverOptions::default())
}

/// Solve a [`Model`] by the two-phase simplex method with explicit options.
pub fn solve_model_with<T: Scalar>(
    model: &Model<T>,
    options: &SolverOptions,
) -> Result<Solution<T>, LpError> {
    solve_impl(model, options, None)
}

/// Solve and additionally return the full pivot sequence.
///
/// This is the observation surface for the dense ≡ revised identity
/// contract: the property tests solve the same model under
/// [`SolverForm::Dense`] and [`SolverForm::Revised`] and assert the returned
/// traces are equal element for element. Tracing allocates one
/// [`PivotRecord`] per pivot and is otherwise free.
pub fn solve_model_traced<T: Scalar>(
    model: &Model<T>,
    options: &SolverOptions,
) -> Result<(Solution<T>, Vec<PivotRecord>), LpError> {
    let mut trace = Vec::new();
    let solution = solve_impl(model, options, Some(&mut trace))?;
    Ok((solution, trace))
}

fn solve_impl<T: Scalar>(
    model: &Model<T>,
    options: &SolverOptions,
    trace: TraceSink<'_>,
) -> Result<Solution<T>, LpError> {
    solve_warm(model, None, options, trace).map(|(solution, _, _)| solution)
}

/// Solve, optionally warm-starting from the final basis of a previous solve
/// of a same-structure model ([`crate::dual_simplex`]); returns the solution
/// together with this solve's final basis (so a sweep can chain solves) and
/// whether the warm path actually produced the result.
///
/// The warm path only engages when a basis is supplied, the scalar is exact
/// and [`SolverOptions::warm_start`] is not [`WarmStartMode::Off`]; in every
/// other case (including any warm-start fallback) the result is exactly the
/// cold [`solve_model_with`] result.
pub(crate) fn solve_warm<T: Scalar>(
    model: &Model<T>,
    warm_basis: Option<&[usize]>,
    options: &SolverOptions,
    mut trace: TraceSink<'_>,
) -> Result<(Solution<T>, Vec<usize>, bool), LpError> {
    let mut sf = build_standard_form(model)?;
    let mut stats = PivotStats::default();

    // Handle the degenerate "no constraints" case directly: the optimum is at
    // the origin if the costs are non-negative, otherwise unbounded.
    if sf.num_rows() == 0 {
        for c in &sf.costs {
            if c.is_negative_approx() {
                return Err(LpError::Unbounded);
            }
        }
        let values = extract_values(&sf, &[], sf.num_cols);
        let objective = report_objective(model, &values);
        return Ok((
            Solution {
                objective,
                values,
                stats,
            },
            Vec::new(),
            false,
        ));
    }

    // Floating-point equilibration: power-of-two row/column scaling
    // ([`StandardForm::equilibrate`]) conditions the tableau so the aggressive
    // pricing rules and the Harris ratio test are safe off the exact path;
    // the per-column factors map the scaled optimum back after the solve.
    // Exact scalars never scale — the pivot-identity contract is stated on
    // the raw standard form.
    let col_factors = if !T::is_exact() && options.scaling == ScalingMode::Equilibrate {
        Some(sf.equilibrate())
    } else {
        None
    };

    // Warm start: when the caller supplies a previous basis (and the mode is
    // on), try the dual-simplex / primal-phase-2 reoptimization first. Its
    // successful results are certificate-verified internally; its fallback
    // hands the standard form back untouched for the cold path below.
    let mut sf = Some(sf);
    let mut warm_values: Option<ColumnSolution<T>> = None;
    if let Some(basis) = warm_basis {
        if T::is_exact() && options.warm_start != WarmStartMode::Off {
            match crate::dual_simplex::warm_reoptimize(
                sf.take().expect("standard form present"),
                basis,
                options,
                &mut stats,
            )? {
                crate::dual_simplex::WarmOutcome::Solved(v) => warm_values = Some(v),
                crate::dual_simplex::WarmOutcome::Fallback(cold_sf) => sf = Some(cold_sf),
            }
        }
    }

    let warm_used = warm_values.is_some();
    let mut values = match warm_values {
        Some(v) => v,
        None => {
            let sf = sf.take().expect("standard form present");
            // Form dispatch: the revised simplex requires exact arithmetic
            // for its identity contract (module docs), so inexact backends
            // always run the dense tableau.
            let values = if T::is_exact() && options.form != SolverForm::Dense {
                crate::revised::solve_revised(sf, options, &mut stats, &mut trace)?
            } else {
                solve_dense(sf, options, &mut stats, &mut trace)?
            };
            // Two-tier contract: the default pricing rule is covered by the
            // dense ≡ revised pivot-identity property tests; a non-default
            // rule changes the pivot sequence, so each of its solves is
            // instead verified against the exact optimality certificate
            // before the result is released.
            if options.pricing == PricingRule::Devex {
                crate::certificate::certify_column_solution(&values)?;
            }
            values
        }
    };
    // Undo equilibration: the scaled problem's optimum `y` maps back to the
    // model's columns as `x = Cy` (the certificate above, when it ran, was
    // checked against the scaled problem, where the basis lives).
    if let Some(factors) = &col_factors {
        for (v, f) in values.column_values.iter_mut().zip(factors.iter()) {
            *v = v.mul_ref(f);
        }
    }
    let extracted = values.extract(model);
    Ok((
        Solution {
            objective: extracted.0,
            values: extracted.1,
            stats,
        },
        values.basis,
        warm_used,
    ))
}

/// The standard-form optimum both solver forms hand back: final column
/// values plus the ingredients to map them onto model variables.
pub(crate) struct ColumnSolution<T: Scalar> {
    pub(crate) sf: StandardForm<T>,
    pub(crate) column_values: Vec<T>,
    pub(crate) total_cols: usize,
    /// Final basis: position → standard-form column (entries `>=
    /// sf.num_cols` are artificials parked at value zero; position `c`'s
    /// artificial is the unit column `e_c`). The optimality certificate
    /// recovers the duals from this basis.
    pub(crate) basis: Vec<usize>,
}

impl<T: Scalar> ColumnSolution<T> {
    fn extract(&self, model: &Model<T>) -> (T, Vec<T>) {
        let values = extract_values(&self.sf, &self.column_values, self.total_cols);
        let objective = report_objective(model, &values);
        (objective, values)
    }
}

/// The dense-tableau solve (two phases + artificial-variable cleanup).
fn solve_dense<T: Scalar>(
    sf: StandardForm<T>,
    options: &SolverOptions,
    stats: &mut PivotStats,
    trace: &mut TraceSink<'_>,
) -> Result<ColumnSolution<T>, LpError> {
    let num_rows = sf.num_rows();

    // Build the initial tableau, adding artificial columns where no slack can
    // seed the basis.
    let mut artificial_cols: Vec<usize> = Vec::new();
    let mut basis = vec![usize::MAX; num_rows];
    let mut total_cols = sf.num_cols;
    for (i, seed) in sf.slack_basis.iter().enumerate() {
        match seed {
            Some(col) => basis[i] = *col,
            None => {
                let col = total_cols;
                total_cols += 1;
                artificial_cols.push(col);
                basis[i] = col;
            }
        }
    }

    // Scatter each CSR row into a dense tableau row — the one place the
    // dense oracle materializes zeros, by design.
    let mut body: Vec<Vec<T>> = Vec::with_capacity(num_rows);
    for (i, &bcol) in basis.iter().enumerate() {
        let mut full = vec![T::zero(); total_cols + 1];
        for (j, v) in sf.matrix.row(i).iter() {
            full[j] = v.clone();
        }
        if artificial_cols.contains(&bcol) {
            full[bcol] = T::one();
        }
        full[total_cols] = sf.rhs[i].clone();
        body.push(full);
    }

    let is_artificial: Vec<bool> = (0..total_cols).map(|j| j >= sf.num_cols).collect();

    // -------------------------- Phase 1 --------------------------
    if !artificial_cols.is_empty() {
        // Phase-1 objective: minimize the sum of artificial variables.
        // Reduced costs: c1_j - sum_i c1_{B(i)} * a_ij, where c1 is 1 on
        // artificials and 0 elsewhere. Start from c1 and subtract each
        // artificially-seeded row in one kernel sweep (the rhs entry folds in
        // minus the phase-1 objective value for free).
        let mut obj = vec![T::zero(); total_cols + 1];
        for (j, flag) in is_artificial.iter().enumerate() {
            if *flag {
                obj[j] = T::one();
            }
        }
        for (i, row) in body.iter().enumerate() {
            if is_artificial[basis[i]] {
                kernels::sub_scaled(&mut obj, &T::one(), row);
            }
        }

        let mut tableau = Tableau {
            body,
            obj,
            basis,
            cols: total_cols,
            banned: vec![false; total_cols],
            support: Vec::with_capacity(total_cols + 1),
            options,
            stats,
        };
        tableau.optimize(true, trace)?;

        let phase1_value = -tableau.obj[total_cols].clone();
        if phase1_value.is_positive_approx() {
            return Err(LpError::Infeasible);
        }

        // Drive any remaining artificial variables out of the basis.
        for row in 0..tableau.body.len() {
            if !is_artificial[tableau.basis[row]] {
                continue;
            }
            // Find a non-artificial column with a nonzero coefficient.
            let replacement = (0..sf.num_cols).find(|&j| !tableau.body[row][j].is_zero_approx());
            if let Some(col) = replacement {
                tableau.pivot(row, col);
                record(trace, TracePhase::DriveOut, col, row);
            }
            // If no replacement exists the row is redundant; the artificial
            // stays basic at value zero, which is harmless because the column
            // is banned from entering and its value can only change through a
            // ratio test that keeps it at zero.
        }

        body = tableau.body;
        basis = tableau.basis;
    }

    // -------------------------- Phase 2 --------------------------
    // Reduced costs for the real objective: start from the cost vector and
    // subtract cb_i * row_i for every basic column with a nonzero cost.
    let mut costs_full = sf.costs.clone();
    costs_full.resize(total_cols, T::zero());
    let mut obj = costs_full.clone();
    obj.push(T::zero());
    for (i, row) in body.iter().enumerate() {
        let cb = &costs_full[basis[i]];
        if cb.is_zero_approx() {
            continue;
        }
        kernels::sub_scaled(&mut obj, cb, row);
    }
    // The kernel sweep also touched the basic columns themselves; their
    // reduced costs are zero by construction, so restore exactness for f64.
    for (i, _) in body.iter().enumerate() {
        obj[basis[i]] = T::zero();
    }

    let mut tableau = Tableau {
        body,
        obj,
        basis,
        cols: total_cols,
        banned: is_artificial,
        support: Vec::with_capacity(total_cols + 1),
        options,
        stats,
    };
    tableau.optimize(false, trace)?;

    // ----------------------- Extract solution -----------------------
    let mut column_values = vec![T::zero(); total_cols];
    for (i, &b) in tableau.basis.iter().enumerate() {
        column_values[b] = tableau.rhs(i).clone();
    }
    let basis = tableau.basis.clone();
    Ok(ColumnSolution {
        sf,
        column_values,
        total_cols,
        basis,
    })
}

#[cfg(test)]
mod tests {
    use super::{PivotStats, PricingRule, ScalingMode, SolverOptions};
    use crate::model::{LinExpr, LpError, Model, Relation, Sense, VarBound};
    use privmech_numerics::{rat, Rational};

    #[test]
    fn maximize_two_variable_example() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Classic Dantzig example; optimum 36 at (2, 6).
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0), Relation::Le, 4.0)
            .unwrap();
        m.add_constraint(LinExpr::term(y, 2.0), Relation::Le, 12.0)
            .unwrap();
        m.add_constraint(LinExpr::term(x, 3.0).plus(y, 2.0), Relation::Le, 18.0)
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 3.0).plus(y, 5.0))
            .unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!((sol.value(y) - 6.0).abs() < 1e-9);
        assert!(sol.stats.total_pivots() > 0);
    }

    #[test]
    fn exact_rational_solution_is_exact() {
        // min x + y  s.t. x + 2y >= 3, 3x + y >= 4, x,y >= 0.
        // Optimum at intersection: x = 1, y = 1, objective 2.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(2, 1)),
            Relation::Ge,
            rat(3, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(3, 1)).plus(y, rat(1, 1)),
            Relation::Ge,
            rat(4, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(*sol.value(x), rat(1, 1));
        assert_eq!(*sol.value(y), rat(1, 1));
    }

    #[test]
    fn equality_constraints_and_free_variables() {
        // min |style| epigraph-free test: min z s.t. z free, z = x - 2,
        // x + y = 5, y >= 1, all vars >= 0 except z free.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        let z = m.add_var("z", VarBound::Free);
        m.add_constraint(
            LinExpr::term(z, rat(1, 1)).plus(x, rat(-1, 1)),
            Relation::Eq,
            rat(-2, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Eq,
            rat(5, 1),
        )
        .unwrap();
        m.add_constraint(LinExpr::term(y, rat(1, 1)), Relation::Ge, rat(1, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(z, rat(1, 1)))
            .unwrap();
        let sol = m.solve().unwrap();
        // x can go as low as 0 (then y = 5 >= 1), so z = x - 2 = -2.
        assert_eq!(sol.objective, rat(-2, 1));
        assert_eq!(*sol.value(z), rat(-2, 1));
        // Phase 1 had to run: equality rows need artificial variables.
        assert!(sol.stats.phase1_pivots > 0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Ge, rat(2, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(1, 1)))
            .unwrap();
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0), Relation::Ge, 1.0)
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 1.0))
            .unwrap();
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn missing_objective_is_an_error() {
        let m: Model<f64> = Model::new();
        assert_eq!(m.solve().unwrap_err(), LpError::MissingObjective);
    }

    #[test]
    fn no_constraints_minimization_at_origin() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(3, 1)))
            .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, Rational::zero());
        assert_eq!(sol.stats, PivotStats::default());
        // And the unbounded direction is detected without constraints too.
        let mut m2: Model<Rational> = Model::new();
        let y = m2.add_var("y", VarBound::NonNegative);
        m2.set_objective(Sense::Maximize, LinExpr::term(y, rat(1, 1)))
            .unwrap();
        assert_eq!(m2.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn minimize_max_epigraph_helper() {
        // minimize max(x, 4 - x) over 0 <= x <= 4: optimum 2 at x = 2.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(4, 1))
            .unwrap();
        // Expressions: x and 4 - x.
        let e1 = LinExpr::term(x, rat(1, 1));
        let mut e2 = LinExpr::term(x, rat(-1, 1));
        e2.add_constant(rat(4, 1));
        let d = m.minimize_max(vec![e1, e2]).unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(*sol.value(d), rat(2, 1));
        assert_eq!(*sol.value(x), rat(2, 1));
    }

    fn beale_cycling_model() -> Model<Rational> {
        // Beale's classical cycling example (Chvátal, Linear Programming):
        //   max 10a - 57b - 9c - 24d
        //   s.t. 0.5a - 5.5b - 2.5c + 9d <= 0
        //        0.5a - 1.5b - 0.5c +  d <= 0
        //        a <= 1
        // The textbook optimum is 1 at a = 1, c = 1, b = d = 0. Dantzig's
        // largest-coefficient rule cycles here without anti-cycling help.
        let mut m: Model<Rational> = Model::new();
        let a = m.add_var("a", VarBound::NonNegative);
        let b = m.add_var("b", VarBound::NonNegative);
        let c = m.add_var("c", VarBound::NonNegative);
        let d = m.add_var("d", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(a, rat(1, 2))
                .plus(b, rat(-11, 2))
                .plus(c, rat(-5, 2))
                .plus(d, rat(9, 1)),
            Relation::Le,
            Rational::zero(),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(a, rat(1, 2))
                .plus(b, rat(-3, 2))
                .plus(c, rat(-1, 2))
                .plus(d, rat(1, 1)),
            Relation::Le,
            Rational::zero(),
        )
        .unwrap();
        m.add_constraint(LinExpr::term(a, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.set_objective(
            Sense::Maximize,
            LinExpr::term(a, rat(10, 1))
                .plus(b, rat(-57, 1))
                .plus(c, rat(-9, 1))
                .plus(d, rat(-24, 1)),
        )
        .unwrap();
        m
    }

    #[test]
    fn degenerate_lp_terminates_with_default_pricing() {
        let m = beale_cycling_model();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(1, 1));
        // Beale's optimum is unique: a = 1, c = 1, b = d = 0 (vars 0..=3).
        assert_eq!(sol.values[0], rat(1, 1));
        assert_eq!(sol.values[1], Rational::zero());
        assert_eq!(sol.values[2], rat(1, 1));
        assert_eq!(sol.values[3], Rational::zero());
        assert!(
            sol.stats.degenerate_pivots > 0,
            "Beale's example is degenerate"
        );
    }

    #[test]
    fn dantzig_fallback_matches_pure_bland_on_cycling_lp() {
        // The degeneracy regression demanded by the perf rework: the
        // Dantzig-with-fallback default must terminate on the classic cycling
        // example and agree with pure Bland's rule on the objective.
        let m = beale_cycling_model();
        let dantzig = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::DantzigWithBlandFallback,
                // Force the fallback machinery to engage almost immediately.
                degeneracy_streak_limit: 1,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let bland = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::Bland,
                degeneracy_streak_limit: 1,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dantzig.objective, rat(1, 1));
        assert_eq!(bland.objective, rat(1, 1));
        assert_eq!(dantzig.objective, bland.objective);
        assert_eq!(
            bland.stats.dantzig_pivots, 0,
            "pure Bland never prices by Dantzig"
        );
        assert!(bland.stats.bland_pivots > 0);
    }

    #[test]
    fn pivot_stats_are_plausible() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Le,
            rat(10, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Maximize,
            LinExpr::term(x, rat(1, 1)).plus(y, rat(2, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(20, 1));
        let s = sol.stats;
        assert_eq!(s.total_pivots(), s.phase1_pivots + s.phase2_pivots);
        assert_eq!(s.total_pivots(), s.dantzig_pivots + s.bland_pivots);
        assert!(s.total_pivots() >= 1);
        assert_eq!(s.fallback_activations, 0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // Constraint written with a negative right-hand side.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        // -x - y <= -2  (i.e. x + y >= 2)
        m.add_constraint(
            LinExpr::term(x, rat(-1, 1)).plus(y, rat(-1, 1)),
            Relation::Le,
            rat(-2, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(2, 1)).plus(y, rat(3, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(4, 1));
        assert_eq!(*sol.value(x), rat(2, 1));
    }

    #[test]
    fn dense_and_revised_agree_on_the_cycling_lp() {
        use super::{SolverForm, TracePhase};
        let m = beale_cycling_model();
        let dense = crate::simplex::solve_model_traced(
            &m,
            &SolverOptions {
                form: SolverForm::Dense,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let revised = crate::simplex::solve_model_traced(
            &m,
            &SolverOptions {
                form: SolverForm::Revised,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dense.0, revised.0, "solutions must be bit-identical");
        assert_eq!(dense.1, revised.1, "pivot sequences must be identical");
        assert!(dense.1.iter().all(|r| matches!(
            r.phase,
            TracePhase::Phase1 | TracePhase::DriveOut | TracePhase::Phase2
        )));
    }

    #[test]
    fn devex_pricing_reaches_the_same_optimum_in_both_forms() {
        // Devex may follow a different pivot path than Dantzig, so the pivot
        // traces need not agree — the solution-level contract applies instead:
        // every devex solve runs the exact optimality certificate internally
        // (a certificate failure would surface as `LpError::Internal` here).
        use super::SolverForm;
        let m = beale_cycling_model();
        let default = m.solve().unwrap();
        for form in [SolverForm::Dense, SolverForm::Revised] {
            let devex = crate::simplex::solve_model_with(
                &m,
                &SolverOptions {
                    pricing: PricingRule::Devex,
                    form,
                    ..SolverOptions::default()
                },
            )
            .unwrap();
            assert_eq!(devex.objective, default.objective, "form {form:?}");
            // Beale's optimum is unique, so values must match bit-for-bit too.
            assert_eq!(devex.values, default.values, "form {form:?}");
            assert!(
                devex.stats.devex_pivots > 0,
                "devex pricing should drive the pivots (form {form:?})"
            );
            assert_eq!(devex.stats.dantzig_pivots, 0, "form {form:?}");
        }
    }

    #[test]
    fn devex_pricing_matches_default_on_a_phase1_model() {
        // Equality rows force phase-1 artificials, exercising the certificate
        // with artificial columns still (degenerately) in the final basis.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        let z = m.add_var("z", VarBound::Free);
        m.add_constraint(
            LinExpr::term(z, rat(1, 1)).plus(x, rat(-1, 1)),
            Relation::Eq,
            rat(-2, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Eq,
            rat(5, 1),
        )
        .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(z, rat(1, 1)))
            .unwrap();
        let default = m.solve().unwrap();
        let devex = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::Devex,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert_eq!(devex.objective, default.objective);
        assert_eq!(devex.objective, rat(-2, 1));
    }

    #[test]
    fn devex_on_f64_without_scaling_falls_back_to_bland() {
        // The unscaled f64 backend cannot trust aggressive pricing, so the
        // fallback state pins Bland's rule from the start (same policy as
        // Dantzig; see FallbackState::new).
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0).plus(y, 1.0), Relation::Le, 10.0)
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 1.0).plus(y, 2.0))
            .unwrap();
        let sol = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::Devex,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-9);
        assert_eq!(sol.stats.devex_pivots, 0);
        assert!(sol.stats.bland_pivots > 0);
    }

    /// A model whose constraint rows live nine orders of magnitude apart.
    /// After dividing out the scales it is `max 3x + 2y` subject to
    /// `4x + y ≤ 4`, `x + y ≤ 3/2`, with unique optimum `23/6` at
    /// `(5/6, 2/3)`.
    fn badly_scaled_model() -> Model<f64> {
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 4.0e6).plus(y, 1.0e6), Relation::Le, 4.0e6)
            .unwrap();
        m.add_constraint(
            LinExpr::term(x, 1.0e-3).plus(y, 1.0e-3),
            Relation::Le,
            1.5e-3,
        )
        .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 3.0).plus(y, 2.0))
            .unwrap();
        m
    }

    #[test]
    fn equilibration_unlocks_dantzig_on_f64_and_preserves_the_optimum() {
        let m = badly_scaled_model();
        let bland = m.solve().unwrap();
        let scaled = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                scaling: ScalingMode::Equilibrate,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        for sol in [&bland, &scaled] {
            assert!((sol.objective - 23.0 / 6.0).abs() < 1e-6);
            assert!((sol.values[0] - 5.0 / 6.0).abs() < 1e-6);
            assert!((sol.values[1] - 2.0 / 3.0).abs() < 1e-6);
        }
        // Unscaled f64 is pinned to Bland; equilibration lifts the pin.
        assert_eq!(bland.stats.dantzig_pivots, 0);
        assert!(bland.stats.bland_pivots > 0);
        assert!(scaled.stats.dantzig_pivots > 0);
        assert_eq!(scaled.stats.bland_pivots, 0);
    }

    #[test]
    fn devex_with_equilibration_runs_and_certifies_on_f64() {
        // Devex on scaled f64 takes the aggressive path, and since the rule
        // is non-default the solve is certificate-verified (against the
        // scaled problem) before the unscaled solution is released.
        let m = badly_scaled_model();
        let sol = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::Devex,
                scaling: ScalingMode::Equilibrate,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert!((sol.objective - 23.0 / 6.0).abs() < 1e-6);
        assert!((sol.values[0] - 5.0 / 6.0).abs() < 1e-6);
        assert!((sol.values[1] - 2.0 / 3.0).abs() < 1e-6);
        assert!(sol.stats.devex_pivots > 0);
        assert_eq!(sol.stats.bland_pivots, 0);
    }

    #[test]
    fn equilibration_on_an_exact_model_is_a_no_op() {
        // Exact scalars never scale: the option is accepted but the pivot
        // trajectory (and hence the stats) must match the default bit for bit.
        let m = beale_cycling_model();
        let default = m.solve().unwrap();
        let scaled = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                scaling: ScalingMode::Equilibrate,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert_eq!(scaled.objective, default.objective);
        assert_eq!(scaled.values, default.values);
        assert_eq!(scaled.stats, default.stats);
    }
}
