//! Dense two-phase simplex solver with Dantzig pricing and a Bland fallback.
//!
//! # Pricing strategy
//!
//! The solver is generic over [`Scalar`]: with `Rational` every pivot is exact;
//! with `f64` a small tolerance is used for the sign tests. The LPs arising
//! from the paper (Sections 2.4.3 and 2.5) are small and dense, so a
//! full-tableau implementation remains the right backbone — but the *entering
//! column rule* matters enormously for how many pivots (each a full O(rows ×
//! cols) exact-arithmetic tableau update) a solve needs:
//!
//! * **Dantzig pricing** (the default): enter the column with the most
//!   negative reduced cost. Empirically this takes far fewer pivots on the
//!   privacy-mechanism LPs than Bland's rule, but on degenerate vertices it
//!   can cycle.
//! * **Bland fallback**: the solver counts consecutive *degenerate* pivots
//!   (leaving ratio exactly zero, so the objective does not move). Once the
//!   streak exceeds [`SolverOptions::degeneracy_streak_limit`], pricing
//!   switches to Bland's smallest-index rule, which provably never cycles.
//!   The first non-degenerate (objective-improving) pivot switches back to
//!   Dantzig. Termination is guaranteed: while Bland is engaged no cycle can
//!   form, so the solver eventually leaves the degenerate vertex with a strict
//!   objective decrease, and the objective can only strictly decrease finitely
//!   many times.
//!
//! Pure Bland pricing remains available through [`PricingRule::Bland`] (used
//! by the regression tests to cross-check objectives).
//!
//! Dantzig pricing only engages for **exact** scalars (`T::is_exact()`): on
//! the heavily degenerate phase-1 tableaus of the paper's LPs the
//! most-negative-cost rule steers `f64` through ill-conditioned bases until
//! accumulated noise fabricates infeasible/unbounded verdicts. The `f64`
//! backend therefore always prices by Bland's rule, exactly like the solver
//! before this rework; making Dantzig robust for floats would need scaling
//! plus a Harris-style ratio test and is left as an open item.
//!
//! # Row-activity masking
//!
//! Each pivot first normalizes the pivot row and records its nonzero support;
//! every other row (and the reduced-cost row) is then updated **only at those
//! columns** via [`privmech_linalg::kernels::sub_scaled_at`]. Tableau rows
//! from the paper's LPs are sparse (row-sum and adjacency constraints touch a
//! handful of columns), so this skips most of each row, and the by-reference
//! scalar kernels avoid cloning `Rational` operands.
//!
//! # Statistics
//!
//! Every solve reports a [`PivotStats`] on the returned
//! [`Solution`](crate::model::Solution): pivot counts per phase, degenerate
//! pivot count, how many pivots each pricing rule performed, and how often the
//! Bland fallback engaged. The bench tooling records these alongside wall
//! times so perf regressions can be separated into "more pivots" vs "slower
//! pivots".

use privmech_linalg::{kernels, Scalar};

use crate::model::{LpError, Model, Relation, Sense, Solution, VarBound};

/// Entering-column pricing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Most-negative reduced cost, falling back to Bland's rule after a
    /// degeneracy streak (see the module docs). The default. Only engages
    /// for exact scalars; inexact backends always price by Bland's rule.
    #[default]
    DantzigWithBlandFallback,
    /// Bland's smallest-index anti-cycling rule throughout.
    Bland,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Entering-column rule.
    pub pricing: PricingRule,
    /// Number of consecutive degenerate pivots tolerated under Dantzig
    /// pricing before switching to Bland's rule.
    pub degeneracy_streak_limit: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            pricing: PricingRule::default(),
            degeneracy_streak_limit: 8,
        }
    }
}

/// Pivot/iteration statistics for one solve (both phases combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PivotStats {
    /// Pivots performed during phase 1 (feasibility search).
    pub phase1_pivots: usize,
    /// Pivots performed during phase 2 (optimization).
    pub phase2_pivots: usize,
    /// Pivots whose leaving ratio was exactly zero (no objective movement).
    pub degenerate_pivots: usize,
    /// Pivots chosen by Dantzig (most-negative reduced cost) pricing.
    pub dantzig_pivots: usize,
    /// Pivots chosen by Bland's smallest-index rule.
    pub bland_pivots: usize,
    /// Times the anti-cycling fallback engaged (Dantzig → Bland).
    pub fallback_activations: usize,
}

impl PivotStats {
    /// Total pivots across both phases.
    #[must_use]
    pub fn total_pivots(&self) -> usize {
        self.phase1_pivots + self.phase2_pivots
    }
}

/// How a model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum ColumnMap {
    /// A non-negative variable occupies a single column.
    Single(usize),
    /// A free variable is split as `x = plus - minus`.
    Split { plus: usize, minus: usize },
}

/// Internal standard-form representation: minimize `c^T y` subject to
/// `A y = b`, `y >= 0`, `b >= 0`.
struct StandardForm<T: Scalar> {
    /// Constraint rows including slack/surplus columns but not artificials.
    rows: Vec<Vec<T>>,
    /// Right-hand sides, all non-negative.
    rhs: Vec<T>,
    /// Objective coefficients for every structural + slack column.
    costs: Vec<T>,
    /// Per-row basis seed: `Some(col)` if a slack column can start in the
    /// basis, `None` if the row needs an artificial variable.
    slack_basis: Vec<Option<usize>>,
    /// Mapping from model variables to columns.
    mapping: Vec<ColumnMap>,
    /// Number of columns (structural + slack/surplus).
    num_cols: usize,
}

fn build_standard_form<T: Scalar>(model: &Model<T>) -> Result<StandardForm<T>, LpError> {
    let (sense, objective) = model.objective.clone().ok_or(LpError::MissingObjective)?;

    // Map model variables onto non-negative columns.
    let mut mapping = Vec::with_capacity(model.bounds.len());
    let mut num_cols = 0usize;
    for bound in &model.bounds {
        match bound {
            VarBound::NonNegative => {
                mapping.push(ColumnMap::Single(num_cols));
                num_cols += 1;
            }
            VarBound::Free => {
                mapping.push(ColumnMap::Split {
                    plus: num_cols,
                    minus: num_cols + 1,
                });
                num_cols += 2;
            }
        }
    }
    let structural_cols = num_cols;

    // Constraint rows over structural columns; slack/surplus columns appended.
    let mut rows: Vec<Vec<T>> = Vec::with_capacity(model.constraints.len());
    let mut rhs: Vec<T> = Vec::with_capacity(model.constraints.len());
    let mut relations: Vec<Relation> = Vec::with_capacity(model.constraints.len());

    for constraint in &model.constraints {
        let mut row = vec![T::zero(); structural_cols];
        for (var, coeff) in constraint.expr.terms() {
            match mapping[var.0] {
                ColumnMap::Single(col) => row[col].add_assign_ref(coeff),
                ColumnMap::Split { plus, minus } => {
                    row[plus].add_assign_ref(coeff);
                    row[minus].sub_assign_ref(coeff);
                }
            }
        }
        let mut b = constraint.rhs.sub_ref(constraint.expr.constant_part());
        let mut relation = constraint.relation;
        if b.is_negative_approx() {
            // Multiply the whole row by -1 so that b >= 0, flipping <= / >=.
            for cell in &mut row {
                cell.neg_assign();
            }
            b.neg_assign();
            relation = match relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        if T::is_exact() && relation == Relation::Ge && b.is_exactly_zero() {
            // `expr >= 0` is `-expr <= 0`: negating lets a slack column seed
            // the basis, so the row needs no artificial variable. The
            // paper's LPs are dominated by such rows (2·n·(n+1) adjacency
            // constraints with zero rhs), and without this rewrite phase 1
            // spends thousands of degenerate pivots driving their
            // artificials out. Exact scalars only: like Dantzig pricing,
            // the changed pivot trajectory is a numerical-robustness hazard
            // for the `f64` backend, which stays on the seed solver's path.
            for cell in &mut row {
                cell.neg_assign();
            }
            relation = Relation::Le;
        }
        rows.push(row);
        rhs.push(b);
        relations.push(relation);
    }

    // Add slack / surplus columns.
    let num_rows = rows.len();
    let mut slack_basis: Vec<Option<usize>> = vec![None; num_rows];
    for (i, relation) in relations.iter().enumerate() {
        match relation {
            Relation::Le => {
                let col = num_cols;
                num_cols += 1;
                for (r, row) in rows.iter_mut().enumerate() {
                    row.push(if r == i { T::one() } else { T::zero() });
                }
                slack_basis[i] = Some(col);
            }
            Relation::Ge => {
                num_cols += 1;
                for (r, row) in rows.iter_mut().enumerate() {
                    row.push(if r == i { -T::one() } else { T::zero() });
                }
            }
            Relation::Eq => {}
        }
    }

    // Objective over structural columns (slack/surplus cost 0).
    let mut costs = vec![T::zero(); num_cols];
    let maximize = sense == Sense::Maximize;
    for (var, coeff) in objective.terms() {
        let signed = if maximize {
            -coeff.clone()
        } else {
            coeff.clone()
        };
        match mapping[var.0] {
            ColumnMap::Single(col) => costs[col].add_assign_ref(&signed),
            ColumnMap::Split { plus, minus } => {
                costs[plus].add_assign_ref(&signed);
                costs[minus].sub_assign_ref(&signed);
            }
        }
    }

    Ok(StandardForm {
        rows,
        rhs,
        costs,
        slack_basis,
        mapping,
        num_cols,
    })
}

/// A full simplex tableau: `rows x (cols + 1)` with the right-hand side in the
/// last column, plus a reduced-cost row.
struct Tableau<'a, T: Scalar> {
    body: Vec<Vec<T>>,
    /// Reduced costs for the current phase objective, length `cols + 1`
    /// (last entry is minus the current objective value).
    obj: Vec<T>,
    basis: Vec<usize>,
    cols: usize,
    /// Columns the entering rule must skip (artificials during phase 2).
    banned: Vec<bool>,
    /// Scratch buffer for the pivot row's nonzero support, reused across
    /// pivots so the hot loop performs no per-pivot allocation.
    support: Vec<usize>,
    options: &'a SolverOptions,
    stats: &'a mut PivotStats,
}

impl<T: Scalar> Tableau<'_, T> {
    fn rhs(&self, row: usize) -> &T {
        &self.body[row][self.cols]
    }

    /// One simplex pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        // Normalize the pivot row, then record its nonzero support once; all
        // remaining updates touch only those columns.
        let pivot_value = self.body[row][col].clone();
        kernels::div_all(&mut self.body[row], &pivot_value);
        let mut support = std::mem::take(&mut self.support);
        kernels::nonzero_support_into(&self.body[row], &mut support);

        // Eliminate the pivot column from all other rows and the objective
        // row. The pivot row is temporarily moved out so the borrow checker
        // allows in-place updates of its siblings.
        let pivot_row = std::mem::take(&mut self.body[row]);
        for (r, body_row) in self.body.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = body_row[col].clone();
            if factor.is_zero_approx() {
                continue;
            }
            kernels::sub_scaled_at(body_row, &factor, &pivot_row, &support);
            // Exact cancellation: make the pivot column exactly zero so no
            // residue survives in the f64 backend either.
            body_row[col] = T::zero();
        }
        let factor = self.obj[col].clone();
        if !factor.is_zero_approx() {
            kernels::sub_scaled_at(&mut self.obj, &factor, &pivot_row, &support);
            self.obj[col] = T::zero();
        }
        self.body[row] = pivot_row;
        self.support = support;
        self.basis[row] = col;
    }

    /// Entering column under Bland's rule: smallest index with a negative
    /// reduced cost.
    fn entering_bland(&self) -> Option<usize> {
        (0..self.cols).find(|&j| !self.banned[j] && self.obj[j].is_negative_approx())
    }

    /// Entering column under Dantzig pricing: most negative reduced cost
    /// (ties broken towards the smaller index).
    fn entering_dantzig(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for j in 0..self.cols {
            if self.banned[j] || !self.obj[j].is_negative_approx() {
                continue;
            }
            match best {
                None => best = Some(j),
                Some(b) => {
                    if self.obj[j] < self.obj[b] {
                        best = Some(j);
                    }
                }
            }
        }
        best
    }

    /// Leaving row for entering column `col`: minimum ratio. Ties are broken
    /// differently per pricing mode:
    ///
    /// * Bland mode: smallest basis index — part of Bland's anti-cycling
    ///   termination guarantee.
    /// * Dantzig mode: **largest pivot coefficient**. Dantzig's
    ///   most-negative-cost column can pair a tied minimum ratio with a tiny
    ///   pivot element; dividing the row by a near-tolerance pivot destroys
    ///   `f64` tableaus (and bloats `Rational` entries), so among tied rows
    ///   the best-conditioned pivot wins. Cycling concerns are delegated to
    ///   the Bland fallback.
    ///
    /// Returns `None` when the column is unbounded, otherwise the row and
    /// whether the pivot is degenerate (ratio approximately zero).
    fn leaving_row(&self, col: usize, bland_mode: bool) -> Option<(usize, bool)> {
        let mut best: Option<(usize, T)> = None;
        for r in 0..self.body.len() {
            let coeff = &self.body[r][col];
            if !coeff.is_positive_approx() {
                continue;
            }
            let ratio = self.rhs(r).div_ref(coeff);
            match &best {
                None => best = Some((r, ratio)),
                Some((br, bratio)) => {
                    if ratio == *bratio {
                        let tie_wins = if bland_mode {
                            self.basis[r] < self.basis[*br]
                        } else {
                            self.body[r][col].abs() > self.body[*br][col].abs()
                        };
                        if tie_wins {
                            best = Some((r, ratio));
                        }
                    } else if ratio < *bratio {
                        best = Some((r, ratio));
                    }
                }
            }
        }
        best.map(|(r, ratio)| (r, ratio.is_zero_approx()))
    }

    /// Run simplex iterations until optimality or unboundedness, following
    /// the configured pricing rule. Returns `Err(LpError::Unbounded)` when a
    /// column with a negative reduced cost has no positive entry.
    fn optimize(&mut self, phase1: bool) -> Result<(), LpError> {
        // Generous iteration cap: the Bland fallback guarantees finite
        // termination, this cap only guards against a solver bug turning
        // into a hang.
        let max_iters = 50_000usize.max(100 * (self.cols + self.body.len()));
        let mut degenerate_streak = 0usize;
        // Dantzig pricing is reserved for exact scalars: on the heavily
        // degenerate phase-1 tableaus of the paper's LPs, the most-negative
        // column rule steers `f64` through ill-conditioned bases whose noise
        // eventually fabricates infeasible/unbounded verdicts. Inexact
        // backends therefore always price by Bland's rule (the seed solver's
        // behavior); exact backends get the fast pricing plus the fallback.
        let dantzig_allowed =
            T::is_exact() && self.options.pricing == PricingRule::DantzigWithBlandFallback;
        let mut bland_mode = !dantzig_allowed;

        for _ in 0..max_iters {
            let entering = if bland_mode {
                self.entering_bland()
            } else {
                self.entering_dantzig()
            };
            let Some(col) = entering else {
                return Ok(());
            };
            let Some((row, degenerate)) = self.leaving_row(col, bland_mode) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);

            if phase1 {
                self.stats.phase1_pivots += 1;
            } else {
                self.stats.phase2_pivots += 1;
            }
            if bland_mode {
                self.stats.bland_pivots += 1;
            } else {
                self.stats.dantzig_pivots += 1;
            }
            if degenerate {
                self.stats.degenerate_pivots += 1;
                degenerate_streak += 1;
                if !bland_mode
                    && dantzig_allowed
                    && degenerate_streak > self.options.degeneracy_streak_limit
                {
                    bland_mode = true;
                    self.stats.fallback_activations += 1;
                }
            } else {
                degenerate_streak = 0;
                // A strict objective improvement left the degenerate vertex;
                // resume the cheaper-converging Dantzig rule.
                if dantzig_allowed {
                    bland_mode = false;
                }
            }
        }
        Err(LpError::Internal(
            "simplex iteration limit exceeded".to_string(),
        ))
    }
}

/// Solve a [`Model`] by the two-phase simplex method with default options.
pub fn solve_model<T: Scalar>(model: &Model<T>) -> Result<Solution<T>, LpError> {
    solve_model_with(model, &SolverOptions::default())
}

/// Solve a [`Model`] by the two-phase simplex method with explicit options.
pub fn solve_model_with<T: Scalar>(
    model: &Model<T>,
    options: &SolverOptions,
) -> Result<Solution<T>, LpError> {
    let sf = build_standard_form(model)?;
    let num_rows = sf.rows.len();
    let mut stats = PivotStats::default();

    // Handle the degenerate "no constraints" case directly: the optimum is at
    // the origin if the costs are non-negative, otherwise unbounded.
    if num_rows == 0 {
        for c in &sf.costs {
            if c.is_negative_approx() {
                return Err(LpError::Unbounded);
            }
        }
        let values = extract_values(&sf, &[], sf.num_cols);
        let objective = report_objective(model, &values);
        return Ok(Solution {
            objective,
            values,
            stats,
        });
    }

    // Build the initial tableau, adding artificial columns where no slack can
    // seed the basis.
    let mut artificial_cols: Vec<usize> = Vec::new();
    let mut basis = vec![usize::MAX; num_rows];
    let mut total_cols = sf.num_cols;
    for (i, seed) in sf.slack_basis.iter().enumerate() {
        match seed {
            Some(col) => basis[i] = *col,
            None => {
                let col = total_cols;
                total_cols += 1;
                artificial_cols.push(col);
                basis[i] = col;
            }
        }
    }

    let mut body: Vec<Vec<T>> = Vec::with_capacity(num_rows);
    for (i, row) in sf.rows.iter().enumerate() {
        let mut full = Vec::with_capacity(total_cols + 1);
        full.extend(row.iter().cloned());
        for &acol in &artificial_cols {
            full.push(if basis[i] == acol {
                T::one()
            } else {
                T::zero()
            });
        }
        full.push(sf.rhs[i].clone());
        body.push(full);
    }

    let is_artificial: Vec<bool> = (0..total_cols).map(|j| j >= sf.num_cols).collect();

    // -------------------------- Phase 1 --------------------------
    if !artificial_cols.is_empty() {
        // Phase-1 objective: minimize the sum of artificial variables.
        // Reduced costs: c1_j - sum_i c1_{B(i)} * a_ij, where c1 is 1 on
        // artificials and 0 elsewhere. Start from c1 and subtract each
        // artificially-seeded row in one kernel sweep (the rhs entry folds in
        // minus the phase-1 objective value for free).
        let mut obj = vec![T::zero(); total_cols + 1];
        for (j, flag) in is_artificial.iter().enumerate() {
            if *flag {
                obj[j] = T::one();
            }
        }
        for (i, row) in body.iter().enumerate() {
            if is_artificial[basis[i]] {
                kernels::sub_scaled(&mut obj, &T::one(), row);
            }
        }

        let mut tableau = Tableau {
            body,
            obj,
            basis,
            cols: total_cols,
            banned: vec![false; total_cols],
            support: Vec::with_capacity(total_cols + 1),
            options,
            stats: &mut stats,
        };
        tableau.optimize(true)?;

        let phase1_value = -tableau.obj[total_cols].clone();
        if phase1_value.is_positive_approx() {
            return Err(LpError::Infeasible);
        }

        // Drive any remaining artificial variables out of the basis.
        for row in 0..tableau.body.len() {
            if !is_artificial[tableau.basis[row]] {
                continue;
            }
            // Find a non-artificial column with a nonzero coefficient.
            let replacement = (0..sf.num_cols).find(|&j| !tableau.body[row][j].is_zero_approx());
            if let Some(col) = replacement {
                tableau.pivot(row, col);
            }
            // If no replacement exists the row is redundant; the artificial
            // stays basic at value zero, which is harmless because the column
            // is banned from entering and its value can only change through a
            // ratio test that keeps it at zero.
        }

        body = tableau.body;
        basis = tableau.basis;
    }

    // -------------------------- Phase 2 --------------------------
    // Reduced costs for the real objective: start from the cost vector and
    // subtract cb_i * row_i for every basic column with a nonzero cost.
    let mut costs_full = sf.costs.clone();
    costs_full.resize(total_cols, T::zero());
    let mut obj = costs_full.clone();
    obj.push(T::zero());
    for (i, row) in body.iter().enumerate() {
        let cb = &costs_full[basis[i]];
        if cb.is_zero_approx() {
            continue;
        }
        kernels::sub_scaled(&mut obj, cb, row);
    }
    // The kernel sweep also touched the basic columns themselves; their
    // reduced costs are zero by construction, so restore exactness for f64.
    for (i, _) in body.iter().enumerate() {
        obj[basis[i]] = T::zero();
    }

    let mut tableau = Tableau {
        body,
        obj,
        basis,
        cols: total_cols,
        banned: is_artificial,
        support: Vec::with_capacity(total_cols + 1),
        options,
        stats: &mut stats,
    };
    tableau.optimize(false)?;

    // ----------------------- Extract solution -----------------------
    let mut column_values = vec![T::zero(); total_cols];
    for (i, &b) in tableau.basis.iter().enumerate() {
        column_values[b] = tableau.rhs(i).clone();
    }
    let values = extract_values(&sf, &column_values, total_cols);
    let objective = report_objective(model, &values);
    Ok(Solution {
        objective,
        values,
        stats,
    })
}

fn extract_values<T: Scalar>(
    sf: &StandardForm<T>,
    column_values: &[T],
    total_cols: usize,
) -> Vec<T> {
    let get = |col: usize| -> T {
        if col < total_cols && col < column_values.len() {
            column_values[col].clone()
        } else {
            T::zero()
        }
    };
    sf.mapping
        .iter()
        .map(|m| match *m {
            ColumnMap::Single(col) => get(col),
            ColumnMap::Split { plus, minus } => get(plus) - get(minus),
        })
        .collect()
}

fn report_objective<T: Scalar>(model: &Model<T>, values: &[T]) -> T {
    let (_, expr) = model
        .objective
        .as_ref()
        .expect("objective checked during standard-form construction");
    expr.evaluate(values)
}

#[cfg(test)]
mod tests {
    use super::{PivotStats, PricingRule, SolverOptions};
    use crate::model::{LinExpr, LpError, Model, Relation, Sense, VarBound};
    use privmech_numerics::{rat, Rational};

    #[test]
    fn maximize_two_variable_example() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Classic Dantzig example; optimum 36 at (2, 6).
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0), Relation::Le, 4.0)
            .unwrap();
        m.add_constraint(LinExpr::term(y, 2.0), Relation::Le, 12.0)
            .unwrap();
        m.add_constraint(LinExpr::term(x, 3.0).plus(y, 2.0), Relation::Le, 18.0)
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 3.0).plus(y, 5.0))
            .unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!((sol.value(y) - 6.0).abs() < 1e-9);
        assert!(sol.stats.total_pivots() > 0);
    }

    #[test]
    fn exact_rational_solution_is_exact() {
        // min x + y  s.t. x + 2y >= 3, 3x + y >= 4, x,y >= 0.
        // Optimum at intersection: x = 1, y = 1, objective 2.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(2, 1)),
            Relation::Ge,
            rat(3, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(3, 1)).plus(y, rat(1, 1)),
            Relation::Ge,
            rat(4, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(*sol.value(x), rat(1, 1));
        assert_eq!(*sol.value(y), rat(1, 1));
    }

    #[test]
    fn equality_constraints_and_free_variables() {
        // min |style| epigraph-free test: min z s.t. z free, z = x - 2,
        // x + y = 5, y >= 1, all vars >= 0 except z free.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        let z = m.add_var("z", VarBound::Free);
        m.add_constraint(
            LinExpr::term(z, rat(1, 1)).plus(x, rat(-1, 1)),
            Relation::Eq,
            rat(-2, 1),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Eq,
            rat(5, 1),
        )
        .unwrap();
        m.add_constraint(LinExpr::term(y, rat(1, 1)), Relation::Ge, rat(1, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(z, rat(1, 1)))
            .unwrap();
        let sol = m.solve().unwrap();
        // x can go as low as 0 (then y = 5 >= 1), so z = x - 2 = -2.
        assert_eq!(sol.objective, rat(-2, 1));
        assert_eq!(*sol.value(z), rat(-2, 1));
        // Phase 1 had to run: equality rows need artificial variables.
        assert!(sol.stats.phase1_pivots > 0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Ge, rat(2, 1))
            .unwrap();
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(1, 1)))
            .unwrap();
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m: Model<f64> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, 1.0), Relation::Ge, 1.0)
            .unwrap();
        m.set_objective(Sense::Maximize, LinExpr::term(x, 1.0))
            .unwrap();
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn missing_objective_is_an_error() {
        let m: Model<f64> = Model::new();
        assert_eq!(m.solve().unwrap_err(), LpError::MissingObjective);
    }

    #[test]
    fn no_constraints_minimization_at_origin() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.set_objective(Sense::Minimize, LinExpr::term(x, rat(3, 1)))
            .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, Rational::zero());
        assert_eq!(sol.stats, PivotStats::default());
        // And the unbounded direction is detected without constraints too.
        let mut m2: Model<Rational> = Model::new();
        let y = m2.add_var("y", VarBound::NonNegative);
        m2.set_objective(Sense::Maximize, LinExpr::term(y, rat(1, 1)))
            .unwrap();
        assert_eq!(m2.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn minimize_max_epigraph_helper() {
        // minimize max(x, 4 - x) over 0 <= x <= 4: optimum 2 at x = 2.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        m.add_constraint(LinExpr::term(x, rat(1, 1)), Relation::Le, rat(4, 1))
            .unwrap();
        // Expressions: x and 4 - x.
        let e1 = LinExpr::term(x, rat(1, 1));
        let mut e2 = LinExpr::term(x, rat(-1, 1));
        e2.add_constant(rat(4, 1));
        let d = m.minimize_max(vec![e1, e2]).unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(*sol.value(d), rat(2, 1));
        assert_eq!(*sol.value(x), rat(2, 1));
    }

    fn beale_cycling_model() -> Model<Rational> {
        // Beale's classical cycling example (Chvátal, Linear Programming):
        //   max 10a - 57b - 9c - 24d
        //   s.t. 0.5a - 5.5b - 2.5c + 9d <= 0
        //        0.5a - 1.5b - 0.5c +  d <= 0
        //        a <= 1
        // The textbook optimum is 1 at a = 1, c = 1, b = d = 0. Dantzig's
        // largest-coefficient rule cycles here without anti-cycling help.
        let mut m: Model<Rational> = Model::new();
        let a = m.add_var("a", VarBound::NonNegative);
        let b = m.add_var("b", VarBound::NonNegative);
        let c = m.add_var("c", VarBound::NonNegative);
        let d = m.add_var("d", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(a, rat(1, 2))
                .plus(b, rat(-11, 2))
                .plus(c, rat(-5, 2))
                .plus(d, rat(9, 1)),
            Relation::Le,
            Rational::zero(),
        )
        .unwrap();
        m.add_constraint(
            LinExpr::term(a, rat(1, 2))
                .plus(b, rat(-3, 2))
                .plus(c, rat(-1, 2))
                .plus(d, rat(1, 1)),
            Relation::Le,
            Rational::zero(),
        )
        .unwrap();
        m.add_constraint(LinExpr::term(a, rat(1, 1)), Relation::Le, rat(1, 1))
            .unwrap();
        m.set_objective(
            Sense::Maximize,
            LinExpr::term(a, rat(10, 1))
                .plus(b, rat(-57, 1))
                .plus(c, rat(-9, 1))
                .plus(d, rat(-24, 1)),
        )
        .unwrap();
        m
    }

    #[test]
    fn degenerate_lp_terminates_with_default_pricing() {
        let m = beale_cycling_model();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(1, 1));
        // Beale's optimum is unique: a = 1, c = 1, b = d = 0 (vars 0..=3).
        assert_eq!(sol.values[0], rat(1, 1));
        assert_eq!(sol.values[1], Rational::zero());
        assert_eq!(sol.values[2], rat(1, 1));
        assert_eq!(sol.values[3], Rational::zero());
        assert!(
            sol.stats.degenerate_pivots > 0,
            "Beale's example is degenerate"
        );
    }

    #[test]
    fn dantzig_fallback_matches_pure_bland_on_cycling_lp() {
        // The degeneracy regression demanded by the perf rework: the
        // Dantzig-with-fallback default must terminate on the classic cycling
        // example and agree with pure Bland's rule on the objective.
        let m = beale_cycling_model();
        let dantzig = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::DantzigWithBlandFallback,
                // Force the fallback machinery to engage almost immediately.
                degeneracy_streak_limit: 1,
            },
        )
        .unwrap();
        let bland = crate::simplex::solve_model_with(
            &m,
            &SolverOptions {
                pricing: PricingRule::Bland,
                degeneracy_streak_limit: 1,
            },
        )
        .unwrap();
        assert_eq!(dantzig.objective, rat(1, 1));
        assert_eq!(bland.objective, rat(1, 1));
        assert_eq!(dantzig.objective, bland.objective);
        assert_eq!(
            bland.stats.dantzig_pivots, 0,
            "pure Bland never prices by Dantzig"
        );
        assert!(bland.stats.bland_pivots > 0);
    }

    #[test]
    fn pivot_stats_are_plausible() {
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        m.add_constraint(
            LinExpr::term(x, rat(1, 1)).plus(y, rat(1, 1)),
            Relation::Le,
            rat(10, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Maximize,
            LinExpr::term(x, rat(1, 1)).plus(y, rat(2, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(20, 1));
        let s = sol.stats;
        assert_eq!(s.total_pivots(), s.phase1_pivots + s.phase2_pivots);
        assert_eq!(s.total_pivots(), s.dantzig_pivots + s.bland_pivots);
        assert!(s.total_pivots() >= 1);
        assert_eq!(s.fallback_activations, 0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // Constraint written with a negative right-hand side.
        let mut m: Model<Rational> = Model::new();
        let x = m.add_var("x", VarBound::NonNegative);
        let y = m.add_var("y", VarBound::NonNegative);
        // -x - y <= -2  (i.e. x + y >= 2)
        m.add_constraint(
            LinExpr::term(x, rat(-1, 1)).plus(y, rat(-1, 1)),
            Relation::Le,
            rat(-2, 1),
        )
        .unwrap();
        m.set_objective(
            Sense::Minimize,
            LinExpr::term(x, rat(2, 1)).plus(y, rat(3, 1)),
        )
        .unwrap();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective, rat(4, 1));
        assert_eq!(*sol.value(x), rat(2, 1));
    }
}
