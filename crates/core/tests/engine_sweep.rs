//! Property tests for the engine's batched α-sweeps (proptest shim).
//!
//! The central contract: `engine.sweep(levels, request)` over an arbitrary
//! list of privacy levels equals per-level `engine.solve` calls — **exactly**
//! (bit-identical mechanisms, losses and pivot statistics) for the `Rational`
//! backend, and within floating tolerance for `f64`. The sweep is the
//! warm-started path (one LP template re-parameterized per α, cloned per
//! worker thread), so these tests pin down that warm solves cannot drift from
//! cold ones, for both solve strategies and for several thread counts.

use std::sync::Arc;

use privmech_core::{
    AbsoluteError, PrivacyEngine, PrivacyLevel, Solve, SolveRequest, SolveStrategy, TableLoss,
    ValidatedRequest,
};
use privmech_linalg::Matrix;
use privmech_numerics::{rat, Rational};
use proptest::prelude::*;

/// Random α as a fraction num/den with 0 <= num <= den <= 9 (both endpoints
/// α = 0 and α = 1 included: the sweep must handle the vacuous and absolute
/// privacy levels through the same code path).
fn arb_alpha() -> impl Strategy<Value = Rational> {
    (0i64..=9, 1i64..=9).prop_map(|(n, d)| if n >= d { rat(1, 1) } else { rat(n, d) })
}

/// A list of 1..=6 privacy levels, possibly with duplicates.
fn arb_levels() -> impl Strategy<Value = Vec<PrivacyLevel<Rational>>> {
    prop::collection::vec(arb_alpha(), 1..=6).prop_map(|alphas| {
        alphas
            .into_iter()
            .map(|a| PrivacyLevel::new(a).unwrap())
            .collect()
    })
}

/// A random monotone loss table over {0..=n}: l(i, r) is a random
/// non-decreasing function of |i - r|.
fn arb_monotone_loss(n: usize) -> impl Strategy<Value = TableLoss<Rational>> {
    prop::collection::vec(0i64..=4, n + 1).prop_map(move |increments| {
        let mut cumulative = vec![0i64; n + 1];
        let mut acc = 0i64;
        for d in 1..=n {
            acc += increments[d];
            cumulative[d] = acc;
        }
        let table = Matrix::from_fn(n + 1, n + 1, |i, r| rat(cumulative[i.abs_diff(r)], 1));
        TableLoss::new(table, "random-monotone").unwrap()
    })
}

/// Random non-empty side-information subset of {0..=n}.
fn arb_members(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(any::<bool>(), n + 1).prop_map(move |mask| {
        let mut members: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        if members.is_empty() {
            members.push(n / 2);
        }
        members
    })
}

fn per_level_solves(
    levels: &[PrivacyLevel<Rational>],
    request: &ValidatedRequest<Rational>,
) -> Vec<Solve<Rational>> {
    let engine = PrivacyEngine::with_threads(1);
    levels
        .iter()
        .map(|level| {
            let at = request.clone().at_level(level.clone());
            engine.solve(&at).unwrap()
        })
        .collect()
}

fn assert_exact_match(swept: &[Solve<Rational>], singles: &[Solve<Rational>], label: &str) {
    assert_eq!(swept.len(), singles.len(), "{label}: result count");
    for (k, (s, single)) in swept.iter().zip(singles).enumerate() {
        assert_eq!(s.level, single.level, "{label}: level order at {k}");
        assert_eq!(s.mechanism, single.mechanism, "{label}: mechanism at {k}");
        assert_eq!(s.loss, single.loss, "{label}: loss at {k}");
        assert_eq!(s.stats, single.stats, "{label}: stats at {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn minimax_sweep_equals_per_level_solves_exactly(
        levels in arb_levels(),
        loss in arb_monotone_loss(3),
        members in arb_members(3),
    ) {
        let loss = Arc::new(loss);
        for strategy in [SolveStrategy::GeometricFactorization, SolveStrategy::DirectLp] {
            let request = SolveRequest::<Rational>::minimax()
                .name("sweep-property")
                .loss(loss.clone())
                .support(3, members.iter().copied())
                .privacy_level(rat(1, 2)) // placeholder; sweep overrides per level
                .strategy(strategy)
                .validate()
                .unwrap();
            let singles = per_level_solves(&levels, &request);
            for threads in [1usize, 4] {
                let swept = PrivacyEngine::with_threads(threads)
                    .sweep(&levels, &request)
                    .unwrap();
                assert_exact_match(&swept, &singles, &format!("{strategy:?} x{threads}"));
            }
        }
    }

    #[test]
    fn sweep_with_streams_exactly_the_sweep_results(
        levels in arb_levels(),
        loss in arb_monotone_loss(3),
        members in arb_members(3),
    ) {
        // The incremental API behind `sweep`: completion-order delivery with
        // input indices must carry exactly the solves the input-order wrapper
        // returns — every index exactly once, bit-identical payloads — at any
        // thread count (out-of-order completion included).
        let loss = Arc::new(loss);
        for strategy in [SolveStrategy::GeometricFactorization, SolveStrategy::DirectLp] {
            let request = SolveRequest::<Rational>::minimax()
                .name("sweep-with-property")
                .loss(loss.clone())
                .support(3, members.iter().copied())
                .privacy_level(rat(1, 2))
                .strategy(strategy)
                .validate()
                .unwrap();
            let ordered = PrivacyEngine::with_threads(1).sweep(&levels, &request).unwrap();
            for threads in [1usize, 4] {
                let mut delivered: Vec<Option<Solve<Rational>>> = vec![None; levels.len()];
                let mut completion_order = Vec::new();
                PrivacyEngine::with_threads(threads)
                    .sweep_with(&levels, &request, |idx, solve| {
                        completion_order.push(idx);
                        let prev = delivered[idx].replace(solve.unwrap());
                        assert!(prev.is_none(), "index {idx} delivered twice");
                    })
                    .unwrap();
                prop_assert_eq!(completion_order.len(), levels.len());
                let reordered: Vec<Solve<Rational>> =
                    delivered.into_iter().map(Option::unwrap).collect();
                assert_exact_match(&reordered, &ordered, &format!("sweep_with {strategy:?} x{threads}"));
            }
        }
    }

    #[test]
    fn bayesian_sweep_equals_per_level_solves_exactly(
        levels in arb_levels(),
        weights in prop::collection::vec(0i64..=5, 4),
    ) {
        // Build a valid prior from random non-negative weights.
        let total: i64 = weights.iter().sum::<i64>().max(1);
        let mut prior: Vec<Rational> = weights.iter().map(|w| rat(*w, total)).collect();
        if weights.iter().sum::<i64>() == 0 {
            prior = vec![rat(1, 4); 4];
        }
        for strategy in [SolveStrategy::GeometricFactorization, SolveStrategy::DirectLp] {
            let request = SolveRequest::<Rational>::bayesian()
                .name("bayes-sweep-property")
                .loss(Arc::new(AbsoluteError))
                .prior(prior.clone())
                .privacy_level(rat(1, 3))
                .strategy(strategy)
                .validate()
                .unwrap();
            let singles = per_level_solves(&levels, &request);
            for threads in [1usize, 3] {
                let swept = PrivacyEngine::with_threads(threads)
                    .sweep(&levels, &request)
                    .unwrap();
                assert_exact_match(&swept, &singles, &format!("bayes {strategy:?} x{threads}"));
            }
        }
    }

    #[test]
    fn f64_sweep_matches_per_level_solves_within_tolerance(
        raw_alphas in prop::collection::vec(1u32..=99, 1..=5),
    ) {
        let levels: Vec<PrivacyLevel<f64>> = raw_alphas
            .iter()
            .map(|a| PrivacyLevel::new(f64::from(*a) / 100.0).unwrap())
            .collect();
        for strategy in [SolveStrategy::GeometricFactorization, SolveStrategy::DirectLp] {
            let request = SolveRequest::<f64>::minimax()
                .name("f64-sweep")
                .loss(Arc::new(AbsoluteError))
                .support(4, 0..=4)
                .privacy_level(0.5)
                .strategy(strategy)
                .validate()
                .unwrap();
            let engine = PrivacyEngine::with_threads(2);
            let swept = engine.sweep(&levels, &request).unwrap();
            for (level, s) in levels.iter().zip(&swept) {
                let single = engine.solve(&request.clone().at_level(level.clone())).unwrap();
                let scale = single.loss.abs().max(1.0);
                prop_assert!(
                    (s.loss - single.loss).abs() <= 1e-9 * scale,
                    "{strategy:?} α={}: sweep loss {} vs solve loss {}",
                    level.alpha(),
                    s.loss,
                    single.loss
                );
            }
        }
    }
}

#[test]
fn sweep_matches_the_theorem1_equality_against_the_direct_lp() {
    // The warm sweep's losses must equal the tailored optima of the seed's
    // Section 2.5 formulation exactly (Theorem 1 with exact arithmetic), even
    // though the default strategy computes the mechanism through the
    // geometric factorization instead of the Section 2.5 LP.
    let levels: Vec<PrivacyLevel<Rational>> = [(1i64, 5i64), (1, 4), (1, 3), (1, 2), (2, 3)]
        .into_iter()
        .map(|(n, d)| PrivacyLevel::new(rat(n, d)).unwrap())
        .collect();
    let consumer = privmech_core::MinimaxConsumer::new(
        "thm1",
        Arc::new(AbsoluteError),
        privmech_core::SideInformation::full(4),
    )
    .unwrap();
    let request = ValidatedRequest::minimax(levels[0].clone(), consumer.clone());
    let swept = PrivacyEngine::with_threads(4)
        .sweep(&levels, &request)
        .unwrap();
    for (level, s) in levels.iter().zip(&swept) {
        let old = PrivacyEngine::with_threads(1)
            .solve(
                &ValidatedRequest::minimax(level.clone(), consumer.clone())
                    .with_strategy(SolveStrategy::DirectLp),
            )
            .unwrap();
        assert_eq!(s.loss, old.loss, "α = {}", level.alpha());
        assert!(s.mechanism.is_differentially_private(level));
        // The factorized mechanism is derivable from the geometric mechanism
        // by construction (Section 4.2 says the direct optimum is too).
        assert!(privmech_core::theorem2_check(&s.mechanism, level).is_derivable());
    }
}
