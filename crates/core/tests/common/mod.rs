//! Shared test support: the seed's removed free functions, reproduced
//! through the engine.
//!
//! PR 5 removed the `#[deprecated]` seed shims (`optimal_mechanism`,
//! `optimal_interaction`, …); these helpers are the single integration-test
//! definition of "the seed recipe" — a cold `SolveStrategy::DirectLp` engine
//! solve of the Section 2.5 template, and a plain `engine.interact` — so the
//! bit-identity anchors in every test file exercise exactly the same
//! construction (the unit-test twin lives in `src/seed_compat.rs`).

use privmech_core::{
    Interaction, Mechanism, MinimaxConsumer, PrivacyEngine, PrivacyLevel, Solve, SolveStrategy,
    ValidatedRequest,
};
use privmech_numerics::Rational;

/// The seed `optimal_mechanism` free function through the engine: a cold
/// `DirectLp` solve (bit-identical to the removed shim).
pub fn optimal_mechanism(
    level: &PrivacyLevel<Rational>,
    consumer: &MinimaxConsumer<Rational>,
) -> privmech_core::Result<Solve<Rational>> {
    let request = ValidatedRequest::minimax(level.clone(), consumer.clone())
        .with_strategy(SolveStrategy::DirectLp);
    PrivacyEngine::with_threads(1).solve(&request)
}

/// The seed `optimal_interaction` free function through the engine (the
/// request's privacy level plays no role in post-processing).
pub fn optimal_interaction(
    deployed: &Mechanism<Rational>,
    consumer: &MinimaxConsumer<Rational>,
) -> privmech_core::Result<Interaction<Rational>> {
    let level = PrivacyLevel::new(Rational::zero())?;
    let request = ValidatedRequest::minimax(level, consumer.clone());
    PrivacyEngine::with_threads(1).interact(deployed, &request)
}
