//! `SolveRequest` validation: every malformed request is rejected at
//! `validate()` time with a stable `CoreError` variant, so engine users can
//! match on failures programmatically.

use std::sync::Arc;

use privmech_core::{AbsoluteError, CoreError, LossFunction, PrivacyEngine, SolveRequest};
use privmech_numerics::{rat, Rational};

fn minimax_base() -> SolveRequest<Rational> {
    SolveRequest::minimax()
        .name("validation")
        .loss(Arc::new(AbsoluteError))
        .support(3, 0..=3)
        .privacy_level(rat(1, 4))
}

#[test]
fn well_formed_requests_validate_and_solve() {
    let request = minimax_base().validate().unwrap();
    assert_eq!(request.n(), 3);
    assert_eq!(*request.level().alpha(), rat(1, 4));
    let solve = PrivacyEngine::new().solve(&request).unwrap();
    assert!(solve.mechanism.is_differentially_private(request.level()));
}

#[test]
fn bad_alpha_is_invalid_alpha() {
    let err = minimax_base()
        .privacy_level(rat(5, 4))
        .validate()
        .unwrap_err();
    // The builder overrides the earlier α, so exactly the bad one is checked.
    assert!(matches!(err, CoreError::InvalidAlpha { .. }), "{err}");
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(AbsoluteError))
        .support(3, 0..=3)
        .privacy_level(rat(-1, 2))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidAlpha { .. }), "{err}");
}

#[test]
fn empty_or_out_of_range_support_is_invalid_side_information() {
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(AbsoluteError))
        .support(3, std::iter::empty())
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(
        matches!(err, CoreError::InvalidSideInformation { .. }),
        "{err}"
    );
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(AbsoluteError))
        .support(3, [0, 7])
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(
        matches!(err, CoreError::InvalidSideInformation { .. }),
        "{err}"
    );
}

#[test]
fn malformed_priors_are_invalid_prior() {
    // Does not sum to one.
    let err = SolveRequest::<Rational>::bayesian()
        .loss(Arc::new(AbsoluteError))
        .prior(vec![rat(1, 2), rat(1, 4)])
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidPrior { .. }), "{err}");
    // Negative mass.
    let err = SolveRequest::<Rational>::bayesian()
        .loss(Arc::new(AbsoluteError))
        .prior(vec![rat(3, 2), rat(-1, 2)])
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidPrior { .. }), "{err}");
    // Empty prior.
    let err = SolveRequest::<Rational>::bayesian()
        .loss(Arc::new(AbsoluteError))
        .prior(Vec::new())
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidPrior { .. }), "{err}");
}

#[test]
fn structurally_incomplete_requests_are_invalid_request() {
    // No loss.
    let err = SolveRequest::<Rational>::minimax()
        .support(3, 0..=3)
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidRequest { .. }), "{err}");
    // No privacy level.
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(AbsoluteError))
        .support(3, 0..=3)
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidRequest { .. }), "{err}");
    // No side information on a minimax request.
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(AbsoluteError))
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidRequest { .. }), "{err}");
    // No prior on a Bayesian request.
    let err = SolveRequest::<Rational>::bayesian()
        .loss(Arc::new(AbsoluteError))
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidRequest { .. }), "{err}");
    // Cross-kind fields: a prior on a minimax request…
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(AbsoluteError))
        .support(3, 0..=3)
        .prior(vec![rat(1, 4); 4])
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidRequest { .. }), "{err}");
    // …and side information on a Bayesian request.
    let err = SolveRequest::<Rational>::bayesian()
        .loss(Arc::new(AbsoluteError))
        .prior(vec![rat(1, 4); 4])
        .support(3, 0..=3)
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidRequest { .. }), "{err}");
}

#[test]
fn non_monotone_loss_is_rejected() {
    // Loss dips back down at distance 2: not monotone in |i - r|.
    #[derive(Debug)]
    struct SpikyLoss;
    impl LossFunction<Rational> for SpikyLoss {
        fn loss(&self, i: usize, r: usize) -> Rational {
            match i.abs_diff(r) {
                0 => rat(0, 1),
                1 => rat(2, 1),
                2 => rat(1, 1),
                _ => rat(3, 1),
            }
        }
        fn name(&self) -> &str {
            "spiky"
        }
    }
    let err = SolveRequest::<Rational>::minimax()
        .loss(Arc::new(SpikyLoss))
        .support(3, 0..=3)
        .privacy_level(rat(1, 4))
        .validate()
        .unwrap_err();
    assert!(matches!(err, CoreError::NonMonotoneLoss { .. }), "{err}");
}
