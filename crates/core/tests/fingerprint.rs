//! Property tests for the canonical request fingerprint
//! (`ValidatedRequest::fingerprint`), the key of the serving layer's
//! response cache.
//!
//! The two directions under test:
//!
//! * **soundness** — two requests describing the same optimization problem
//!   fingerprint equal, however they were phrased (builder order, loss type,
//!   display name, duplicated support members);
//! * **discrimination** — changing any solve-relevant field (α, loss values,
//!   side information, prior, strategy) changes the fingerprint.

use std::sync::Arc;

use privmech_core::{
    AbsoluteError, LossFunction, RequestFingerprint, SolveRequest, SolveStrategy, SquaredError,
    TableLoss, ToleranceError, ZeroOneError,
};
use privmech_numerics::{rat, Rational};
use proptest::prelude::*;

/// The generated shape of a minimax request: everything the fingerprint must
/// react to.
#[derive(Debug, Clone, PartialEq)]
struct Shape {
    n: usize,
    members: Vec<usize>,
    loss: usize, // 0 = absolute, 1 = squared, 2 = zero-one, 3 = tolerance(1)
    alpha_num: i64,
    alpha_den: i64,
    direct: bool,
}

fn loss_by_index(idx: usize) -> Arc<dyn LossFunction<Rational> + Send + Sync> {
    match idx % 4 {
        0 => Arc::new(AbsoluteError),
        1 => Arc::new(SquaredError),
        2 => Arc::new(ZeroOneError),
        _ => Arc::new(ToleranceError { width: 1 }),
    }
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (2usize..=5, 0usize..4, 1i64..=6, 0usize..64, any::<bool>()).prop_map(
        |(n, loss, alpha_num, member_mask, direct)| {
            // A non-empty subset of {0, …, n} from the mask bits.
            let mut members: Vec<usize> = (0..=n).filter(|i| member_mask & (1 << i) != 0).collect();
            if members.is_empty() {
                members.push(alpha_num as usize % (n + 1));
            }
            Shape {
                n,
                members,
                loss,
                alpha_num,
                alpha_den: 7,
                direct,
            }
        },
    )
}

fn fingerprint_of(shape: &Shape, name: &str) -> RequestFingerprint {
    SolveRequest::<Rational>::minimax()
        .name(name)
        .loss(loss_by_index(shape.loss))
        .support(shape.n, shape.members.iter().copied())
        .privacy_level(rat(shape.alpha_num, shape.alpha_den))
        .strategy(if shape.direct {
            SolveStrategy::DirectLp
        } else {
            SolveStrategy::GeometricFactorization
        })
        .validate()
        .expect("generated shapes are valid")
        .fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: re-validating the same content — different name, duplicated
    /// support members, the loss swapped for its tabulated equivalent — must
    /// reproduce the fingerprint exactly.
    #[test]
    fn equal_content_gives_equal_fingerprints(shape in shape_strategy()) {
        let a = fingerprint_of(&shape, "alice");
        let b = fingerprint_of(&shape, "bob");
        prop_assert_eq!(&a, &b, "name must not split the fingerprint");

        // Duplicate every member; SideInformation dedups, content is equal.
        let mut doubled = shape.clone();
        doubled.members.extend(shape.members.iter().copied());
        prop_assert_eq!(&a, &fingerprint_of(&doubled, "carol"));

        // Same loss values through a different LossFunction type.
        let table = TableLoss::from_loss(
            shape.n,
            loss_by_index(shape.loss).as_ref(),
            "tabulated",
        ).expect("builtin losses are monotone");
        let via_table = SolveRequest::<Rational>::minimax()
            .loss(Arc::new(table))
            .support(shape.n, shape.members.iter().copied())
            .privacy_level(rat(shape.alpha_num, shape.alpha_den))
            .strategy(if shape.direct {
                SolveStrategy::DirectLp
            } else {
                SolveStrategy::GeometricFactorization
            })
            .validate()
            .unwrap()
            .fingerprint();
        prop_assert_eq!(&a, &via_table, "loss must enter by value, not type");

        // The canonical string is the key: equal fingerprints, equal strings.
        prop_assert_eq!(a.canonical(), b.canonical());
        prop_assert_eq!(a.hash(), b.hash());
    }

    /// Discrimination: perturbing each solve-relevant field must change the
    /// fingerprint.
    #[test]
    fn differing_content_gives_differing_fingerprints(shape in shape_strategy()) {
        let base = fingerprint_of(&shape, "base");

        // A different α.
        let mut other = shape.clone();
        other.alpha_num = if shape.alpha_num == 6 { 1 } else { shape.alpha_num + 1 };
        prop_assert_ne!(&base, &fingerprint_of(&other, "alpha"));

        // A different loss (the four builtins are pairwise distinct on any
        // domain with n >= 2).
        let mut other = shape.clone();
        other.loss = (shape.loss + 1) % 4;
        prop_assert_ne!(&base, &fingerprint_of(&other, "loss"));

        // Different side information: toggle one member (keeping S valid and
        // non-empty).
        let mut other = shape.clone();
        if let Some(absent) = (0..=shape.n).find(|i| !shape.members.contains(i)) {
            other.members.push(absent);
        } else if shape.members.len() > 1 {
            other.members.pop();
        } else {
            // S = {0..=n} with a single member means n = 0; unreachable for
            // the generated n >= 2, but reject defensively.
            prop_assume!(false);
        }
        prop_assert_ne!(&base, &fingerprint_of(&other, "support"));

        // The other strategy.
        let mut other = shape.clone();
        other.direct = !shape.direct;
        prop_assert_ne!(&base, &fingerprint_of(&other, "strategy"));
    }

    /// Bayesian requests: the prior is part of the content.
    #[test]
    fn bayesian_prior_enters_the_fingerprint(weight in 1i64..=5) {
        // prior_a = (w/6, 1 - w/6), prior_b reversed (distinct unless w = 3).
        prop_assume!(weight != 3);
        let prior_a = vec![rat(weight, 6), rat(6 - weight, 6)];
        let prior_b = vec![rat(6 - weight, 6), rat(weight, 6)];
        let request = |prior: Vec<Rational>| {
            SolveRequest::<Rational>::bayesian()
                .loss(Arc::new(AbsoluteError))
                .prior(prior)
                .privacy_level(rat(1, 4))
                .validate()
                .unwrap()
                .fingerprint()
        };
        let a = request(prior_a.clone());
        prop_assert_eq!(&a, &request(prior_a), "same prior, same fingerprint");
        prop_assert_ne!(&a, &request(prior_b), "prior must enter the fingerprint");
    }
}

// ---------------------------------------------------------------------------
// Solver-form exclusion (PR 4).
//
// `SolverForm` and `refactor_interval` are execution details covered by the
// dense ≡ revised bit-identity contract (crates/lp/SOLVER.md): they can never
// change a result, so they are deliberately excluded from the fingerprint.
// This keeps every cache entry produced by the pre-refactor (dense-only)
// serving layer addressable — and verifiable — by the revised-default server.
// ---------------------------------------------------------------------------

#[test]
fn solver_form_and_refactor_interval_do_not_split_the_fingerprint() {
    use privmech_lp::{PricingRule, SolverForm, SolverOptions};
    let base = || {
        SolveRequest::<Rational>::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(3, 0..=3)
            .privacy_level(rat(1, 4))
    };
    let reference = base().validate().unwrap().fingerprint();
    for options in [
        SolverOptions {
            form: SolverForm::Dense,
            ..SolverOptions::default()
        },
        SolverOptions {
            form: SolverForm::Revised,
            ..SolverOptions::default()
        },
        SolverOptions {
            form: SolverForm::Revised,
            refactor_interval: 1,
            ..SolverOptions::default()
        },
        SolverOptions {
            refactor_interval: SolverOptions::NEVER_REFACTOR,
            ..SolverOptions::default()
        },
    ] {
        let fp = base()
            .solver_options(options)
            .validate()
            .unwrap()
            .fingerprint();
        assert_eq!(reference, fp, "{options:?} must not split the cache key");
    }
    // Result-relevant option fields still discriminate.
    let bland = base()
        .solver_options(SolverOptions {
            pricing: PricingRule::Bland,
            ..SolverOptions::default()
        })
        .validate()
        .unwrap()
        .fingerprint();
    assert_ne!(
        reference, bland,
        "pricing is result-relevant and must split"
    );
}

// ---------------------------------------------------------------------------
// Cache-key stability across the PR 6 option additions.
//
// PR 6 grew `SolverOptions` by three fields (factorization kind, scaling,
// warm-start mode). The fingerprint policy keeps every cache entry written by
// a pre-PR6 server addressable by a post-PR6 server:
//
// * `factorization` is an execution detail under the pivot-identity contract
//   and never enters the key;
// * `scaling` and `warm_start` can change which optimal vertex is returned,
//   so they enter the key — but only when non-default, leaving the default
//   rendering byte-identical to what a pre-PR6 server produced.
// ---------------------------------------------------------------------------

#[test]
fn pr6_option_fields_leave_pre_existing_cache_keys_intact() {
    use privmech_lp::{FactorizationKind, PricingRule, ScalingMode, SolverOptions, WarmStartMode};
    let base = || {
        SolveRequest::<Rational>::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(3, 0..=3)
            .privacy_level(rat(1, 4))
    };
    let reference = base().validate().unwrap().fingerprint();

    // The canonical string a pre-PR6 server computed (and keyed its persisted
    // cache entries by) for this request, pinned byte for byte. If this
    // assertion ever fails, a deployed server's cache would silently go cold
    // — and `--verify-hits` replay of old entries would stop finding them.
    assert_eq!(
        reference.canonical(),
        "fp-v1;exact=true;n=3;alpha=1/4;strategy=factorization;\
         pricing=dantzig-bland;streak=8;kind=minimax;S=0,1,2,3;\
         loss=0,1,2,3|1,0,1,2|2,1,0,1|3,2,1,0"
    );

    // The factorization kind never splits the key.
    for factorization in [
        FactorizationKind::EtaFile,
        FactorizationKind::LuForrestTomlin,
    ] {
        let fp = base()
            .solver_options(SolverOptions {
                factorization,
                ..SolverOptions::default()
            })
            .validate()
            .unwrap()
            .fingerprint();
        assert_eq!(reference, fp, "{factorization:?} must not split the key");
    }

    // Scaling and warm starts split the key exactly when enabled.
    let scaled = base()
        .solver_options(SolverOptions {
            scaling: ScalingMode::Equilibrate,
            ..SolverOptions::default()
        })
        .validate()
        .unwrap()
        .fingerprint();
    assert_ne!(reference, scaled, "equilibration is result-relevant");
    let warm = base()
        .solver_options(SolverOptions {
            warm_start: WarmStartMode::DualSimplex,
            ..SolverOptions::default()
        })
        .validate()
        .unwrap()
        .fingerprint();
    assert_ne!(reference, warm, "warm starts are result-relevant");
    assert_ne!(scaled, warm);

    // Devex (pre-existing field, new value) splits the key like any
    // non-default pricing rule.
    let devex = base()
        .solver_options(SolverOptions {
            pricing: PricingRule::Devex,
            ..SolverOptions::default()
        })
        .validate()
        .unwrap()
        .fingerprint();
    assert_ne!(reference, devex);
}
