//! Dense ≡ revised regression through the public engine surface (PR 4).
//!
//! The solver-form toggle ([`privmech_lp::SolverForm`]) is an execution
//! detail: `PrivacyEngine::solve` and `PrivacyEngine::sweep` must return
//! bit-identical results — mechanism, loss, and pivot statistics — whichever
//! form executes the LP, under both solve strategies and at every
//! refactorization frequency. This is what lets the serving layer keep
//! solver form out of its cache keys and keep verifying pre-refactor cache
//! entries (see `crates/serve/tests/forms.rs` for the serving-side half).

use std::sync::Arc;

use privmech_core::{
    AbsoluteError, PrivacyEngine, PrivacyLevel, SolveRequest, SolveStrategy, SquaredError,
    ValidatedRequest,
};
use privmech_lp::{SolverForm, SolverOptions};
use privmech_numerics::{rat, Rational};

fn request(
    strategy: SolveStrategy,
    options: SolverOptions,
    alpha: Rational,
) -> ValidatedRequest<Rational> {
    SolveRequest::minimax()
        .loss(Arc::new(AbsoluteError))
        .support(3, 0..=3)
        .privacy_level(alpha)
        .strategy(strategy)
        .solver_options(options)
        .validate()
        .expect("valid request")
}

fn forms() -> Vec<SolverOptions> {
    vec![
        SolverOptions {
            form: SolverForm::Dense,
            ..SolverOptions::default()
        },
        SolverOptions {
            form: SolverForm::Revised,
            ..SolverOptions::default()
        },
        SolverOptions {
            form: SolverForm::Revised,
            refactor_interval: 1,
            ..SolverOptions::default()
        },
        SolverOptions {
            form: SolverForm::Revised,
            refactor_interval: SolverOptions::NEVER_REFACTOR,
            ..SolverOptions::default()
        },
        SolverOptions::default(), // Auto: revised for Rational
    ]
}

#[test]
fn solve_is_bit_identical_across_forms_and_strategies() {
    let engine = PrivacyEngine::with_threads(1);
    for strategy in [
        SolveStrategy::DirectLp,
        SolveStrategy::GeometricFactorization,
    ] {
        for alpha in [rat(1, 4), rat(2, 3)] {
            let reference = engine
                .solve(&request(strategy, forms()[0], alpha.clone()))
                .expect("solvable");
            for options in &forms()[1..] {
                let other = engine
                    .solve(&request(strategy, *options, alpha.clone()))
                    .expect("solvable");
                assert_eq!(
                    reference.mechanism, other.mechanism,
                    "{strategy:?} {options:?}"
                );
                assert_eq!(reference.loss, other.loss, "{strategy:?} {options:?}");
                assert_eq!(reference.stats, other.stats, "{strategy:?} {options:?}");
            }
        }
    }
}

#[test]
fn sweep_is_bit_identical_across_forms() {
    let engine = PrivacyEngine::with_threads(2);
    let levels: Vec<PrivacyLevel<Rational>> = (1..=5)
        .map(|k| PrivacyLevel::new(rat(k, 6)).expect("alpha in (0,1)"))
        .collect();
    let reference = engine
        .sweep(
            &levels,
            &request(SolveStrategy::DirectLp, forms()[0], rat(1, 6)),
        )
        .expect("sweepable");
    for options in &forms()[1..] {
        let other = engine
            .sweep(
                &levels,
                &request(SolveStrategy::DirectLp, *options, rat(1, 6)),
            )
            .expect("sweepable");
        assert_eq!(reference.len(), other.len());
        for (r, o) in reference.iter().zip(&other) {
            assert_eq!(r.mechanism, o.mechanism, "{options:?}");
            assert_eq!(r.loss, o.loss, "{options:?}");
            assert_eq!(r.stats, o.stats, "{options:?}");
        }
    }
}

#[test]
fn bayesian_and_restricted_side_information_agree_too() {
    // A second consumer shape: squared error over a sub-interval, exercising
    // restricted-S epigraph rows through both forms.
    let engine = PrivacyEngine::with_threads(1);
    let build = |options: SolverOptions| {
        SolveRequest::<Rational>::minimax()
            .loss(Arc::new(SquaredError))
            .support(4, 1..=3)
            .privacy_level(rat(1, 3))
            .strategy(SolveStrategy::DirectLp)
            .solver_options(options)
            .validate()
            .expect("valid request")
    };
    let reference = engine.solve(&build(forms()[0])).expect("solvable");
    for options in &forms()[1..] {
        let other = engine.solve(&build(*options)).expect("solvable");
        assert_eq!(reference.mechanism, other.mechanism);
        assert_eq!(reference.loss, other.loss);
        assert_eq!(reference.stats, other.stats);
    }
}

#[test]
fn f64_backend_routes_every_form_to_the_dense_tableau() {
    let engine = PrivacyEngine::with_threads(1);
    let build = |options: SolverOptions| {
        SolveRequest::<f64>::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(3, 0..=3)
            .privacy_level(0.25)
            .strategy(SolveStrategy::DirectLp)
            .solver_options(options)
            .validate()
            .expect("valid request")
    };
    let reference = engine.solve(&build(forms()[0])).expect("solvable");
    for options in &forms()[1..] {
        let other = engine.solve(&build(*options)).expect("solvable");
        // Byte identity, not tolerance: same code path must run.
        assert_eq!(reference.mechanism, other.mechanism);
        assert_eq!(reference.loss, other.loss);
        assert_eq!(reference.stats, other.stats);
    }
}
