//! Additional invariants of the multi-level release machinery (Section 4.1)
//! that go beyond the per-module unit tests: transitivity of the "add privacy"
//! transitions, consistency of chained marginals with direct transitions, and
//! interaction of the release chain with consumer optimality.
//!
//! Tailored optima and interactions run through the engine with
//! `SolveStrategy::DirectLp` — the seed formulation bit for bit (the
//! free-function shims were removed in PR 5).

mod common;

use std::sync::Arc;

use common::{optimal_interaction, optimal_mechanism};
use privmech_core::{
    geometric_mechanism, transition_matrix, AbsoluteError, MinimaxConsumer, MultiLevelRelease,
    PrivacyLevel, SideInformation,
};
use privmech_numerics::{rat, Rational};

fn level(num: i64, den: i64) -> PrivacyLevel<Rational> {
    PrivacyLevel::new(rat(num, den)).unwrap()
}

#[test]
fn adding_privacy_is_transitive() {
    // T_{a,b} · T_{b,c} = T_{a,c}: re-perturbing twice is the same as one
    // bigger re-perturbation. This is what makes Algorithm 1's chain well
    // defined regardless of how many intermediate levels exist.
    let n = 6;
    let a = level(1, 5);
    let b = level(1, 2);
    let c = level(3, 4);
    let t_ab = transition_matrix(n, &a, &b).unwrap();
    let t_bc = transition_matrix(n, &b, &c).unwrap();
    let t_ac = transition_matrix(n, &a, &c).unwrap();
    assert_eq!(t_ab.matmul(&t_bc).unwrap(), t_ac);
}

#[test]
fn transition_to_the_same_level_is_identity_and_composes_with_geometric() {
    let n = 4;
    let a = level(1, 3);
    let t_aa = transition_matrix(n, &a, &a).unwrap();
    assert_eq!(t_aa, privmech_linalg::Matrix::identity(n + 1));

    // G_{n,a} · T_{a,b} is exactly G_{n,b} for several b >= a.
    for (num, den) in [(2i64, 5i64), (1, 2), (2, 3), (9, 10)] {
        let b = level(num, den);
        let t = transition_matrix(n, &a, &b).unwrap();
        let g_a = geometric_mechanism(n, &a).unwrap();
        let g_b = geometric_mechanism(n, &b).unwrap();
        assert_eq!(g_a.matrix().matmul(&t).unwrap(), *g_b.matrix());
        // Adding privacy is itself a valid consumer interaction, so the
        // post-processing API accepts it and produces a valid mechanism.
        assert_eq!(g_a.post_process(&t).unwrap(), g_b);
    }
}

#[test]
fn consumers_at_every_level_of_a_chain_reach_their_tailored_optimum() {
    // The end-to-end promise of Theorem 1 + Algorithm 1: release once at
    // several privacy levels; the consumer reading level i post-processes the
    // α_i-geometric marginal and does exactly as well as a mechanism designed
    // for it at that level.
    let n = 3;
    let levels = vec![level(1, 4), level(1, 2), level(2, 3)];
    let release = MultiLevelRelease::new(n, levels.clone()).unwrap();
    let consumer = MinimaxConsumer::new(
        "chain-consumer",
        Arc::new(AbsoluteError),
        SideInformation::at_least(n, 1).unwrap(),
    )
    .unwrap();
    let mut previous_loss: Option<Rational> = None;
    for (i, lvl) in levels.iter().enumerate() {
        let marginal = release.marginal_mechanism(i).unwrap();
        let interaction = optimal_interaction(&marginal, &consumer).unwrap();
        let tailored = optimal_mechanism(lvl, &consumer).unwrap();
        assert_eq!(interaction.loss, tailored.loss, "level {i}");
        // More privacy (larger α) can only cost utility: the optimal loss is
        // non-decreasing along the chain.
        if let Some(prev) = previous_loss {
            assert!(interaction.loss >= prev, "level {i}");
        }
        previous_loss = Some(interaction.loss);
    }
}

#[test]
fn releases_to_absolute_privacy_are_data_independent() {
    // A chain ending at α = 1 must give the last consumer a mechanism whose
    // rows are all identical (the output cannot depend on the data).
    let n = 5;
    let release = MultiLevelRelease::new(n, vec![level(1, 3), level(1, 1)]).unwrap();
    let last = release.marginal_mechanism(1).unwrap();
    let first_row = last.row(0).unwrap().to_vec();
    for i in 1..=n {
        assert_eq!(last.row(i).unwrap(), &first_row[..], "row {i}");
    }
    assert_eq!(last.best_privacy_level(), Rational::one());
}
