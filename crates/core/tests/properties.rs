//! Property-based tests for the paper's core invariants.
//!
//! These exercise, on randomized instances, the claims that the unit tests
//! check on fixed examples: α-DP of the geometric mechanism, the
//! data-processing inequality, the Theorem 2 characterization (both
//! directions), Lemma 3 (adding privacy), and Theorem 1 (universal optimality)
//! on randomly generated consumers.
//!
//! The tailored-optimum and interaction claims are exercised through the
//! engine with `SolveStrategy::DirectLp`, which solves the seed's
//! Section 2.5 LP formulation bit for bit (the free-function shims were
//! removed in PR 5).

mod common;

use std::sync::Arc;

use common::{optimal_interaction, optimal_mechanism};
use privmech_core::{
    derive_from_geometric, geometric_mechanism, theorem2_check, AbsoluteError, Mechanism,
    MinimaxConsumer, PrivacyLevel, SideInformation, SquaredError, TableLoss, ZeroOneError,
};
use privmech_linalg::Matrix;
use privmech_numerics::{rat, Rational};
use proptest::prelude::*;

/// Random α as a fraction num/den with 0 < num < den <= 9.
fn arb_alpha() -> impl Strategy<Value = Rational> {
    (1i64..=8, 2i64..=9)
        .prop_filter("alpha must be < 1", |(n, d)| n < d)
        .prop_map(|(n, d)| rat(n, d))
}

/// A random monotone loss table over {0..=n}: l(i, r) is a random
/// non-decreasing function of |i - r| (shared per-distance weights per row).
fn arb_monotone_loss(n: usize) -> impl Strategy<Value = TableLoss<Rational>> {
    prop::collection::vec(0i64..=4, n + 1).prop_map(move |increments| {
        // cumulative[d] = sum of increments up to distance d (non-decreasing).
        let mut cumulative = vec![0i64; n + 1];
        let mut acc = 0i64;
        for d in 1..=n {
            acc += increments[d];
            cumulative[d] = acc;
        }
        let table = Matrix::from_fn(n + 1, n + 1, |i, r| rat(cumulative[i.abs_diff(r)], 1));
        TableLoss::new(table, "random-monotone").unwrap()
    })
}

/// Random non-empty side-information subset of {0..=n}.
fn arb_side_info(n: usize) -> impl Strategy<Value = SideInformation> {
    prop::collection::vec(any::<bool>(), n + 1).prop_map(move |mask| {
        let mut members: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        if members.is_empty() {
            members.push(n / 2);
        }
        SideInformation::new(n, members).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn geometric_is_exactly_alpha_private(n in 1usize..=10, alpha in arb_alpha()) {
        let level = PrivacyLevel::new(alpha.clone()).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        prop_assert!(g.matrix().is_row_stochastic());
        prop_assert!(g.is_differentially_private(&level));
        prop_assert_eq!(g.best_privacy_level(), alpha);
    }

    #[test]
    fn post_processing_preserves_privacy(
        n in 1usize..=6,
        alpha in arb_alpha(),
        weights in prop::collection::vec(1i64..=9, 49),
    ) {
        // Data-processing inequality: y α-DP and T stochastic => y·T α-DP.
        let level = PrivacyLevel::new(alpha).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        let size = n + 1;
        let t = Matrix::from_fn(size, size, |i, j| {
            let row: i64 = weights[(i * size)..(i * size + size)].iter().sum();
            rat(weights[i * size + j], row)
        });
        let induced = g.post_process(&t).unwrap();
        prop_assert!(induced.is_differentially_private(&level));
        prop_assert!(induced.best_privacy_level() >= *level.alpha());
    }

    #[test]
    fn products_of_geometric_and_stochastic_satisfy_theorem2(
        n in 1usize..=6,
        alpha in arb_alpha(),
        weights in prop::collection::vec(1i64..=9, 49),
    ) {
        // Forward direction of Theorem 2: anything of the form G·T passes the
        // characterization and can be re-factorized.
        let level = PrivacyLevel::new(alpha).unwrap();
        let size = n + 1;
        let t = Matrix::from_fn(size, size, |i, j| {
            let row: i64 = weights[(i * size)..(i * size + size)].iter().sum();
            rat(weights[i * size + j], row)
        });
        let g = geometric_mechanism(n, &level).unwrap();
        let derived = g.post_process(&t).unwrap();
        prop_assert!(theorem2_check(&derived, &level).is_derivable());
        let recovered = derive_from_geometric(&derived, &level).unwrap();
        prop_assert_eq!(recovered, t);
    }

    #[test]
    fn lemma3_adding_privacy(n in 1usize..=6, a in arb_alpha(), b in arb_alpha()) {
        // For α <= β the β-geometric mechanism is derivable from the
        // α-geometric mechanism; for α > β it is not.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assume!(lo != hi);
        let lo_level = PrivacyLevel::new(lo).unwrap();
        let hi_level = PrivacyLevel::new(hi).unwrap();
        let g_hi = geometric_mechanism(n, &hi_level).unwrap();
        let g_lo = geometric_mechanism(n, &lo_level).unwrap();
        // More private (larger α) from less private (smaller α): derivable.
        let t = derive_from_geometric(&g_hi, &lo_level).unwrap();
        prop_assert!(t.is_row_stochastic());
        prop_assert_eq!(g_lo.matrix().matmul(&t).unwrap(), g_hi.matrix().clone());
        // The reverse direction must fail.
        prop_assert!(derive_from_geometric(&g_lo, &hi_level).is_err());
    }

    #[test]
    fn theorem1_universal_optimality_random_consumers(
        alpha in arb_alpha(),
        loss in arb_monotone_loss(3),
        side in arb_side_info(3),
    ) {
        // The consumer's optimal interaction with the geometric mechanism
        // achieves exactly the tailored LP optimum (n = 3 keeps the exact LPs
        // fast; the experiments sweep larger n).
        let level = PrivacyLevel::new(alpha).unwrap();
        let consumer = MinimaxConsumer::new("random", Arc::new(loss), side).unwrap();
        let g = geometric_mechanism(3, &level).unwrap();
        let tailored = optimal_mechanism(&level, &consumer).unwrap();
        let interaction = optimal_interaction(&g, &consumer).unwrap();
        prop_assert_eq!(tailored.loss, interaction.loss);
    }

    #[test]
    fn optimal_mechanism_dominates_named_losses(n in 2usize..=4, alpha in arb_alpha()) {
        // The tailored optimum is never worse than the raw geometric mechanism
        // for each of the three named losses of the paper.
        let level = PrivacyLevel::new(alpha).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        let losses: Vec<Arc<dyn privmech_core::LossFunction<Rational> + Send + Sync>> =
            vec![Arc::new(AbsoluteError), Arc::new(SquaredError), Arc::new(ZeroOneError)];
        for loss in losses {
            let consumer =
                MinimaxConsumer::new("sweep", loss, SideInformation::full(n)).unwrap();
            let tailored = optimal_mechanism(&level, &consumer).unwrap();
            prop_assert!(tailored.loss <= consumer.disutility(&g).unwrap());
            prop_assert!(tailored.mechanism.is_differentially_private(&level));
        }
    }

    #[test]
    fn malformed_mechanisms_are_rejected(n in 1usize..=5, bad_row in 0usize..=5, delta in 1i64..=5) {
        // Perturbing any single entry of a valid mechanism breaks validation.
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        let row = bad_row.min(n);
        let mut matrix = g.matrix().clone();
        let bump = matrix[(row, 0)].clone() + rat(delta, 10);
        matrix[(row, 0)] = bump;
        prop_assert!(Mechanism::from_matrix(matrix).is_err());
    }
}
