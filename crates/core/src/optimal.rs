//! The consumer-tailored optimal mechanism (Section 2.5).
//!
//! For a *known* consumer (loss function + side information) and a privacy
//! level α, the loss-minimizing α-differentially-private oblivious mechanism
//! is the solution of a linear program: minimize the epigraph variable `d`
//! subject to `d ≥ Σ_r x[i][r]·l(i,r)` for every `i ∈ S`, the adjacent-row
//! differential-privacy inequalities of Definition 2, unit row sums, and
//! non-negativity. Theorem 1 states that deploying the geometric mechanism and
//! letting the consumer post-process achieves exactly this optimum — the
//! experiments verify that equality.
//!
//! The LP is built once per consumer as a `TailoredLp` template: its
//! constraint *structure* is independent of α (only the `-α` coefficients of
//! the differential-privacy rows change), so an α-sweep re-parameterizes the
//! same model instead of rebuilding it — see
//! [`PrivacyEngine::sweep`](crate::engine::PrivacyEngine::sweep). The seed's
//! free-function shims (`optimal_mechanism`, `bayesian_optimal_mechanism`)
//! were removed in PR 5: [`SolveStrategy::DirectLp`](crate::SolveStrategy)
//! through [`PrivacyEngine::solve`](crate::engine::PrivacyEngine::solve)
//! solves this exact template and reproduces them bit for bit.
//!
//! One deliberate departure from the seed formulation: for the vacuous level
//! α = 0 the seed omitted the differential-privacy rows entirely, while the
//! template always emits them (their `-α` coefficients become zero, leaving
//! the rows trivially satisfied). The optimal *value* is unaffected — zero
//! loss is attainable either way — but pivot counts, and on a degenerate
//! optimum the returned vertex, can differ from the seed's at exactly α = 0.
//! Every α > 0 builds the identical model the seed built, term for term.

use privmech_linalg::{Matrix, Scalar};
use privmech_lp::{
    LinExpr, Model, ModelTemplate, PivotStats, Relation, SolverOptions, WarmSweepHandle,
};

use crate::consumer::{BayesianConsumer, MinimaxConsumer};
use crate::error::{CoreError, Result};
use crate::loss::tabulate_loss;
use crate::mechanism::Mechanism;

/// The Section 2.5 LP as a reusable α-parameterized template.
///
/// Variables `x[i][r]` (release probability), unit row sums, the
/// `2·n·(n+1)` differential-privacy rows of Definition 2 with their `-α`
/// coefficients registered as [`ModelTemplate`] parameter slots, and either
/// the minimax epigraph objective or the Bayesian prior-weighted linear
/// objective (both α-independent).
#[derive(Debug, Clone)]
pub(crate) struct TailoredLp<T: Scalar> {
    template: ModelTemplate<T>,
    x_vars: Vec<Vec<privmech_lp::Var>>,
    size: usize,
}

/// Release-probability variables `x[i][r]`, indexed `[input][output]`.
type XVars = Vec<Vec<privmech_lp::Var>>;
/// `(constraint index, variable)` pairs whose coefficient is the `-α` slot.
type AlphaSlots = Vec<(usize, privmech_lp::Var)>;

#[allow(clippy::needless_range_loop)] // index-coupled access into x_vars[i][r]
fn tailored_skeleton<T: Scalar>(n: usize) -> Result<(Model<T>, XVars, AlphaSlots)> {
    let size = n + 1;
    let mut model: Model<T> = Model::new();

    // x_vars[i][r] = probability of releasing r when the true result is i.
    let mut x_vars = Vec::with_capacity(size);
    for i in 0..size {
        x_vars.push(model.add_nonneg_vars(&format!("x_{i}"), size));
    }

    // Each input's output distribution sums to one.
    for i in 0..size {
        let mut row_sum = LinExpr::new();
        for r in 0..size {
            row_sum.add_term(x_vars[i][r], T::one());
        }
        model.add_labeled_constraint(row_sum, Relation::Eq, T::one(), Some(format!("row_{i}")))?;
    }

    // Differential privacy for count queries (Definition 2):
    //   x[i][r] - α·x[i+1][r] >= 0   and   x[i+1][r] - α·x[i][r] >= 0.
    // The α coefficient is a template parameter: the rows are built with a
    // placeholder (so the term is never dropped as a zero) and the slot of
    // each second term is recorded for later binding.
    let mut slots = Vec::with_capacity(2 * n * size);
    let neg_one = -T::one();
    for i in 0..n {
        for r in 0..size {
            let down =
                LinExpr::term(x_vars[i][r], T::one()).plus(x_vars[i + 1][r], neg_one.clone());
            model.add_labeled_constraint(
                down,
                Relation::Ge,
                T::zero(),
                Some(format!("dp_down_{i}_{r}")),
            )?;
            slots.push((model.num_constraints() - 1, x_vars[i + 1][r]));
            let up = LinExpr::term(x_vars[i + 1][r], T::one()).plus(x_vars[i][r], neg_one.clone());
            model.add_labeled_constraint(
                up,
                Relation::Ge,
                T::zero(),
                Some(format!("dp_up_{i}_{r}")),
            )?;
            slots.push((model.num_constraints() - 1, x_vars[i][r]));
        }
    }
    Ok((model, x_vars, slots))
}

/// Register the `-α` parameter slots on a finished model and assemble the
/// template (shared epilogue of the minimax and Bayesian builders).
fn finish_template<T: Scalar>(
    model: Model<T>,
    slots: AlphaSlots,
    x_vars: XVars,
    size: usize,
) -> Result<TailoredLp<T>> {
    let mut template = ModelTemplate::new(model);
    for (constraint, var) in slots {
        template
            .bind_scaled(constraint, var, -T::one())
            .map_err(CoreError::from)?;
    }
    Ok(TailoredLp {
        template,
        x_vars,
        size,
    })
}

impl<T: Scalar> TailoredLp<T> {
    /// Build the minimax template: epigraph objective over the members of the
    /// consumer's side-information set.
    pub(crate) fn for_minimax(consumer: &MinimaxConsumer<T>) -> Result<Self> {
        let n = consumer.side_information().n();
        let size = n + 1;
        let (mut model, x_vars, slots) = tailored_skeleton::<T>(n)?;

        // Epigraph objective: minimize the worst expected loss over S. The
        // loss coefficients come out of one pre-tabulated matrix row per
        // member and do not depend on α.
        let losses = tabulate_loss(consumer.loss(), size);
        let mut exprs = Vec::new();
        for &i in consumer.side_information().members() {
            let mut expr = LinExpr::new();
            for (r, cost) in losses.row(i).iter().enumerate() {
                expr.add_term(x_vars[i][r], cost.clone());
            }
            exprs.push(expr);
        }
        model.minimize_max(exprs)?;

        finish_template(model, slots, x_vars, size)
    }

    /// Build the Bayesian template: prior-weighted linear objective (the
    /// Section 2.7 model of Ghosh, Roughgarden and Sundararajan).
    pub(crate) fn for_bayesian(consumer: &BayesianConsumer<T>) -> Result<Self> {
        let n = consumer.n();
        let size = n + 1;
        let (mut model, x_vars, slots) = tailored_skeleton::<T>(n)?;

        // Prior-weighted loss coefficients: scale each tabulated loss row by
        // the prior mass in place rather than multiplying per term.
        let losses = tabulate_loss(consumer.loss(), size);
        let prior = consumer.prior();
        let mut objective = LinExpr::new();
        #[allow(clippy::needless_range_loop)] // i indexes prior, losses and x_vars together
        for i in 0..size {
            if prior[i].is_zero_approx() {
                continue;
            }
            let mut weighted = losses.row(i).to_vec();
            privmech_linalg::kernels::scale(&mut weighted, &prior[i]);
            for (r, coeff) in weighted.into_iter().enumerate() {
                objective.add_term(x_vars[i][r], coeff);
            }
        }
        model.set_objective(privmech_lp::Sense::Minimize, objective)?;

        finish_template(model, slots, x_vars, size)
    }

    fn extract(&self, solution: &privmech_lp::Solution<T>) -> Result<Mechanism<T>> {
        let matrix = Matrix::from_fn(self.size, self.size, |i, r| {
            solution.value(self.x_vars[i][r]).clone()
        });
        // Clamp tiny negative float noise and renormalize rows (a no-op for
        // the exact backend, where the LP solution is exactly stochastic).
        Mechanism::from_matrix_normalized(matrix)
    }

    /// Re-parameterize the template to `alpha` in place and solve (the
    /// warm-start-free anchor the equivalence tests compare against; the
    /// engine itself always goes through [`TailoredLp::solve_in_place_warm`],
    /// which degrades to this exactly when warm starts are off).
    #[cfg(test)]
    pub(crate) fn solve_in_place(
        &mut self,
        alpha: &T,
        options: &SolverOptions,
    ) -> Result<(Mechanism<T>, PivotStats)> {
        let solution = self
            .template
            .solve_at(alpha, options)
            .map_err(CoreError::from)?;
        Ok((self.extract(&solution)?, solution.stats))
    }

    /// [`TailoredLp::solve_in_place`] threaded through a sweep's
    /// [`WarmSweepHandle`]: with
    /// [`privmech_lp::WarmStartMode::DualSimplex`] enabled in `options` the
    /// solve reoptimizes from the previous α's basis; with warm starts off
    /// (the default) it is exactly the cold solve.
    pub(crate) fn solve_in_place_warm(
        &mut self,
        alpha: &T,
        options: &SolverOptions,
        warm: &mut WarmSweepHandle,
    ) -> Result<(Mechanism<T>, PivotStats)> {
        let solution = warm
            .solve_at(&mut self.template, alpha, options)
            .map_err(CoreError::from)?;
        Ok((self.extract(&solution)?, solution.stats))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::alpha::PrivacyLevel;
    use crate::consumer::SideInformation;
    use crate::geometric::geometric_mechanism;
    use crate::loss::{AbsoluteError, SquaredError, ZeroOneError};
    use privmech_numerics::{rat, Rational};

    // The seed recipe in one place, shared with interaction.rs's tests so the
    // bit-identity anchors cannot drift apart.
    use crate::seed_compat::{bayesian_optimal_mechanism, optimal_interaction, optimal_mechanism};

    fn paper_consumer() -> MinimaxConsumer<Rational> {
        MinimaxConsumer::new(
            "paper-consumer",
            Arc::new(AbsoluteError),
            SideInformation::full(3),
        )
        .unwrap()
    }

    #[test]
    fn optimal_mechanism_is_private_and_stochastic() {
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let consumer = paper_consumer();
        let opt = optimal_mechanism(&level, &consumer).unwrap();
        assert!(opt.mechanism.matrix().is_row_stochastic());
        assert!(opt.mechanism.is_differentially_private(&level));
        // The optimum cannot be worse than the raw geometric mechanism.
        let g = geometric_mechanism(3, &level).unwrap();
        assert!(opt.loss <= consumer.disutility(&g).unwrap());
    }

    #[test]
    fn matches_table1a_optimal_loss() {
        // Table 1(a) of the paper gives the optimal mechanism for the
        // consumer (|i-r| loss, S = {0..3}, α = 1/4). The table's entries are
        // rounded, so we compare the worst-case loss of our LP optimum to the
        // loss achieved by interacting optimally with the geometric mechanism
        // (Theorem 1 says both are the true optimum).
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let consumer = paper_consumer();
        let opt = optimal_mechanism(&level, &consumer).unwrap();
        let g = geometric_mechanism(3, &level).unwrap();
        let interaction = optimal_interaction(&g, &consumer).unwrap();
        assert_eq!(opt.loss, interaction.loss);
        // And the optimum is strictly better than not post-processing at all.
        assert!(opt.loss < consumer.disutility(&g).unwrap());
    }

    #[test]
    fn theorem1_for_various_consumers() {
        // Universal optimality on a small sweep (the full sweep lives in the
        // experiments crate): for several losses and side-information sets the
        // consumer's optimal interaction with the geometric mechanism achieves
        // exactly the tailored LP optimum.
        let n = 3;
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        let losses: Vec<Arc<dyn crate::loss::LossFunction<Rational> + Send + Sync>> = vec![
            Arc::new(AbsoluteError),
            Arc::new(SquaredError),
            Arc::new(ZeroOneError),
        ];
        let side_infos = vec![
            SideInformation::full(n),
            SideInformation::at_least(n, 2).unwrap(),
            SideInformation::at_most(n, 1).unwrap(),
            SideInformation::new(n, vec![0, 3]).unwrap(),
        ];
        for loss in &losses {
            for s in &side_infos {
                let consumer = MinimaxConsumer::new("sweep", loss.clone(), s.clone()).unwrap();
                let tailored = optimal_mechanism(&level, &consumer).unwrap();
                let interaction = optimal_interaction(&g, &consumer).unwrap();
                assert_eq!(
                    tailored.loss,
                    interaction.loss,
                    "loss {} side-info {:?}",
                    consumer.loss().name(),
                    s.members()
                );
            }
        }
    }

    #[test]
    fn bayesian_tailored_optimum_matches_bayesian_interaction_with_geometric() {
        // The Ghosh–Roughgarden–Sundararajan analogue of Theorem 1: a Bayesian
        // consumer post-processing the geometric mechanism reaches the optimum
        // of the Bayesian-tailored LP.
        use crate::consumer::BayesianConsumer;
        use crate::seed_compat::bayesian_optimal_interaction;
        let n = 3;
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let g = geometric_mechanism(n, &level).unwrap();
        let priors = vec![
            vec![rat(1, 4); 4],
            vec![rat(1, 2), rat(1, 4), rat(1, 8), rat(1, 8)],
            vec![rat(0, 1), rat(0, 1), rat(1, 2), rat(1, 2)],
        ];
        for prior in priors {
            let consumer = BayesianConsumer::new("bayes", Arc::new(AbsoluteError), prior).unwrap();
            let tailored = bayesian_optimal_mechanism(&level, &consumer).unwrap();
            let interaction = bayesian_optimal_interaction(&g, &consumer).unwrap();
            assert!(tailored.mechanism.is_differentially_private(&level));
            assert_eq!(tailored.loss, interaction.loss);
            // And the Bayesian optimum is never worse than the minimax optimum
            // evaluated under the same prior (the minimax mechanism guards
            // against the worst case, the Bayesian one exploits the prior).
            let minimax_consumer =
                MinimaxConsumer::new("mm", Arc::new(AbsoluteError), SideInformation::full(n))
                    .unwrap();
            let minimax_opt = optimal_mechanism(&level, &minimax_consumer).unwrap();
            let minimax_under_prior = consumer.disutility(&minimax_opt.mechanism).unwrap();
            assert!(tailored.loss <= minimax_under_prior);
        }
    }

    #[test]
    fn alpha_zero_and_one_edge_cases() {
        let consumer = paper_consumer();
        // α = 0: no privacy constraint, the identity achieves zero loss.
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        let opt = optimal_mechanism(&zero, &consumer).unwrap();
        assert_eq!(opt.loss, Rational::zero());
        // α = 1: all rows must be identical; for |i-r| over {0..3} the best
        // worst-case loss is 3/2 (split mass between outputs 1 and 2 — or any
        // distribution minimizing the maximum distance to both ends).
        let one = PrivacyLevel::new(Rational::one()).unwrap();
        let opt = optimal_mechanism(&one, &consumer).unwrap();
        assert_eq!(opt.loss, rat(3, 2));
        assert!(opt.mechanism.is_differentially_private(&one));
    }

    #[test]
    fn template_reuse_matches_fresh_builds_exactly() {
        // The warm path of a sweep: one template re-parameterized across α
        // must agree bit for bit with a freshly built LP per α, both in-place
        // and through the clone-per-worker instantiation.
        let consumer = paper_consumer();
        let options = SolverOptions::default();
        let mut warm = TailoredLp::for_minimax(&consumer).unwrap();
        for (num, den) in [(1i64, 4i64), (1, 2), (2, 3), (1, 5), (1, 1)] {
            let alpha = rat(num, den);
            let (warm_mech, warm_stats) = warm.solve_in_place(&alpha, &options).unwrap();
            let mut cold = TailoredLp::for_minimax(&consumer).unwrap();
            let (cold_mech, cold_stats) = cold.solve_in_place(&alpha, &options).unwrap();
            assert_eq!(warm_mech, cold_mech, "alpha = {alpha}");
            assert_eq!(warm_stats, cold_stats, "alpha = {alpha}");
            // The clone-per-worker path of a parallel sweep.
            let (inst_mech, inst_stats) = warm.clone().solve_in_place(&alpha, &options).unwrap();
            assert_eq!(inst_mech, cold_mech, "alpha = {alpha} (worker clone)");
            assert_eq!(inst_stats, cold_stats, "alpha = {alpha} (worker clone)");
        }
    }
}
