//! Multi-level, collusion-resistant release (Section 4.1, Algorithm 1).
//!
//! Lemma 3 shows that for `α ≤ β` there is a row-stochastic `T_{α,β}` with
//! `G_{n,β} = G_{n,α} · T_{α,β}`: more privacy can always be "added" by
//! post-processing. Algorithm 1 exploits this to release a query result at
//! privacy levels `α_1 < … < α_k` by a Markov chain of successive
//! re-perturbations: stage 1 samples from `G_{n,α_1}`, and stage `i+1`
//! re-perturbs stage `i`'s output through `T_{α_i,α_{i+1}}`. Each consumer `i`
//! sees a sample of the plain `α_i`-geometric mechanism, and any coalition
//! learns no more about the database than its least-private member (Lemma 4).

use privmech_linalg::{Matrix, Scalar};
use rand::Rng;

use crate::alpha::PrivacyLevel;
use crate::error::{CoreError, Result};
use crate::geometric::geometric_mechanism;
use crate::mechanism::{sample_index, Mechanism};

/// The stochastic matrix `T_{α,β}` with `G_{n,β} = G_{n,α} · T_{α,β}` (Lemma 3).
///
/// Requires `α ≤ β` and `α > 0` (for `α = 0` the geometric mechanism is the
/// identity and the transition is simply `G_{n,β}` itself, which this function
/// also returns).
pub fn transition_matrix<T: Scalar>(
    n: usize,
    from: &PrivacyLevel<T>,
    to: &PrivacyLevel<T>,
) -> Result<Matrix<T>> {
    if from.alpha() > to.alpha() {
        return Err(CoreError::InvalidPrivacyLevels {
            reason: format!("cannot remove privacy: from {} to {}", from, to),
        });
    }
    let g_to = geometric_mechanism(n, to)?;
    if from.is_vacuous() {
        // G_{n,0} is the identity, so T = G_{n,β}.
        return Ok(g_to.into_matrix());
    }
    let g_from = geometric_mechanism(n, from)?;
    let t = crate::derivability::derive_post_processing(&g_from, &g_to)?;
    Ok(t)
}

/// A single released stage of [`MultiLevelRelease::release`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRelease {
    /// Index of the privacy level (0-based, ordered by increasing α).
    pub level_index: usize,
    /// The released (perturbed) query result for this level.
    pub value: usize,
}

/// Algorithm 1: correlated release of a count-query result at privacy levels
/// `α_1 < α_2 < … < α_k`.
#[derive(Debug, Clone)]
pub struct MultiLevelRelease<T: Scalar> {
    n: usize,
    levels: Vec<PrivacyLevel<T>>,
    /// `stages[0]` is `G_{n,α_1}`; `stages[i]` for `i ≥ 1` is `T_{α_i, α_{i+1}}`.
    stages: Vec<Matrix<T>>,
}

impl<T: Scalar> MultiLevelRelease<T> {
    /// Build the release chain for the given strictly increasing privacy
    /// levels (all in `(0, 1]`).
    pub fn new(n: usize, levels: Vec<PrivacyLevel<T>>) -> Result<Self> {
        if levels.is_empty() {
            return Err(CoreError::InvalidPrivacyLevels {
                reason: "at least one privacy level is required".to_string(),
            });
        }
        for level in &levels {
            if level.is_vacuous() {
                return Err(CoreError::InvalidPrivacyLevels {
                    reason: "α = 0 (no privacy) cannot be released through the chain".to_string(),
                });
            }
        }
        for pair in levels.windows(2) {
            if pair[0].alpha() >= pair[1].alpha() {
                return Err(CoreError::InvalidPrivacyLevels {
                    reason: format!(
                        "privacy levels must be strictly increasing, got {} then {}",
                        pair[0], pair[1]
                    ),
                });
            }
        }
        let mut stages = Vec::with_capacity(levels.len());
        stages.push(geometric_mechanism(n, &levels[0])?.into_matrix());
        for i in 0..levels.len() - 1 {
            stages.push(transition_matrix(n, &levels[i], &levels[i + 1])?);
        }
        Ok(MultiLevelRelease { n, levels, stages })
    }

    /// The count-query bound `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The privacy levels, in increasing order of α.
    #[must_use]
    pub fn levels(&self) -> &[PrivacyLevel<T>] {
        &self.levels
    }

    /// The stage matrices: `G_{n,α_1}` followed by the transitions
    /// `T_{α_i,α_{i+1}}`.
    #[must_use]
    pub fn stages(&self) -> &[Matrix<T>] {
        &self.stages
    }

    /// The marginal mechanism seen by consumer `i` (0-based): the product of
    /// the first `i+1` stages, which Lemma 3 guarantees equals `G_{n,α_{i+1}}`.
    pub fn marginal_mechanism(&self, level_index: usize) -> Result<Mechanism<T>> {
        if level_index >= self.levels.len() {
            return Err(CoreError::InvalidPrivacyLevels {
                reason: format!(
                    "level index {level_index} out of range (have {})",
                    self.levels.len()
                ),
            });
        }
        let mut acc = self.stages[0].clone();
        for stage in &self.stages[1..=level_index] {
            acc = acc.matmul(stage).map_err(CoreError::from)?;
        }
        Mechanism::from_matrix(acc)
    }

    /// Run Algorithm 1 once: given the true query result, produce the chained
    /// releases `r_1, …, r_k` (one per privacy level, in increasing-α order).
    pub fn release<R: Rng + ?Sized>(
        &self,
        true_result: usize,
        rng: &mut R,
    ) -> Result<Vec<StageRelease>> {
        if true_result > self.n {
            return Err(CoreError::InputOutOfRange {
                input: true_result,
                n: self.n,
            });
        }
        let mut out = Vec::with_capacity(self.levels.len());
        let mut current = true_result;
        for (idx, stage) in self.stages.iter().enumerate() {
            let weights: Vec<f64> = (0..=self.n)
                .map(|z| stage[(current, z)].to_f64().max(0.0))
                .collect();
            current = sample_index(&weights, rng);
            out.push(StageRelease {
                level_index: idx,
                value: current,
            });
        }
        Ok(out)
    }

    /// The *naive* alternative to Algorithm 1: perturb the true result
    /// independently at every privacy level. Returned in the same format so
    /// experiments can contrast collusion behaviour (averaging independent
    /// releases concentrates around the true count; the correlated chain does
    /// not reveal anything beyond its least-private stage).
    pub fn release_naive<R: Rng + ?Sized>(
        &self,
        true_result: usize,
        rng: &mut R,
    ) -> Result<Vec<StageRelease>> {
        if true_result > self.n {
            return Err(CoreError::InputOutOfRange {
                input: true_result,
                n: self.n,
            });
        }
        let mut out = Vec::with_capacity(self.levels.len());
        for (idx, level) in self.levels.iter().enumerate() {
            let g = geometric_mechanism(self.n, level)?;
            let value = g.sample(true_result, rng)?;
            out.push(StageRelease {
                level_index: idx,
                value,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn level(num: i64, den: i64) -> PrivacyLevel<Rational> {
        PrivacyLevel::new(rat(num, den)).unwrap()
    }

    #[test]
    fn transition_matrix_is_stochastic_and_factorizes() {
        // Lemma 3 for several (α, β) pairs: T is stochastic and G_α·T = G_β.
        for n in [2usize, 3, 5] {
            for (a, b) in [
                ((1i64, 4i64), (1i64, 2i64)),
                ((1, 5), (1, 3)),
                ((1, 3), (2, 3)),
                ((1, 2), (1, 1)),
            ] {
                let from = level(a.0, a.1);
                let to = level(b.0, b.1);
                let t = transition_matrix(n, &from, &to).unwrap();
                assert!(t.is_row_stochastic(), "n={n} {a:?}->{b:?}");
                let g_from = geometric_mechanism(n, &from).unwrap();
                let g_to = geometric_mechanism(n, &to).unwrap();
                assert_eq!(g_from.matrix().matmul(&t).unwrap(), *g_to.matrix());
            }
        }
    }

    #[test]
    fn cannot_remove_privacy() {
        let err = transition_matrix::<Rational>(3, &level(1, 2), &level(1, 4)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPrivacyLevels { .. }));
        // Equal levels give the identity transition.
        let t = transition_matrix::<Rational>(3, &level(1, 2), &level(1, 2)).unwrap();
        assert_eq!(t, Matrix::identity(4));
    }

    #[test]
    fn vacuous_source_level_returns_target_geometric() {
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        let t = transition_matrix::<Rational>(3, &zero, &level(1, 2)).unwrap();
        let g = geometric_mechanism(3, &level(1, 2)).unwrap();
        assert_eq!(t, *g.matrix());
    }

    #[test]
    fn release_chain_construction_validation() {
        assert!(MultiLevelRelease::<Rational>::new(3, vec![]).is_err());
        assert!(MultiLevelRelease::new(3, vec![level(1, 2), level(1, 4)]).is_err());
        assert!(MultiLevelRelease::new(3, vec![level(1, 4), level(1, 4)]).is_err());
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        assert!(MultiLevelRelease::new(3, vec![zero, level(1, 2)]).is_err());
        let ok = MultiLevelRelease::new(3, vec![level(1, 4), level(1, 2), level(3, 4)]).unwrap();
        assert_eq!(ok.levels().len(), 3);
        assert_eq!(ok.stages().len(), 3);
        assert_eq!(ok.n(), 3);
    }

    #[test]
    fn marginals_equal_the_plain_geometric_mechanisms() {
        // Simultaneous utility: the mechanism seen by consumer i is exactly
        // G_{n,α_i}, so each consumer can post-process as if the geometric
        // mechanism had been deployed just for them.
        let release =
            MultiLevelRelease::new(4, vec![level(1, 5), level(1, 3), level(1, 2), level(4, 5)])
                .unwrap();
        for (i, lvl) in release.levels().iter().enumerate() {
            let marginal = release.marginal_mechanism(i).unwrap();
            let direct = geometric_mechanism(4, lvl).unwrap();
            assert_eq!(marginal, direct, "level {i}");
        }
        assert!(release.marginal_mechanism(9).is_err());
    }

    #[test]
    fn release_outputs_follow_the_marginal_distributions() {
        let release = MultiLevelRelease::new(3, vec![level(1, 4), level(1, 2)]).unwrap();
        let release_f = MultiLevelRelease::new(
            3,
            vec![
                PrivacyLevel::new(0.25f64).unwrap(),
                PrivacyLevel::new(0.5f64).unwrap(),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 30_000;
        let true_result = 2usize;
        let mut counts = vec![vec![0usize; 4]; 2];
        for _ in 0..trials {
            let rel = release_f.release(true_result, &mut rng).unwrap();
            for stage in rel {
                counts[stage.level_index][stage.value] += 1;
            }
        }
        for (i, lvl) in release.levels().iter().enumerate() {
            let g = geometric_mechanism(3, lvl).unwrap();
            #[allow(clippy::needless_range_loop)] // z is also the pmf argument
            for z in 0..=3 {
                let expected = g.prob(true_result, z).unwrap().to_f64();
                let observed = counts[i][z] as f64 / trials as f64;
                assert!(
                    (observed - expected).abs() < 0.015,
                    "level {i} output {z}: observed {observed}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn release_input_validation_and_naive_variant() {
        let release = MultiLevelRelease::new(3, vec![level(1, 4), level(1, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(release.release(7, &mut rng).is_err());
        assert!(release.release_naive(7, &mut rng).is_err());
        let chained = release.release(1, &mut rng).unwrap();
        assert_eq!(chained.len(), 2);
        assert!(chained.iter().all(|s| s.value <= 3));
        let naive = release.release_naive(1, &mut rng).unwrap();
        assert_eq!(naive.len(), 2);
    }
}
