//! Unit-test support: the seed's removed free functions, reproduced through
//! the engine.
//!
//! PR 5 removed the `#[deprecated]` seed shims (`optimal_mechanism`,
//! `bayesian_optimal_mechanism`, `optimal_interaction`,
//! `bayesian_optimal_interaction`); this `cfg(test)` module is the single
//! in-crate definition of "the seed recipe" — a cold
//! [`SolveStrategy::DirectLp`] engine solve of the Section 2.5 template, and
//! a plain [`PrivacyEngine::interact`] — so the bit-identity anchors in the
//! `optimal` and `interaction` test modules cannot drift apart (the
//! integration-test twin lives in `tests/common/mod.rs`).

use crate::alpha::PrivacyLevel;
use crate::consumer::{BayesianConsumer, MinimaxConsumer};
use crate::engine::{PrivacyEngine, Solve, SolveStrategy, ValidatedRequest};
use crate::error::Result;
use crate::interaction::Interaction;
use crate::mechanism::Mechanism;
use privmech_numerics::Rational;

/// The seed `optimal_mechanism` shim through the engine: a cold Section 2.5
/// LP solve (`SolveStrategy::DirectLp`) at one level.
pub(crate) fn optimal_mechanism(
    level: &PrivacyLevel<Rational>,
    consumer: &MinimaxConsumer<Rational>,
) -> Result<Solve<Rational>> {
    let request = ValidatedRequest::minimax(level.clone(), consumer.clone())
        .with_strategy(SolveStrategy::DirectLp);
    PrivacyEngine::with_threads(1).solve(&request)
}

/// The seed `bayesian_optimal_mechanism` shim through the engine.
pub(crate) fn bayesian_optimal_mechanism(
    level: &PrivacyLevel<Rational>,
    consumer: &BayesianConsumer<Rational>,
) -> Result<Solve<Rational>> {
    let request = ValidatedRequest::bayesian(level.clone(), consumer.clone())
        .with_strategy(SolveStrategy::DirectLp);
    PrivacyEngine::with_threads(1).solve(&request)
}

/// The seed `optimal_interaction` shim through the engine (the request's
/// privacy level plays no role in post-processing).
pub(crate) fn optimal_interaction(
    deployed: &Mechanism<Rational>,
    consumer: &MinimaxConsumer<Rational>,
) -> Result<Interaction<Rational>> {
    let level = PrivacyLevel::new(Rational::zero())?;
    let request = ValidatedRequest::minimax(level, consumer.clone());
    PrivacyEngine::with_threads(1).interact(deployed, &request)
}

/// The seed `bayesian_optimal_interaction` shim through the engine.
pub(crate) fn bayesian_optimal_interaction(
    deployed: &Mechanism<Rational>,
    consumer: &BayesianConsumer<Rational>,
) -> Result<Interaction<Rational>> {
    let level = PrivacyLevel::new(Rational::zero())?;
    let request = ValidatedRequest::bayesian(level, consumer.clone());
    PrivacyEngine::with_threads(1).interact(deployed, &request)
}
