//! The privacy parameter `α ∈ [0, 1]`.
//!
//! The paper parameterizes differential privacy multiplicatively: a mechanism
//! is `α`-differentially private when the output distributions of neighboring
//! databases are within a factor `α … 1/α` of each other (Definition 2).
//! Smaller `α` means *weaker* privacy in this notation (`α = 0` is vacuous,
//! `α = 1` forces the output to be independent of the data). The more common
//! `ε`-notation corresponds to `α = e^{-ε}`.

use privmech_linalg::Scalar;

use crate::error::{CoreError, Result};

/// A validated privacy parameter `α ∈ [0, 1]` (Definition 2 of the paper).
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub struct PrivacyLevel<T: Scalar> {
    alpha: T,
}

impl<T: Scalar> PrivacyLevel<T> {
    /// Validate and wrap a privacy parameter.
    pub fn new(alpha: T) -> Result<Self> {
        if alpha < T::zero() || alpha > T::one() {
            return Err(CoreError::InvalidAlpha {
                value: alpha.to_string(),
            });
        }
        Ok(PrivacyLevel { alpha })
    }

    /// Construct from a machine-integer fraction, e.g. `PrivacyLevel::from_ratio(1, 4)`.
    pub fn from_ratio(num: i64, den: i64) -> Result<Self> {
        if den == 0 {
            return Err(CoreError::InvalidAlpha {
                value: format!("{num}/{den}"),
            });
        }
        Self::new(T::from_ratio(num, den))
    }

    /// The underlying parameter value.
    #[must_use]
    pub fn alpha(&self) -> &T {
        &self.alpha
    }

    /// Consume the wrapper and return the parameter.
    #[must_use]
    pub fn into_alpha(self) -> T {
        self.alpha
    }

    /// True iff `α = 0` (no privacy constraint at all).
    #[must_use]
    pub fn is_vacuous(&self) -> bool {
        self.alpha == T::zero()
    }

    /// True iff `α = 1` (absolute privacy: the output may not depend on the data).
    #[must_use]
    pub fn is_absolute(&self) -> bool {
        self.alpha == T::one()
    }

    /// The equivalent `ε` of the standard `e^ε` formulation (`ε = -ln α`).
    /// Returns `f64::INFINITY` when `α = 0`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        let a = self.alpha.to_f64();
        if a <= 0.0 {
            f64::INFINITY
        } else {
            -a.ln()
        }
    }
}

impl<T: Scalar> std::fmt::Display for PrivacyLevel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "α = {}", self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn accepts_valid_range_rejects_outside() {
        assert!(PrivacyLevel::new(rat(1, 4)).is_ok());
        assert!(PrivacyLevel::new(Rational::zero()).is_ok());
        assert!(PrivacyLevel::new(Rational::one()).is_ok());
        assert!(PrivacyLevel::new(rat(5, 4)).is_err());
        assert!(PrivacyLevel::new(rat(-1, 4)).is_err());
        assert!(PrivacyLevel::<f64>::new(0.3).is_ok());
        assert!(PrivacyLevel::<f64>::new(1.2).is_err());
    }

    #[test]
    fn from_ratio_and_accessors() {
        let a: PrivacyLevel<Rational> = PrivacyLevel::from_ratio(1, 4).unwrap();
        assert_eq!(*a.alpha(), rat(1, 4));
        assert_eq!(a.clone().into_alpha(), rat(1, 4));
        assert!(!a.is_vacuous());
        assert!(!a.is_absolute());
        assert!(PrivacyLevel::<Rational>::from_ratio(1, 0).is_err());
        assert!(PrivacyLevel::<Rational>::from_ratio(0, 1)
            .unwrap()
            .is_vacuous());
        assert!(PrivacyLevel::<Rational>::from_ratio(1, 1)
            .unwrap()
            .is_absolute());
    }

    #[test]
    fn epsilon_correspondence() {
        let a: PrivacyLevel<f64> = PrivacyLevel::new(0.5).unwrap();
        assert!((a.epsilon() - std::f64::consts::LN_2).abs() < 1e-12);
        let zero: PrivacyLevel<f64> = PrivacyLevel::new(0.0).unwrap();
        assert!(zero.epsilon().is_infinite());
        let one: PrivacyLevel<f64> = PrivacyLevel::new(1.0).unwrap();
        assert_eq!(one.epsilon(), 0.0);
    }

    #[test]
    fn display_includes_value() {
        let a: PrivacyLevel<Rational> = PrivacyLevel::from_ratio(1, 4).unwrap();
        assert_eq!(a.to_string(), "α = 1/4");
    }
}
