//! Derivability from the geometric mechanism (Section 3, Theorem 2).
//!
//! A mechanism `M` can be *derived* from the geometric mechanism `G_{n,α}` if
//! `M = G_{n,α} · T` for a row-stochastic `T` (Definition 3). Theorem 2
//! characterizes derivability by a local condition on every column of `M`:
//! writing three consecutive entries of a column as `x1, x2, x3`,
//!
//! ```text
//!   (1 + α²)·x2 − α·(x1 + x3) ≥ 0,
//! ```
//!
//! together with the endpoint conditions `x_first ≥ α·x_second` and
//! `x_last ≥ α·x_secondlast` (these come from Lemma 2's `i = 1` and `i = n`
//! cases and are implied by α-differential privacy). The equivalent matrix
//! statement is that every entry of `T = G⁻¹·M` is non-negative; this module
//! provides both the O(n²) scan and the explicit construction of `T`.

use privmech_linalg::{Matrix, Scalar};

use crate::alpha::PrivacyLevel;
use crate::error::{CoreError, Result};
use crate::geometric::geometric_mechanism;
use crate::mechanism::Mechanism;

/// Outcome of the Theorem 2 characterization scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivabilityCheck {
    /// Every column satisfies the characterization; the mechanism is derivable
    /// from `G_{n,α}`.
    Derivable,
    /// The condition fails in `column` for the window starting at `row`
    /// (rows `row`, `row+1`, `row+2`), or at an endpoint when `row + 1` equals
    /// the first or last index.
    Violated {
        /// Column of the violation.
        column: usize,
        /// First row of the violating window.
        row: usize,
    },
}

impl DerivabilityCheck {
    /// True iff the check passed.
    #[must_use]
    pub fn is_derivable(&self) -> bool {
        matches!(self, DerivabilityCheck::Derivable)
    }
}

/// Run the Theorem 2 characterization on a mechanism: the O(n²) column scan
/// that decides derivability from `G_{n,α}` without computing `G⁻¹·M`.
#[must_use]
pub fn theorem2_check<T: Scalar>(
    mechanism: &Mechanism<T>,
    level: &PrivacyLevel<T>,
) -> DerivabilityCheck {
    let alpha = level.alpha().clone();
    let m = mechanism.matrix();
    let size = mechanism.size();
    let one_plus_alpha_sq = T::one() + alpha.clone() * alpha.clone();

    for col in 0..size {
        // Endpoint condition at the top of the column: x_0 >= α·x_1
        // (Lemma 2, case i = 1).
        let top = m[(0, col)].clone();
        let second = m[(1, col)].clone();
        if !(top.clone() - alpha.clone() * second).approx_ge(&T::zero()) {
            return DerivabilityCheck::Violated {
                column: col,
                row: 0,
            };
        }
        // Endpoint condition at the bottom: x_n >= α·x_{n-1}
        // (Lemma 2, case i = n).
        let bottom = m[(size - 1, col)].clone();
        let second_last = m[(size - 2, col)].clone();
        if !(bottom.clone() - alpha.clone() * second_last).approx_ge(&T::zero()) {
            return DerivabilityCheck::Violated {
                column: col,
                row: size - 2,
            };
        }
        // Interior condition: (1 + α²)·x_{i+1} − α·(x_i + x_{i+2}) ≥ 0.
        for row in 0..size.saturating_sub(2) {
            let x1 = m[(row, col)].clone();
            let x2 = m[(row + 1, col)].clone();
            let x3 = m[(row + 2, col)].clone();
            let lhs = one_plus_alpha_sq.clone() * x2 - alpha.clone() * (x1 + x3);
            if !lhs.approx_ge(&T::zero()) {
                return DerivabilityCheck::Violated { column: col, row };
            }
        }
    }
    DerivabilityCheck::Derivable
}

/// Compute the post-processing matrix `T` with `to = from · T`, i.e.
/// `T = from⁻¹ · to`, and verify it is row-stochastic.
///
/// Returns [`CoreError::NotDerivable`] when `T` has a negative entry (locating
/// the most negative one), and a linear-algebra error if `from` is singular.
pub fn derive_post_processing<T: Scalar>(
    from: &Mechanism<T>,
    to: &Mechanism<T>,
) -> Result<Matrix<T>> {
    if from.size() != to.size() {
        return Err(CoreError::InvalidPostProcessing {
            reason: format!(
                "mechanisms have different sizes: {} vs {}",
                from.size(),
                to.size()
            ),
        });
    }
    let inv = from.matrix().inverse().map_err(CoreError::from)?;
    let t = inv.matmul(to.matrix()).map_err(CoreError::from)?;
    // Locate the most negative entry, if any.
    let mut worst: Option<(usize, usize, T)> = None;
    for i in 0..t.rows() {
        for j in 0..t.cols() {
            let v = t[(i, j)].clone();
            if v.is_negative_approx() {
                match &worst {
                    Some((_, _, w)) if *w <= v => {}
                    _ => worst = Some((i, j, v)),
                }
            }
        }
    }
    if let Some((i, j, _)) = worst {
        return Err(CoreError::NotDerivable { column: j, row: i });
    }
    // Clamp float noise and return.
    let clamped = Matrix::from_fn(t.rows(), t.cols(), |i, j| {
        let v = t[(i, j)].clone();
        if v < T::zero() {
            T::zero()
        } else {
            v
        }
    });
    Ok(clamped)
}

/// Convenience wrapper: is `mechanism` derivable from `G_{n,α}`?
///
/// Runs the Theorem 2 scan and, when it passes, also constructs the witness
/// post-processing matrix (so callers get both the certificate and the
/// factorization).
pub fn derive_from_geometric<T: Scalar>(
    mechanism: &Mechanism<T>,
    level: &PrivacyLevel<T>,
) -> Result<Matrix<T>> {
    match theorem2_check(mechanism, level) {
        DerivabilityCheck::Violated { column, row } => Err(CoreError::NotDerivable { column, row }),
        DerivabilityCheck::Derivable => {
            let g = geometric_mechanism(mechanism.n(), level)?;
            derive_post_processing(&g, mechanism)
        }
    }
}

/// The explicit ½-differentially-private mechanism of Appendix B that is *not*
/// derivable from `G_{3,1/2}`.
#[must_use]
pub fn appendix_b_mechanism<T: Scalar>() -> Mechanism<T> {
    let r = |num: i64, den: i64| T::from_ratio(num, den);
    Mechanism::from_rows(vec![
        vec![r(1, 9), r(2, 9), r(4, 9), r(2, 9)],
        vec![r(2, 9), r(1, 9), r(2, 9), r(4, 9)],
        vec![r(4, 9), r(2, 9), r(1, 9), r(2, 9)],
        vec![r(13, 18), r(1, 9), r(1, 18), r(1, 9)],
    ])
    .expect("the Appendix B matrix is row-stochastic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    fn quarter() -> PrivacyLevel<Rational> {
        PrivacyLevel::new(rat(1, 4)).unwrap()
    }

    #[test]
    fn geometric_is_derivable_from_itself() {
        let level = quarter();
        let g = geometric_mechanism(3, &level).unwrap();
        assert!(theorem2_check(&g, &level).is_derivable());
        let t = derive_from_geometric(&g, &level).unwrap();
        assert_eq!(t, Matrix::identity(4));
    }

    #[test]
    fn products_with_stochastic_matrices_are_derivable() {
        // Anything of the form G·T with T stochastic must pass the scan and
        // the derived post-processing must reproduce T (G is invertible).
        let level = quarter();
        let g = geometric_mechanism(3, &level).unwrap();
        let t = Matrix::from_rows(vec![
            vec![rat(1, 2), rat(1, 2), rat(0, 1), rat(0, 1)],
            vec![rat(1, 4), rat(1, 4), rat(1, 4), rat(1, 4)],
            vec![rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 3), rat(1, 3), rat(1, 3)],
        ])
        .unwrap();
        let derived = g.post_process(&t).unwrap();
        assert!(theorem2_check(&derived, &level).is_derivable());
        let recovered = derive_from_geometric(&derived, &level).unwrap();
        assert_eq!(recovered, t);
    }

    #[test]
    fn appendix_b_example_is_private_but_not_derivable() {
        let half = PrivacyLevel::new(rat(1, 2)).unwrap();
        let m: Mechanism<Rational> = appendix_b_mechanism();
        assert!(m.is_differentially_private(&half));
        // The paper checks column 1 (0-indexed) at rows 0..2:
        // (1+α²)·M[1][1] − α·(M[0][1] + M[2][1]) = 5/4·1/9 − 1/2·4/9 < 0.
        let check = theorem2_check(&m, &half);
        assert_eq!(check, DerivabilityCheck::Violated { column: 1, row: 0 });
        assert!(derive_from_geometric(&m, &half).is_err());
        // The explicit factorization also fails with a located negative entry.
        let g = geometric_mechanism(3, &half).unwrap();
        let err = derive_post_processing(&g, &m).unwrap_err();
        assert!(matches!(err, CoreError::NotDerivable { .. }));
    }

    #[test]
    fn identity_mechanism_is_not_derivable_for_positive_alpha() {
        // The identity mechanism has adjacent zero/non-zero entries, violating
        // even the endpoint conditions for α > 0.
        let level = quarter();
        let id: Mechanism<Rational> = Mechanism::identity(3);
        assert!(!theorem2_check(&id, &level).is_derivable());
    }

    #[test]
    fn derive_post_processing_dimension_mismatch() {
        let level = quarter();
        let g3 = geometric_mechanism(3, &level).unwrap();
        let g4 = geometric_mechanism(4, &level).unwrap();
        assert!(derive_post_processing(&g3, &g4).is_err());
    }

    #[test]
    fn uniform_mechanism_is_derivable() {
        // The uniform mechanism is G·T where T maps every output to the
        // uniform distribution.
        let level = quarter();
        let uniform: Mechanism<Rational> = Mechanism::uniform(3);
        assert!(theorem2_check(&uniform, &level).is_derivable());
        let t = derive_from_geometric(&uniform, &level).unwrap();
        assert!(t.is_row_stochastic());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t[(i, j)], rat(1, 4));
            }
        }
    }
}
