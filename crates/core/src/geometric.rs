//! The geometric mechanism (Definitions 1 and 4 of the paper) and the
//! auxiliary `G'` matrix used in the characterization proofs (Table 2).
//!
//! * The **α-geometric mechanism** adds two-sided geometric noise
//!   `Pr[Z = z] = (1-α)/(1+α) · α^{|z|}` to the true count (Definition 1).
//! * The **range-restricted geometric mechanism** `G_{n,α}` folds the mass
//!   falling outside `{0, …, n}` onto the endpoints (Definition 4); it is the
//!   matrix form used throughout the paper and equals the unbounded mechanism
//!   followed by clamping to `[0, n]`.
//! * `G'_{n,α}` is the column-rescaled matrix `G'[i][j] = α^{|i-j|}` with
//!   `det G'_{n,α} = (1-α²)^{n-1}` (Lemma 1).

use privmech_linalg::{Matrix, Scalar};
use rand::Rng;

use crate::alpha::PrivacyLevel;
use crate::error::Result;
use crate::mechanism::Mechanism;

/// Probability mass of the *unbounded* two-sided geometric distribution at
/// offset `z`: `(1-α)/(1+α)·α^{|z|}` (Definition 1). For `α = 0` this is the
/// point mass at zero; for `α = 1` the distribution is improper and every
/// point gets mass zero.
#[must_use]
pub fn two_sided_geometric_pmf<T: Scalar>(alpha: &T, z: i64) -> T {
    if *alpha == T::zero() {
        return if z == 0 { T::one() } else { T::zero() };
    }
    let scale = (T::one() - alpha.clone()) / (T::one() + alpha.clone());
    scale * alpha.powi(z.unsigned_abs() as u32)
}

/// Probability that the range-restricted geometric mechanism outputs `z` when
/// the true result is `k` (Definition 4):
///
/// * `α^{|z-k|} / (1+α)` when `z ∈ {0, n}`,
/// * `(1-α)/(1+α) · α^{|z-k|}` when `0 < z < n`,
/// * `0` otherwise.
#[must_use]
pub fn range_restricted_pmf<T: Scalar>(n: usize, alpha: &T, k: usize, z: usize) -> T {
    if z > n || k > n {
        return T::zero();
    }
    if n == 0 {
        return T::one();
    }
    if *alpha == T::zero() {
        return if z == k { T::one() } else { T::zero() };
    }
    let dist = k.abs_diff(z) as u32;
    let pow = alpha.powi(dist);
    if z == 0 || z == n {
        pow / (T::one() + alpha.clone())
    } else {
        (T::one() - alpha.clone()) / (T::one() + alpha.clone()) * pow
    }
}

/// Build the range-restricted geometric mechanism `G_{n,α}` as a validated
/// [`Mechanism`] (Definition 4, Table 2 left).
pub fn geometric_mechanism<T: Scalar>(n: usize, level: &PrivacyLevel<T>) -> Result<Mechanism<T>> {
    let alpha = level.alpha();
    let matrix = Matrix::from_fn(n + 1, n + 1, |k, z| range_restricted_pmf(n, alpha, k, z));
    Mechanism::from_matrix(matrix)
}

/// The raw (unvalidated) matrix of `G_{n,α}` — useful when `α = 1` makes the
/// interior entries vanish but the matrix is still well defined.
#[must_use]
pub fn geometric_matrix<T: Scalar>(n: usize, alpha: &T) -> Matrix<T> {
    Matrix::from_fn(n + 1, n + 1, |k, z| range_restricted_pmf(n, alpha, k, z))
}

/// The rescaled matrix `G'_{n,α}` with entries `α^{|i-j|}` (Table 2 right).
///
/// `G'` is obtained from `G` by multiplying the first and last columns by
/// `(1+α)` and every other column by `(1+α)/(1-α)`; Lemma 1 computes
/// `det G'_{n,α} = (1-α²)^{n-1}`.
#[must_use]
pub fn g_prime_matrix<T: Scalar>(n: usize, alpha: &T) -> Matrix<T> {
    Matrix::from_fn(n + 1, n + 1, |i, j| alpha.powi(i.abs_diff(j) as u32))
}

/// The uniformly rescaled matrix `(1+α)/(1-α) · G_{n,α}` that the paper prints
/// as Table 1(b). (The paper labels it `G_{3,1/4}` but the entries shown are
/// this rescaling; see EXPERIMENTS.md.)
#[must_use]
pub fn table1b_scaled_geometric<T: Scalar>(n: usize, alpha: &T) -> Matrix<T> {
    let scale = (T::one() + alpha.clone()) / (T::one() - alpha.clone());
    geometric_matrix(n, alpha).scale(&scale)
}

/// Closed form of Lemma 1: `det G'_{n,α} = (1-α²)^{n-1}` for an
/// `(n+1) × (n+1)` matrix (the paper indexes the matrix size by `n`; here the
/// argument is the count-query bound `n`, so the exponent is `n`).
#[must_use]
pub fn lemma1_determinant<T: Scalar>(n: usize, alpha: &T) -> T {
    (T::one() - alpha.clone() * alpha.clone()).powi(n as u32)
}

/// Sample the unbounded two-sided geometric noise `Z` with parameter `α`
/// (Definition 1), as the difference of two i.i.d. geometric variables.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> i64 {
    assert!(
        (0.0..1.0).contains(&alpha),
        "two-sided geometric sampling requires alpha in [0, 1)"
    );
    if alpha == 0.0 {
        return 0;
    }
    let ln_alpha = alpha.ln();
    let mut one_sided = || -> i64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.ln() / ln_alpha).floor() as i64
    };
    one_sided() - one_sided()
}

/// Sample an output of the range-restricted geometric mechanism for true
/// result `k`: add two-sided geometric noise and clamp to `[0, n]`. This is
/// distributionally identical to sampling from row `k` of `G_{n,α}`.
pub fn sample_geometric_output<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    alpha: f64,
    rng: &mut R,
) -> usize {
    let noisy = k as i64 + sample_two_sided_geometric(alpha, rng);
    noisy.clamp(0, n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unbounded_pmf_matches_definition_one() {
        let a = rat(1, 5);
        // (1-α)/(1+α) = (4/5)/(6/5) = 2/3.
        assert_eq!(two_sided_geometric_pmf(&a, 0), rat(2, 3));
        assert_eq!(two_sided_geometric_pmf(&a, 1), rat(2, 15));
        assert_eq!(two_sided_geometric_pmf(&a, -1), rat(2, 15));
        assert_eq!(two_sided_geometric_pmf(&a, 3), rat(2, 375));
        // α = 0 is the identity (point mass).
        assert_eq!(
            two_sided_geometric_pmf(&Rational::zero(), 0),
            Rational::one()
        );
        assert_eq!(
            two_sided_geometric_pmf(&Rational::zero(), 2),
            Rational::zero()
        );
        // Symmetric in z.
        assert_eq!(
            two_sided_geometric_pmf(&a, 7),
            two_sided_geometric_pmf(&a, -7)
        );
    }

    #[test]
    fn range_restricted_matches_definition_four() {
        // n = 3, α = 1/4, true result k = 1.
        let a = rat(1, 4);
        // Endpoint z = 0: α^1/(1+α) = (1/4)/(5/4) = 1/5.
        assert_eq!(range_restricted_pmf(3, &a, 1, 0), rat(1, 5));
        // Interior z = 1: (1-α)/(1+α) = 3/5.
        assert_eq!(range_restricted_pmf(3, &a, 1, 1), rat(3, 5));
        // Interior z = 2: 3/5 · 1/4 = 3/20.
        assert_eq!(range_restricted_pmf(3, &a, 1, 2), rat(3, 20));
        // Endpoint z = 3: α²/(1+α) = (1/16)/(5/4) = 1/20.
        assert_eq!(range_restricted_pmf(3, &a, 1, 3), rat(1, 20));
        // Out of range.
        assert_eq!(range_restricted_pmf(3, &a, 1, 7), Rational::zero());
    }

    #[test]
    fn geometric_mechanism_is_stochastic_and_private() {
        for n in [1usize, 2, 3, 5, 8] {
            for (num, den) in [(1i64, 5i64), (1, 4), (1, 3), (1, 2), (2, 3)] {
                let level = PrivacyLevel::new(rat(num, den)).unwrap();
                let g = geometric_mechanism(n, &level).unwrap();
                assert!(g.matrix().is_row_stochastic(), "n={n}, alpha={num}/{den}");
                assert!(g.is_differentially_private(&level));
                assert_eq!(g.best_privacy_level(), rat(num, den));
            }
        }
    }

    #[test]
    fn extreme_alphas() {
        // α = 0: identity mechanism.
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        let g = geometric_mechanism(3, &zero).unwrap();
        assert_eq!(g, Mechanism::identity(3));
        // α = 1: all mass on the endpoints, independent of the input.
        let one = PrivacyLevel::new(Rational::one()).unwrap();
        let g = geometric_mechanism(3, &one).unwrap();
        for k in 0..=3 {
            assert_eq!(*g.prob(k, 0).unwrap(), rat(1, 2));
            assert_eq!(*g.prob(k, 3).unwrap(), rat(1, 2));
            assert_eq!(*g.prob(k, 1).unwrap(), Rational::zero());
        }
        assert_eq!(g.best_privacy_level(), Rational::one());
        // n = 0: the only possible answer is 0.
        let quarter = PrivacyLevel::new(rat(1, 4)).unwrap();
        let g = geometric_mechanism(0, &quarter).unwrap();
        assert_eq!(*g.prob(0, 0).unwrap(), Rational::one());
    }

    #[test]
    fn g_prime_and_lemma1_determinant() {
        for n in [1usize, 2, 3, 4, 6] {
            for (num, den) in [(1i64, 4i64), (1, 3), (1, 2), (3, 5)] {
                let a = rat(num, den);
                let gp = g_prime_matrix(n, &a);
                assert_eq!(gp[(0, 0)], Rational::one());
                assert_eq!(gp[(0, n)], a.pow(n as i32));
                assert_eq!(gp.determinant().unwrap(), lemma1_determinant(n, &a));
            }
        }
    }

    #[test]
    fn g_prime_is_column_rescaled_g() {
        let n = 3;
        let a = rat(1, 4);
        let g = geometric_matrix(n, &a);
        let gp = g_prime_matrix(n, &a);
        let one_plus = Rational::one() + a.clone();
        let interior = (Rational::one() + a.clone()) / (Rational::one() - a.clone());
        for i in 0..=n {
            for j in 0..=n {
                let scale = if j == 0 || j == n {
                    one_plus.clone()
                } else {
                    interior.clone()
                };
                assert_eq!(gp[(i, j)], g[(i, j)].clone() * scale);
            }
        }
    }

    #[test]
    fn table1b_scaling_reproduces_paper_entries() {
        // Table 1(b) of the paper, n = 3, α = 1/4.
        let scaled = table1b_scaled_geometric(3, &rat(1, 4));
        let expected = [
            vec![rat(4, 3), rat(1, 4), rat(1, 16), rat(1, 48)],
            vec![rat(1, 3), rat(1, 1), rat(1, 4), rat(1, 12)],
            vec![rat(1, 12), rat(1, 4), rat(1, 1), rat(1, 3)],
            vec![rat(1, 48), rat(1, 16), rat(1, 4), rat(4, 3)],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(scaled[(i, j)], expected[i][j], "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn geometric_determinant_is_positive_lemma_one() {
        // Lemma 1: det(G_{n,α}) > 0, via det G' = (1-α²)^{n} and the column
        // scaling factors.
        for n in [1usize, 2, 3, 5] {
            let a = rat(1, 3);
            let det = geometric_matrix(n, &a).determinant().unwrap();
            assert!(det.is_positive(), "n = {n}");
        }
    }

    #[test]
    fn sampling_is_close_to_pmf() {
        let mut rng = StdRng::seed_from_u64(42);
        let alpha = 0.2;
        let n = 10usize;
        let k = 5usize;
        let trials = 40_000;
        let mut counts = vec![0usize; n + 1];
        for _ in 0..trials {
            counts[sample_geometric_output(n, k, alpha, &mut rng)] += 1;
        }
        #[allow(clippy::needless_range_loop)] // z is also the pmf argument
        for z in 0..=n {
            let expected = range_restricted_pmf(n, &alpha, k, z);
            let observed = counts[z] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "z = {z}: observed {observed}, expected {expected}"
            );
        }
        // α = 0 sampling is deterministic.
        assert_eq!(sample_two_sided_geometric(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "alpha in [0, 1)")]
    fn sampling_rejects_alpha_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_two_sided_geometric(1.0, &mut rng);
    }
}
