//! `PrivacyEngine`: the session-oriented solve API.
//!
//! The paper's objects are families parameterized by the privacy level α, the
//! query range `n`, a loss function and side information. The free functions
//! of the seed API (`optimal_mechanism`, `optimal_interaction`, … — removed
//! in PR 5) rebuilt and solved one LP per call; this module replaces them as
//! the primary entry point with a request/engine design:
//!
//! 1. describe *what* to solve with a [`SolveRequest`] builder, which is
//!    checked once into a typed [`ValidatedRequest`] (every field error has a
//!    stable [`CoreError`] variant);
//! 2. hand requests to a [`PrivacyEngine`] — [`PrivacyEngine::solve`] for a
//!    single privacy level, [`PrivacyEngine::sweep`] for a batch of levels
//!    solved across worker threads with deterministic result order, and
//!    [`PrivacyEngine::interact`] for the optimal post-processing of an
//!    already-deployed mechanism.
//!
//! # Solve strategies
//!
//! [`SolveStrategy::GeometricFactorization`] (the default) computes the
//! tailored optimum *through Theorem 1*: deploy the geometric mechanism
//! `G_{n,α}` and solve the consumer's interaction LP (Section 2.4.3), whose
//! `n+1+|S|` rows are roughly `2n(n+1)` fewer than the direct Section 2.5
//! LP's. The returned mechanism `G_{n,α}·T*` attains exactly the tailored
//! optimal loss (Theorem 1; for Bayesian consumers the Ghosh–Roughgarden–
//! Sundararajan analogue, with no LP at all) and is derivable from the
//! geometric mechanism by construction. When the LP optimum is not unique the
//! returned *matrix* may differ from the direct LP's optimal vertex;
//! [`SolveStrategy::DirectLp`] solves the Section 2.5 LP itself and
//! reproduces the seed's `optimal_mechanism` formulation bit for bit.
//!
//! # Warm-started sweeps
//!
//! Both strategies build their LP **once per sweep** and re-parameterize it
//! per α (the constraint structure is α-independent; see
//! [`privmech_lp::ModelTemplate`] and
//! [`privmech_lp::Model::replace_constraint_expr`]). A re-parameterized model
//! is guaranteed to produce the same dense simplex tableau as a fresh build,
//! so sweep results are bit-identical to per-level [`PrivacyEngine::solve`]
//! calls for the exact backend, regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use privmech_linalg::{Matrix, Scalar};
use privmech_lp::{PivotStats, SolverOptions};

use crate::alpha::PrivacyLevel;
use crate::consumer::{BayesianConsumer, MinimaxConsumer, SideInformation};
use crate::derivability::{self, DerivabilityCheck};
use crate::error::{CoreError, Result};
use crate::geometric::geometric_mechanism;
use crate::interaction::{bayesian_interaction_impl, Interaction, InteractionLp};
use crate::loss::LossFunction;
use crate::mechanism::Mechanism;
use crate::multilevel::MultiLevelRelease;
use crate::optimal::TailoredLp;

/// How [`PrivacyEngine::solve`] computes a tailored optimal mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveStrategy {
    /// Theorem 1 route (the default): deploy `G_{n,α}`, solve the much
    /// smaller Section 2.4.3 interaction LP, and return `G_{n,α}·T*`. Exact
    /// optimal loss, mechanism derivable from the geometric mechanism by
    /// construction.
    #[default]
    GeometricFactorization,
    /// Solve the Section 2.5 LP directly. Reproduces the seed's
    /// `optimal_mechanism` free function bit for bit (same model, same pivot
    /// sequence; relative to the original seed formulation the only change
    /// is at exactly α = 0 — see the `crate::optimal` module docs) — the
    /// right choice when the exact optimal *vertex* of the direct
    /// formulation matters, e.g. for reproducing Table 1(a).
    DirectLp,
}

/// Which kind of information consumer a request describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumerKind {
    /// Worst-case (minimax) consumer with side information (Section 2.3).
    Minimax,
    /// Prior-expected-loss consumer (Section 2.7).
    Bayesian,
}

/// Untyped builder for a solve request. Collect the consumer description and
/// privacy level, then call [`SolveRequest::validate`] to obtain a typed
/// [`ValidatedRequest`] accepted by the engine.
///
/// ```
/// use std::sync::Arc;
/// use privmech_core::{AbsoluteError, PrivacyEngine, SolveRequest};
/// use privmech_numerics::{rat, Rational};
///
/// let request = SolveRequest::<Rational>::minimax()
///     .name("government")
///     .loss(Arc::new(AbsoluteError))
///     .support(3, 0..=3)
///     .privacy_level(rat(1, 4))
///     .validate()
///     .unwrap();
/// let solve = PrivacyEngine::new().solve(&request).unwrap();
/// assert!(solve.mechanism.is_differentially_private(request.level()));
/// ```
pub struct SolveRequest<T: Scalar> {
    kind: ConsumerKind,
    name: String,
    loss: Option<Arc<dyn LossFunction<T> + Send + Sync>>,
    side_information: Option<SideInformation>,
    support: Option<(usize, Vec<usize>)>,
    prior: Option<Vec<T>>,
    alpha: Option<T>,
    level: Option<PrivacyLevel<T>>,
    strategy: SolveStrategy,
    options: SolverOptions,
}

impl<T: Scalar> std::fmt::Debug for SolveRequest<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveRequest")
            .field("kind", &self.kind)
            .field("name", &self.name)
            .field("loss", &self.loss.as_ref().map(|l| l.name()))
            .field("strategy", &self.strategy)
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> SolveRequest<T> {
    fn new(kind: ConsumerKind) -> Self {
        SolveRequest {
            kind,
            name: "request".to_string(),
            loss: None,
            side_information: None,
            support: None,
            prior: None,
            alpha: None,
            level: None,
            strategy: SolveStrategy::default(),
            options: SolverOptions::default(),
        }
    }

    /// Start a minimax (worst-case) request.
    #[must_use]
    pub fn minimax() -> Self {
        Self::new(ConsumerKind::Minimax)
    }

    /// Start a Bayesian (prior-expected-loss) request.
    #[must_use]
    pub fn bayesian() -> Self {
        Self::new(ConsumerKind::Bayesian)
    }

    /// Name the consumer (used in reports and error messages).
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The consumer's loss function (required; must be monotone in `|i-r|`).
    #[must_use]
    pub fn loss(mut self, loss: Arc<dyn LossFunction<T> + Send + Sync>) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Pre-validated side information for a minimax request.
    #[must_use]
    pub fn side_information(mut self, side: SideInformation) -> Self {
        self.side_information = Some(side);
        self
    }

    /// Raw side information for a minimax request: the query-range bound `n`
    /// and the set of results the consumer considers possible. Validated (non
    /// empty, within `0..=n`) by [`SolveRequest::validate`].
    #[must_use]
    pub fn support(mut self, n: usize, members: impl IntoIterator<Item = usize>) -> Self {
        self.support = Some((n, members.into_iter().collect()));
        self
    }

    /// Prior over `{0, …, n}` for a Bayesian request (length `n+1`,
    /// non-negative, summing to one; validated by [`SolveRequest::validate`]).
    #[must_use]
    pub fn prior(mut self, prior: Vec<T>) -> Self {
        self.prior = Some(prior);
        self
    }

    /// Raw privacy parameter `α ∈ [0, 1]` (validated by
    /// [`SolveRequest::validate`]).
    #[must_use]
    pub fn privacy_level(mut self, alpha: T) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Pre-validated privacy level.
    #[must_use]
    pub fn at(mut self, level: PrivacyLevel<T>) -> Self {
        self.level = Some(level);
        self
    }

    /// Select the solve strategy (default:
    /// [`SolveStrategy::GeometricFactorization`]).
    #[must_use]
    pub fn strategy(mut self, strategy: SolveStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the simplex solver options.
    #[must_use]
    pub fn solver_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Check the request into a typed [`ValidatedRequest`].
    ///
    /// Errors use stable [`CoreError`] variants: a missing/contradictory
    /// field is [`CoreError::InvalidRequest`]; a bad α is
    /// [`CoreError::InvalidAlpha`]; an empty or out-of-range support is
    /// [`CoreError::InvalidSideInformation`]; a malformed prior is
    /// [`CoreError::InvalidPrior`]; a non-monotone loss is
    /// [`CoreError::NonMonotoneLoss`].
    pub fn validate(self) -> Result<ValidatedRequest<T>> {
        let loss = self.loss.ok_or_else(|| CoreError::InvalidRequest {
            reason: format!("request \"{}\" has no loss function", self.name),
        })?;
        let level = match (self.level, self.alpha) {
            (Some(level), None) => level,
            (None, Some(alpha)) => PrivacyLevel::new(alpha)?,
            (None, None) => {
                return Err(CoreError::InvalidRequest {
                    reason: format!("request \"{}\" has no privacy level", self.name),
                })
            }
            (Some(_), Some(_)) => {
                return Err(CoreError::InvalidRequest {
                    reason: format!(
                        "request \"{}\" sets both a raw α and a pre-validated level",
                        self.name
                    ),
                })
            }
        };
        let consumer = match self.kind {
            ConsumerKind::Minimax => {
                if self.prior.is_some() {
                    return Err(CoreError::InvalidRequest {
                        reason: format!(
                            "minimax request \"{}\" supplies a prior (Bayesian field)",
                            self.name
                        ),
                    });
                }
                let side = match (self.side_information, self.support) {
                    (Some(side), None) => side,
                    (None, Some((n, members))) => SideInformation::new(n, members)?,
                    (None, None) => {
                        return Err(CoreError::InvalidRequest {
                            reason: format!(
                                "minimax request \"{}\" has no side information",
                                self.name
                            ),
                        })
                    }
                    (Some(_), Some(_)) => {
                        return Err(CoreError::InvalidRequest {
                            reason: format!(
                                "minimax request \"{}\" sets both side_information and support",
                                self.name
                            ),
                        })
                    }
                };
                RequestConsumer::Minimax(MinimaxConsumer::new(self.name, loss, side)?)
            }
            ConsumerKind::Bayesian => {
                if self.side_information.is_some() || self.support.is_some() {
                    return Err(CoreError::InvalidRequest {
                        reason: format!(
                            "Bayesian request \"{}\" supplies side information (minimax field)",
                            self.name
                        ),
                    });
                }
                let prior = self.prior.ok_or_else(|| CoreError::InvalidRequest {
                    reason: format!("Bayesian request \"{}\" has no prior", self.name),
                })?;
                RequestConsumer::Bayesian(BayesianConsumer::new(self.name, loss, prior)?)
            }
        };
        Ok(ValidatedRequest {
            consumer,
            level,
            strategy: self.strategy,
            options: self.options,
        })
    }
}

/// A validated consumer: the typed payload of a [`ValidatedRequest`].
#[derive(Debug, Clone)]
pub enum RequestConsumer<T: Scalar> {
    /// A minimax consumer (Section 2.3).
    Minimax(MinimaxConsumer<T>),
    /// A Bayesian consumer (Section 2.7).
    Bayesian(BayesianConsumer<T>),
}

impl<T: Scalar> RequestConsumer<T> {
    /// The query-range bound `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            RequestConsumer::Minimax(c) => c.side_information().n(),
            RequestConsumer::Bayesian(c) => c.n(),
        }
    }

    /// The consumer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            RequestConsumer::Minimax(c) => c.name(),
            RequestConsumer::Bayesian(c) => c.name(),
        }
    }

    /// The consumer's dis-utility for a mechanism (worst-case for minimax,
    /// prior-expected for Bayesian).
    pub fn disutility(&self, mechanism: &Mechanism<T>) -> Result<T> {
        match self {
            RequestConsumer::Minimax(c) => c.disutility(mechanism),
            RequestConsumer::Bayesian(c) => c.disutility(mechanism),
        }
    }
}

/// A fully validated, typed solve request: consumer + privacy level +
/// strategy + solver options. Construct through [`SolveRequest::validate`] or
/// directly from already-validated parts with [`ValidatedRequest::minimax`] /
/// [`ValidatedRequest::bayesian`].
#[derive(Debug, Clone)]
pub struct ValidatedRequest<T: Scalar> {
    consumer: RequestConsumer<T>,
    level: PrivacyLevel<T>,
    strategy: SolveStrategy,
    options: SolverOptions,
}

impl<T: Scalar> ValidatedRequest<T> {
    /// Wrap an already-validated minimax consumer and level.
    #[must_use]
    pub fn minimax(level: PrivacyLevel<T>, consumer: MinimaxConsumer<T>) -> Self {
        ValidatedRequest {
            consumer: RequestConsumer::Minimax(consumer),
            level,
            strategy: SolveStrategy::default(),
            options: SolverOptions::default(),
        }
    }

    /// Wrap an already-validated Bayesian consumer and level.
    #[must_use]
    pub fn bayesian(level: PrivacyLevel<T>, consumer: BayesianConsumer<T>) -> Self {
        ValidatedRequest {
            consumer: RequestConsumer::Bayesian(consumer),
            level,
            strategy: SolveStrategy::default(),
            options: SolverOptions::default(),
        }
    }

    /// Replace the solve strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SolveStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The same request re-targeted at a different privacy level (the LP
    /// structure is α-independent, so no re-validation is needed).
    #[must_use]
    pub fn at_level(mut self, level: PrivacyLevel<T>) -> Self {
        self.level = level;
        self
    }

    /// Replace the solver options.
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// The privacy level of the request.
    #[must_use]
    pub fn level(&self) -> &PrivacyLevel<T> {
        &self.level
    }

    /// The validated consumer.
    #[must_use]
    pub fn consumer(&self) -> &RequestConsumer<T> {
        &self.consumer
    }

    /// The solve strategy.
    #[must_use]
    pub fn strategy(&self) -> SolveStrategy {
        self.strategy
    }

    /// The simplex solver options.
    #[must_use]
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The query-range bound `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.consumer.n()
    }
}

/// The result of one engine solve: a tailored optimal mechanism for one
/// privacy level.
#[derive(Debug, Clone)]
pub struct Solve<T: Scalar> {
    /// The privacy level this solve was computed for.
    pub level: PrivacyLevel<T>,
    /// A loss-minimizing α-differentially-private mechanism for the consumer.
    pub mechanism: Mechanism<T>,
    /// The consumer's (optimal) loss under `mechanism`.
    pub loss: T,
    /// Simplex pivot statistics of the underlying LP solve (all zeros for
    /// the Bayesian factorization route, which needs no LP).
    pub stats: PivotStats,
}

/// Per-strategy solver state reused across the levels of one sweep.
#[derive(Clone)]
enum SweepState<T: Scalar> {
    /// The Section 2.5 LP template (minimax epigraph or Bayesian linear
    /// objective — the distinction lives inside the built model), plus the
    /// cross-α warm-start state. The handle is only consulted when the
    /// request enables [`privmech_lp::WarmStartMode::DualSimplex`]; it is
    /// per-state, so in a multi-threaded sweep each worker warm-starts from
    /// its own previous level.
    Direct(TailoredLp<T>, privmech_lp::WarmSweepHandle),
    /// The interaction LP together with the deployed mechanism and level it
    /// is currently parameterized for, so consecutive solves at the same
    /// level (every single-`solve` call, duplicate sweep entries) skip the
    /// geometric-mechanism and epigraph reconstruction.
    FactorMinimax {
        lp: InteractionLp<T>,
        deployed: Mechanism<T>,
        level: PrivacyLevel<T>,
    },
    FactorBayesian,
}

/// A session-oriented solver for the paper's optimization problems.
///
/// The engine owns the worker-thread budget for batched, warm-started
/// α-sweeps (per-solve knobs like [`SolverOptions`] live on the request). It
/// is cheap to construct and stateless between calls, so one engine can
/// serve requests of different scalar backends (`Rational`, `f64`) and
/// consumers concurrently.
#[derive(Debug, Clone)]
pub struct PrivacyEngine {
    threads: usize,
}

impl Default for PrivacyEngine {
    fn default() -> Self {
        PrivacyEngine::new()
    }
}

impl PrivacyEngine {
    /// An engine with one worker thread per available CPU.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        PrivacyEngine { threads }
    }

    /// An engine with an explicit worker-thread budget for
    /// [`PrivacyEngine::sweep`] (clamped to at least 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        PrivacyEngine {
            threads: threads.max(1),
        }
    }

    /// The sweep worker-thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn build_state<T: Scalar>(&self, request: &ValidatedRequest<T>) -> Result<SweepState<T>> {
        match (request.strategy, &request.consumer) {
            (SolveStrategy::DirectLp, RequestConsumer::Minimax(c)) => Ok(SweepState::Direct(
                TailoredLp::for_minimax(c)?,
                privmech_lp::WarmSweepHandle::new(),
            )),
            (SolveStrategy::DirectLp, RequestConsumer::Bayesian(c)) => Ok(SweepState::Direct(
                TailoredLp::for_bayesian(c)?,
                privmech_lp::WarmSweepHandle::new(),
            )),
            (SolveStrategy::GeometricFactorization, RequestConsumer::Minimax(c)) => {
                // Built against the request's own level; re-parameterized
                // inside solves only when a sweep targets a different level.
                let g = geometric_mechanism(c.side_information().n(), &request.level)?;
                let lp = InteractionLp::build(&g, c)?;
                Ok(SweepState::FactorMinimax {
                    lp,
                    deployed: g,
                    level: request.level.clone(),
                })
            }
            (SolveStrategy::GeometricFactorization, RequestConsumer::Bayesian(_)) => {
                Ok(SweepState::FactorBayesian)
            }
        }
    }

    fn solve_one<T: Scalar>(
        state: &mut SweepState<T>,
        request: &ValidatedRequest<T>,
        level: &PrivacyLevel<T>,
    ) -> Result<Solve<T>> {
        let (mechanism, loss, stats) = match (state, &request.consumer) {
            (SweepState::Direct(lp, warm), _) => {
                let (mechanism, stats) =
                    lp.solve_in_place_warm(level.alpha(), &request.options, warm)?;
                let loss = request.consumer.disutility(&mechanism)?;
                (mechanism, loss, stats)
            }
            (
                SweepState::FactorMinimax {
                    lp,
                    deployed,
                    level: current,
                },
                RequestConsumer::Minimax(c),
            ) => {
                if *current != *level {
                    *deployed = geometric_mechanism(c.side_information().n(), level)?;
                    lp.reparameterize(deployed)?;
                    *current = level.clone();
                }
                // Interaction.loss is already the consumer's disutility of
                // the induced mechanism — no need to recompute it.
                let interaction = lp.solve(deployed, &request.options)?;
                (interaction.induced, interaction.loss, interaction.lp_stats)
            }
            (SweepState::FactorBayesian, RequestConsumer::Bayesian(c)) => {
                let g = geometric_mechanism(c.n(), level)?;
                let interaction = bayesian_interaction_impl(&g, c)?;
                (interaction.induced, interaction.loss, interaction.lp_stats)
            }
            _ => {
                return Err(CoreError::InvalidRequest {
                    reason: "sweep state does not match the request's consumer kind".to_string(),
                })
            }
        };
        Ok(Solve {
            level: level.clone(),
            mechanism,
            loss,
            stats,
        })
    }

    /// Solve one request at its own privacy level.
    pub fn solve<T: Scalar>(&self, request: &ValidatedRequest<T>) -> Result<Solve<T>> {
        let mut state = self.build_state(request)?;
        Self::solve_one(&mut state, request, &request.level)
    }

    /// Solve the request at every level of `levels`, delivering each result
    /// to `on_result` in **completion order** together with its input index.
    ///
    /// This is the incremental form behind [`PrivacyEngine::sweep`], built
    /// for streaming consumers (the serving layer emits one wire frame per
    /// completed α): solves are farmed across up to
    /// [`PrivacyEngine::threads`] worker threads, and the callback fires as
    /// each level finishes — which, with more than one worker, is generally
    /// *not* input order. The `usize` argument is the index into `levels`
    /// the result belongs to; every index is delivered exactly once. The
    /// callback is invoked under an internal lock, so it may be called from
    /// any worker thread but never concurrently with itself.
    ///
    /// Each solve is bit-identical to a cold per-level
    /// [`PrivacyEngine::solve`] for exact scalars, regardless of thread
    /// count or completion order (the LP is built once and re-parameterized
    /// per level, each worker on its own clone). Exception: with
    /// [`privmech_lp::WarmStartMode::DualSimplex`] enabled in the request's
    /// options, `DirectLp` solves reoptimize from the previous level's basis
    /// and the guarantee weakens to the *solution level* — every warm result
    /// is verified against the exact optimality certificate, so objectives
    /// (and hence losses) always match a cold solve, but a degenerate
    /// optimum may surface as a different optimal vertex, and results can
    /// depend on the level order. Per-level failures are delivered through
    /// the callback as `Err`; the function itself only fails if the shared
    /// LP template cannot be built at all.
    pub fn sweep_with<T: Scalar + Send + Sync>(
        &self,
        levels: &[PrivacyLevel<T>],
        request: &ValidatedRequest<T>,
        mut on_result: impl FnMut(usize, Result<Solve<T>>) + Send,
    ) -> Result<()> {
        let base = self.build_state(request)?;
        let workers = self.threads.min(levels.len()).max(1);

        if workers <= 1 {
            let mut state = base;
            for (idx, level) in levels.iter().enumerate() {
                on_result(idx, Self::solve_one(&mut state, request, level));
            }
            return Ok(());
        }

        let callback = Mutex::new(on_result);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = base.clone();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(level) = levels.get(idx) else {
                            break;
                        };
                        let solve = Self::solve_one(&mut state, request, level);
                        (callback.lock().expect("sweep callback poisoned"))(idx, solve);
                    }
                });
            }
        });
        Ok(())
    }

    /// Solve the request at every level of `levels`, farming the solves
    /// across up to [`PrivacyEngine::threads`] worker threads.
    ///
    /// The LP is built once and re-parameterized per level (each worker gets
    /// its own clone), so results are **bit-identical** to per-level
    /// [`PrivacyEngine::solve`] calls for exact scalars and independent of
    /// the thread count (with cross-level warm starts enabled the guarantee
    /// is solution-level instead — see [`PrivacyEngine::sweep_with`]).
    /// Results are returned in input order; the request's own level is
    /// ignored in favor of `levels`. On error, the failure of the smallest
    /// level index is reported.
    ///
    /// This is a collect-and-reorder wrapper over
    /// [`PrivacyEngine::sweep_with`], which delivers the same solves in
    /// completion order for streaming consumers.
    pub fn sweep<T: Scalar + Send + Sync>(
        &self,
        levels: &[PrivacyLevel<T>],
        request: &ValidatedRequest<T>,
    ) -> Result<Vec<Solve<T>>> {
        let mut slots: Vec<Option<Result<Solve<T>>>> = Vec::new();
        slots.resize_with(levels.len(), || None);
        self.sweep_with(levels, request, |idx, solve| slots[idx] = Some(solve))?;
        let mut out = Vec::with_capacity(levels.len());
        for slot in slots {
            out.push(slot.expect("every sweep slot is filled")?);
        }
        Ok(out)
    }

    /// The consumer's optimal interaction with an already-deployed mechanism
    /// (Section 2.4.3 LP for minimax consumers, the posterior-argmin remap
    /// for Bayesian consumers). The request's privacy level plays no role —
    /// the deployed mechanism already embodies it.
    pub fn interact<T: Scalar>(
        &self,
        deployed: &Mechanism<T>,
        request: &ValidatedRequest<T>,
    ) -> Result<Interaction<T>> {
        match &request.consumer {
            RequestConsumer::Minimax(c) => {
                let lp = InteractionLp::build(deployed, c)?;
                lp.solve(deployed, &request.options)
            }
            RequestConsumer::Bayesian(c) => bayesian_interaction_impl(deployed, c),
        }
    }

    /// Deploy the range-restricted geometric mechanism `G_{n,α}`
    /// (Definition 4) — the universally optimal choice of Theorem 1.
    pub fn geometric<T: Scalar>(&self, n: usize, level: &PrivacyLevel<T>) -> Result<Mechanism<T>> {
        geometric_mechanism(n, level)
    }

    /// Build the Algorithm 1 multi-level release chain for strictly
    /// increasing privacy levels.
    pub fn multi_level<T: Scalar>(
        &self,
        n: usize,
        levels: Vec<PrivacyLevel<T>>,
    ) -> Result<MultiLevelRelease<T>> {
        MultiLevelRelease::new(n, levels)
    }

    /// Run the Theorem 2 characterization: is `mechanism` derivable from
    /// `G_{n,α}`?
    #[must_use]
    pub fn check_derivability<T: Scalar>(
        &self,
        mechanism: &Mechanism<T>,
        level: &PrivacyLevel<T>,
    ) -> DerivabilityCheck {
        derivability::theorem2_check(mechanism, level)
    }

    /// Factor `mechanism = G_{n,α} · T` through the geometric mechanism,
    /// returning the witness post-processing matrix `T` (Section 3).
    pub fn derive<T: Scalar>(
        &self,
        mechanism: &Mechanism<T>,
        level: &PrivacyLevel<T>,
    ) -> Result<Matrix<T>> {
        derivability::derive_from_geometric(mechanism, level)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::loss::AbsoluteError;
    use privmech_numerics::{rat, Rational};

    fn request(strategy: SolveStrategy) -> ValidatedRequest<Rational> {
        SolveRequest::minimax()
            .name("engine-test")
            .loss(Arc::new(AbsoluteError))
            .support(3, 0..=3)
            .privacy_level(rat(1, 4))
            .strategy(strategy)
            .validate()
            .unwrap()
    }

    #[test]
    fn both_strategies_reach_the_tailored_optimum() {
        let engine = PrivacyEngine::new();
        let direct = engine.solve(&request(SolveStrategy::DirectLp)).unwrap();
        let factored = engine
            .solve(&request(SolveStrategy::GeometricFactorization))
            .unwrap();
        // Theorem 1: both routes attain exactly the same optimal loss.
        assert_eq!(direct.loss, factored.loss);
        assert_eq!(direct.loss, rat(168, 415));
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        assert!(direct.mechanism.is_differentially_private(&level));
        assert!(factored.mechanism.is_differentially_private(&level));
        // The factorization route is derivable from G by construction.
        assert!(engine
            .check_derivability(&factored.mechanism, &level)
            .is_derivable());
    }

    #[test]
    fn direct_strategy_reproduces_the_seed_formulation() {
        // The seed free functions are gone (PR 5); the bit-identity anchor is
        // now the Section 2.5 template itself, solved cold at the same level
        // with default options — exactly what the seed `optimal_mechanism`
        // shim did.
        let (old_mechanism, old_stats) = {
            let consumer = crate::consumer::MinimaxConsumer::new(
                "engine-test",
                Arc::new(AbsoluteError),
                crate::consumer::SideInformation::full(3),
            )
            .unwrap();
            let mut lp = crate::optimal::TailoredLp::for_minimax(&consumer).unwrap();
            lp.solve_in_place(&rat(1, 4), &Default::default()).unwrap()
        };
        let new = PrivacyEngine::new()
            .solve(&request(SolveStrategy::DirectLp))
            .unwrap();
        assert_eq!(old_mechanism, new.mechanism);
        assert_eq!(old_stats, new.stats);
    }

    #[test]
    fn sweep_is_bit_identical_to_per_level_solves_for_any_thread_count() {
        let levels: Vec<PrivacyLevel<Rational>> = [(1i64, 5i64), (1, 4), (1, 2), (2, 3), (1, 1)]
            .into_iter()
            .map(|(n, d)| PrivacyLevel::new(rat(n, d)).unwrap())
            .collect();
        for strategy in [
            SolveStrategy::GeometricFactorization,
            SolveStrategy::DirectLp,
        ] {
            let req = request(strategy);
            let singles: Vec<Solve<Rational>> = levels
                .iter()
                .map(|l| {
                    // A cold per-level solve: same request, rebuilt at l.
                    let at = ValidatedRequest {
                        level: l.clone(),
                        ..req.clone()
                    };
                    PrivacyEngine::new().solve(&at).unwrap()
                })
                .collect();
            for threads in [1usize, 4] {
                let swept = PrivacyEngine::with_threads(threads)
                    .sweep(&levels, &req)
                    .unwrap();
                assert_eq!(swept.len(), singles.len());
                for (s, single) in swept.iter().zip(&singles) {
                    assert_eq!(s.mechanism, single.mechanism, "{strategy:?} x{threads}");
                    assert_eq!(s.loss, single.loss, "{strategy:?} x{threads}");
                    assert_eq!(s.stats, single.stats, "{strategy:?} x{threads}");
                }
            }
        }
    }

    #[test]
    fn interact_matches_a_direct_interaction_lp_solve() {
        // The engine's `interact` is a thin dispatch over `InteractionLp`;
        // pin that down bit for bit (the seed `optimal_interaction` shim was
        // exactly this construction).
        let req = request(SolveStrategy::GeometricFactorization);
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let engine = PrivacyEngine::new();
        let g = engine.geometric(3, &level).unwrap();
        let via_engine = engine.interact(&g, &req).unwrap();
        let via_lp = {
            let RequestConsumer::Minimax(c) = req.consumer() else {
                unreachable!()
            };
            let lp = crate::interaction::InteractionLp::build(&g, c).unwrap();
            lp.solve(&g, &Default::default()).unwrap()
        };
        assert_eq!(via_engine.post_processing, via_lp.post_processing);
        assert_eq!(via_engine.loss, via_lp.loss);
        assert_eq!(via_engine.lp_stats, via_lp.lp_stats);
    }

    #[test]
    fn empty_sweep_is_empty() {
        let req = request(SolveStrategy::GeometricFactorization);
        let swept = PrivacyEngine::new().sweep(&[], &req).unwrap();
        assert!(swept.is_empty());
        let mut called = false;
        PrivacyEngine::new()
            .sweep_with(&[], &req, |_, _| called = true)
            .unwrap();
        assert!(!called, "no levels, no callbacks");
    }

    #[test]
    fn sweep_with_delivers_every_index_exactly_once() {
        let levels: Vec<PrivacyLevel<Rational>> = [(1i64, 5i64), (1, 4), (1, 2), (2, 3)]
            .into_iter()
            .map(|(n, d)| PrivacyLevel::new(rat(n, d)).unwrap())
            .collect();
        let req = request(SolveStrategy::GeometricFactorization);
        let singles = PrivacyEngine::with_threads(1).sweep(&levels, &req).unwrap();
        for threads in [1usize, 4] {
            let mut seen = vec![0usize; levels.len()];
            let mut order = Vec::new();
            PrivacyEngine::with_threads(threads)
                .sweep_with(&levels, &req, |idx, solve| {
                    let solve = solve.unwrap();
                    assert_eq!(solve.mechanism, singles[idx].mechanism, "x{threads} @{idx}");
                    assert_eq!(solve.loss, singles[idx].loss, "x{threads} @{idx}");
                    assert_eq!(solve.stats, singles[idx].stats, "x{threads} @{idx}");
                    seen[idx] += 1;
                    order.push(idx);
                })
                .unwrap();
            assert!(seen.iter().all(|&c| c == 1), "each index once: {seen:?}");
            assert_eq!(order.len(), levels.len());
        }
    }

    #[test]
    fn warm_started_direct_sweep_matches_cold_solves_at_the_solution_level() {
        use privmech_lp::WarmStartMode;
        let levels: Vec<PrivacyLevel<Rational>> = [(1i64, 5i64), (1, 4), (1, 3), (1, 2), (2, 3)]
            .into_iter()
            .map(|(n, d)| PrivacyLevel::new(rat(n, d)).unwrap())
            .collect();
        let cold_req = request(SolveStrategy::DirectLp);
        let warm_req = request(SolveStrategy::DirectLp).with_options(SolverOptions {
            warm_start: WarmStartMode::DualSimplex,
            ..SolverOptions::default()
        });
        let engine = PrivacyEngine::with_threads(1);
        let cold = engine.sweep(&levels, &cold_req).unwrap();
        let warm = engine.sweep(&levels, &warm_req).unwrap();
        let mut warm_hits = 0usize;
        for (idx, (c, w)) in cold.iter().zip(&warm).enumerate() {
            // Warm starts are certificate-verified, so the optimal *loss*
            // always matches a cold solve; the mechanism itself may be a
            // different optimal vertex on a degenerate optimum.
            assert_eq!(c.loss, w.loss, "level index {idx}");
            assert!(w.mechanism.is_differentially_private(&levels[idx]));
            assert!(w.mechanism.matrix().is_row_stochastic());
            // A warm-started solve never runs phase 1 (the cold solves of
            // this LP always do: its row-sum equalities need artificials).
            assert!(c.stats.phase1_pivots > 0, "level index {idx}");
            if w.stats.phase1_pivots == 0 {
                warm_hits += 1;
            }
        }
        assert!(
            warm_hits > 0,
            "at least one level should reuse the previous basis: {:?}",
            warm.iter().map(|s| s.stats).collect::<Vec<_>>()
        );
    }
}
