//! Baseline mechanisms used for comparison in the experiments.
//!
//! The paper's headline claim is that the geometric mechanism is *universally*
//! optimal for minimax consumers. To make that claim measurable we implement
//! the natural alternatives a practitioner might deploy instead:
//!
//! * **randomized response** over the result domain,
//! * the **truncated (renormalized) geometric** mechanism, which renormalizes
//!   the out-of-range mass instead of folding it onto the endpoints, and
//! * the **uniform-noise** mechanism that mixes the true answer with a uniform
//!   output.
//!
//! All of these are differentially private for a suitable parameter but are
//! dominated by the geometric mechanism once consumers post-process optimally
//! (Theorem 1); the experiment binaries quantify the gap.

use privmech_linalg::{Matrix, Scalar};

use crate::alpha::PrivacyLevel;
use crate::error::{CoreError, Result};
use crate::mechanism::Mechanism;

/// Randomized response over `{0, …, n}`: with probability `p` release the true
/// result, otherwise release a uniform value. The staying probability `p` is
/// chosen as large as possible subject to α-differential privacy:
/// `p = (1-α) / (1 - α + (n+1)·α)`.
pub fn randomized_response<T: Scalar>(n: usize, level: &PrivacyLevel<T>) -> Result<Mechanism<T>> {
    let alpha = level.alpha().clone();
    let size = T::from_i64((n + 1) as i64);
    if alpha == T::zero() {
        // No privacy constraint: release the truth.
        return Ok(Mechanism::identity(n));
    }
    // p / ((1-p)/(n+1)) + 1 ... derivation: ratio of the diagonal entry to an
    // off-diagonal entry must be at most 1/α, giving
    // p = (1-α) / (1 - α + (n+1)α).
    let p = (T::one() - alpha.clone()) / (T::one() - alpha.clone() + size.clone() * alpha);
    let off = (T::one() - p.clone()) / size;
    let matrix = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i == j {
            p.clone() + off.clone()
        } else {
            off.clone()
        }
    });
    Mechanism::from_matrix(matrix)
}

/// The truncated (renormalized) geometric mechanism: each row is proportional
/// to `α^{|i-r|}` restricted to `{0, …, n}` and renormalized.
///
/// Unlike the paper's range-restricted mechanism (which folds the tail mass
/// onto the endpoints and stays exactly α-DP), renormalizing changes adjacent
/// rows by different factors, so this baseline is only `α'`-DP for some
/// `α' < α`. It is included because it is a common "obvious fix" that the
/// paper's construction improves upon.
pub fn truncated_geometric<T: Scalar>(n: usize, level: &PrivacyLevel<T>) -> Result<Mechanism<T>> {
    let alpha = level.alpha().clone();
    if alpha == T::zero() {
        return Ok(Mechanism::identity(n));
    }
    let mut rows = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let unnormalized: Vec<T> = (0..=n).map(|r| alpha.powi(i.abs_diff(r) as u32)).collect();
        let total = unnormalized
            .iter()
            .cloned()
            .fold(T::zero(), |acc, v| acc + v);
        rows.push(
            unnormalized
                .into_iter()
                .map(|v| v / total.clone())
                .collect(),
        );
    }
    Mechanism::from_rows(rows)
}

/// Mix of the identity and the uniform mechanism: release the truth with
/// probability `1 - λ` and a uniform draw with probability `λ`.
///
/// The mixing weight is chosen as the smallest `λ` that achieves
/// α-differential privacy, which gives exactly the same matrix as
/// [`randomized_response`]; the function exists separately so experiments can
/// also build it with an explicit `λ`.
pub fn uniform_mixture<T: Scalar>(n: usize, lambda: T) -> Result<Mechanism<T>> {
    if lambda < T::zero() || lambda > T::one() {
        return Err(CoreError::InvalidMechanism {
            reason: format!("mixture weight must lie in [0, 1], got {lambda}"),
        });
    }
    let size = T::from_i64((n + 1) as i64);
    let off = lambda.clone() / size;
    let matrix = Matrix::from_fn(n + 1, n + 1, |i, j| {
        if i == j {
            T::one() - lambda.clone() + off.clone()
        } else {
            off.clone()
        }
    });
    Mechanism::from_matrix(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::geometric_mechanism;
    use crate::loss::AbsoluteError;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn randomized_response_is_exactly_alpha_private() {
        for n in [2usize, 3, 6] {
            for (num, den) in [(1i64, 4i64), (1, 2), (2, 3)] {
                let level = PrivacyLevel::new(rat(num, den)).unwrap();
                let m = randomized_response(n, &level).unwrap();
                assert!(m.matrix().is_row_stochastic());
                assert_eq!(m.best_privacy_level(), rat(num, den), "n={n} α={num}/{den}");
            }
        }
        // α = 0 degenerates to the identity.
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        assert_eq!(
            randomized_response(3, &zero).unwrap(),
            Mechanism::identity(3)
        );
        // α = 1 degenerates to the uniform mechanism.
        let one = PrivacyLevel::new(Rational::one()).unwrap();
        assert_eq!(randomized_response(3, &one).unwrap(), Mechanism::uniform(3));
    }

    #[test]
    fn truncated_geometric_is_stochastic_but_weaker_than_alpha() {
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let m = truncated_geometric(4, &level).unwrap();
        assert!(m.matrix().is_row_stochastic());
        // Renormalization breaks exact α-DP: the achieved level is strictly
        // below the target α.
        assert!(m.best_privacy_level() < rat(1, 3));
        assert!(m.best_privacy_level() > Rational::zero());
        // α = 0 is the identity.
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        assert_eq!(
            truncated_geometric(4, &zero).unwrap(),
            Mechanism::identity(4)
        );
    }

    #[test]
    fn uniform_mixture_bounds_and_extremes() {
        assert!(uniform_mixture::<Rational>(3, rat(-1, 2)).is_err());
        assert!(uniform_mixture::<Rational>(3, rat(3, 2)).is_err());
        assert_eq!(
            uniform_mixture::<Rational>(3, Rational::zero()).unwrap(),
            Mechanism::identity(3)
        );
        assert_eq!(
            uniform_mixture::<Rational>(3, Rational::one()).unwrap(),
            Mechanism::uniform(3)
        );
    }

    #[test]
    fn geometric_beats_randomized_response_on_absolute_loss() {
        // A first quantitative glimpse of universal optimality: at the same
        // privacy level the geometric mechanism has no larger worst-case
        // absolute error than randomized response (both without any consumer
        // post-processing).
        let n = 6;
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let s: Vec<usize> = (0..=n).collect();
        let geo = geometric_mechanism(n, &level).unwrap();
        let rr = randomized_response(n, &level).unwrap();
        let loss = AbsoluteError;
        let geo_loss = geo.minimax_loss(&s, &loss).unwrap();
        let rr_loss = rr.minimax_loss(&s, &loss).unwrap();
        assert!(geo_loss <= rr_loss, "geometric {geo_loss} vs rr {rr_loss}");
    }
}
