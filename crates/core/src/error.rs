//! Error types for the privacy-mechanism core.

use std::fmt;

use privmech_linalg::LinalgError;
use privmech_lp::LpError;

/// Errors produced by the privacy-mechanism core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A privacy parameter outside the interval `[0, 1]` was supplied.
    InvalidAlpha {
        /// The offending value rendered as text.
        value: String,
    },
    /// A mechanism matrix was rejected (wrong shape, negative entries, or
    /// rows that do not sum to one).
    InvalidMechanism {
        /// Human-readable reason.
        reason: String,
    },
    /// A post-processing matrix was rejected (must be square, row-stochastic
    /// and of the same dimension as the mechanism's output space).
    InvalidPostProcessing {
        /// Human-readable reason.
        reason: String,
    },
    /// A loss function violated the monotonicity requirement
    /// (`l(i, r)` must be non-decreasing in `|i - r|` for every `i`).
    NonMonotoneLoss {
        /// The row where monotonicity fails.
        input: usize,
        /// The pair of outputs witnessing the violation.
        outputs: (usize, usize),
    },
    /// The consumer's side information is empty or references results outside
    /// `{0, …, n}`.
    InvalidSideInformation {
        /// Human-readable reason.
        reason: String,
    },
    /// A prior was rejected (wrong length, negative mass, or not summing to one).
    InvalidPrior {
        /// Human-readable reason.
        reason: String,
    },
    /// The requested privacy levels for a multi-level release were not
    /// strictly increasing inside `(0, 1]`, or the list was empty.
    InvalidPrivacyLevels {
        /// Human-readable reason.
        reason: String,
    },
    /// A mechanism claimed to be derivable from the geometric mechanism is not.
    NotDerivable {
        /// The column and row window where Theorem 2's condition fails.
        column: usize,
        /// First row of the violating window.
        row: usize,
    },
    /// A [`SolveRequest`](crate::engine::SolveRequest) was structurally
    /// incomplete or inconsistent (missing loss, missing privacy level, a
    /// prior supplied to a minimax request, …). Field-level validation
    /// failures keep their specific variants: a bad α is
    /// [`CoreError::InvalidAlpha`], an empty support is
    /// [`CoreError::InvalidSideInformation`], a non-stochastic prior is
    /// [`CoreError::InvalidPrior`].
    InvalidRequest {
        /// Human-readable reason.
        reason: String,
    },
    /// An input (true query result) outside `{0, …, n}` was supplied.
    InputOutOfRange {
        /// The offending input.
        input: usize,
        /// The database size `n`.
        n: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// An underlying linear program failed to solve.
    Lp(LpError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidAlpha { value } => {
                write!(f, "privacy parameter must lie in [0, 1], got {value}")
            }
            CoreError::InvalidMechanism { reason } => write!(f, "invalid mechanism: {reason}"),
            CoreError::InvalidPostProcessing { reason } => {
                write!(f, "invalid post-processing: {reason}")
            }
            CoreError::NonMonotoneLoss { input, outputs } => write!(
                f,
                "loss function is not monotone in |i - r| at input {input}, outputs {:?}",
                outputs
            ),
            CoreError::InvalidSideInformation { reason } => {
                write!(f, "invalid side information: {reason}")
            }
            CoreError::InvalidPrior { reason } => write!(f, "invalid prior: {reason}"),
            CoreError::InvalidPrivacyLevels { reason } => {
                write!(f, "invalid privacy levels: {reason}")
            }
            CoreError::NotDerivable { column, row } => write!(
                f,
                "mechanism is not derivable from the geometric mechanism \
                 (Theorem 2 condition fails in column {column} at rows {row}..{})",
                row + 2
            ),
            CoreError::InvalidRequest { reason } => write!(f, "invalid solve request: {reason}"),
            CoreError::InputOutOfRange { input, n } => {
                write!(f, "input {input} outside the query range 0..={n}")
            }
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Lp(e) => write!(f, "linear programming error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

/// Convenient result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::InvalidAlpha {
            value: "3/2".to_string(),
        };
        assert!(e.to_string().contains("[0, 1]"));
        let e = CoreError::NotDerivable { column: 1, row: 0 };
        assert!(e.to_string().contains("Theorem 2"));
        let e = CoreError::InputOutOfRange { input: 9, n: 3 };
        assert!(e.to_string().contains("0..=3"));
        let e = CoreError::InvalidRequest {
            reason: "missing loss".to_string(),
        };
        assert!(e.to_string().contains("missing loss"));
        let e: CoreError = LpError::Infeasible.into();
        assert!(matches!(e, CoreError::Lp(LpError::Infeasible)));
        let e: CoreError = LinalgError::Singular.into();
        assert!(e.to_string().contains("singular"));
    }
}
