//! Canonical fingerprints of validated solve requests.
//!
//! The paper's central result makes solve results perfectly shareable: a
//! tailored optimum depends only on `(consumer kind, n, α, loss, side
//! information or prior)` plus the solve strategy and solver options — not on
//! who asked. A serving layer can therefore answer every consumer with the
//! same request content from one cached solve. This module derives the cache
//! key: a canonical, content-based rendering of a
//! [`ValidatedRequest`] such that
//!
//! * two requests describing the same optimization problem produce the **same
//!   fingerprint**, even when they were built from different [`LossFunction`]
//!   *types* (the loss enters via its value table over `{0, …, n}²`, not its
//!   Rust type) or carry different display [names](crate::engine::SolveRequest::name)
//!   (names are reporting metadata, not problem content);
//! * requests that differ in any solve-relevant field — α, loss values, side
//!   information, prior, strategy, solver options — produce **different
//!   fingerprints**.
//!
//! Scalar values are rendered through their `Display` form, which is
//! canonical for [`Rational`](privmech_numerics::Rational) (always fully
//! reduced) and injective for `f64` up to IEEE equality (Rust's `{:?}` is the
//! shortest round-tripping decimal). The exact and `f64` backends can never
//! collide: the rendering includes the backend's exactness tag.

use std::fmt;
use std::fmt::Write as _;

use privmech_linalg::Scalar;
use privmech_lp::{PricingRule, ScalingMode, SolverOptions, WarmStartMode};

use crate::engine::{RequestConsumer, SolveStrategy, ValidatedRequest};
use crate::loss::LossFunction;

/// A canonical, content-based cache key for a
/// [`ValidatedRequest`].
///
/// Equality of fingerprints is equality of the canonical strings — the 64-bit
/// [`hash`](RequestFingerprint::hash) is a convenience for shard selection and
/// must not be used as the key itself (hashes can collide; the canonical
/// string cannot).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestFingerprint {
    canonical: String,
    hash: u64,
}

impl RequestFingerprint {
    /// Wrap an already-canonical string (exposed for composing larger keys,
    /// e.g. a serving layer appending sweep levels to a request fingerprint).
    #[must_use]
    pub fn from_canonical(canonical: String) -> Self {
        let hash = fnv1a(canonical.as_bytes());
        RequestFingerprint { canonical, hash }
    }

    /// The canonical key string. This is the cache key.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// A 64-bit FNV-1a hash of the canonical string, for shard selection.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

impl fmt::Display for RequestFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical)
    }
}

/// 64-bit FNV-1a over a byte string.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_strategy(out: &mut String, strategy: SolveStrategy) {
    out.push_str(match strategy {
        SolveStrategy::GeometricFactorization => "strategy=factorization",
        SolveStrategy::DirectLp => "strategy=direct",
    });
}

fn push_options(out: &mut String, options: &SolverOptions) {
    let pricing = match options.pricing {
        PricingRule::DantzigWithBlandFallback => "dantzig-bland",
        PricingRule::Bland => "bland",
        PricingRule::Devex => "devex",
    };
    let _ = write!(
        out,
        ";pricing={pricing};streak={}",
        options.degeneracy_streak_limit
    );
    // Solution-relevant options enter the fingerprint; execution details
    // (solver form, factorization kind, refactorization interval) stay out —
    // they can never change a result. Scaling and warm-start *can* change
    // results but default to off, and are appended only when enabled so that
    // every pre-existing cache entry keyed without these fields still hits.
    if options.scaling != ScalingMode::Off {
        out.push_str(";scaling=equilibrate");
    }
    if options.warm_start != WarmStartMode::Off {
        out.push_str(";warm=dual-simplex");
    }
}

/// Append the loss table over `{0, …, n}²` in row-major order. The loss
/// enters the fingerprint by value, so e.g. `AbsoluteError` and a
/// [`TableLoss`](crate::loss::TableLoss) tabulating it fingerprint equal.
fn push_loss<T: Scalar>(out: &mut String, loss: &dyn LossFunction<T>, n: usize) {
    out.push_str(";loss=");
    for i in 0..=n {
        if i > 0 {
            out.push('|');
        }
        for r in 0..=n {
            if r > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", loss.loss(i, r));
        }
    }
}

impl<T: Scalar> ValidatedRequest<T> {
    /// The canonical content fingerprint of this request: consumer kind, `n`,
    /// α, loss table, side information or prior, strategy and solver options.
    /// The consumer's display name is deliberately excluded — it is reporting
    /// metadata, and including it would split cache entries between consumers
    /// asking the same question.
    #[must_use]
    pub fn fingerprint(&self) -> RequestFingerprint {
        let n = self.n();
        let mut out = String::with_capacity(64 + (n + 1) * (n + 1) * 4);
        let _ = write!(
            out,
            "fp-v1;exact={};n={n};alpha={};",
            T::is_exact(),
            self.level().alpha()
        );
        push_strategy(&mut out, self.strategy());
        push_options(&mut out, self.options());
        match self.consumer() {
            RequestConsumer::Minimax(c) => {
                out.push_str(";kind=minimax;S=");
                for (k, m) in c.side_information().members().iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{m}");
                }
                push_loss(&mut out, c.loss(), n);
            }
            RequestConsumer::Bayesian(c) => {
                out.push_str(";kind=bayesian;prior=");
                for (k, p) in c.prior().iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{p}");
                }
                push_loss(&mut out, c.loss(), n);
            }
        }
        RequestFingerprint::from_canonical(out)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::engine::SolveRequest;
    use crate::loss::{AbsoluteError, TableLoss};
    use privmech_numerics::{rat, Rational};

    fn base() -> SolveRequest<Rational> {
        SolveRequest::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(3, 0..=3)
            .privacy_level(rat(1, 4))
    }

    #[test]
    fn name_does_not_enter_the_fingerprint() {
        let a = base().name("government").validate().unwrap().fingerprint();
        let b = base()
            .name("drug company")
            .validate()
            .unwrap()
            .fingerprint();
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn loss_enters_by_value_not_by_type() {
        let table = TableLoss::from_loss(3, &AbsoluteError, "tabulated").unwrap();
        let a = base().validate().unwrap().fingerprint();
        let b = base()
            .loss(Arc::new(table))
            .validate()
            .unwrap()
            .fingerprint();
        assert_eq!(a, b);
    }

    #[test]
    fn solve_relevant_fields_split_the_fingerprint() {
        let a = base().validate().unwrap().fingerprint();
        let alpha = base()
            .privacy_level(rat(1, 3))
            .validate()
            .unwrap()
            .fingerprint();
        let support = base().support(3, 1..=3).validate().unwrap().fingerprint();
        let strategy = base()
            .strategy(crate::engine::SolveStrategy::DirectLp)
            .validate()
            .unwrap()
            .fingerprint();
        assert_ne!(a, alpha);
        assert_ne!(a, support);
        assert_ne!(a, strategy);
    }

    #[test]
    fn backends_cannot_collide() {
        let exact = base().validate().unwrap().fingerprint();
        let inexact = SolveRequest::<f64>::minimax()
            .loss(Arc::new(AbsoluteError))
            .support(3, 0..=3)
            .privacy_level(0.25)
            .validate()
            .unwrap()
            .fingerprint();
        assert_ne!(exact, inexact);
    }
}
