//! Loss functions of minimax information consumers (Section 2.3).
//!
//! A loss function `l(i, r)` quantifies the consumer's unhappiness when the
//! mechanism returns `r` while the true result is `i`. The paper's only
//! structural assumption is monotonicity: `l(i, r)` is non-decreasing in
//! `|i - r|` for every fixed `i`. The three examples called out in the paper
//! — mean error `|i-r|`, squared error `(i-r)²` and the 0/1 error — are
//! provided as ready-made types, together with table- and closure-backed
//! custom losses and a monotonicity validator.

use privmech_linalg::{Matrix, Scalar};

use crate::error::{CoreError, Result};

/// A consumer loss function `l(i, r)` over true results `i` and released
/// results `r`.
pub trait LossFunction<T: Scalar> {
    /// The loss incurred when the true result is `i` and `r` is released.
    fn loss(&self, i: usize, r: usize) -> T;

    /// A short human-readable name used in reports.
    fn name(&self) -> &str {
        "custom"
    }
}

/// Tabulate a loss function as a dense `size × size` matrix.
///
/// LP construction reads every coefficient out of one contiguous allocation
/// instead of re-invoking the (dynamically dispatched) loss function per
/// term; [`TableLoss::from_loss`] layers monotonicity validation on top of
/// the same tabulation.
#[must_use]
pub fn tabulate_loss<T: Scalar>(loss: &dyn LossFunction<T>, size: usize) -> Matrix<T> {
    Matrix::from_fn(size, size, |i, r| loss.loss(i, r))
}

/// Mean (absolute) error `l(i, r) = |i - r|` — the paper's example for a
/// government tracking the spread of flu.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsoluteError;

impl<T: Scalar> LossFunction<T> for AbsoluteError {
    fn loss(&self, i: usize, r: usize) -> T {
        T::from_i64(i.abs_diff(r) as i64)
    }
    fn name(&self) -> &str {
        "absolute"
    }
}

/// Squared error `l(i, r) = (i - r)²` — the paper's example for a drug company
/// planning production.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredError;

impl<T: Scalar> LossFunction<T> for SquaredError {
    fn loss(&self, i: usize, r: usize) -> T {
        let d = T::from_i64(i.abs_diff(r) as i64);
        d.clone() * d
    }
    fn name(&self) -> &str {
        "squared"
    }
}

/// 0/1 error `l(i, r) = [i ≠ r]` — the frequency of error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroOneError;

impl<T: Scalar> LossFunction<T> for ZeroOneError {
    fn loss(&self, i: usize, r: usize) -> T {
        if i == r {
            T::zero()
        } else {
            T::one()
        }
    }
    fn name(&self) -> &str {
        "zero-one"
    }
}

/// Hinge / tolerance loss: zero while `|i - r| <= width`, then grows linearly.
/// Models a consumer who can absorb small inaccuracies at no cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToleranceError {
    /// Number of units of error that are free.
    pub width: usize,
}

impl<T: Scalar> LossFunction<T> for ToleranceError {
    fn loss(&self, i: usize, r: usize) -> T {
        let d = i.abs_diff(r);
        T::from_i64(d.saturating_sub(self.width) as i64)
    }
    fn name(&self) -> &str {
        "tolerance"
    }
}

/// A loss given by an explicit `(n+1) × (n+1)` table.
#[derive(Debug, Clone)]
pub struct TableLoss<T: Scalar> {
    table: Matrix<T>,
    name: String,
}

impl<T: Scalar> TableLoss<T> {
    /// Wrap an explicit loss table after validating the paper's monotonicity
    /// requirement: for every row `i`, `l(i, r)` is non-decreasing in `|i - r|`
    /// separately on each side of `i`.
    pub fn new(table: Matrix<T>, name: impl Into<String>) -> Result<Self> {
        if !table.is_square() {
            return Err(CoreError::InvalidMechanism {
                reason: format!(
                    "loss table must be square, got {}x{}",
                    table.rows(),
                    table.cols()
                ),
            });
        }
        let n = table.rows();
        for i in 0..n {
            // Moving right from i, the loss must not decrease.
            for r in (i + 1)..n {
                if table[(i, r)] < table[(i, r - 1)] {
                    return Err(CoreError::NonMonotoneLoss {
                        input: i,
                        outputs: (r - 1, r),
                    });
                }
            }
            // Moving left from i, the loss must not decrease.
            for r in (0..i).rev() {
                if table[(i, r)] < table[(i, r + 1)] {
                    return Err(CoreError::NonMonotoneLoss {
                        input: i,
                        outputs: (r + 1, r),
                    });
                }
            }
        }
        Ok(TableLoss {
            table,
            name: name.into(),
        })
    }

    /// Build a table loss by evaluating an arbitrary loss function on `{0..=n}`.
    pub fn from_loss(
        n: usize,
        loss: &dyn LossFunction<T>,
        name: impl Into<String>,
    ) -> Result<Self> {
        TableLoss::new(tabulate_loss(loss, n + 1), name)
    }
}

impl<T: Scalar> LossFunction<T> for TableLoss<T> {
    fn loss(&self, i: usize, r: usize) -> T {
        self.table
            .get(i, r)
            .cloned()
            .unwrap_or_else(|| T::from_i64(i64::MAX / 4))
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Check the paper's monotonicity requirement for an arbitrary loss function
/// on the domain `{0, …, n}`.
pub fn validate_monotone<T: Scalar>(n: usize, loss: &dyn LossFunction<T>) -> Result<()> {
    TableLoss::from_loss(n, loss, "validation").map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn builtin_losses_match_formulas() {
        let abs = AbsoluteError;
        let sq = SquaredError;
        let zo = ZeroOneError;
        assert_eq!(LossFunction::<Rational>::loss(&abs, 2, 5), rat(3, 1));
        assert_eq!(LossFunction::<Rational>::loss(&abs, 5, 2), rat(3, 1));
        assert_eq!(LossFunction::<Rational>::loss(&sq, 2, 5), rat(9, 1));
        assert_eq!(LossFunction::<Rational>::loss(&zo, 3, 3), Rational::zero());
        assert_eq!(LossFunction::<Rational>::loss(&zo, 3, 4), Rational::one());
        assert_eq!(LossFunction::<f64>::loss(&sq, 1, 4), 9.0);
        assert_eq!(LossFunction::<Rational>::name(&abs), "absolute");
        assert_eq!(LossFunction::<Rational>::name(&sq), "squared");
        assert_eq!(LossFunction::<Rational>::name(&zo), "zero-one");
    }

    #[test]
    fn tolerance_loss_is_monotone_and_flat_near_truth() {
        let tol = ToleranceError { width: 2 };
        assert_eq!(LossFunction::<Rational>::loss(&tol, 5, 5), Rational::zero());
        assert_eq!(LossFunction::<Rational>::loss(&tol, 5, 7), Rational::zero());
        assert_eq!(LossFunction::<Rational>::loss(&tol, 5, 8), Rational::one());
        assert_eq!(LossFunction::<Rational>::loss(&tol, 5, 1), rat(2, 1));
        assert!(validate_monotone::<Rational>(10, &tol).is_ok());
    }

    #[test]
    fn builtin_losses_are_monotone() {
        assert!(validate_monotone::<Rational>(8, &AbsoluteError).is_ok());
        assert!(validate_monotone::<Rational>(8, &SquaredError).is_ok());
        assert!(validate_monotone::<Rational>(8, &ZeroOneError).is_ok());
    }

    #[test]
    fn table_loss_validation() {
        // A valid asymmetric monotone loss (over-reporting is worse).
        let ok = Matrix::from_rows(vec![
            vec![rat(0, 1), rat(2, 1), rat(4, 1)],
            vec![rat(1, 1), rat(0, 1), rat(2, 1)],
            vec![rat(2, 1), rat(1, 1), rat(0, 1)],
        ])
        .unwrap();
        let loss = TableLoss::new(ok, "asymmetric").unwrap();
        assert_eq!(loss.loss(0, 2), rat(4, 1));
        assert_eq!(loss.name(), "asymmetric");
        // Out-of-range lookups return a huge sentinel rather than panicking.
        assert!(loss.loss(0, 17) > rat(1_000_000, 1));

        // Non-monotone: moving further right gets cheaper.
        let bad = Matrix::from_rows(vec![
            vec![rat(0, 1), rat(3, 1), rat(1, 1)],
            vec![rat(1, 1), rat(0, 1), rat(1, 1)],
            vec![rat(2, 1), rat(1, 1), rat(0, 1)],
        ])
        .unwrap();
        let err = TableLoss::new(bad, "bad").unwrap_err();
        assert!(matches!(err, CoreError::NonMonotoneLoss { input: 0, .. }));

        // Non-square tables are rejected.
        let rect: Matrix<Rational> = Matrix::zeros(2, 3);
        assert!(TableLoss::new(rect, "rect").is_err());
    }

    #[test]
    fn from_loss_round_trips_builtin() {
        let t = TableLoss::<Rational>::from_loss(4, &AbsoluteError, "abs-table").unwrap();
        for i in 0..=4usize {
            for r in 0..=4usize {
                assert_eq!(
                    t.loss(i, r),
                    LossFunction::<Rational>::loss(&AbsoluteError, i, r)
                );
            }
        }
    }
}
