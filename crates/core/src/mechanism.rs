//! Oblivious privacy mechanisms for count queries.
//!
//! An oblivious mechanism for a count query over a database of `n` rows is an
//! `(n+1) × (n+1)` row-stochastic matrix `x`, where `x[i][r]` is the
//! probability of releasing `r` when the true count is `i` (Section 2.2 of the
//! paper). This module provides the validated wrapper type plus the operations
//! the paper uses: α-differential-privacy checks (Definition 2), composition
//! with post-processing matrices (Definition 3), expected and worst-case loss,
//! and sampling.

use privmech_linalg::{Matrix, Scalar};
use rand::Rng;

use crate::alpha::PrivacyLevel;
use crate::error::{CoreError, Result};
use crate::loss::LossFunction;

/// An oblivious mechanism for a count query with results in `{0, …, n}`:
/// a validated row-stochastic `(n+1) × (n+1)` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mechanism<T: Scalar> {
    matrix: Matrix<T>,
}

impl<T: Scalar> Mechanism<T> {
    /// Wrap a matrix as a mechanism, validating that it is square and
    /// row-stochastic (non-negative entries, unit row sums).
    pub fn from_matrix(matrix: Matrix<T>) -> Result<Self> {
        if !matrix.is_square() {
            return Err(CoreError::InvalidMechanism {
                reason: format!(
                    "mechanism matrix must be square, got {}x{}",
                    matrix.rows(),
                    matrix.cols()
                ),
            });
        }
        for (i, row) in matrix.row_iter().enumerate() {
            let mut sum = T::zero();
            for (r, v) in row.iter().enumerate() {
                if v.is_negative_approx() {
                    return Err(CoreError::InvalidMechanism {
                        reason: format!("negative probability at ({i}, {r}): {v}"),
                    });
                }
                sum = sum + v.clone();
            }
            if !sum.approx_eq(&T::one()) {
                return Err(CoreError::InvalidMechanism {
                    reason: format!("row {i} sums to {sum}, expected 1"),
                });
            }
        }
        Ok(Mechanism { matrix })
    }

    /// Build a mechanism from per-input output distributions given as rows.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self> {
        let matrix = Matrix::from_rows(rows).map_err(CoreError::from)?;
        Self::from_matrix(matrix)
    }

    /// Build a mechanism from an *approximately* stochastic matrix: tiny
    /// negative entries are clamped to zero and each row is renormalized to
    /// sum to one. This is the right constructor for matrices coming out of a
    /// floating-point LP solve, where round-off can leave rows a few parts per
    /// million away from exact stochasticity; with an exact scalar it is
    /// equivalent to [`Mechanism::from_matrix`] whenever the input is already
    /// stochastic.
    pub fn from_matrix_normalized(matrix: Matrix<T>) -> Result<Self> {
        if !matrix.is_square() {
            return Err(CoreError::InvalidMechanism {
                reason: format!(
                    "mechanism matrix must be square, got {}x{}",
                    matrix.rows(),
                    matrix.cols()
                ),
            });
        }
        let size = matrix.rows();
        let mut rows = Vec::with_capacity(size);
        for i in 0..size {
            let clamped: Vec<T> = (0..size)
                .map(|r| {
                    let v = matrix[(i, r)].clone();
                    if v < T::zero() {
                        T::zero()
                    } else {
                        v
                    }
                })
                .collect();
            let sum = clamped.iter().cloned().fold(T::zero(), |a, b| a + b);
            if !sum.is_positive_approx() {
                return Err(CoreError::InvalidMechanism {
                    reason: format!("row {i} has no positive mass to normalize"),
                });
            }
            rows.push(clamped.into_iter().map(|v| v / sum.clone()).collect());
        }
        Self::from_rows(rows)
    }

    /// The database size `n` (query results range over `{0, …, n}`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.matrix.rows() - 1
    }

    /// Number of inputs/outputs, i.e. `n + 1`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.matrix.rows()
    }

    /// Probability of releasing `r` when the true result is `i`.
    pub fn prob(&self, i: usize, r: usize) -> Result<&T> {
        self.matrix.get(i, r).ok_or(CoreError::InputOutOfRange {
            input: i.max(r),
            n: self.n(),
        })
    }

    /// Borrow the underlying matrix.
    #[must_use]
    pub fn matrix(&self) -> &Matrix<T> {
        &self.matrix
    }

    /// Consume and return the underlying matrix.
    #[must_use]
    pub fn into_matrix(self) -> Matrix<T> {
        self.matrix
    }

    /// The output distribution for true result `i`, as a slice.
    pub fn row(&self, i: usize) -> Result<&[T]> {
        if i >= self.size() {
            return Err(CoreError::InputOutOfRange {
                input: i,
                n: self.n(),
            });
        }
        Ok(self.matrix.row(i))
    }

    /// Check α-differential privacy for count queries (Definition 2): for all
    /// adjacent inputs `i, i+1` and every output `r`,
    /// `x[i+1][r] >= α·x[i][r]` and `x[i][r] >= α·x[i+1][r]`.
    #[must_use]
    pub fn is_differentially_private(&self, level: &PrivacyLevel<T>) -> bool {
        let alpha = level.alpha();
        if *alpha == T::zero() {
            return true;
        }
        let size = self.size();
        for i in 0..size - 1 {
            for r in 0..size {
                let cur = self.matrix[(i, r)].clone();
                let next = self.matrix[(i + 1, r)].clone();
                if !next.approx_ge(&(alpha.clone() * cur.clone()))
                    || !cur.approx_ge(&(alpha.clone() * next))
                {
                    return false;
                }
            }
        }
        true
    }

    /// The largest `α` for which this mechanism is α-differentially private:
    /// `min_{i,r} min(x[i][r]/x[i+1][r], x[i+1][r]/x[i][r])`, with the
    /// convention that a zero/non-zero adjacent pair forces `α = 0` and a
    /// zero/zero pair imposes no constraint.
    #[must_use]
    pub fn best_privacy_level(&self) -> T {
        let size = self.size();
        let mut best = T::one();
        for i in 0..size - 1 {
            for r in 0..size {
                let cur = self.matrix[(i, r)].clone();
                let next = self.matrix[(i + 1, r)].clone();
                let cur_zero = cur.is_zero_approx();
                let next_zero = next.is_zero_approx();
                if cur_zero && next_zero {
                    continue;
                }
                if cur_zero || next_zero {
                    return T::zero();
                }
                let ratio = (cur.clone() / next.clone()).min_val(next / cur);
                best = best.min_val(ratio);
            }
        }
        best
    }

    /// Apply a post-processing (reinterpretation) matrix `t` on the outputs,
    /// producing the induced mechanism `x · t` (Definition 3).
    pub fn post_process(&self, t: &Matrix<T>) -> Result<Mechanism<T>> {
        if t.rows() != self.size() || t.cols() != self.size() {
            return Err(CoreError::InvalidPostProcessing {
                reason: format!(
                    "post-processing must be {0}x{0}, got {1}x{2}",
                    self.size(),
                    t.rows(),
                    t.cols()
                ),
            });
        }
        if !t.is_row_stochastic() {
            return Err(CoreError::InvalidPostProcessing {
                reason: "post-processing matrix must be row-stochastic".to_string(),
            });
        }
        let product = self.matrix.matmul(t).map_err(CoreError::from)?;
        Mechanism::from_matrix(product)
    }

    /// Expected loss `Σ_r l(i, r) · x[i][r]` of this mechanism on input `i`.
    pub fn expected_loss(&self, i: usize, loss: &dyn LossFunction<T>) -> Result<T> {
        Ok(expected_row_loss(i, self.row(i)?, loss))
    }

    /// Worst-case (minimax) loss over a set of inputs:
    /// `max_{i ∈ S} Σ_r l(i, r) · x[i][r]` (Equation 1 of the paper).
    pub fn minimax_loss(
        &self,
        side_information: &[usize],
        loss: &dyn LossFunction<T>,
    ) -> Result<T> {
        if side_information.is_empty() {
            return Err(CoreError::InvalidSideInformation {
                reason: "side information set must be non-empty".to_string(),
            });
        }
        for &i in side_information {
            if i >= self.size() {
                return Err(CoreError::InputOutOfRange {
                    input: i,
                    n: self.n(),
                });
            }
        }
        let pairs = side_information.iter().map(|&i| (i, self.matrix.row(i)));
        Ok(worst_case_loss(pairs, loss).expect("non-empty side information"))
    }

    /// Expected loss under a prior over inputs (the Bayesian objective of
    /// Section 2.7): `Σ_i prior[i] Σ_r l(i, r) x[i][r]`.
    pub fn bayesian_loss(&self, prior: &[T], loss: &dyn LossFunction<T>) -> Result<T> {
        if prior.len() != self.size() {
            return Err(CoreError::InvalidPrior {
                reason: format!("prior has length {}, expected {}", prior.len(), self.size()),
            });
        }
        let mut acc = T::zero();
        for (i, p) in prior.iter().enumerate() {
            if p.is_zero_approx() {
                continue;
            }
            acc = acc + p.clone() * self.expected_loss(i, loss)?;
        }
        Ok(acc)
    }

    /// Sample an output for the true result `i` using the supplied random
    /// number generator. Probabilities are converted to `f64` for sampling.
    pub fn sample<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> Result<usize> {
        let row = self.row(i)?;
        let weights: Vec<f64> = row.iter().map(|p| p.to_f64().max(0.0)).collect();
        Ok(sample_index(&weights, rng))
    }

    /// Convert the mechanism to `f64` entries (e.g. for sampling-heavy work).
    #[must_use]
    pub fn to_f64(&self) -> Mechanism<f64> {
        Mechanism {
            matrix: self.matrix.map(|v| v.to_f64()),
        }
    }

    /// The identity mechanism (no perturbation at all); `α`-private only for
    /// `α = 0`.
    #[must_use]
    pub fn identity(n: usize) -> Mechanism<T> {
        Mechanism {
            matrix: Matrix::identity(n + 1),
        }
    }

    /// The uniform mechanism that ignores its input entirely; it is
    /// `1`-differentially private (absolute privacy) but has poor utility.
    #[must_use]
    pub fn uniform(n: usize) -> Mechanism<T> {
        let p = T::one() / T::from_i64((n + 1) as i64);
        Mechanism {
            matrix: Matrix::from_fn(n + 1, n + 1, |_, _| p.clone()),
        }
    }
}

/// Expected loss `Σ_r l(input, r) · row[r]` of one output distribution.
///
/// The shared kernel behind [`Mechanism::expected_loss`] and the worst-case
/// folds below; also used by the database layer, whose non-oblivious
/// mechanisms carry one distribution per *database* rather than per count.
#[must_use]
pub fn expected_row_loss<T: Scalar>(input: usize, row: &[T], loss: &dyn LossFunction<T>) -> T {
    let mut acc = T::zero();
    for (r, p) in row.iter().enumerate() {
        acc = acc + loss.loss(input, r) * p.clone();
    }
    acc
}

/// Worst-case expected loss over explicit `(input, distribution)` pairs:
/// `max Σ_r l(input, r) · row[r]` (Equation 1 of the paper, generalized to
/// any collection of rows). Returns `None` for an empty collection.
pub fn worst_case_loss<'a, T, I>(rows: I, loss: &dyn LossFunction<T>) -> Option<T>
where
    T: Scalar,
    I: IntoIterator<Item = (usize, &'a [T])>,
{
    let mut worst: Option<T> = None;
    for (input, row) in rows {
        let l = expected_row_loss(input, row, loss);
        worst = Some(match worst {
            None => l,
            Some(w) => w.max_val(l),
        });
    }
    worst
}

/// Sample an index proportionally to non-negative `weights`.
///
/// Falls back to the last index if rounding error leaves residual mass.
pub(crate) fn sample_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut target = rng.gen_range(0.0..total);
    for (idx, w) in weights.iter().enumerate() {
        if target < *w {
            return idx;
        }
        target -= *w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::AbsoluteError;
    use privmech_numerics::{rat, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_mechanism() -> Mechanism<Rational> {
        // A valid 1/2-DP mechanism on {0,1,2}.
        Mechanism::from_rows(vec![
            vec![rat(1, 2), rat(1, 4), rat(1, 4)],
            vec![rat(1, 4), rat(1, 2), rat(1, 4)],
            vec![rat(1, 4), rat(1, 4), rat(1, 2)],
        ])
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        // Not square.
        let err = Mechanism::from_rows(vec![vec![rat(1, 2), rat(1, 2)]]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidMechanism { .. }));
        // Negative entry.
        let err = Mechanism::from_rows(vec![
            vec![rat(3, 2), rat(-1, 2)],
            vec![rat(1, 2), rat(1, 2)],
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidMechanism { .. }));
        // Rows not summing to one.
        let err =
            Mechanism::from_rows(vec![vec![rat(1, 2), rat(1, 4)], vec![rat(1, 2), rat(1, 2)]])
                .unwrap_err();
        assert!(matches!(err, CoreError::InvalidMechanism { .. }));
    }

    #[test]
    fn accessors_and_bounds() {
        let m = simple_mechanism();
        assert_eq!(m.n(), 2);
        assert_eq!(m.size(), 3);
        assert_eq!(*m.prob(0, 0).unwrap(), rat(1, 2));
        assert!(m.prob(5, 0).is_err());
        assert!(m.row(3).is_err());
        assert_eq!(m.row(1).unwrap()[1], rat(1, 2));
    }

    #[test]
    fn differential_privacy_checks() {
        let m = simple_mechanism();
        let half = PrivacyLevel::new(rat(1, 2)).unwrap();
        let third = PrivacyLevel::new(rat(1, 3)).unwrap();
        let two_thirds = PrivacyLevel::new(rat(2, 3)).unwrap();
        assert!(m.is_differentially_private(&half));
        assert!(m.is_differentially_private(&third));
        assert!(!m.is_differentially_private(&two_thirds));
        assert_eq!(m.best_privacy_level(), rat(1, 2));
        // α = 0 is always satisfied.
        let zero = PrivacyLevel::new(Rational::zero()).unwrap();
        assert!(Mechanism::<Rational>::identity(2).is_differentially_private(&zero));
        // The identity mechanism has zero/non-zero adjacent entries.
        assert_eq!(
            Mechanism::<Rational>::identity(2).best_privacy_level(),
            Rational::zero()
        );
        // The uniform mechanism is 1-private.
        assert_eq!(
            Mechanism::<Rational>::uniform(3).best_privacy_level(),
            Rational::one()
        );
    }

    #[test]
    fn post_processing_composition() {
        let m = simple_mechanism();
        // Merge outputs 1 and 2 into output 1.
        let t = Matrix::from_rows(vec![
            vec![rat(1, 1), rat(0, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1)],
        ])
        .unwrap();
        let induced = m.post_process(&t).unwrap();
        assert_eq!(*induced.prob(0, 1).unwrap(), rat(1, 2));
        assert_eq!(*induced.prob(0, 2).unwrap(), Rational::zero());
        // Post-processing never hurts privacy (data-processing inequality).
        assert!(induced.best_privacy_level() >= m.best_privacy_level());

        // Invalid post-processing matrices are rejected.
        let wrong_size: Matrix<Rational> = Matrix::identity(2);
        assert!(m.post_process(&wrong_size).is_err());
        let not_stochastic = Matrix::from_rows(vec![
            vec![rat(1, 2), rat(0, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(0, 1), rat(1, 1)],
        ])
        .unwrap();
        assert!(m.post_process(&not_stochastic).is_err());
    }

    #[test]
    fn losses_expected_minimax_bayesian() {
        let m = simple_mechanism();
        let loss = AbsoluteError;
        // Input 0: 1/2*0 + 1/4*1 + 1/4*2 = 3/4.
        assert_eq!(m.expected_loss(0, &loss).unwrap(), rat(3, 4));
        // Input 1: 1/4*1 + 1/2*0 + 1/4*1 = 1/2.
        assert_eq!(m.expected_loss(1, &loss).unwrap(), rat(1, 2));
        assert_eq!(m.minimax_loss(&[0, 1, 2], &loss).unwrap(), rat(3, 4));
        assert_eq!(m.minimax_loss(&[1], &loss).unwrap(), rat(1, 2));
        assert!(m.minimax_loss(&[], &loss).is_err());
        let uniform_prior = vec![rat(1, 3), rat(1, 3), rat(1, 3)];
        assert_eq!(m.bayesian_loss(&uniform_prior, &loss).unwrap(), rat(2, 3));
        assert!(m.bayesian_loss(&[rat(1, 1)], &loss).is_err());
    }

    #[test]
    fn sampling_matches_distribution() {
        let m = simple_mechanism().to_f64();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[m.sample(0, &mut rng).unwrap()] += 1;
        }
        let freq0 = counts[0] as f64 / trials as f64;
        assert!((freq0 - 0.5).abs() < 0.02);
        assert!(m.sample(9, &mut rng).is_err());
    }

    #[test]
    fn sample_index_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_index(&[0.0, 0.0], &mut rng), 0);
        assert_eq!(sample_index(&[0.0, 1.0], &mut rng), 1);
    }

    #[test]
    fn identity_and_uniform_are_valid() {
        let id: Mechanism<Rational> = Mechanism::identity(3);
        assert_eq!(id.size(), 4);
        assert!(Mechanism::from_matrix(id.matrix().clone()).is_ok());
        let uni: Mechanism<Rational> = Mechanism::uniform(3);
        assert!(uni.matrix().is_row_stochastic());
        assert_eq!(*uni.prob(2, 1).unwrap(), rat(1, 4));
    }
}
