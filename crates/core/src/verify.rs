//! Verification reports: one-stop structural audit of a mechanism.
//!
//! The experiment binaries and integration tests use [`audit_mechanism`] to
//! collect, in a single pass, every structural property the paper cares about:
//! stochasticity, the best achievable privacy level, whether a target α is
//! met, and whether the mechanism is derivable from the geometric mechanism at
//! that α (Theorem 2).

use privmech_linalg::Scalar;

use crate::alpha::PrivacyLevel;
use crate::derivability::{theorem2_check, DerivabilityCheck};
use crate::mechanism::Mechanism;

/// A structural audit of a mechanism against a target privacy level.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismAudit<T: Scalar> {
    /// The count-query bound `n`.
    pub n: usize,
    /// Whether every row is a probability distribution.
    pub row_stochastic: bool,
    /// The largest α for which the mechanism is α-differentially private.
    pub best_privacy_level: T,
    /// Whether the mechanism meets the target privacy level.
    pub meets_target: bool,
    /// The Theorem 2 characterization outcome at the target level.
    pub derivability: DerivabilityCheck,
}

impl<T: Scalar> MechanismAudit<T> {
    /// True iff the mechanism is stochastic, meets the target α, and is
    /// derivable from the geometric mechanism at that α.
    #[must_use]
    pub fn is_fully_compliant(&self) -> bool {
        self.row_stochastic && self.meets_target && self.derivability.is_derivable()
    }
}

/// Audit a mechanism against a target privacy level.
#[must_use]
pub fn audit_mechanism<T: Scalar>(
    mechanism: &Mechanism<T>,
    target: &PrivacyLevel<T>,
) -> MechanismAudit<T> {
    MechanismAudit {
        n: mechanism.n(),
        row_stochastic: mechanism.matrix().is_row_stochastic(),
        best_privacy_level: mechanism.best_privacy_level(),
        meets_target: mechanism.is_differentially_private(target),
        derivability: theorem2_check(mechanism, target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivability::appendix_b_mechanism;
    use crate::geometric::geometric_mechanism;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn geometric_mechanism_is_fully_compliant() {
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let g = geometric_mechanism(4, &level).unwrap();
        let audit = audit_mechanism(&g, &level);
        assert!(audit.is_fully_compliant());
        assert_eq!(audit.n, 4);
        assert_eq!(audit.best_privacy_level, rat(1, 3));
    }

    #[test]
    fn appendix_b_mechanism_is_private_but_not_compliant() {
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let m: Mechanism<Rational> = appendix_b_mechanism();
        let audit = audit_mechanism(&m, &level);
        assert!(audit.row_stochastic);
        assert!(audit.meets_target);
        assert!(!audit.derivability.is_derivable());
        assert!(!audit.is_fully_compliant());
    }

    #[test]
    fn identity_fails_the_target() {
        let level = PrivacyLevel::new(rat(1, 2)).unwrap();
        let id: Mechanism<Rational> = Mechanism::identity(3);
        let audit = audit_mechanism(&id, &level);
        assert!(audit.row_stochastic);
        assert!(!audit.meets_target);
        assert_eq!(audit.best_privacy_level, Rational::zero());
        assert!(!audit.is_fully_compliant());
    }
}
