//! Monte-Carlo utilities: empirical output distributions, total-variation
//! distance, and collusion experiments over the multi-level release chain.
//!
//! These helpers back the statistical experiments (E-ALG1 in DESIGN.md): they
//! estimate output frequencies of mechanisms and of Algorithm 1's correlated
//! chain, and quantify how much a coalition of consumers learns by averaging
//! their releases.

use privmech_linalg::Scalar;
use rand::Rng;

use crate::error::Result;
use crate::mechanism::Mechanism;
use crate::multilevel::MultiLevelRelease;

/// Empirical output distribution of a mechanism on a fixed input.
pub fn empirical_distribution<T: Scalar, R: Rng + ?Sized>(
    mechanism: &Mechanism<T>,
    input: usize,
    trials: usize,
    rng: &mut R,
) -> Result<Vec<f64>> {
    let mut counts = vec![0usize; mechanism.size()];
    for _ in 0..trials {
        counts[mechanism.sample(input, rng)?] += 1;
    }
    Ok(counts
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect())
}

/// Total-variation distance `½ Σ_z |p(z) − q(z)|` between two distributions
/// given as same-length probability vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have the same support");
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Outcome of a collusion experiment: colluding consumers combine their
/// releases with an inverse-variance-weighted average (the natural de-noising
/// attack against independent re-randomizations) and compare against using
/// only the least-private release.
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionSummary {
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Fraction of trials where the coalition's combined-and-rounded guess
    /// equals the true result.
    pub coalition_hit_rate: f64,
    /// Fraction of trials where the single least-private release alone
    /// (rounded) equals the true result.
    pub least_private_hit_rate: f64,
    /// Mean absolute error of the coalition's combined estimate.
    pub coalition_mean_abs_error: f64,
    /// Mean absolute error of the least-private release alone.
    pub least_private_mean_abs_error: f64,
}

/// Run the collusion experiment on a release strategy.
///
/// `correlated = true` uses Algorithm 1 (the chained release); `false` uses the
/// naive independent re-randomization. The coalition combines its `k` releases
/// with an inverse-variance-weighted average (the variance of the two-sided
/// geometric noise at level α is `2α/(1-α)²`), which is the natural averaging
/// attack the paper warns about. Under the correlated chain this attack gains
/// nothing over the least-private stage alone (Lemma 4); under the naive
/// release it cancels noise and the coalition does strictly better.
pub fn collusion_experiment<T: Scalar, R: Rng + ?Sized>(
    release: &MultiLevelRelease<T>,
    true_result: usize,
    trials: usize,
    correlated: bool,
    rng: &mut R,
) -> Result<CollusionSummary> {
    // Inverse-variance weights per level; a vacuous weight set falls back to a
    // plain mean.
    let mut weights: Vec<f64> = release
        .levels()
        .iter()
        .map(|level| {
            let a = level.alpha().to_f64();
            let variance = 2.0 * a / ((1.0 - a) * (1.0 - a)).max(f64::MIN_POSITIVE);
            if variance <= 0.0 {
                1.0
            } else {
                1.0 / variance
            }
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();
    if !(total_weight.is_finite() && total_weight > 0.0) {
        weights = vec![1.0; release.levels().len()];
    }

    let mut coalition_hits = 0usize;
    let mut least_hits = 0usize;
    let mut coalition_abs = 0.0f64;
    let mut least_abs = 0.0f64;
    for _ in 0..trials {
        let stages = if correlated {
            release.release(true_result, rng)?
        } else {
            release.release_naive(true_result, rng)?
        };
        let least_private = stages[0].value as f64;
        let total: f64 = stages
            .iter()
            .map(|s| weights[s.level_index] * s.value as f64)
            .sum();
        let weight_sum: f64 = stages.iter().map(|s| weights[s.level_index]).sum();
        let estimate = total / weight_sum;
        if estimate.round() as usize == true_result {
            coalition_hits += 1;
        }
        if least_private.round() as usize == true_result {
            least_hits += 1;
        }
        coalition_abs += (estimate - true_result as f64).abs();
        least_abs += (least_private - true_result as f64).abs();
    }
    Ok(CollusionSummary {
        trials,
        coalition_hit_rate: coalition_hits as f64 / trials as f64,
        least_private_hit_rate: least_hits as f64 / trials as f64,
        coalition_mean_abs_error: coalition_abs / trials as f64,
        least_private_mean_abs_error: least_abs / trials as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::PrivacyLevel;
    use crate::geometric::geometric_mechanism;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_distribution_converges_to_rows() {
        let level = PrivacyLevel::new(0.3f64).unwrap();
        let g = geometric_mechanism(5, &level).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let freq = empirical_distribution(&g, 2, 40_000, &mut rng).unwrap();
        let expected: Vec<f64> = (0..=5).map(|z| *g.prob(2, z).unwrap()).collect();
        assert!(total_variation_distance(&freq, &expected) < 0.01);
    }

    #[test]
    fn total_variation_basics() {
        assert_eq!(total_variation_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation_distance(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same support")]
    fn total_variation_rejects_mismatched_lengths() {
        let _ = total_variation_distance(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn collusion_naive_beats_correlated_coalition() {
        // With many naive independent releases at the same levels, averaging
        // reduces error; with the correlated chain it does not help below the
        // least-private stage's own error.
        let levels = vec![
            PrivacyLevel::new(0.4f64).unwrap(),
            PrivacyLevel::new(0.5f64).unwrap(),
            PrivacyLevel::new(0.6f64).unwrap(),
            PrivacyLevel::new(0.7f64).unwrap(),
        ];
        let release = MultiLevelRelease::new(10, levels).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let correlated = collusion_experiment(&release, 5, 6_000, true, &mut rng).unwrap();
        let naive = collusion_experiment(&release, 5, 6_000, false, &mut rng).unwrap();
        // The naive coalition de-noises better than the correlated coalition.
        assert!(
            naive.coalition_mean_abs_error < correlated.coalition_mean_abs_error,
            "naive {:?} vs correlated {:?}",
            naive,
            correlated
        );
        // And under correlation the coalition is no better (up to noise) than
        // the least-private stage alone.
        assert!(
            correlated.coalition_mean_abs_error + 0.05 >= correlated.least_private_mean_abs_error
        );
    }
}
