//! # privmech-core
//!
//! A from-scratch Rust implementation of *Universally Optimal Privacy
//! Mechanisms for Minimax Agents* (Gupte & Sundararajan, PODS 2010).
//!
//! The crate models oblivious differentially-private mechanisms for count
//! queries as row-stochastic matrices and provides:
//!
//! * the **geometric mechanism** (unbounded and range-restricted forms,
//!   Definitions 1 and 4) plus baseline mechanisms for comparison,
//! * **minimax and Bayesian information consumers** with monotone loss
//!   functions and side information (Sections 2.3 and 2.7),
//! * the consumer's **optimal interaction** LP (Section 2.4.3) and the
//!   consumer-tailored **optimal mechanism** LP (Section 2.5),
//! * the **Theorem 2 characterization** of mechanisms derivable from the
//!   geometric mechanism, with explicit post-processing factorizations,
//! * **Algorithm 1**: correlated, collusion-resistant release of a query
//!   result at multiple privacy levels (Lemmas 3–4), and
//! * sampling / Monte-Carlo utilities and structural audits.
//!
//! The headline result (Theorem 1) — deploying the geometric mechanism and
//! letting each rational minimax consumer post-process achieves, for *every*
//! consumer simultaneously, the utility of the mechanism tailored to it — is
//! directly checkable with this API:
//!
//! ```
//! use std::sync::Arc;
//! use privmech_core::{
//!     geometric_mechanism, optimal_interaction, optimal_mechanism,
//!     AbsoluteError, MinimaxConsumer, PrivacyLevel, SideInformation,
//! };
//! use privmech_numerics::{rat, Rational};
//!
//! let level = PrivacyLevel::new(rat(1, 4)).unwrap();
//! let consumer = MinimaxConsumer::<Rational>::new(
//!     "government",
//!     Arc::new(AbsoluteError),
//!     SideInformation::full(3),
//! ).unwrap();
//!
//! // Deploy the geometric mechanism without knowing the consumer...
//! let geometric = geometric_mechanism(3, &level).unwrap();
//! let interaction = optimal_interaction(&geometric, &consumer).unwrap();
//! // ...and the consumer still reaches the loss of its tailored optimum.
//! let tailored = optimal_mechanism(&level, &consumer).unwrap();
//! assert_eq!(interaction.loss, tailored.loss);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod baselines;
pub mod consumer;
pub mod derivability;
pub mod error;
pub mod geometric;
pub mod interaction;
pub mod loss;
pub mod mechanism;
pub mod multilevel;
pub mod optimal;
pub mod sampling;
pub mod verify;

pub use alpha::PrivacyLevel;
pub use baselines::{randomized_response, truncated_geometric, uniform_mixture};
pub use consumer::{BayesianConsumer, MinimaxConsumer, SideInformation};
pub use derivability::{
    appendix_b_mechanism, derive_from_geometric, derive_post_processing, theorem2_check,
    DerivabilityCheck,
};
pub use error::{CoreError, Result};
pub use geometric::{
    g_prime_matrix, geometric_matrix, geometric_mechanism, lemma1_determinant,
    range_restricted_pmf, sample_geometric_output, sample_two_sided_geometric,
    table1b_scaled_geometric, two_sided_geometric_pmf,
};
pub use interaction::{bayesian_optimal_interaction, optimal_interaction, Interaction};
pub use loss::{
    tabulate_loss, validate_monotone, AbsoluteError, LossFunction, SquaredError, TableLoss,
    ToleranceError, ZeroOneError,
};
pub use mechanism::Mechanism;
pub use multilevel::{transition_matrix, MultiLevelRelease, StageRelease};
pub use optimal::{optimal_mechanism, OptimalMechanism};
pub use sampling::{
    collusion_experiment, empirical_distribution, total_variation_distance, CollusionSummary,
};
pub use verify::{audit_mechanism, MechanismAudit};
