//! # privmech-core
//!
//! A from-scratch Rust implementation of *Universally Optimal Privacy
//! Mechanisms for Minimax Agents* (Gupte & Sundararajan, PODS 2010).
//!
//! The crate models oblivious differentially-private mechanisms for count
//! queries as row-stochastic matrices and provides:
//!
//! * the **geometric mechanism** (unbounded and range-restricted forms,
//!   Definitions 1 and 4) plus baseline mechanisms for comparison,
//! * **minimax and Bayesian information consumers** with monotone loss
//!   functions and side information (Sections 2.3 and 2.7),
//! * the consumer's **optimal interaction** LP (Section 2.4.3) and the
//!   consumer-tailored **optimal mechanism** LP (Section 2.5),
//! * the **Theorem 2 characterization** of mechanisms derivable from the
//!   geometric mechanism, with explicit post-processing factorizations,
//! * **Algorithm 1**: correlated, collusion-resistant release of a query
//!   result at multiple privacy levels (Lemmas 3–4), and
//! * sampling / Monte-Carlo utilities and structural audits.
//!
//! The primary entry point is the session-oriented [`engine::PrivacyEngine`]:
//! describe a consumer and privacy level as a typed [`engine::SolveRequest`],
//! then `solve` it (or `sweep` a whole batch of α values in parallel). The
//! headline result (Theorem 1) — deploying the geometric mechanism and
//! letting each rational minimax consumer post-process achieves, for *every*
//! consumer simultaneously, the utility of the mechanism tailored to it — is
//! directly checkable with this API:
//!
//! ```
//! use std::sync::Arc;
//! use privmech_core::{AbsoluteError, PrivacyEngine, SolveRequest};
//! use privmech_numerics::{rat, Rational};
//!
//! let engine = PrivacyEngine::new();
//! let request = SolveRequest::<Rational>::minimax()
//!     .name("government")
//!     .loss(Arc::new(AbsoluteError))
//!     .support(3, 0..=3)
//!     .privacy_level(rat(1, 4))
//!     .validate()
//!     .unwrap();
//!
//! // Deploy the geometric mechanism without knowing the consumer...
//! let geometric = engine.geometric(3, request.level()).unwrap();
//! let interaction = engine.interact(&geometric, &request).unwrap();
//! // ...and the consumer still reaches the loss of its tailored optimum.
//! let tailored = engine.solve(&request).unwrap();
//! assert_eq!(interaction.loss, tailored.loss);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alpha;
pub mod baselines;
pub mod consumer;
pub mod derivability;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod geometric;
pub mod interaction;
pub mod loss;
pub mod mechanism;
pub mod multilevel;
pub mod optimal;
pub mod sampling;
#[cfg(test)]
pub(crate) mod seed_compat;
pub mod verify;

pub use alpha::PrivacyLevel;
pub use baselines::{randomized_response, truncated_geometric, uniform_mixture};
pub use consumer::{BayesianConsumer, MinimaxConsumer, SideInformation};
pub use derivability::{
    appendix_b_mechanism, derive_from_geometric, derive_post_processing, theorem2_check,
    DerivabilityCheck,
};
pub use engine::{
    ConsumerKind, PrivacyEngine, RequestConsumer, Solve, SolveRequest, SolveStrategy,
    ValidatedRequest,
};
pub use error::{CoreError, Result};
pub use fingerprint::RequestFingerprint;
pub use geometric::{
    g_prime_matrix, geometric_matrix, geometric_mechanism, lemma1_determinant,
    range_restricted_pmf, sample_geometric_output, sample_two_sided_geometric,
    table1b_scaled_geometric, two_sided_geometric_pmf,
};
pub use interaction::Interaction;
pub use loss::{
    tabulate_loss, validate_monotone, AbsoluteError, LossFunction, SquaredError, TableLoss,
    ToleranceError, ZeroOneError,
};
pub use mechanism::{expected_row_loss, worst_case_loss, Mechanism};
pub use multilevel::{transition_matrix, MultiLevelRelease, StageRelease};
// Solver knobs, re-exported so engine users need not depend on privmech-lp.
pub use privmech_lp::{PivotStats, PricingRule, SolverForm, SolverOptions};
pub use sampling::{
    collusion_experiment, empirical_distribution, total_variation_distance, CollusionSummary,
};
pub use verify::{audit_mechanism, MechanismAudit};
