//! Information consumers: minimax (Section 2.3) and Bayesian (Section 2.7).
//!
//! A consumer owns a loss function and either a side-information set
//! `S ⊆ {0, …, n}` (minimax) or a prior over `{0, …, n}` (Bayesian), and
//! evaluates a mechanism by its worst-case (respectively expected) loss.

use std::sync::Arc;

use privmech_linalg::Scalar;

use crate::error::{CoreError, Result};
use crate::loss::{validate_monotone, LossFunction};
use crate::mechanism::Mechanism;

/// Side information `S ⊆ {0, …, n}`: the set of query results the consumer
/// considers possible (Section 2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideInformation {
    n: usize,
    members: Vec<usize>,
}

impl SideInformation {
    /// Build from an explicit set of possible results; the set is sorted and
    /// de-duplicated.
    pub fn new(n: usize, members: impl IntoIterator<Item = usize>) -> Result<Self> {
        let mut members: Vec<usize> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return Err(CoreError::InvalidSideInformation {
                reason: "side information set must be non-empty".to_string(),
            });
        }
        if let Some(&max) = members.last() {
            if max > n {
                return Err(CoreError::InvalidSideInformation {
                    reason: format!("result {max} outside the query range 0..={n}"),
                });
            }
        }
        Ok(SideInformation { n, members })
    }

    /// The trivial side information "anything is possible": `S = {0, …, n}`.
    pub fn full(n: usize) -> Self {
        SideInformation {
            n,
            members: (0..=n).collect(),
        }
    }

    /// An interval `{lo, …, hi}` — e.g. the drug company of Example 1 that
    /// knows at least `lo` people bought its drug.
    pub fn interval(n: usize, lo: usize, hi: usize) -> Result<Self> {
        if lo > hi {
            return Err(CoreError::InvalidSideInformation {
                reason: format!("empty interval {lo}..={hi}"),
            });
        }
        SideInformation::new(n, lo..=hi)
    }

    /// A lower bound: `S = {lo, …, n}`.
    pub fn at_least(n: usize, lo: usize) -> Result<Self> {
        SideInformation::interval(n, lo, n)
    }

    /// An upper bound: `S = {0, …, hi}`.
    pub fn at_most(n: usize, hi: usize) -> Result<Self> {
        SideInformation::interval(n, 0, hi)
    }

    /// The query-range bound `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The members of `S`, sorted ascending.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether a result is considered possible.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        self.members.binary_search(&i).is_ok()
    }
}

/// A minimax (risk-averse) information consumer: a monotone loss function plus
/// side information. Its dis-utility for a mechanism is the worst-case
/// expected loss over `S` (Equation 1).
#[derive(Clone)]
pub struct MinimaxConsumer<T: Scalar> {
    loss: Arc<dyn LossFunction<T> + Send + Sync>,
    side_information: SideInformation,
    name: String,
}

impl<T: Scalar> std::fmt::Debug for MinimaxConsumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MinimaxConsumer")
            .field("name", &self.name)
            .field("loss", &self.loss.name())
            .field("side_information", &self.side_information)
            .finish()
    }
}

impl<T: Scalar> MinimaxConsumer<T> {
    /// Build a consumer, validating that the loss is monotone in `|i - r|`
    /// over the relevant domain.
    pub fn new(
        name: impl Into<String>,
        loss: Arc<dyn LossFunction<T> + Send + Sync>,
        side_information: SideInformation,
    ) -> Result<Self> {
        validate_monotone(side_information.n(), loss.as_ref())?;
        Ok(MinimaxConsumer {
            loss,
            side_information,
            name: name.into(),
        })
    }

    /// The consumer's name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The consumer's loss function.
    #[must_use]
    pub fn loss(&self) -> &(dyn LossFunction<T> + Send + Sync) {
        self.loss.as_ref()
    }

    /// The consumer's side information.
    #[must_use]
    pub fn side_information(&self) -> &SideInformation {
        &self.side_information
    }

    /// The dis-utility `L(x) = max_{i∈S} Σ_r l(i, r)·x[i][r]` (Equation 1).
    pub fn disutility(&self, mechanism: &Mechanism<T>) -> Result<T> {
        if mechanism.n() != self.side_information.n() {
            return Err(CoreError::InvalidSideInformation {
                reason: format!(
                    "consumer is defined for n = {}, mechanism has n = {}",
                    self.side_information.n(),
                    mechanism.n()
                ),
            });
        }
        mechanism.minimax_loss(self.side_information.members(), self.loss.as_ref())
    }
}

/// A Bayesian information consumer (the model of Ghosh et al. discussed in
/// Section 2.7): a prior over `{0, …, n}` plus a loss function; dis-utility is
/// the prior-expected loss.
#[derive(Clone)]
pub struct BayesianConsumer<T: Scalar> {
    loss: Arc<dyn LossFunction<T> + Send + Sync>,
    prior: Vec<T>,
    name: String,
}

impl<T: Scalar> std::fmt::Debug for BayesianConsumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesianConsumer")
            .field("name", &self.name)
            .field("loss", &self.loss.name())
            .field("prior_len", &self.prior.len())
            .finish()
    }
}

impl<T: Scalar> BayesianConsumer<T> {
    /// Build a Bayesian consumer from a prior over `{0, …, n}` (length `n+1`,
    /// non-negative, summing to one).
    pub fn new(
        name: impl Into<String>,
        loss: Arc<dyn LossFunction<T> + Send + Sync>,
        prior: Vec<T>,
    ) -> Result<Self> {
        if prior.is_empty() {
            return Err(CoreError::InvalidPrior {
                reason: "prior must be non-empty".to_string(),
            });
        }
        let mut total = T::zero();
        for (i, p) in prior.iter().enumerate() {
            if p.is_negative_approx() {
                return Err(CoreError::InvalidPrior {
                    reason: format!("prior[{i}] = {p} is negative"),
                });
            }
            total = total + p.clone();
        }
        if !total.approx_eq(&T::one()) {
            return Err(CoreError::InvalidPrior {
                reason: format!("prior sums to {total}, expected 1"),
            });
        }
        validate_monotone(prior.len() - 1, loss.as_ref())?;
        Ok(BayesianConsumer {
            loss,
            prior,
            name: name.into(),
        })
    }

    /// A uniform prior over `{0, …, n}`.
    pub fn uniform(
        name: impl Into<String>,
        loss: Arc<dyn LossFunction<T> + Send + Sync>,
        n: usize,
    ) -> Result<Self> {
        let p = T::one() / T::from_i64((n + 1) as i64);
        BayesianConsumer::new(name, loss, vec![p; n + 1])
    }

    /// The consumer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The prior over `{0, …, n}`.
    #[must_use]
    pub fn prior(&self) -> &[T] {
        &self.prior
    }

    /// The consumer's loss function.
    #[must_use]
    pub fn loss(&self) -> &(dyn LossFunction<T> + Send + Sync) {
        self.loss.as_ref()
    }

    /// The query-range bound `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.prior.len() - 1
    }

    /// The Bayesian dis-utility `Σ_i prior[i] Σ_r l(i, r)·x[i][r]`.
    pub fn disutility(&self, mechanism: &Mechanism<T>) -> Result<T> {
        mechanism.bayesian_loss(&self.prior, self.loss.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{AbsoluteError, SquaredError};
    use crate::mechanism::Mechanism;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn side_information_constructors() {
        let s = SideInformation::new(5, vec![3, 1, 3, 5]).unwrap();
        assert_eq!(s.members(), &[1, 3, 5]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.n(), 5);
        assert_eq!(SideInformation::full(3).members(), &[0, 1, 2, 3]);
        assert_eq!(
            SideInformation::interval(5, 2, 4).unwrap().members(),
            &[2, 3, 4]
        );
        assert_eq!(SideInformation::at_least(5, 4).unwrap().members(), &[4, 5]);
        assert_eq!(SideInformation::at_most(5, 1).unwrap().members(), &[0, 1]);
        assert!(SideInformation::new(5, Vec::<usize>::new()).is_err());
        assert!(SideInformation::new(5, vec![6]).is_err());
        assert!(SideInformation::interval(5, 4, 2).is_err());
    }

    #[test]
    fn minimax_consumer_disutility() {
        let consumer = MinimaxConsumer::new(
            "government",
            Arc::new(AbsoluteError),
            SideInformation::full(2),
        )
        .unwrap();
        let m: Mechanism<Rational> = Mechanism::uniform(2);
        // Uniform over {0,1,2}: worst input is 0 or 2 with expected |err| = 1.
        assert_eq!(consumer.disutility(&m).unwrap(), rat(1, 1));
        assert_eq!(consumer.name(), "government");
        assert_eq!(consumer.loss().name(), "absolute");
        assert_eq!(consumer.side_information().n(), 2);
        // Mismatched n is rejected.
        let m5: Mechanism<Rational> = Mechanism::uniform(5);
        assert!(consumer.disutility(&m5).is_err());
    }

    #[test]
    fn minimax_consumer_with_restricted_side_information() {
        let consumer = MinimaxConsumer::new(
            "drug-company",
            Arc::new(SquaredError),
            SideInformation::at_least(2, 1).unwrap(),
        )
        .unwrap();
        let m: Mechanism<Rational> = Mechanism::uniform(2);
        // S = {1, 2}: expected squared error at 1 is (1+0+1)/3 = 2/3, at 2 is
        // (4+1+0)/3 = 5/3; worst case 5/3.
        assert_eq!(consumer.disutility(&m).unwrap(), rat(5, 3));
    }

    #[test]
    fn bayesian_consumer_validation_and_disutility() {
        let uniform = BayesianConsumer::uniform("analyst", Arc::new(AbsoluteError), 2).unwrap();
        assert_eq!(uniform.n(), 2);
        assert_eq!(uniform.prior().len(), 3);
        let m: Mechanism<Rational> = Mechanism::uniform(2);
        // Expected |err| with uniform prior and uniform mechanism:
        // rows 0 and 2 contribute 1 each, row 1 contributes 2/3; average 8/9.
        assert_eq!(uniform.disutility(&m).unwrap(), rat(8, 9));

        assert!(BayesianConsumer::<Rational>::new("bad", Arc::new(AbsoluteError), vec![]).is_err());
        assert!(
            BayesianConsumer::new("bad", Arc::new(AbsoluteError), vec![rat(1, 2), rat(1, 4)])
                .is_err()
        );
        assert!(
            BayesianConsumer::new("bad", Arc::new(AbsoluteError), vec![rat(3, 2), rat(-1, 2)])
                .is_err()
        );
    }

    #[test]
    fn debug_formats_do_not_leak_internals() {
        let c = MinimaxConsumer::<Rational>::new(
            "gov",
            Arc::new(AbsoluteError),
            SideInformation::full(2),
        )
        .unwrap();
        let s = format!("{c:?}");
        assert!(s.contains("gov") && s.contains("absolute"));
        let b = BayesianConsumer::<Rational>::uniform("b", Arc::new(AbsoluteError), 2).unwrap();
        assert!(format!("{b:?}").contains("prior_len"));
    }
}
