//! Consumer interaction with a deployed mechanism (Section 2.4).
//!
//! A rational consumer does not take the released value at face value: it
//! reinterprets each possible output `r` as a (possibly random) output `r'`,
//! described by a row-stochastic matrix `T`, inducing the mechanism `y·T`
//! (Definition 3). The *optimal interaction* minimizes the consumer's
//! worst-case loss and is the solution of the linear program of
//! Section 2.4.3. Bayesian consumers (Section 2.7) need only deterministic
//! reinterpretations, which this module computes directly without an LP.

use privmech_linalg::{Matrix, Scalar};
use privmech_lp::{LinExpr, Model, PivotStats, Relation, SolverOptions, Var};

use crate::consumer::{BayesianConsumer, MinimaxConsumer};
use crate::error::{CoreError, Result};
use crate::mechanism::Mechanism;

/// The outcome of a consumer's optimal interaction with a deployed mechanism.
#[derive(Debug, Clone)]
pub struct Interaction<T: Scalar> {
    /// The optimal post-processing (reinterpretation) matrix `T*`.
    pub post_processing: Matrix<T>,
    /// The induced mechanism `y · T*`.
    pub induced: Mechanism<T>,
    /// The loss achieved by the induced mechanism under the consumer's
    /// objective (worst-case for minimax, expected for Bayesian).
    pub loss: T,
    /// Simplex pivot statistics from the underlying LP solve (all zeros for
    /// the Bayesian interaction, which needs no LP).
    pub lp_stats: PivotStats,
}

/// The Section 2.4.3 interaction LP as a reusable structure.
///
/// Variables `T[r][r']` and the unit-row-sum constraints never change; only
/// the epigraph rows do (their coefficients are products `y[i][r]·l(i,r')` of
/// the deployed mechanism and the loss). [`InteractionLp::reparameterize`]
/// therefore swaps just those rows via
/// [`Model::replace_constraint_expr`], which is how a Theorem-1 α-sweep
/// reuses one model across all privacy levels.
#[derive(Debug, Clone)]
pub(crate) struct InteractionLp<T: Scalar> {
    model: Model<T>,
    t_vars: Vec<Vec<Var>>,
    /// Constraint indices of the epigraph rows, in side-information member
    /// order (they directly follow the `size` row-sum constraints).
    epigraph_rows: Vec<usize>,
    /// The consumer the LP was built for. Stored (a cheap `Arc`-based clone)
    /// so re-parameterizations cannot accidentally mix in a different
    /// consumer's loss or side information.
    consumer: MinimaxConsumer<T>,
    /// Loss table `l(i, r')`, tabulated once at build time (it depends only
    /// on the consumer, not on the deployed mechanism, so α-sweeps reuse it).
    losses: Matrix<T>,
    d: Var,
    size: usize,
}

/// The raw epigraph expressions `Σ_{r,r'} y[i][r]·l(i,r')·t[r][r']`, one per
/// member of `S`. Shared by the initial build and every re-parameterization
/// so both produce term-for-term identical rows.
#[allow(clippy::needless_range_loop)] // index-coupled access into t_vars[r][r']
fn epigraph_exprs<T: Scalar>(
    deployed: &Mechanism<T>,
    consumer: &MinimaxConsumer<T>,
    t_vars: &[Vec<Var>],
    losses: &Matrix<T>,
) -> Result<Vec<LinExpr<T>>> {
    let size = deployed.size();
    // The objective coefficient of t[r][r'] in row i is y[i][r] · l(i, r'):
    // the losses come pre-tabulated per consumer and each coefficient is
    // produced by a single by-reference multiply instead of re-invoking the
    // dynamically dispatched loss function per (r, r') pair.
    let mut exprs = Vec::new();
    for &i in consumer.side_information().members() {
        let mut expr = LinExpr::new();
        let loss_row = losses.row(i);
        for r in 0..size {
            let y_ir = deployed.prob(i, r)?;
            if y_ir.is_zero_approx() {
                continue;
            }
            for (rp, cost) in loss_row.iter().enumerate() {
                expr.add_term(t_vars[r][rp], y_ir.mul_ref(cost));
            }
        }
        exprs.push(expr);
    }
    Ok(exprs)
}

fn check_dimensions<T: Scalar>(
    deployed: &Mechanism<T>,
    consumer: &MinimaxConsumer<T>,
) -> Result<()> {
    if deployed.n() != consumer.side_information().n() {
        return Err(CoreError::InvalidSideInformation {
            reason: format!(
                "consumer is defined for n = {}, mechanism has n = {}",
                consumer.side_information().n(),
                deployed.n()
            ),
        });
    }
    Ok(())
}

impl<T: Scalar> InteractionLp<T> {
    /// Build the interaction LP for a deployed mechanism and consumer.
    #[allow(clippy::needless_range_loop)] // index-coupled access into t_vars[r][r']
    pub(crate) fn build(deployed: &Mechanism<T>, consumer: &MinimaxConsumer<T>) -> Result<Self> {
        check_dimensions(deployed, consumer)?;
        let size = deployed.size();
        let mut model: Model<T> = Model::new();

        // t_vars[r][r'] = probability of reinterpreting r as r'.
        let mut t_vars = Vec::with_capacity(size);
        for r in 0..size {
            t_vars.push(model.add_nonneg_vars(&format!("t_{r}"), size));
        }

        // Each reinterpretation row is a probability distribution.
        for r in 0..size {
            let mut row_sum = LinExpr::new();
            for rp in 0..size {
                row_sum.add_term(t_vars[r][rp], T::one());
            }
            model.add_labeled_constraint(
                row_sum,
                Relation::Eq,
                T::one(),
                Some(format!("row_{r}")),
            )?;
        }

        // One epigraph expression per possible true result in S.
        let losses = crate::loss::tabulate_loss(consumer.loss(), size);
        let exprs = epigraph_exprs(deployed, consumer, &t_vars, &losses)?;
        let epigraph_rows: Vec<usize> = (0..exprs.len())
            .map(|k| model.num_constraints() + k)
            .collect();
        let d = model.minimize_max(exprs)?;

        Ok(InteractionLp {
            model,
            t_vars,
            epigraph_rows,
            consumer: consumer.clone(),
            losses,
            d,
            size,
        })
    }

    /// Swap the epigraph rows for a new deployed mechanism of the same
    /// dimensions, leaving variables, row-sum constraints and objective
    /// untouched. Produces exactly the model [`InteractionLp::build`] would
    /// build for the new mechanism and the build-time consumer.
    pub(crate) fn reparameterize(&mut self, deployed: &Mechanism<T>) -> Result<()> {
        // Same variant family as build's check_dimensions: the mismatch is
        // between the consumer the template was built for and the mechanism.
        if deployed.size() != self.size {
            return Err(CoreError::InvalidSideInformation {
                reason: format!(
                    "template was built for a consumer with n = {}, mechanism has n = {}",
                    self.size - 1,
                    deployed.n()
                ),
            });
        }
        let exprs = epigraph_exprs(deployed, &self.consumer, &self.t_vars, &self.losses)?;
        for (row, expr) in self.epigraph_rows.iter().zip(exprs) {
            // The same epigraph transformation minimize_max applied at build
            // time (d - expr >= constant), via the shared LinExpr helper so
            // the two paths can never diverge.
            let (lhs, rhs) = expr.epigraph_row(self.d);
            self.model
                .replace_constraint_expr(*row, lhs)
                .map_err(CoreError::from)?;
            self.model
                .set_constraint_rhs(*row, rhs)
                .map_err(CoreError::from)?;
        }
        Ok(())
    }

    /// Solve and package the result against the deployed mechanism used to
    /// build (or most recently re-parameterize) the model.
    pub(crate) fn solve(
        &self,
        deployed: &Mechanism<T>,
        options: &SolverOptions,
    ) -> Result<Interaction<T>> {
        let solution = self.model.solve_with(options).map_err(CoreError::from)?;
        let post_raw = Matrix::from_fn(self.size, self.size, |r, rp| {
            solution.value(self.t_vars[r][rp]).clone()
        });
        // Clamp tiny negative float noise and renormalize rows so the
        // post-processing matrix is exactly stochastic even with the f64
        // backend.
        let post = Mechanism::from_matrix_normalized(post_raw)?.into_matrix();
        let induced = deployed.post_process(&post)?;
        let achieved = self.consumer.disutility(&induced)?;
        Ok(Interaction {
            post_processing: post,
            induced,
            loss: achieved,
            lp_stats: solution.stats,
        })
    }
}

/// Shared implementation of the Bayesian posterior-argmin remap behind
/// [`PrivacyEngine::interact`](crate::engine::PrivacyEngine::interact): for
/// each observed output `r`, deterministically remap it to the output `r'`
/// minimizing the posterior-expected loss `Σ_i prior[i]·y[i][r]·l(i, r')`.
/// The post-processing matrix is 0/1 — Bayesian consumers never need
/// randomized reinterpretation, in contrast with minimax consumers
/// (Table 1(c) of the paper).
#[allow(clippy::needless_range_loop)] // i indexes prior, mechanism rows and losses together
pub(crate) fn bayesian_interaction_impl<T: Scalar>(
    deployed: &Mechanism<T>,
    consumer: &BayesianConsumer<T>,
) -> Result<Interaction<T>> {
    if deployed.n() != consumer.n() {
        return Err(CoreError::InvalidPrior {
            reason: format!(
                "consumer is defined for n = {}, mechanism has n = {}",
                consumer.n(),
                deployed.n()
            ),
        });
    }
    let size = deployed.size();
    let prior = consumer.prior();
    let loss = consumer.loss();

    let mut best_targets = Vec::with_capacity(size);
    for r in 0..size {
        let mut best: Option<(usize, T)> = None;
        for rp in 0..size {
            let mut score = T::zero();
            for i in 0..size {
                let weight = prior[i].clone() * deployed.prob(i, r)?.clone();
                if weight.is_zero_approx() {
                    continue;
                }
                score = score + weight * loss.loss(i, rp);
            }
            match &best {
                None => best = Some((rp, score)),
                Some((_, b)) if score < *b => best = Some((rp, score)),
                _ => {}
            }
        }
        best_targets.push(best.expect("non-empty output domain").0);
    }

    let post = Matrix::from_fn(size, size, |r, rp| {
        if best_targets[r] == rp {
            T::one()
        } else {
            T::zero()
        }
    });
    let induced = deployed.post_process(&post)?;
    let achieved = consumer.disutility(&induced)?;
    Ok(Interaction {
        post_processing: post,
        induced,
        loss: achieved,
        lp_stats: PivotStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::alpha::PrivacyLevel;
    use crate::consumer::SideInformation;
    use crate::geometric::geometric_mechanism;
    use crate::loss::{AbsoluteError, ZeroOneError};
    // The seed recipe in one place, shared with optimal.rs's tests so the
    // bit-identity anchors cannot drift apart.
    use crate::seed_compat::{bayesian_optimal_interaction, optimal_interaction};
    use privmech_numerics::{rat, Rational};

    #[test]
    fn interaction_never_hurts() {
        // Optimal post-processing can only improve (or keep) the consumer's loss.
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let g = geometric_mechanism(4, &level).unwrap();
        let consumer =
            MinimaxConsumer::new("gov", Arc::new(AbsoluteError), SideInformation::full(4)).unwrap();
        let raw = consumer.disutility(&g).unwrap();
        let interaction = optimal_interaction(&g, &consumer).unwrap();
        assert!(interaction.loss <= raw);
        assert!(interaction.post_processing.is_row_stochastic());
        assert_eq!(interaction.induced.n(), 4);
    }

    #[test]
    fn side_information_truncates_outputs() {
        // Example 1 of the paper: a consumer who knows the result is at least
        // l should never keep an output below l. With S = {2,...,4} and
        // absolute loss, the induced mechanism must put zero mass below 2 on
        // every input in S.
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let g = geometric_mechanism(4, &level).unwrap();
        let consumer = MinimaxConsumer::new(
            "drug-company",
            Arc::new(AbsoluteError),
            SideInformation::at_least(4, 2).unwrap(),
        )
        .unwrap();
        let interaction = optimal_interaction(&g, &consumer).unwrap();
        for &i in consumer.side_information().members() {
            for r in 0..2 {
                assert!(
                    interaction.induced.prob(i, r).unwrap().is_zero_approx(),
                    "mass below the known lower bound at ({i}, {r})"
                );
            }
        }
        // And the loss is strictly better than accepting the raw output.
        let raw = g
            .minimax_loss(consumer.side_information().members(), consumer.loss())
            .unwrap();
        assert!(interaction.loss < raw);
    }

    #[test]
    fn reproduces_paper_table1c_interaction() {
        // Table 1(c): the paper prints the consumer interaction
        //   [9/11 2/11 0 0; 0 1 0 0; 0 0 1 0; 0 0 2/11 9/11]
        // for the consumer with l(i,r) = |i-r|, S = {0,1,2,3}, n = 3, α = 1/4.
        // The paper's printed fractions are rounded (Table 1(a)'s rows do not
        // even sum to one), so we assert that our exact LP optimum is at least
        // as good as the loss achieved by the paper's printed interaction and
        // within 1% of it.
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let g = geometric_mechanism(3, &level).unwrap();
        let consumer = MinimaxConsumer::new(
            "paper-consumer",
            Arc::new(AbsoluteError),
            SideInformation::full(3),
        )
        .unwrap();
        let interaction = optimal_interaction(&g, &consumer).unwrap();

        let paper_t = Matrix::from_rows(vec![
            vec![rat(9, 11), rat(2, 11), rat(0, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1), rat(0, 1)],
            vec![rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(0, 1), rat(2, 11), rat(9, 11)],
        ])
        .unwrap();
        let paper_induced = g.post_process(&paper_t).unwrap();
        let paper_loss = consumer.disutility(&paper_induced).unwrap();
        // Paper's printed interaction achieves 357/880; the exact optimum is
        // 168/415, slightly better.
        assert_eq!(paper_loss, rat(357, 880));
        assert_eq!(interaction.loss, rat(168, 415));
        assert!(interaction.loss <= paper_loss);
        let gap = (paper_loss.clone() - interaction.loss.clone()) / paper_loss;
        assert!(gap < rat(1, 100), "gap {gap} should be below 1%");
    }

    #[test]
    fn bayesian_interaction_is_deterministic() {
        let level = PrivacyLevel::new(rat(1, 4)).unwrap();
        let g = geometric_mechanism(3, &level).unwrap();
        let consumer = BayesianConsumer::uniform("analyst", Arc::new(AbsoluteError), 3).unwrap();
        let interaction = bayesian_optimal_interaction(&g, &consumer).unwrap();
        // Every row of the post-processing matrix is a point mass.
        for r in 0..4 {
            let ones = (0..4)
                .filter(|&rp| interaction.post_processing[(r, rp)] == Rational::one())
                .count();
            let zeros = (0..4)
                .filter(|&rp| interaction.post_processing[(r, rp)] == Rational::zero())
                .count();
            assert_eq!(ones, 1);
            assert_eq!(zeros, 3);
        }
        // Post-processing cannot hurt the Bayesian objective either.
        assert!(interaction.loss <= consumer.disutility(&g).unwrap());
    }

    #[test]
    fn bayesian_point_prior_maps_everything_to_the_known_answer() {
        // A consumer certain the answer is 2 maps every output to 2 and
        // achieves zero loss.
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let g = geometric_mechanism(3, &level).unwrap();
        let prior = vec![
            Rational::zero(),
            Rational::zero(),
            Rational::one(),
            Rational::zero(),
        ];
        let consumer = BayesianConsumer::new("certain", Arc::new(ZeroOneError), prior).unwrap();
        let interaction = bayesian_optimal_interaction(&g, &consumer).unwrap();
        assert_eq!(interaction.loss, Rational::zero());
        for r in 0..4 {
            assert_eq!(interaction.post_processing[(r, 2)], Rational::one());
        }
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let level = PrivacyLevel::new(rat(1, 3)).unwrap();
        let g = geometric_mechanism(3, &level).unwrap();
        let consumer = MinimaxConsumer::<Rational>::new(
            "gov",
            Arc::new(AbsoluteError),
            SideInformation::full(5),
        )
        .unwrap();
        assert!(optimal_interaction(&g, &consumer).is_err());
        let bayes = BayesianConsumer::<Rational>::uniform("b", Arc::new(AbsoluteError), 5).unwrap();
        assert!(bayesian_optimal_interaction(&g, &bayes).is_err());
    }
}
