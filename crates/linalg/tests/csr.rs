//! CSR invariant tests: the structural guarantees every [`Csr`] constructor
//! must uphold (sorted column indices, monotone row pointers, no stored
//! explicit zeros) and the dense ↔ CSR round-trip identity on random
//! matrices — including empty rows/columns and the 1×1 edge.

use privmech_linalg::sparse::Csr;
use privmech_numerics::Rational;
use proptest::prelude::*;

/// Random sparse dense-row matrices: each cell is zero with probability ~2/3
/// so empty rows and empty columns occur regularly.
fn arb_dense(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<Rational>>)> {
    // Generate a max-size grid plus the actual dimensions, then truncate:
    // the vendored proptest shim has no `prop_flat_map`.
    (
        1..=max_rows,
        1..=max_cols,
        prop::collection::vec(
            prop::collection::vec((-6i64..=6, 1i64..=4), max_cols),
            max_rows,
        ),
    )
        .prop_map(|(m, n, cells)| {
            let rows = cells[..m]
                .iter()
                .map(|row| {
                    row[..n]
                        .iter()
                        .map(|&(num, den)| {
                            // Map |num| <= 2 to an exact zero: ~1/3 density.
                            if num.abs() <= 2 {
                                Rational::zero()
                            } else {
                                Rational::from_ratio(num, den)
                            }
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>();
            (n, rows)
        })
}

/// Assert every structural invariant directly (independent re-statement of
/// `check_invariants`, so a bug there cannot mask a layout bug).
fn assert_invariants(csr: &Csr<Rational>) {
    csr.check_invariants().expect("invariants must hold");
    let ptr = csr.row_ptr();
    assert_eq!(ptr.len(), csr.num_rows() + 1);
    assert_eq!(ptr[0], 0);
    assert_eq!(*ptr.last().unwrap(), csr.nnz());
    // Monotone row pointers, strictly increasing across non-empty rows.
    for w in ptr.windows(2) {
        assert!(w[0] <= w[1]);
    }
    for i in 0..csr.num_rows() {
        let strictly_increased = ptr[i] < ptr[i + 1];
        assert_eq!(strictly_increased, !csr.row(i).is_empty());
        // Column indices strictly increasing within the row, in bounds.
        let cols = csr.row(i).indices();
        for w in cols.windows(2) {
            assert!(w[0] < w[1], "row {i}: columns must strictly increase");
        }
        for &c in cols {
            assert!(c < csr.num_cols());
        }
    }
    // No stored explicit zeros.
    for v in csr.csr_values() {
        assert!(!v.is_zero(), "stored values must be exactly nonzero");
    }
    assert_eq!(csr.col_indices().len(), csr.csr_values().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_roundtrip_is_identity((n, dense) in arb_dense(8, 8)) {
        let csr = Csr::from_dense(n, &dense);
        assert_invariants(&csr);
        prop_assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn transpose_is_an_involution_and_preserves_invariants((n, dense) in arb_dense(7, 5)) {
        let csr = Csr::from_dense(n, &dense);
        let t = csr.transpose();
        assert_invariants(&t);
        prop_assert_eq!(t.num_rows(), csr.num_cols());
        prop_assert_eq!(t.num_cols(), csr.num_rows());
        prop_assert_eq!(t.nnz(), csr.nnz());
        prop_assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn from_rows_matches_from_dense((n, dense) in arb_dense(6, 6)) {
        // Present the same matrix as unsorted pair lists with split entries:
        // each nonzero cell arrives as two addends in reversed column order.
        let rows: Vec<Vec<(usize, Rational)>> = dense
            .iter()
            .map(|row| {
                let mut entries = Vec::new();
                for (j, v) in row.iter().enumerate().rev() {
                    if !v.is_zero() {
                        let half = v.clone() * Rational::from_ratio(1, 2);
                        entries.push((j, half.clone()));
                        entries.push((j, v.clone() - half));
                    }
                }
                entries
            })
            .collect();
        let built = Csr::from_rows(n, rows);
        assert_invariants(&built);
        prop_assert_eq!(built, Csr::from_dense(n, &dense));
    }
}

#[test]
fn one_by_one_edges() {
    let zero: Csr<Rational> = Csr::from_dense(1, &[vec![Rational::zero()]]);
    assert_eq!(zero.nnz(), 0);
    assert_eq!(zero.row_ptr(), &[0, 0]);
    assert!(zero.row(0).is_empty());
    assert_eq!(zero.to_dense(), vec![vec![Rational::zero()]]);

    let one: Csr<Rational> = Csr::from_dense(1, &[vec![Rational::from_int(7)]]);
    assert_eq!(one.nnz(), 1);
    assert_eq!(one.row_ptr(), &[0, 1]);
    assert_eq!(one.row(0).indices(), &[0]);
    assert_eq!(one.transpose(), one);
}

#[test]
fn empty_rows_and_columns_survive_the_roundtrip() {
    // Row 1 and column 2 are entirely empty.
    let dense = vec![
        vec![
            Rational::from_int(1),
            Rational::zero(),
            Rational::zero(),
            Rational::from_int(4),
        ],
        vec![
            Rational::zero(),
            Rational::zero(),
            Rational::zero(),
            Rational::zero(),
        ],
        vec![
            Rational::zero(),
            Rational::from_int(-2),
            Rational::zero(),
            Rational::zero(),
        ],
    ];
    let csr = Csr::from_dense(4, &dense);
    assert_eq!(csr.row_ptr(), &[0, 2, 2, 3]);
    assert!(csr.row(1).is_empty());
    assert_eq!(csr.to_dense(), dense);
    let t = csr.transpose();
    assert!(t.row(2).is_empty(), "empty column becomes empty row");
    assert_eq!(t.transpose(), csr);

    let empty: Csr<Rational> = Csr::empty(3, 5);
    empty.check_invariants().expect("empty matrix is valid");
    assert_eq!(empty.nnz(), 0);
    assert_eq!(empty.transpose().num_rows(), 5);
}

#[test]
fn from_rows_merges_duplicates_in_arrival_order_and_drops_zero_sums() {
    let half = Rational::from_ratio(1, 2);
    let rows = vec![
        // Column 3: 1/2 + 1/2 = 1. Column 0: 2 + (-2) = 0, dropped.
        vec![
            (3, half.clone()),
            (0, Rational::from_int(2)),
            (3, half),
            (0, Rational::from_int(-2)),
        ],
    ];
    let csr = Csr::from_rows(4, rows);
    csr.check_invariants().expect("invariants must hold");
    assert_eq!(csr.nnz(), 1);
    assert_eq!(csr.row(0).indices(), &[3]);
    assert_eq!(csr.row(0).values(), &[Rational::from_int(1)]);
}
