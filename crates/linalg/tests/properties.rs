//! Property-based tests for the dense matrix algebra used throughout the
//! mechanism library: associativity, inverse identities, determinant
//! multiplicativity, and consistency between exact and floating-point paths.

use privmech_linalg::Matrix;
use privmech_numerics::Rational;
use proptest::prelude::*;

/// Small random rational matrices with entries n/d, |n| <= 20, 1 <= d <= 9.
fn arb_rat_matrix(n: usize) -> impl Strategy<Value = Matrix<Rational>> {
    prop::collection::vec((-20i64..=20, 1i64..=9), n * n).prop_map(move |cells| {
        Matrix::from_fn(n, n, |i, j| {
            let (num, den) = cells[i * n + j];
            Rational::from_ratio(num, den)
        })
    })
}

/// Random row-stochastic matrices (rows normalized positive weights).
fn arb_stochastic_matrix(n: usize) -> impl Strategy<Value = Matrix<Rational>> {
    prop::collection::vec(1i64..=10, n * n).prop_map(move |weights| {
        Matrix::from_fn(n, n, |i, j| {
            let row_sum: i64 = weights[i * n..(i + 1) * n].iter().sum();
            Rational::from_ratio(weights[i * n + j], row_sum)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in arb_rat_matrix(3), b in arb_rat_matrix(3), c in arb_rat_matrix(3)) {
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn matmul_distributes_over_addition(a in arb_rat_matrix(3), b in arb_rat_matrix(3), c in arb_rat_matrix(3)) {
        let lhs = a.matmul(&(&b + &c)).unwrap();
        let rhs = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn determinant_is_multiplicative(a in arb_rat_matrix(3), b in arb_rat_matrix(3)) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).unwrap().determinant().unwrap();
        prop_assert_eq!(dab, da * db);
    }

    #[test]
    fn determinant_of_transpose_matches(a in arb_rat_matrix(4)) {
        prop_assert_eq!(a.determinant().unwrap(), a.transpose().determinant().unwrap());
    }

    #[test]
    fn inverse_is_two_sided(a in arb_rat_matrix(3)) {
        let det = a.determinant().unwrap();
        prop_assume!(!det.is_zero());
        let inv = a.inverse().unwrap();
        prop_assert_eq!(a.matmul(&inv).unwrap(), Matrix::identity(3));
        prop_assert_eq!(inv.matmul(&a).unwrap(), Matrix::identity(3));
    }

    #[test]
    fn solve_agrees_with_inverse(a in arb_rat_matrix(3), b in prop::collection::vec(-10i64..=10, 3)) {
        let det = a.determinant().unwrap();
        prop_assume!(!det.is_zero());
        let rhs: Vec<Rational> = b.iter().map(|&v| Rational::from_int(v)).collect();
        let x = a.solve(&rhs).unwrap();
        let via_inverse = a.inverse().unwrap().matvec(&rhs).unwrap();
        prop_assert_eq!(x.clone(), via_inverse);
        prop_assert_eq!(a.matvec(&x).unwrap(), rhs);
    }

    #[test]
    fn stochastic_matrices_closed_under_product(a in arb_stochastic_matrix(4), b in arb_stochastic_matrix(4)) {
        prop_assert!(a.is_row_stochastic());
        prop_assert!(b.is_row_stochastic());
        let product = a.matmul(&b).unwrap();
        prop_assert!(product.is_row_stochastic());
    }

    #[test]
    fn generalized_stochastic_inverse_stays_generalized(a in arb_stochastic_matrix(3)) {
        // Poole's stochastic group: non-singular generalized stochastic matrices
        // form a group, so the inverse has unit row sums (possibly negative entries).
        let det = a.determinant().unwrap();
        prop_assume!(!det.is_zero());
        let inv = a.inverse().unwrap();
        prop_assert!(inv.is_generalized_stochastic());
    }

    #[test]
    fn exact_and_f64_determinants_agree(a in arb_rat_matrix(4)) {
        let exact = a.determinant().unwrap().to_f64();
        let float = a.map(|v| v.to_f64()).determinant().unwrap();
        prop_assert!((exact - float).abs() <= 1e-6 * exact.abs().max(1.0));
    }

    #[test]
    fn scale_then_determinant_scales_by_power(a in arb_rat_matrix(3), k in 1i64..=5) {
        let factor = Rational::from_int(k);
        let scaled = a.scale(&factor);
        let expected = a.determinant().unwrap() * factor.pow(3);
        prop_assert_eq!(scaled.determinant().unwrap(), expected);
    }
}
