//! The [`Scalar`] abstraction: an ordered field that the matrix, simplex and
//! mechanism code can be written against once and instantiated with either
//! exact rationals (the source of truth for theorem-level verification) or
//! `f64` (for large sweeps and performance benchmarking).

use std::fmt::{Debug, Display};
use std::ops::{Add, Div, Mul, Neg, Sub};

use privmech_numerics::Rational;

/// An ordered field with enough structure to run Gaussian elimination and the
/// simplex method.
///
/// Implementations must satisfy the usual field axioms. The `tolerance`
/// associated function lets inexact implementations (`f64`) expose a pivoting
/// / feasibility tolerance, while exact implementations return zero so that
/// every comparison is exact.
pub trait Scalar:
    Clone
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embed a machine integer.
    fn from_i64(v: i64) -> Self;
    /// Embed the fraction `num / den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    fn from_ratio(num: i64, den: i64) -> Self;
    /// Embed a finite `f64` exactly — every finite binary float is a
    /// rational, so exact fields represent it without rounding. This is the
    /// bridge for exact-arithmetic rescue solves of float models.
    ///
    /// # Panics
    /// Panics if `v` is not finite.
    fn from_f64(v: f64) -> Self;
    /// Convert to `f64` (possibly lossy) for reporting.
    fn to_f64(&self) -> f64;
    /// Absolute value.
    fn abs(&self) -> Self;
    /// Comparison tolerance: zero for exact fields, a small positive value for
    /// floating point.
    fn tolerance() -> Self;
    /// Whether this scalar type is exact (comparisons are decidable equalities).
    fn is_exact() -> bool;

    /// True iff the value is exactly the additive identity.
    ///
    /// Unlike [`Scalar::is_zero_approx`] this carries **no tolerance**: for
    /// `f64` it is `== 0.0`. Sparsity masks (skipping entries in row
    /// kernels) must use this test — treating merely-small floating values
    /// as zero would leave sub-tolerance residue unsubtracted and let the
    /// tableau drift inconsistent over thousands of pivots.
    fn is_exactly_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// True iff `|self| <= tolerance`.
    fn is_zero_approx(&self) -> bool {
        self.abs() <= Self::tolerance()
    }
    /// True iff `self > tolerance`.
    fn is_positive_approx(&self) -> bool {
        *self > Self::tolerance()
    }
    /// True iff `self < -tolerance`.
    fn is_negative_approx(&self) -> bool {
        *self < -Self::tolerance()
    }

    // ------------------------------------------------------------------
    // By-reference arithmetic.
    //
    // The operator bounds above consume their operands, which forces generic
    // code into `a.clone() * b.clone()` pairs. For `f64` that is free; for
    // `Rational` every clone is one or two heap allocations, and the simplex
    // inner loop performs millions of these. Implementations backed by heap
    // data should override these with genuinely by-reference versions.
    // ------------------------------------------------------------------

    /// `self + rhs` without consuming either operand.
    fn add_ref(&self, rhs: &Self) -> Self {
        self.clone() + rhs.clone()
    }
    /// `self - rhs` without consuming either operand.
    fn sub_ref(&self, rhs: &Self) -> Self {
        self.clone() - rhs.clone()
    }
    /// `self * rhs` without consuming either operand.
    fn mul_ref(&self, rhs: &Self) -> Self {
        self.clone() * rhs.clone()
    }
    /// `self / rhs` without consuming either operand.
    fn div_ref(&self, rhs: &Self) -> Self {
        self.clone() / rhs.clone()
    }
    /// In-place `self += rhs`.
    fn add_assign_ref(&mut self, rhs: &Self) {
        *self = self.add_ref(rhs);
    }
    /// In-place `self -= rhs`.
    fn sub_assign_ref(&mut self, rhs: &Self) {
        *self = self.sub_ref(rhs);
    }
    /// In-place `self /= rhs`.
    fn div_assign_ref(&mut self, rhs: &Self) {
        *self = self.div_ref(rhs);
    }
    /// In-place fused update `self -= factor * x` — the Gaussian/simplex
    /// elimination kernel.
    fn sub_mul_assign(&mut self, factor: &Self, x: &Self) {
        *self = self.sub_ref(&factor.mul_ref(x));
    }
    /// In-place fused update `self += factor * x`.
    fn add_mul_assign(&mut self, factor: &Self, x: &Self) {
        *self = self.add_ref(&factor.mul_ref(x));
    }
    /// In-place negation.
    fn neg_assign(&mut self) {
        *self = -self.clone();
    }
    /// True iff `|self - other| <= tolerance`.
    fn approx_eq(&self, other: &Self) -> bool {
        (self.clone() - other.clone()).is_zero_approx()
    }
    /// `self >= other - tolerance`.
    fn approx_ge(&self, other: &Self) -> bool {
        !(self.clone() - other.clone()).is_negative_approx()
    }
    /// `self <= other + tolerance`.
    fn approx_le(&self, other: &Self) -> bool {
        !(self.clone() - other.clone()).is_positive_approx()
    }
    /// Smaller of two scalars.
    fn min_val(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// Larger of two scalars.
    fn max_val(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// Non-negative integer power.
    fn powi(&self, exp: u32) -> Self {
        let mut acc = Self::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base.clone();
            }
            base = base.clone() * base;
            e >>= 1;
        }
        acc
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn from_ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "from_ratio with zero denominator");
        num as f64 / den as f64
    }
    fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "from_f64 needs a finite value, got {v}");
        v
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn abs(&self) -> Self {
        f64::abs(*self)
    }
    fn tolerance() -> Self {
        1e-9
    }
    fn is_exact() -> bool {
        false
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::zero()
    }
    fn one() -> Self {
        Rational::one()
    }
    fn from_i64(v: i64) -> Self {
        Rational::from_int(v)
    }
    fn from_ratio(num: i64, den: i64) -> Self {
        Rational::from_ratio(num, den)
    }
    fn from_f64(v: f64) -> Self {
        Rational::from_f64_exact(v)
            .unwrap_or_else(|| panic!("from_f64 needs a finite value, got {v}"))
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(self)
    }
    fn abs(&self) -> Self {
        Rational::abs(self)
    }
    fn tolerance() -> Self {
        Rational::zero()
    }
    fn is_exact() -> bool {
        true
    }

    // Exact sign tests: no negated-tolerance temporaries, no cross-multiply.
    fn is_exactly_zero(&self) -> bool {
        Rational::is_zero(self)
    }
    fn is_zero_approx(&self) -> bool {
        Rational::is_zero(self)
    }
    fn is_positive_approx(&self) -> bool {
        Rational::is_positive(self)
    }
    fn is_negative_approx(&self) -> bool {
        Rational::is_negative(self)
    }

    fn add_ref(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn sub_ref(&self, rhs: &Self) -> Self {
        self - rhs
    }
    fn mul_ref(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn div_ref(&self, rhs: &Self) -> Self {
        self / rhs
    }
    fn add_assign_ref(&mut self, rhs: &Self) {
        *self = &*self + rhs;
    }
    fn sub_assign_ref(&mut self, rhs: &Self) {
        *self = &*self - rhs;
    }
    fn div_assign_ref(&mut self, rhs: &Self) {
        *self = &*self / rhs;
    }
    // The fused forms hit `Rational`'s single-limb fast path (one machine
    // gcd instead of separate mul + add/sub reductions) — this is the
    // innermost operation of both the dense tableau update and the revised
    // simplex's eta-vector FTRAN/BTRAN kernels.
    fn sub_mul_assign(&mut self, factor: &Self, x: &Self) {
        *self = self.sub_mul(factor, x);
    }
    fn add_mul_assign(&mut self, factor: &Self, x: &Self) {
        *self = self.add_mul(factor, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::rat;

    #[test]
    fn f64_scalar_basics() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(<f64 as Scalar>::from_ratio(1, 4), 0.25);
        assert!(!<f64 as Scalar>::is_exact());
        assert!(1e-12f64.is_zero_approx());
        assert!(!1e-3f64.is_zero_approx());
        assert!(0.5f64.is_positive_approx());
        assert!((-0.5f64).is_negative_approx());
        assert!(0.1f64.approx_eq(&(0.1 + 1e-12)));
        assert_eq!(Scalar::powi(&2.0f64, 10), 1024.0);
    }

    #[test]
    fn rational_scalar_is_exact() {
        assert!(<Rational as Scalar>::is_exact());
        assert_eq!(<Rational as Scalar>::tolerance(), Rational::zero());
        assert_eq!(<Rational as Scalar>::from_ratio(2, 8), rat(1, 4));
        assert!(rat(0, 1).is_zero_approx());
        assert!(!rat(1, 1_000_000).is_zero_approx());
        assert!(rat(1, 1_000_000).is_positive_approx());
        assert_eq!(Scalar::powi(&rat(1, 2), 3), rat(1, 8));
        assert!(rat(1, 3).approx_ge(&rat(1, 3)));
        assert!(rat(1, 3).approx_le(&rat(1, 2)));
    }

    #[test]
    fn min_max_val() {
        assert_eq!(rat(1, 3).min_val(rat(1, 2)), rat(1, 3));
        assert_eq!(rat(1, 3).max_val(rat(1, 2)), rat(1, 2));
        assert_eq!(2.0f64.min_val(3.0), 2.0);
        assert_eq!(2.0f64.max_val(3.0), 3.0);
    }
}
